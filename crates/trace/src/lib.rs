//! # dynamid-trace — span-level tracing and bottleneck attribution
//!
//! The paper's central explanatory device (Figures 12/14, §5–6) is *where
//! the time goes*: which tier's CPU saturates under each of the six
//! middleware configurations. This crate turns every simulated interaction
//! into an attributable span tree — web serve → IPC hop → servlet/EJB
//! invoke → per-statement database work, with lock/queue waits attached —
//! and aggregates a whole run into a [`BottleneckReport`] whose per-tier
//! CPU-share table can be cross-checked against the processor-sharing
//! counters the figures are derived from.
//!
//! Two layers cooperate:
//!
//! * the middleware records **spans** over op-index ranges of each request's
//!   trace while it assembles the trace ([`SpanRecorder`], [`SpanDef`]) —
//!   no timestamps exist yet at that point;
//! * the simulation records **op intervals** with sim-timestamps as the
//!   trace executes (`dynamid_sim::TraceRecorder`), which the experiment
//!   runner loads into an [`IntervalTable`] — columnar (struct-of-arrays)
//!   storage with lock/semaphore names interned once per name instead of
//!   allocated per interval. The renderers and the bottleneck aggregator
//!   below scan the table's column buffers directly.
//!
//! Joining the two on (job, op index) yields wall-clock span trees
//! ([`TraceCapture`]) that can be exported as Chrome-trace JSON
//! ([`chrome_trace_json`], viewable in `chrome://tracing` or Perfetto) or
//! folded into a [`BottleneckReport`].
//!
//! Determinism: every structure here is populated in engine event order and
//! every renderer iterates in a fixed order (machines by id, spans in open
//! order, waits by name), so for a fixed seed the JSON and CSV outputs are
//! byte-identical regardless of worker-thread count.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use dynamid_sim::{LatencyHistogram, SimDuration};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The span taxonomy: one variant per architectural stage the middleware
/// distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// The whole interaction, client NIC to client NIC.
    Request,
    /// Web-server stage: process-pool admission, HTTP parse, SSL, connector
    /// send.
    WebServe,
    /// The IPC/AJP hop from the web server to a dedicated generator tier.
    IpcHop,
    /// Generator-side dispatch and handler execution (servlet or EJB
    /// client code), including DB-pool admission.
    Invoke,
    /// One session-facade RMI round trip into the EJB container.
    FacadeCall,
    /// One container-managed-persistence entity operation (find, create,
    /// remove, flush-per-bean).
    CmpAccess,
    /// One SQL statement: generator marshalling, table locks, database
    /// execution, reply.
    SqlStatement,
    /// Embedded static assets fetched after the generated page.
    StaticAssets,
    /// Response rendering and delivery back through the web tier.
    Response,
    /// A result- or method-cache hit replacing the stage it short-circuits
    /// (the SQL execution chain or the facade/CMP chain). Only emitted when
    /// the caching tier is enabled and hits.
    Cache,
}

impl SpanKind {
    /// Stable lower-case name used in exports.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Request => "request",
            SpanKind::WebServe => "web-serve",
            SpanKind::IpcHop => "ipc-hop",
            SpanKind::Invoke => "invoke",
            SpanKind::FacadeCall => "facade-call",
            SpanKind::CmpAccess => "cmp-access",
            SpanKind::SqlStatement => "sql-statement",
            SpanKind::StaticAssets => "static-assets",
            SpanKind::Response => "response",
            SpanKind::Cache => "cache",
        }
    }
}

/// One span over a half-open op-index range `[start_op, end_op)` of a
/// request's trace. Spans form a tree via `parent` (an index into the same
/// span list; parents always precede children).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanDef {
    /// Which architectural stage this span covers.
    pub kind: SpanKind,
    /// Human-readable label (interaction name, statement kind, bean op).
    pub label: String,
    /// First op index covered.
    pub start_op: usize,
    /// One past the last op index covered.
    pub end_op: usize,
    /// Index of the enclosing span, `None` for the root.
    pub parent: Option<usize>,
    /// For SQL statements: whether the plan cache served the statement.
    pub cache_hit: Option<bool>,
    /// For SQL statements: the modeled query cost in microseconds.
    pub cost_micros: Option<u64>,
}

/// Builds a span tree with strict stack discipline while a request trace is
/// being assembled: `open` pushes, `close` pops and seals the op range.
#[derive(Debug, Default)]
pub struct SpanRecorder {
    spans: Vec<SpanDef>,
    stack: Vec<usize>,
}

impl SpanRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a span starting at op index `at_op`, nested under the span
    /// currently on top of the stack. Returns its index for
    /// [`annotate`](Self::annotate).
    pub fn open(&mut self, kind: SpanKind, label: impl Into<String>, at_op: usize) -> usize {
        let parent = self.stack.last().copied();
        let idx = self.spans.len();
        self.spans.push(SpanDef {
            kind,
            label: label.into(),
            start_op: at_op,
            end_op: at_op,
            parent,
            cache_hit: None,
            cost_micros: None,
        });
        self.stack.push(idx);
        idx
    }

    /// Closes the innermost open span at op index `at_op`.
    ///
    /// # Panics
    ///
    /// Panics if no span is open.
    pub fn close(&mut self, at_op: usize) {
        let idx = self.stack.pop().expect("close with no open span");
        self.spans[idx].end_op = at_op;
    }

    /// Attaches plan-cache and cost annotations to span `idx`.
    pub fn annotate(&mut self, idx: usize, cache_hit: Option<bool>, cost_micros: Option<u64>) {
        let s = &mut self.spans[idx];
        if cache_hit.is_some() {
            s.cache_hit = cache_hit;
        }
        if cost_micros.is_some() {
            s.cost_micros = cost_micros;
        }
    }

    /// Number of spans opened so far.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// `true` when no span has been opened.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Finishes recording and returns the span tree.
    ///
    /// # Panics
    ///
    /// Panics if any span is still open: every `open` must have a matching
    /// `close` before the request is submitted.
    pub fn finish(self) -> Vec<SpanDef> {
        assert!(self.stack.is_empty(), "{} spans left open", self.stack.len());
        self.spans
    }
}

/// Index into an [`IntervalTable`]'s interned name list — lock and
/// semaphore names are stored once and referenced by id, keeping
/// [`IntervalKind`] `Copy` and the kind column allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NameId(pub u32);

/// What a job was doing during one timed interval, with machine ids and
/// interned lock/semaphore names resolved at capture time so the capture is
/// self-contained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntervalKind {
    /// CPU service. `demand_micros` is the op's base demand.
    Cpu {
        /// Machine id (index into [`TraceCapture::machines`]).
        machine: u32,
        /// Base service demand in microseconds.
        demand_micros: u64,
    },
    /// A network transfer (sender NIC through receiver NIC).
    Net {
        /// Sending machine id.
        from: u32,
        /// Receiving machine id.
        to: u32,
        /// Payload bytes.
        bytes: u64,
    },
    /// A pure delay.
    Delay,
    /// Parked waiting for a read/write lock.
    LockWait {
        /// The lock's registered name (e.g. `table:items`), interned.
        name: NameId,
    },
    /// Queued for a semaphore unit (process/connection pool).
    SemWait {
        /// The semaphore's registered name (e.g. `web-pool`), interned.
        name: NameId,
    },
}

/// Timed intervals in struct-of-arrays layout: five parallel column
/// buffers, row `i` of each describing one closed interval of job
/// `job[i]` executing the op at `op_index[i]`. Rows are in engine end
/// order. Lock/semaphore names live once in `names` and are referenced by
/// [`NameId`] from the kind column.
///
/// Consumers address the columns directly: the Chrome-trace renderer scans
/// `kind`/`start_us`/`end_us`, the bottleneck aggregator additionally
/// groups row indices by `job`. A traced 60-client run holds hundreds of
/// thousands of rows, so the columnar layout (and the per-name rather than
/// per-row strings) is what keeps report generation cheap.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IntervalTable {
    /// Interned lock/semaphore names, indexed by [`NameId`].
    pub names: Vec<String>,
    /// Engine job id of each row.
    pub job: Vec<u64>,
    /// Op index within the owning job's trace.
    pub op_index: Vec<u32>,
    /// What the job was doing.
    pub kind: Vec<IntervalKind>,
    /// Interval starts, sim microseconds.
    pub start_us: Vec<u64>,
    /// Interval ends, sim microseconds.
    pub end_us: Vec<u64>,
}

impl IntervalTable {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.job.len()
    }

    /// `true` when the table holds no intervals.
    pub fn is_empty(&self) -> bool {
        self.job.is_empty()
    }

    /// Grows every column so at least `additional` more rows fit without
    /// reallocating.
    pub fn reserve(&mut self, additional: usize) {
        self.job.reserve(additional);
        self.op_index.reserve(additional);
        self.kind.reserve(additional);
        self.start_us.reserve(additional);
        self.end_us.reserve(additional);
    }

    /// Interns `name`, returning the id of the existing entry when the name
    /// was seen before. The name population is small (one per lock or
    /// semaphore), so a linear probe beats a map.
    pub fn intern(&mut self, name: &str) -> NameId {
        if let Some(i) = self.names.iter().position(|n| n == name) {
            return NameId(i as u32);
        }
        self.names.push(name.to_string());
        NameId((self.names.len() - 1) as u32)
    }

    /// Resolves an interned name id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table's
    /// [`intern`](Self::intern).
    pub fn name(&self, id: NameId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Appends one row.
    pub fn push(
        &mut self,
        job: u64,
        op_index: usize,
        kind: IntervalKind,
        start_us: u64,
        end_us: u64,
    ) {
        self.job.push(job);
        self.op_index.push(op_index as u32);
        self.kind.push(kind);
        self.start_us.push(start_us);
        self.end_us.push(end_us);
    }
}

/// One completed request: identity, timing, and its span tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobRecord {
    /// Engine job id (joins against [`RawInterval::job`]).
    pub job: u64,
    /// Emulated-client index that issued the request.
    pub client: u64,
    /// Interaction index (into [`TraceCapture::interactions`]).
    pub interaction: usize,
    /// Submission time, sim microseconds.
    pub submitted_us: u64,
    /// Completion time, sim microseconds.
    pub completed_us: u64,
    /// The span tree recorded while the trace was assembled.
    pub spans: Vec<SpanDef>,
}

/// A full traced run: machine/interaction name tables, the measurement
/// window, every completed request, and every timed op interval.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceCapture {
    /// Machine names, indexed by machine id.
    pub machines: Vec<String>,
    /// Interaction names, indexed by interaction id.
    pub interactions: Vec<String>,
    /// Measurement-window start, sim microseconds.
    pub window_start_us: u64,
    /// Measurement-window end, sim microseconds.
    pub window_end_us: u64,
    /// Completed requests, in completion order.
    pub jobs: Vec<JobRecord>,
    /// Timed intervals, columnar, in engine end order.
    pub intervals: IntervalTable,
}

impl TraceCapture {
    /// Wall-clock `(start_us, end_us)` for each span of `job`, derived by
    /// joining the span's op range against the job's interval rows (indices
    /// into [`TraceCapture::intervals`]). The root span is pinned to
    /// `[submitted, completed]`; a span whose ops all recorded nothing
    /// (immediate grants, loopback transfers) collapses to a zero-length
    /// span at its parent's start.
    pub fn span_times(&self, job: &JobRecord, rows: &[u32]) -> Vec<(u64, u64)> {
        let tab = &self.intervals;
        let mut times: Vec<Option<(u64, u64)>> = vec![None; job.spans.len()];
        for (i, s) in job.spans.iter().enumerate() {
            let mut lo = u64::MAX;
            let mut hi = 0u64;
            for &r in rows {
                let r = r as usize;
                let op = tab.op_index[r] as usize;
                if op >= s.start_op && op < s.end_op {
                    lo = lo.min(tab.start_us[r]);
                    hi = hi.max(tab.end_us[r]);
                }
            }
            if lo <= hi && lo != u64::MAX {
                times[i] = Some((lo, hi));
            }
        }
        job.spans
            .iter()
            .enumerate()
            .map(|(i, s)| {
                if s.parent.is_none() {
                    return (job.submitted_us, job.completed_us);
                }
                times[i].unwrap_or_else(|| {
                    let p = s.parent.expect("non-root span");
                    let (ps, _) = times[p].unwrap_or((job.submitted_us, job.completed_us));
                    (ps, ps)
                })
            })
            .collect()
    }

    /// Groups interval row indices by job id (jobs in id order, rows in end
    /// order).
    fn intervals_by_job(&self) -> BTreeMap<u64, Vec<u32>> {
        let mut by_job: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
        for (r, &job) in self.intervals.job.iter().enumerate() {
            by_job.entry(job).or_default().push(r as u32);
        }
        by_job
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a capture as Chrome-trace-format JSON (the `traceEvents` array
/// form), viewable in `chrome://tracing` or Perfetto.
///
/// Layout: pid 1 (`requests`) holds one track per emulated client with the
/// span tree and lock/semaphore waits of every request that client issued;
/// pid 2 (`machines`) holds one track per machine with its CPU service and
/// outbound-transfer intervals. All timestamps are integer sim-microseconds,
/// and events are emitted in a fixed order, so the output is byte-stable.
pub fn chrome_trace_json(cap: &TraceCapture) -> String {
    let mut out = String::new();
    out.push_str("{\"traceEvents\":[\n");
    let mut first = true;
    let push = |out: &mut String, first: &mut bool, line: String| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(&line);
    };
    push(
        &mut out,
        &mut first,
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"requests\"}}"
            .to_string(),
    );
    push(
        &mut out,
        &mut first,
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0,\
         \"args\":{\"name\":\"machines\"}}"
            .to_string(),
    );
    for (id, name) in cap.machines.iter().enumerate() {
        push(
            &mut out,
            &mut first,
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":2,\"tid\":{id},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                json_escape(name)
            ),
        );
    }
    let tab = &cap.intervals;
    let by_job = cap.intervals_by_job();
    let empty: Vec<u32> = Vec::new();
    for job in &cap.jobs {
        let rows = by_job.get(&job.job).unwrap_or(&empty);
        let times = cap.span_times(job, rows);
        let interaction = cap.interactions.get(job.interaction).map(String::as_str).unwrap_or("?");
        for (s, (start, end)) in job.spans.iter().zip(&times) {
            let mut args =
                format!("\"job\":{},\"interaction\":\"{}\"", job.job, json_escape(interaction));
            if let Some(hit) = s.cache_hit {
                let _ = write!(args, ",\"plan_cache\":\"{}\"", if hit { "hit" } else { "miss" });
            }
            if let Some(cost) = s.cost_micros {
                let _ = write!(args, ",\"cost_us\":{cost}");
            }
            push(
                &mut out,
                &mut first,
                format!(
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                     \"pid\":1,\"tid\":{},\"args\":{{{args}}}}}",
                    json_escape(&s.label),
                    s.kind.as_str(),
                    start,
                    end.saturating_sub(*start),
                    job.client,
                ),
            );
        }
        for &r in rows {
            let r = r as usize;
            if let IntervalKind::LockWait { name } | IntervalKind::SemWait { name } = tab.kind[r] {
                let cat = match tab.kind[r] {
                    IntervalKind::LockWait { .. } => "lock-wait",
                    _ => "sem-wait",
                };
                push(
                    &mut out,
                    &mut first,
                    format!(
                        "{{\"name\":\"{}\",\"cat\":\"{cat}\",\"ph\":\"X\",\"ts\":{},\
                         \"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{\"job\":{}}}}}",
                        json_escape(tab.name(name)),
                        tab.start_us[r],
                        tab.end_us[r] - tab.start_us[r],
                        job.client,
                        job.job,
                    ),
                );
            }
        }
    }
    for (r, kind) in tab.kind.iter().enumerate() {
        match *kind {
            IntervalKind::Cpu { machine, demand_micros } => push(
                &mut out,
                &mut first,
                format!(
                    "{{\"name\":\"cpu\",\"cat\":\"cpu\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                     \"pid\":2,\"tid\":{machine},\"args\":{{\"job\":{},\"demand_us\":{}}}}}",
                    tab.start_us[r],
                    tab.end_us[r] - tab.start_us[r],
                    tab.job[r],
                    demand_micros,
                ),
            ),
            IntervalKind::Net { from, to, bytes } => push(
                &mut out,
                &mut first,
                format!(
                    "{{\"name\":\"net\",\"cat\":\"net\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                     \"pid\":2,\"tid\":{from},\"args\":{{\"job\":{},\"to\":{to},\
                     \"bytes\":{}}}}}",
                    tab.start_us[r],
                    tab.end_us[r] - tab.start_us[r],
                    tab.job[r],
                    bytes,
                ),
            ),
            _ => {}
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Per-machine CPU/NIC totals over the measurement window.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineRow {
    /// Machine name.
    pub name: String,
    /// Estimated CPU busy microseconds inside the window (demand of each
    /// CPU interval, pro-rated by its overlap with the window).
    pub cpu_busy_us: f64,
    /// This machine's share of all CPU busy time (0–1).
    pub cpu_share: f64,
    /// CPU busy time divided by window length (0–1).
    pub cpu_util: f64,
    /// Bytes received by this machine's NIC inside the window (pro-rated).
    pub nic_bytes: f64,
}

/// Per-interaction latency and per-tier time breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct InteractionRow {
    /// Interaction name.
    pub name: String,
    /// Requests completed inside the window.
    pub count: u64,
    /// Median response time, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile response time, milliseconds.
    pub p99_ms: f64,
    /// Mean CPU demand per request on each machine, milliseconds
    /// (machine-id order).
    pub tier_cpu_ms: Vec<f64>,
    /// Mean time parked on read/write locks per request, milliseconds.
    pub lock_wait_ms: f64,
    /// Mean time queued on semaphores (pools) per request, milliseconds.
    pub sem_wait_ms: f64,
    /// Mean wall time in network transfers per request, milliseconds.
    pub net_ms: f64,
}

/// Total wait attributed to one lock or semaphore over the window.
#[derive(Debug, Clone, PartialEq)]
pub struct WaitRow {
    /// Lock or semaphore name.
    pub name: String,
    /// `lock` or `semaphore`.
    pub category: &'static str,
    /// Number of waits overlapping the window.
    pub count: u64,
    /// Total wait inside the window, milliseconds.
    pub total_ms: f64,
}

/// Cache-hit attribution for one cache site (label of its [`SpanKind::Cache`]
/// spans), over the jobs counted by the latency rows.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheRow {
    /// Cache span label (e.g. `result-cache`, or the cached facade method).
    pub name: String,
    /// Hits inside the window.
    pub hits: u64,
    /// Total modeled cost charged by the hit path, milliseconds.
    pub cost_ms: f64,
}

/// The aggregated bottleneck report: per-tier CPU shares (the trace-side
/// analogue of the paper's Figures 12/14), interactions ranked by p99 with
/// per-tier breakdowns, and lock/queue wait attribution.
#[derive(Debug, Clone, PartialEq)]
pub struct BottleneckReport {
    /// Per-machine totals, machine-id order.
    pub machines: Vec<MachineRow>,
    /// Interactions ranked by p99 descending (ties by interaction id).
    pub interactions: Vec<InteractionRow>,
    /// Lock/semaphore waits, sorted by name.
    pub waits: Vec<WaitRow>,
    /// Cache-hit counts per cache site; empty when the caching tier is off,
    /// so reports (and their CSVs) are unchanged for uncached runs.
    pub cache: Vec<CacheRow>,
    /// Window length, microseconds.
    pub window_us: u64,
}

/// Fraction of `[start, end]` overlapping `[w0, w1]`, as a 0–1 factor.
fn window_fraction(start: u64, end: u64, w0: u64, w1: u64) -> f64 {
    let lo = start.max(w0);
    let hi = end.min(w1);
    if hi <= lo {
        return 0.0;
    }
    if end <= start {
        return 1.0;
    }
    (hi - lo) as f64 / (end - start) as f64
}

impl BottleneckReport {
    /// Aggregates a capture into the report. Latency rows cover requests
    /// submitted and completed inside the window (the figures' steady-state
    /// convention); resource rows pro-rate every interval by its overlap
    /// with the window.
    pub fn from_capture(cap: &TraceCapture) -> Self {
        let (w0, w1) = (cap.window_start_us, cap.window_end_us);
        let window_us = w1.saturating_sub(w0);
        let n_mach = cap.machines.len();
        let tab = &cap.intervals;
        let mut cpu_busy = vec![0.0f64; n_mach];
        let mut nic_bytes = vec![0.0f64; n_mach];
        let mut waits: BTreeMap<(String, &'static str), (u64, f64)> = BTreeMap::new();
        for (r, kind) in tab.kind.iter().enumerate() {
            let (start, end) = (tab.start_us[r], tab.end_us[r]);
            let f = window_fraction(start, end, w0, w1);
            if f <= 0.0 {
                continue;
            }
            match *kind {
                IntervalKind::Cpu { machine, demand_micros } => {
                    cpu_busy[machine as usize] += demand_micros as f64 * f;
                }
                IntervalKind::Net { to, bytes, .. } => {
                    nic_bytes[to as usize] += bytes as f64 * f;
                }
                IntervalKind::LockWait { name } => {
                    let e = waits.entry((tab.name(name).to_string(), "lock")).or_insert((0, 0.0));
                    e.0 += 1;
                    e.1 += (end - start) as f64 * f;
                }
                IntervalKind::SemWait { name } => {
                    let e =
                        waits.entry((tab.name(name).to_string(), "semaphore")).or_insert((0, 0.0));
                    e.0 += 1;
                    e.1 += (end - start) as f64 * f;
                }
                IntervalKind::Delay => {}
            }
        }
        let total_busy: f64 = cpu_busy.iter().sum();
        let machines = cap
            .machines
            .iter()
            .enumerate()
            .map(|(i, name)| MachineRow {
                name: name.clone(),
                cpu_busy_us: cpu_busy[i],
                cpu_share: if total_busy > 0.0 { cpu_busy[i] / total_busy } else { 0.0 },
                cpu_util: if window_us > 0 { cpu_busy[i] / window_us as f64 } else { 0.0 },
                nic_bytes: nic_bytes[i],
            })
            .collect();

        let by_job = cap.intervals_by_job();
        let empty: Vec<u32> = Vec::new();
        struct Acc {
            hist: LatencyHistogram,
            tier_cpu_us: Vec<f64>,
            lock_us: f64,
            sem_us: f64,
            net_us: f64,
        }
        let mut per_int: BTreeMap<usize, Acc> = BTreeMap::new();
        let mut cache_sites: BTreeMap<String, (u64, f64)> = BTreeMap::new();
        for job in &cap.jobs {
            if job.submitted_us < w0 || job.completed_us > w1 {
                continue;
            }
            for s in &job.spans {
                if s.kind == SpanKind::Cache {
                    let e = cache_sites.entry(s.label.clone()).or_insert((0, 0.0));
                    e.0 += 1;
                    e.1 += s.cost_micros.unwrap_or(0) as f64 / 1_000.0;
                }
            }
            let acc = per_int.entry(job.interaction).or_insert_with(|| Acc {
                hist: LatencyHistogram::new(),
                tier_cpu_us: vec![0.0; n_mach],
                lock_us: 0.0,
                sem_us: 0.0,
                net_us: 0.0,
            });
            acc.hist.record(SimDuration::from_micros(job.completed_us - job.submitted_us));
            for &r in by_job.get(&job.job).unwrap_or(&empty) {
                let r = r as usize;
                let len = (tab.end_us[r] - tab.start_us[r]) as f64;
                match tab.kind[r] {
                    IntervalKind::Cpu { machine, demand_micros } => {
                        acc.tier_cpu_us[machine as usize] += demand_micros as f64;
                    }
                    IntervalKind::Net { .. } => acc.net_us += len,
                    IntervalKind::LockWait { .. } => acc.lock_us += len,
                    IntervalKind::SemWait { .. } => acc.sem_us += len,
                    IntervalKind::Delay => {}
                }
            }
        }
        let mut interactions: Vec<InteractionRow> = per_int
            .into_iter()
            .map(|(id, acc)| {
                let n = acc.hist.count().max(1) as f64;
                InteractionRow {
                    name: cap
                        .interactions
                        .get(id)
                        .cloned()
                        .unwrap_or_else(|| format!("interaction-{id}")),
                    count: acc.hist.count(),
                    p50_ms: acc.hist.quantile(0.5).as_micros() as f64 / 1_000.0,
                    p99_ms: acc.hist.quantile(0.99).as_micros() as f64 / 1_000.0,
                    tier_cpu_ms: acc.tier_cpu_us.iter().map(|us| us / n / 1_000.0).collect(),
                    lock_wait_ms: acc.lock_us / n / 1_000.0,
                    sem_wait_ms: acc.sem_us / n / 1_000.0,
                    net_ms: acc.net_us / n / 1_000.0,
                }
            })
            .collect();
        interactions.sort_by(|a, b| {
            b.p99_ms
                .partial_cmp(&a.p99_ms)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.name.cmp(&b.name))
        });
        let waits = waits
            .into_iter()
            .map(|((name, category), (count, us))| WaitRow {
                name,
                category,
                count,
                total_ms: us / 1_000.0,
            })
            .collect();
        let cache = cache_sites
            .into_iter()
            .map(|(name, (hits, cost_ms))| CacheRow { name, hits, cost_ms })
            .collect();
        BottleneckReport { machines, interactions, waits, cache, window_us }
    }

    /// Renders the report as a `section,name,metric,value` CSV with fixed
    /// decimal formatting (byte-stable for a fixed seed).
    pub fn to_csv(&self, machine_names: &[String]) -> String {
        let mut out = String::from("section,name,metric,value\n");
        for m in &self.machines {
            let _ = writeln!(out, "tier,{},cpu_busy_us,{:.0}", m.name, m.cpu_busy_us);
            let _ = writeln!(out, "tier,{},cpu_share,{:.4}", m.name, m.cpu_share);
            let _ = writeln!(out, "tier,{},cpu_util,{:.4}", m.name, m.cpu_util);
            let _ = writeln!(out, "tier,{},nic_bytes,{:.0}", m.name, m.nic_bytes);
        }
        for i in &self.interactions {
            let _ = writeln!(out, "interaction,{},count,{}", i.name, i.count);
            let _ = writeln!(out, "interaction,{},p50_ms,{:.3}", i.name, i.p50_ms);
            let _ = writeln!(out, "interaction,{},p99_ms,{:.3}", i.name, i.p99_ms);
            for (m, ms) in machine_names.iter().zip(&i.tier_cpu_ms) {
                let _ = writeln!(out, "interaction,{},cpu_ms:{m},{:.3}", i.name, ms);
            }
            let _ = writeln!(out, "interaction,{},lock_wait_ms,{:.3}", i.name, i.lock_wait_ms);
            let _ = writeln!(out, "interaction,{},sem_wait_ms,{:.3}", i.name, i.sem_wait_ms);
            let _ = writeln!(out, "interaction,{},net_ms,{:.3}", i.name, i.net_ms);
        }
        for w in &self.waits {
            let _ = writeln!(out, "wait,{},category,{}", w.name, w.category);
            let _ = writeln!(out, "wait,{},count,{}", w.name, w.count);
            let _ = writeln!(out, "wait,{},total_ms,{:.3}", w.name, w.total_ms);
        }
        // Cache rows only exist when the caching tier was enabled, keeping
        // uncached CSVs byte-identical to pre-cache builds.
        for c in &self.cache {
            let _ = writeln!(out, "cache,{},hits,{}", c.name, c.hits);
            let _ = writeln!(out, "cache,{},cost_ms,{:.3}", c.name, c.cost_ms);
        }
        out
    }

    /// A short human-readable summary (top tiers and interactions).
    pub fn to_markdown(&self) -> String {
        let mut out = String::from("| tier | CPU share | CPU util |\n|---|---|---|\n");
        for m in &self.machines {
            let _ = writeln!(
                out,
                "| {} | {:.1}% | {:.1}% |",
                m.name,
                m.cpu_share * 100.0,
                m.cpu_util * 100.0
            );
        }
        out.push_str("\n| interaction | n | p50 ms | p99 ms | lock ms | pool ms |\n");
        out.push_str("|---|---|---|---|---|---|\n");
        for i in &self.interactions {
            let _ = writeln!(
                out,
                "| {} | {} | {:.1} | {:.1} | {:.2} | {:.2} |",
                i.name, i.count, i.p50_ms, i.p99_ms, i.lock_wait_ms, i.sem_wait_ms
            );
        }
        if !self.waits.is_empty() {
            out.push_str("\n| wait | kind | n | total ms |\n|---|---|---|---|\n");
            for w in &self.waits {
                let _ = writeln!(
                    out,
                    "| {} | {} | {} | {:.1} |",
                    w.name, w.category, w.count, w.total_ms
                );
            }
        }
        out
    }

    /// Cross-checks the trace-derived per-machine CPU utilizations against
    /// utilizations measured from the processor-sharing counters (the
    /// numbers behind Figures 12/14). `ps_util` pairs machine names with
    /// window utilizations.
    ///
    /// # Errors
    ///
    /// Returns the first machine whose two estimates differ by more than
    /// `tolerance` (absolute, e.g. `0.01` for the 1% gate).
    pub fn check_cpu_shares(
        &self,
        ps_util: &[(String, f64)],
        tolerance: f64,
    ) -> Result<(), String> {
        for (name, ps) in ps_util {
            let Some(row) = self.machines.iter().find(|m| &m.name == name) else {
                return Err(format!("machine {name} missing from trace report"));
            };
            let diff = (row.cpu_util - ps).abs();
            if diff > tolerance {
                return Err(format!(
                    "{name}: trace CPU util {:.4} vs PS {:.4} (diff {:.4} > {:.4})",
                    row.cpu_util, ps, diff, tolerance
                ));
            }
        }
        Ok(())
    }
}

/// Verifies span-tree well-formedness over a whole capture:
///
/// * every span closed at or after it opened, inside its parent's op range;
/// * children's wall-clock intervals nest inside their parents';
/// * the CPU demand inside any span never exceeds its wall time (each op
///   may round up to a whole microsecond, hence the per-interval slack).
///
/// # Errors
///
/// Returns a description of the first violated invariant.
pub fn verify_capture(cap: &TraceCapture) -> Result<(), String> {
    let tab = &cap.intervals;
    let by_job: BTreeMap<u64, Vec<u32>> = {
        let mut m: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
        for (r, &j) in tab.job.iter().enumerate() {
            m.entry(j).or_default().push(r as u32);
        }
        m
    };
    let empty: Vec<u32> = Vec::new();
    for job in &cap.jobs {
        let rows = by_job.get(&job.job).unwrap_or(&empty);
        let times = cap.span_times(job, rows);
        for (i, s) in job.spans.iter().enumerate() {
            if s.end_op < s.start_op {
                return Err(format!("job {}: span {i} has end_op < start_op", job.job));
            }
            if let Some(p) = s.parent {
                if p >= i {
                    return Err(format!("job {}: span {i} parent {p} not earlier", job.job));
                }
                let ps = &job.spans[p];
                if s.start_op < ps.start_op || s.end_op > ps.end_op {
                    return Err(format!(
                        "job {}: span {i} ops [{},{}) outside parent [{},{})",
                        job.job, s.start_op, s.end_op, ps.start_op, ps.end_op
                    ));
                }
                let (cs, ce) = times[i];
                let (pstart, pend) = times[p];
                if cs < pstart || ce > pend {
                    return Err(format!(
                        "job {}: span {i} time [{cs},{ce}] outside parent [{pstart},{pend}]",
                        job.job
                    ));
                }
            }
            let (ss, se) = times[i];
            let mut demand = 0u64;
            let mut n = 0u64;
            for &r in rows {
                let r = r as usize;
                let op = tab.op_index[r] as usize;
                if op >= s.start_op && op < s.end_op {
                    if let IntervalKind::Cpu { demand_micros, .. } = tab.kind[r] {
                        demand += demand_micros;
                        n += 1;
                    }
                }
            }
            if demand > (se - ss) + n {
                return Err(format!(
                    "job {}: span {i} CPU demand {demand}us exceeds wall {}us",
                    job.job,
                    se - ss
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_capture() -> TraceCapture {
        let mut rec = SpanRecorder::new();
        let root = rec.open(SpanKind::Request, "buy", 0);
        rec.open(SpanKind::WebServe, "web", 0);
        rec.close(2);
        rec.open(SpanKind::Invoke, "handler", 2);
        let sql = rec.open(SpanKind::SqlStatement, "read", 2);
        rec.annotate(sql, Some(true), Some(950));
        rec.close(4);
        rec.close(4);
        rec.close(5);
        let _ = root;
        let spans = rec.finish();
        let mut intervals = IntervalTable::default();
        intervals.reserve(5);
        let pool = intervals.intern("web-pool");
        let items = intervals.intern("table:items");
        intervals.push(0, 0, IntervalKind::Cpu { machine: 1, demand_micros: 400 }, 100, 500);
        intervals.push(0, 1, IntervalKind::SemWait { name: pool }, 500, 900);
        intervals.push(0, 2, IntervalKind::LockWait { name: items }, 900, 1_900);
        intervals.push(0, 3, IntervalKind::Cpu { machine: 2, demand_micros: 950 }, 1_900, 3_000);
        intervals.push(0, 4, IntervalKind::Net { from: 2, to: 0, bytes: 2_048 }, 3_000, 4_100);
        TraceCapture {
            machines: vec!["client".into(), "web".into(), "db".into()],
            interactions: vec!["buy".into()],
            window_start_us: 0,
            window_end_us: 10_000,
            jobs: vec![JobRecord {
                job: 0,
                client: 3,
                interaction: 0,
                submitted_us: 100,
                completed_us: 4_100,
                spans,
            }],
            intervals,
        }
    }

    #[test]
    fn recorder_enforces_stack_discipline() {
        let mut rec = SpanRecorder::new();
        rec.open(SpanKind::Request, "r", 0);
        let c = rec.open(SpanKind::WebServe, "w", 1);
        rec.close(3);
        rec.close(4);
        let spans = rec.finish();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[c].parent, Some(0));
        assert_eq!(spans[0].end_op, 4);
    }

    #[test]
    #[should_panic(expected = "left open")]
    fn unclosed_span_panics_on_finish() {
        let mut rec = SpanRecorder::new();
        rec.open(SpanKind::Request, "r", 0);
        let _ = rec.finish();
    }

    #[test]
    fn sample_capture_is_well_formed() {
        verify_capture(&sample_capture()).unwrap();
    }

    #[test]
    fn nesting_violation_is_caught() {
        let mut cap = sample_capture();
        cap.jobs[0].spans[1].end_op = 99; // web-serve escapes request
                                          // Parent op range still contains it? Request covers [0,5): 99 > 5.
        assert!(verify_capture(&cap).is_err());
    }

    #[test]
    fn cpu_over_wall_is_caught() {
        let mut cap = sample_capture();
        cap.intervals.kind[3] = IntervalKind::Cpu { machine: 2, demand_micros: 5_000 };
        assert!(verify_capture(&cap).is_err());
    }

    #[test]
    fn interning_deduplicates_names() {
        let mut tab = IntervalTable::default();
        let a = tab.intern("table:items");
        let b = tab.intern("web-pool");
        let c = tab.intern("table:items");
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_eq!(tab.names.len(), 2);
        assert_eq!(tab.name(b), "web-pool");
    }

    #[test]
    fn report_attributes_cpu_waits_and_latency() {
        let cap = sample_capture();
        let rep = BottleneckReport::from_capture(&cap);
        assert_eq!(rep.machines.len(), 3);
        assert_eq!(rep.machines[1].cpu_busy_us, 400.0);
        assert_eq!(rep.machines[2].cpu_busy_us, 950.0);
        assert!((rep.machines[2].cpu_share - 950.0 / 1_350.0).abs() < 1e-9);
        assert_eq!(rep.interactions.len(), 1);
        assert_eq!(rep.interactions[0].count, 1);
        assert_eq!(rep.waits.len(), 2);
        assert_eq!(rep.waits[0].name, "table:items");
        assert_eq!(rep.waits[1].name, "web-pool");
        let csv = rep.to_csv(&cap.machines);
        assert!(csv.starts_with("section,name,metric,value\n"));
        assert!(csv.contains("tier,db,cpu_busy_us,950"));
        assert!(csv.contains("wait,web-pool,total_ms,0.400"));
    }

    #[test]
    fn window_clipping_pro_rates_edge_intervals() {
        let mut cap = sample_capture();
        cap.window_start_us = 300; // half of the first 400us-demand interval
        let rep = BottleneckReport::from_capture(&cap);
        assert!((rep.machines[1].cpu_busy_us - 200.0).abs() < 1e-9);
        // The job no longer falls fully inside the window -> no latency row.
        assert!(rep.interactions.is_empty());
    }

    #[test]
    fn chrome_json_is_valid_shape_and_deterministic() {
        let cap = sample_capture();
        let a = chrome_trace_json(&cap);
        let b = chrome_trace_json(&cap);
        assert_eq!(a, b);
        assert!(a.starts_with("{\"traceEvents\":["));
        assert!(a.trim_end().ends_with("]}"));
        assert!(a.contains("\"plan_cache\":\"hit\""));
        assert!(a.contains("\"cost_us\":950"));
        assert!(a.contains("\"name\":\"table:items\""));
        // Balanced braces as a cheap structural check.
        assert_eq!(a.matches('{').count(), a.matches('}').count());
    }

    #[test]
    fn cross_check_flags_mismatch() {
        let cap = sample_capture();
        let rep = BottleneckReport::from_capture(&cap);
        let ok = vec![("db".to_string(), rep.machines[2].cpu_util)];
        assert!(rep.check_cpu_shares(&ok, 0.01).is_ok());
        let bad = vec![("db".to_string(), rep.machines[2].cpu_util + 0.05)];
        assert!(rep.check_cpu_shares(&bad, 0.01).is_err());
    }
}
