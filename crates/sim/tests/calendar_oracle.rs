//! Oracle tests for the two-level calendar queue.
//!
//! The engine's correctness rests on the calendar popping events in
//! exactly the order the original `BinaryHeap<Reverse<(time, seq)>>`
//! produced — ascending time, schedule order within an instant — while
//! cancellation makes superseded entries vanish instead of piling up.
//! These tests drive [`CalendarQueue`] and a retained ordered-set oracle
//! through the same randomized schedule/cancel/pop workloads and demand
//! bit-identical pop sequences, then pin the stale-event ratio at a
//! 60-client contention level so tombstone skipping can't silently
//! regress into starvation.

use dynamid_sim::calendar::{CalendarQueue, EventId};
use dynamid_sim::engine::NullDriver;
use dynamid_sim::{LockMode, Op, SimDuration, SimTime, Simulation, Trace};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Offsets are drawn from three bands so every level gets traffic: the
/// current level-0 window (0..2048 µs), level 1 (..≈4.3 s), and the
/// overflow `BTreeMap` beyond it. Small offsets dominate, matching the
/// engine's mix of near-term completions and far-off deadlines.
fn offset(raw: u64) -> u64 {
    match raw % 8 {
        0..=4 => raw % 64,    // same-bucket churn, frequent same-instant collisions
        5 => raw % 2_048,     // spans the whole level-0 window
        6 => raw % 4_000_000, // lands in level 1
        _ => 4_200_000 + raw % 8_000, // past L1_SPAN: overflow
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The calendar and a `BTreeSet<(time, seq)>` oracle — the exact
    /// order a binary heap keyed on `(time, sequence)` yields — agree on
    /// every pop and on emptiness, under random interleavings of
    /// schedules (all three levels), O(1) cancels, in-place reschedules,
    /// and pops. Each step is `(action, raw, pick)`: `raw` picks a
    /// schedule offset, `pick` selects a cancel/reschedule target. A
    /// reschedule — whether it takes the in-place fast path or falls back
    /// to schedule + cancel exactly as the engine does — must behave like
    /// a cancel followed by a fresh schedule, so the oracle re-inserts the
    /// event under a fresh sequence number either way.
    #[test]
    fn matches_ordered_oracle(
        steps in prop::collection::vec((0u8..10, any::<u64>(), 0u16..u16::MAX), 1..300)
    ) {
        let mut q: CalendarQueue<u32> = CalendarQueue::new();
        let mut oracle: BTreeSet<(u64, u32)> = BTreeSet::new();
        // Live handles mirrored on both sides, plus handles already dead
        // (popped or cancelled) to probe stale-cancel behavior.
        let mut live: Vec<(EventId, u64, u32)> = Vec::new();
        let mut dead: Vec<EventId> = Vec::new();
        let mut now = 0u64;
        let mut seq = 0u32;

        for (action, raw, pick) in steps {
            match action % 5 {
                // Schedule twice as often as the other actions so the
                // structure actually fills up.
                0 | 1 => {
                    let at = now + offset(raw);
                    let id = q.schedule(SimTime::from_micros(at), seq);
                    oracle.insert((at, seq));
                    live.push((id, at, seq));
                    seq += 1;
                }
                2 => {
                    let (at_q, got) = match q.pop() {
                        Some((t, p)) => (t, p),
                        None => {
                            prop_assert!(oracle.is_empty(), "calendar empty, oracle not");
                            continue;
                        }
                    };
                    let (at_o, seq_o) = oracle.pop_first().expect("oracle empty, calendar not");
                    prop_assert_eq!(at_q.as_micros(), at_o, "pop time diverged");
                    prop_assert_eq!(got, seq_o, "same-instant order diverged");
                    now = at_o;
                    let idx = live.iter().position(|(_, _, s)| *s == got).expect("live");
                    dead.push(live.swap_remove(idx).0);
                }
                3 => {
                    if !live.is_empty() {
                        let i = pick as usize % live.len();
                        let (id, at, s) = live[i];
                        let at_new = now + offset(raw);
                        let moved = SimTime::from_micros(at_new);
                        if q.reschedule(id, moved, seq) {
                            live[i] = (id, at_new, seq);
                        } else {
                            // The engine's fallback order: fresh schedule,
                            // then cancel the superseded prediction.
                            let nid = q.schedule(moved, seq);
                            prop_assert!(q.cancel(id), "live handle must cancel");
                            live[i] = (nid, at_new, seq);
                            dead.push(id);
                        }
                        prop_assert!(oracle.remove(&(at, s)));
                        oracle.insert((at_new, seq));
                        seq += 1;
                    }
                }
                _ => {
                    if live.is_empty() || (pick as usize).is_multiple_of(3) {
                        // Stale cancel: must refuse and must not disturb
                        // whatever reused the slot.
                        if let Some(id) = dead.get(pick as usize % dead.len().max(1)) {
                            prop_assert!(!q.cancel(*id), "stale handle cancelled something");
                        }
                    } else {
                        let (id, at, s) = live.swap_remove(pick as usize % live.len());
                        prop_assert!(q.cancel(id), "live handle must cancel");
                        prop_assert!(oracle.remove(&(at, s)));
                        dead.push(id);
                    }
                }
            }
            prop_assert_eq!(q.len(), oracle.len(), "live counts diverged");
        }

        // Drain: the tail must come out in oracle order too, across
        // whatever level transfers remain.
        while let Some((at_o, seq_o)) = oracle.pop_first() {
            let peek = q.peek_at().expect("peek on non-empty");
            prop_assert_eq!(peek.as_micros(), at_o, "peek diverged from oracle min");
            let (at_q, got) = q.pop().expect("calendar drained early");
            prop_assert_eq!(at_q.as_micros(), at_o);
            prop_assert_eq!(got, seq_o);
        }
        prop_assert!(q.pop().is_none());
        prop_assert!(q.is_empty());
    }
}

/// Starvation regression at the paper's highest smoke load (60 clients,
/// fig 11's right edge), compressed into its worst shape: every client
/// arrives at t=0 and hammers both machines' PS resources, so nearly
/// every completion prediction gets superseded. Two invariants guard
/// against eager-cancel regressing into the old heap's pile-up:
///
/// * the live calendar length peaks at O(clients) — cancelled
///   predictions leave only tombstones, so they never count as live
///   (the heap's length scaled with total event traffic instead);
/// * stale pops stay a bounded fraction of calendar traffic even here,
///   because superseded predictions are usually rescheduled in place at
///   their bucket tail (the real smoke figures sit below 0.1% stale),
///   and the tombstones that do arise are skipped in O(1) at the bucket
///   front rather than percolated through a heap.
#[test]
fn stale_ratio_bounded_at_60_clients() {
    let mut sim = Simulation::new(SimDuration::from_micros(50));
    let web = sim.add_machine("web", 1.0, 100.0);
    let db = sim.add_machine("db", 1.0, 100.0);
    let l = sim.register_lock("t");
    let s = sim.register_semaphore("pool", 8);
    for client in 0..60u64 {
        let mut t = Trace::new();
        t.push(Op::SemAcquire { sem: s });
        // A handful of web<->db round trips per client keeps both PS
        // resources churning: every arrival cancels and re-issues the
        // resource's pending completion prediction.
        for hop in 0..6 {
            t.push(Op::Cpu { machine: web, micros: 120 + client % 17 });
            t.push(Op::Net { from: web, to: db, bytes: 400 + hop * 32 });
            if hop == 2 {
                t.push(Op::Lock { lock: l, mode: LockMode::Exclusive });
                t.push(Op::Cpu { machine: db, micros: 40 });
                t.push(Op::Unlock { lock: l });
            }
            t.push(Op::Cpu { machine: db, micros: 80 + client % 11 });
            t.push(Op::Net { from: db, to: web, bytes: 1_200 });
        }
        t.push(Op::SemRelease { sem: s });
        sim.submit(t, client);
    }
    sim.run_until_idle(&mut NullDriver).unwrap();
    let st = sim.stats();
    assert_eq!(st.completed, 60);
    assert!(st.events > 0);
    // 60 submission events at t=0 plus at most one pending prediction
    // per PS resource (2 machines x cpu+nic) and a little slack.
    assert!(
        st.peak_calendar <= 72,
        "calendar peaked at {} live events for 60 clients — stale \
         predictions are being carried as live entries again",
        st.peak_calendar,
    );
    let ratio = st.stale_events as f64 / st.events as f64;
    assert!(
        ratio < 0.60,
        "stale-pop ratio {ratio:.3} ({} of {} events) — cancelled predictions \
         are piling up in the calendar again",
        st.stale_events,
        st.events,
    );
}
