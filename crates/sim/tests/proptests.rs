//! Property-based tests for the simulation kernel: work conservation and
//! ordering in the processor-sharing resource, mutual exclusion and
//! liveness in the lock manager, end-to-end conservation in the engine,
//! and determinism/leak-freedom under random fault plans.

use dynamid_sim::engine::{Driver, JobAborted, JobDone, NullDriver};
use dynamid_sim::{
    CrashWindow, Degradation, EngineStats, FaultPlan, GrantPolicy, JobId, LatencyHistogram,
    LockManager, LockMode, Op, PsResource, SimDuration, SimTime, Simulation, Trace,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A PS resource completes every job, delivers (almost exactly) the
    /// total demanded service, and completes jobs in virtual-finish order.
    #[test]
    fn ps_conserves_work_and_completes_everything(
        jobs in prop::collection::vec((1u64..5_000, 0u64..2_000), 1..40)
    ) {
        let mut r = PsResource::new("cpu", 1.0);
        let mut now = SimTime::ZERO;
        let mut done = 0usize;
        let mut guard = 0;
        for (i, (demand, gap)) in jobs.iter().enumerate() {
            let arrive = now + SimDuration::from_micros(*gap);
            // Pop completions that fall due before the next arrival, as the
            // engine's calendar would.
            while let Some(t) = r.next_completion(now) {
                guard += 1;
                prop_assert!(guard < 20_000, "did not drain");
                if t > arrive {
                    break;
                }
                now = t;
                done += r.pop_completed(now).len();
            }
            now = arrive;
            r.enqueue(now, JobId(i as u64), *demand as f64);
        }
        while let Some(t) = r.next_completion(now) {
            guard += 1;
            prop_assert!(guard < 20_000, "did not drain");
            now = t;
            done += r.pop_completed(now).len();
            if done == jobs.len() {
                break;
            }
        }
        prop_assert_eq!(done, jobs.len());
        let total: f64 = jobs.iter().map(|(d, _)| *d as f64).sum();
        let s = r.stats();
        // Completion events round up to whole microseconds: allow 1us of
        // overshoot per job.
        prop_assert!(
            (s.work_done - total).abs() <= jobs.len() as f64 + 1.0,
            "work {} vs demand {}", s.work_done, total
        );
        prop_assert_eq!(s.completions, jobs.len() as u64);
        // Busy time can never exceed elapsed time.
        prop_assert!(s.busy_micros <= now.as_micros() as f64 + 1.0);
    }

    /// Lock-manager safety: never a writer together with any other holder,
    /// and every acquire is eventually granted when holders release (no
    /// lost wakeups), under both policies.
    #[test]
    fn lock_manager_exclusion_and_liveness(
        script in prop::collection::vec((0u8..2, 0u8..2), 1..120),
        writer_priority in any::<bool>(),
    ) {
        let policy = if writer_priority {
            GrantPolicy::WriterPriority
        } else {
            GrantPolicy::Fifo
        };
        let mut lm = LockManager::new(policy);
        let l = lm.register_lock("t");
        let mut holders: Vec<(JobId, LockMode)> = Vec::new();
        let mut waiting: Vec<(JobId, LockMode)> = Vec::new();
        let mut next_job = 0u64;
        let mut clock = 0u64;

        let check = |holders: &Vec<(JobId, LockMode)>| {
            let writers = holders.iter().filter(|(_, m)| *m == LockMode::Exclusive).count();
            if writers > 0 {
                prop_assert_eq!(holders.len(), 1, "writer must be alone: {:?}", holders);
            }
            Ok(())
        };

        for (action, mode_pick) in script {
            clock += 1;
            let now = SimTime::from_micros(clock);
            if action == 0 || holders.is_empty() {
                // Acquire.
                let mode = if mode_pick == 0 { LockMode::Shared } else { LockMode::Exclusive };
                let job = JobId(next_job);
                next_job += 1;
                if lm.acquire(now, l, mode, job) {
                    holders.push((job, mode));
                } else {
                    waiting.push((job, mode));
                }
            } else {
                // Release a random-ish holder (front).
                let (job, _) = holders.remove(0);
                let granted = lm.release(now, l, job);
                for g in granted {
                    let pos = waiting
                        .iter()
                        .position(|(j, _)| *j == g)
                        .expect("granted job must have been waiting");
                    let (j, m) = waiting.remove(pos);
                    holders.push((j, m));
                }
            }
            check(&holders)?;
        }
        // Drain: release everything; every waiter must eventually hold.
        let mut guard = 0;
        while !holders.is_empty() {
            guard += 1;
            prop_assert!(guard < 10_000);
            clock += 1;
            let (job, _) = holders.remove(0);
            let granted = lm.release(SimTime::from_micros(clock), l, job);
            for g in granted {
                let pos = waiting.iter().position(|(j, _)| *j == g).expect("waiting");
                let e = waiting.remove(pos);
                holders.push(e);
            }
            check(&holders)?;
        }
        prop_assert!(waiting.is_empty(), "lost wakeups: {waiting:?}");
    }

    /// Engine conservation: every submitted trace completes once the
    /// calendar drains, regardless of structure.
    #[test]
    fn engine_completes_all_jobs(
        specs in prop::collection::vec((1u64..2_000, 0u64..3, any::<bool>()), 1..60)
    ) {
        let mut sim = Simulation::new(SimDuration::from_micros(50));
        let a = sim.add_machine("a", 1.0, 100.0);
        let b = sim.add_machine("b", 1.0, 100.0);
        let l = sim.register_lock("t");
        let s = sim.register_semaphore("pool", 4);
        for (i, (cpu, hops, lock)) in specs.iter().enumerate() {
            let mut t = Trace::new();
            t.push(Op::SemAcquire { sem: s });
            if *lock {
                t.push(Op::Lock { lock: l, mode: LockMode::Exclusive });
            }
            t.push(Op::Cpu { machine: a, micros: *cpu });
            for _ in 0..*hops {
                t.push(Op::Net { from: a, to: b, bytes: 100 + *cpu });
                t.push(Op::Cpu { machine: b, micros: *cpu / 2 + 1 });
                t.push(Op::Net { from: b, to: a, bytes: 64 });
            }
            if *lock {
                t.push(Op::Unlock { lock: l });
            }
            t.push(Op::SemRelease { sem: s });
            prop_assert!(t.check_balanced().is_ok());
            sim.submit(t, i as u64);
        }
        sim.run_until_idle(&mut NullDriver).unwrap();
        prop_assert_eq!(sim.stats().completed, specs.len() as u64);
        prop_assert_eq!(sim.jobs_in_flight(), 0);
    }

    /// Chaos battery: a random `FaultPlan` over a random small workload
    /// must (a) be bit-identically reproducible from the same seed — same
    /// `EngineStats`, same latency histogram, same abort sequence — (b)
    /// leave no lock/semaphore/PS state behind once drained (aborted jobs
    /// release everything), and (c) balance
    /// completed + aborted + rejected == submitted.
    #[test]
    fn fault_plans_are_deterministic_and_leak_free(
        specs in prop::collection::vec((1u64..2_000, 0u64..3, any::<bool>(), 0u64..4), 1..40),
        seed in any::<u64>(),
        fail_millis in 0u32..150,
        crash_at in 100u64..5_000,
        crash_len in 100u64..5_000,
        crash_web in any::<bool>(),
        degrade_pct in 100u32..350,
    ) {
        struct Collect {
            hist: LatencyHistogram,
            aborted: Vec<(u64, dynamid_sim::AbortReason)>,
        }
        impl Driver for Collect {
            fn on_job_complete(&mut self, _s: &mut Simulation, d: JobDone) {
                self.hist.record(d.latency());
            }
            fn on_timer(&mut self, _s: &mut Simulation, _t: u64) {}
            fn on_job_aborted(&mut self, _s: &mut Simulation, info: JobAborted) {
                self.aborted.push((info.tag, info.reason));
            }
        }
        type RunOutcome = (LatencyHistogram, Vec<(u64, dynamid_sim::AbortReason)>, EngineStats);
        let run = || -> Result<RunOutcome, TestCaseError> {
            let mut sim = Simulation::new(SimDuration::from_micros(50));
            let a = sim.add_machine("a", 1.0, 100.0);
            let b = sim.add_machine("b", 1.0, 100.0);
            let l = sim.register_lock("t");
            let s = sim.register_semaphore_bounded("pool", 2, 4);
            sim.install_faults(FaultPlan {
                seed,
                transient_fail_prob: f64::from(fail_millis) / 1_000.0,
                crashes: vec![CrashWindow {
                    machine: if crash_web { a } else { b },
                    at: SimTime::from_micros(crash_at),
                    restart: SimTime::from_micros(crash_at + crash_len),
                }],
                degradations: vec![Degradation {
                    machine: a,
                    from: SimTime::from_micros(crash_at / 2),
                    until: SimTime::from_micros(crash_at + 2 * crash_len),
                    cpu_factor: f64::from(degrade_pct) / 100.0,
                    nic_factor: 1.0 + f64::from(degrade_pct) / 400.0,
                }],
            });
            for (i, (cpu, hops, lock, deadline)) in specs.iter().enumerate() {
                let mut t = Trace::new();
                t.push(Op::SemAcquire { sem: s });
                if *lock {
                    t.push(Op::Lock { lock: l, mode: LockMode::Exclusive });
                }
                t.push(Op::Cpu { machine: a, micros: *cpu });
                for _ in 0..*hops {
                    t.push(Op::Net { from: a, to: b, bytes: 100 + *cpu });
                    t.push(Op::Cpu { machine: b, micros: *cpu / 2 + 1 });
                    t.push(Op::Net { from: b, to: a, bytes: 64 });
                }
                if *lock {
                    t.push(Op::Unlock { lock: l });
                }
                t.push(Op::SemRelease { sem: s });
                if *deadline > 0 {
                    sim.submit_with_deadline(
                        t,
                        i as u64,
                        SimDuration::from_micros(*deadline * 1_500),
                    );
                } else {
                    sim.submit(t, i as u64);
                }
            }
            let mut c = Collect { hist: LatencyHistogram::new(), aborted: Vec::new() };
            sim.run_until_idle(&mut c).expect("well-formed traces");
            let st = sim.stats();
            // (c) conservation: every submission is accounted exactly once.
            prop_assert_eq!(st.submitted, specs.len() as u64);
            prop_assert_eq!(st.completed + st.aborted + st.rejected, st.submitted);
            prop_assert_eq!(sim.jobs_in_flight(), 0);
            // (b) aborted jobs released every lock, semaphore unit, and PS
            // share.
            prop_assert!(sim.leak_report().is_none(), "leak: {:?}", sim.leak_report());
            Ok((c.hist, c.aborted, st))
        };
        // (a) bit-identical replay from the same seed and plan.
        prop_assert_eq!(run()?, run()?);
    }

    /// `LatencyHistogram::merge` is commutative and associative, so the
    /// trace-side and PS-side aggregation paths (which merge per-worker
    /// partials in different orders) can never drift apart.
    #[test]
    fn histogram_merge_is_associative_and_commutative(
        xs in prop::collection::vec(0u64..10_000_000, 0..50),
        ys in prop::collection::vec(0u64..10_000_000, 0..50),
        zs in prop::collection::vec(0u64..10_000_000, 0..50),
    ) {
        let build = |v: &Vec<u64>| {
            let mut h = LatencyHistogram::new();
            for us in v {
                h.record(SimDuration::from_micros(*us));
            }
            h
        };
        let (a, b, c) = (build(&xs), build(&ys), build(&zs));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);
        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(ab_c, a_bc);
    }

    /// Latency sanity: a job's completion is never before its submission
    /// plus its own uncontended demand.
    #[test]
    fn latency_lower_bound(demands in prop::collection::vec(1u64..5_000, 1..30)) {
        struct Collect(Vec<JobDone>);
        impl Driver for Collect {
            fn on_job_complete(&mut self, _s: &mut Simulation, d: JobDone) {
                self.0.push(d);
            }
            fn on_timer(&mut self, _s: &mut Simulation, _t: u64) {}
        }
        let mut sim = Simulation::new(SimDuration::ZERO);
        let m = sim.add_machine("m", 1.0, 100.0);
        let mut expect = Vec::new();
        for (i, d) in demands.iter().enumerate() {
            let t: Trace = [Op::Cpu { machine: m, micros: *d }].into_iter().collect();
            sim.submit(t, i as u64);
            expect.push(*d);
        }
        let mut c = Collect(Vec::new());
        sim.run_until_idle(&mut c).unwrap();
        prop_assert_eq!(c.0.len(), demands.len());
        for d in &c.0 {
            let own = expect[d.tag as usize];
            prop_assert!(
                d.latency().as_micros() + 1 >= own,
                "job {} finished in {} < demand {}",
                d.tag,
                d.latency().as_micros(),
                own
            );
        }
    }
}
