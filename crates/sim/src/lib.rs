//! # dynamid-sim — deterministic discrete-event simulation kernel
//!
//! The substrate under the `dynamid` reproduction of *"Performance
//! Comparison of Middleware Architectures for Generating Dynamic Web
//! Content"* (Cecchet et al., MIDDLEWARE 2003). The paper's findings are all
//! capacity and contention phenomena — CPU saturation, database table-lock
//! queueing, NIC saturation — measured on a small cluster. This crate
//! replaces the cluster with a simulated one:
//!
//! * [`Simulation`] — the event calendar plus machines; every machine has a
//!   processor-sharing CPU and NIC ([`PsResource`]).
//! * [`Trace`]/[`Op`] — the linear resource program one request executes.
//! * [`LockManager`] — queued read/write locks (MyISAM table locks,
//!   container-level application locks) and counting semaphores (the Apache
//!   process pool).
//! * [`Driver`] — the callback interface the client emulator implements.
//! * [`SimRng`] and the metric types keep runs reproducible and measurable.
//!
//! ## Example
//!
//! ```
//! use dynamid_sim::*;
//! use dynamid_sim::engine::NullDriver;
//!
//! let mut sim = Simulation::new(SimDuration::from_micros(100));
//! let web = sim.add_machine("web", 1.0, 100.0);
//! let db = sim.add_machine("db", 1.0, 100.0);
//! let trace: Trace = [
//!     Op::Cpu { machine: web, micros: 300 },
//!     Op::Net { from: web, to: db, bytes: 256 },
//!     Op::Cpu { machine: db, micros: 1_200 },
//!     Op::Net { from: db, to: web, bytes: 2_048 },
//! ].into_iter().collect();
//! sim.submit(trace, 0);
//! sim.run(SimTime::from_micros(1_000_000), &mut NullDriver).unwrap();
//! assert_eq!(sim.stats().completed, 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod calendar;
pub mod engine;
pub mod fault;
pub mod lock;
pub mod metrics;
pub mod op;
pub mod ps;
pub mod rng;
pub mod time;
pub mod trace;

pub use engine::{
    AbortReason, Driver, EngineStats, JobAborted, JobDone, JobId, MachineId, SimError,
    SimErrorKind, Simulation,
};
pub use fault::{CrashWindow, Degradation, FaultPlan};
pub use lock::{GrantPolicy, LockId, LockManager, LockMode, LockStats, SemGrant, SemaphoreId};
pub use metrics::{ErrorCounters, LatencyHistogram, WindowSnapshot};
pub use op::{Op, Trace};
pub use ps::{PsResource, PsStats};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
pub use trace::{Activity, IntervalColumns, OpInterval, TraceRecorder};
