//! Queued read/write locks and counting semaphores.
//!
//! The database's MyISAM-style **table locks** and the servlet container's
//! **application-level locks** (the paper's "sync" configurations) are both
//! instances of the read/write lock implemented here; the Apache process
//! pool is a counting semaphore. Jobs that cannot be granted a lock are
//! parked by the engine and resumed when the release path grants them, so
//! lock *queueing delay* is a first-class part of simulated response time —
//! this is what produces the paper's lock-contention plateaus and dips.

use crate::engine::JobId;
use crate::time::SimTime;
use std::collections::{HashMap, VecDeque};
use std::fmt;

/// Identifies a lock registered with a [`LockManager`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LockId(pub u32);

/// Identifies a semaphore registered with a [`LockManager`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SemaphoreId(pub u32);

/// Lock compatibility mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockMode {
    /// Shared (read) access: compatible with other shared holders.
    Shared,
    /// Exclusive (write) access: compatible with nothing.
    Exclusive,
}

impl fmt::Display for LockMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockMode::Shared => write!(f, "READ"),
            LockMode::Exclusive => write!(f, "WRITE"),
        }
    }
}

/// How waiting requests are granted on release.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GrantPolicy {
    /// Strict arrival order; a shared request queues behind an earlier
    /// exclusive request.
    Fifo,
    /// MySQL/MyISAM semantics: waiting writers are preferred over waiting
    /// and newly arriving readers.
    #[default]
    WriterPriority,
}

/// Outcome of a semaphore acquisition attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SemGrant {
    /// A unit was granted immediately.
    Granted,
    /// No unit was free; the job is queued and will be handed one by a
    /// later [`LockManager::sem_release`].
    Queued,
    /// The semaphore is bounded and its wait queue is full: the request is
    /// refused outright (admission control sheds the job instead of letting
    /// the queue grow without bound).
    Rejected,
}

/// Cumulative per-lock statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LockStats {
    /// Requests granted immediately.
    pub immediate_grants: u64,
    /// Requests that had to wait.
    pub contended: u64,
    /// Requests refused because a bounded wait queue was full (semaphores
    /// with an admission bound only).
    pub rejected: u64,
    /// Total microseconds spent waiting, summed over jobs.
    pub wait_micros: u64,
    /// Total microseconds locks were held, summed over holders.
    pub hold_micros: u64,
    /// Largest observed wait-queue length.
    pub max_queue: usize,
}

#[derive(Debug)]
struct LockState {
    name: String,
    readers: Vec<JobId>,
    writer: Option<JobId>,
    queue: VecDeque<(JobId, LockMode, SimTime)>,
    granted_at: HashMap<JobId, SimTime>,
    stats: LockStats,
}

impl LockState {
    fn is_free(&self) -> bool {
        self.readers.is_empty() && self.writer.is_none()
    }

    fn writer_waiting(&self) -> bool {
        self.queue.iter().any(|(_, m, _)| *m == LockMode::Exclusive)
    }

    fn record_grant(&mut self, now: SimTime, job: JobId) {
        self.granted_at.insert(job, now);
    }
}

#[derive(Debug)]
struct Semaphore {
    name: String,
    capacity: u32,
    in_use: u32,
    /// Admission bound: when `Some(n)`, at most `n` jobs may wait; further
    /// acquisitions are rejected instead of queued.
    max_waiters: Option<u32>,
    queue: VecDeque<(JobId, SimTime)>,
    stats: LockStats,
}

/// Registry and grant engine for all locks and semaphores in a simulation.
///
/// ```
/// use dynamid_sim::{LockManager, LockMode, SimTime};
/// use dynamid_sim::engine::JobId;
/// let mut lm = LockManager::default();
/// let l = lm.register_lock("items");
/// assert!(lm.acquire(SimTime::ZERO, l, LockMode::Exclusive, JobId(1)));
/// assert!(!lm.acquire(SimTime::ZERO, l, LockMode::Shared, JobId(2)));
/// let granted = lm.release(SimTime::from_micros(10), l, JobId(1));
/// assert_eq!(granted, vec![JobId(2)]);
/// ```
#[derive(Debug, Default)]
pub struct LockManager {
    locks: Vec<LockState>,
    sems: Vec<Semaphore>,
    policy: GrantPolicy,
}

impl LockManager {
    /// Creates a manager with the given grant policy.
    pub fn new(policy: GrantPolicy) -> Self {
        LockManager { locks: Vec::new(), sems: Vec::new(), policy }
    }

    /// The grant policy in effect.
    pub fn policy(&self) -> GrantPolicy {
        self.policy
    }

    /// Registers a named read/write lock and returns its id.
    pub fn register_lock(&mut self, name: impl Into<String>) -> LockId {
        let id = LockId(self.locks.len() as u32);
        self.locks.push(LockState {
            name: name.into(),
            readers: Vec::new(),
            writer: None,
            queue: VecDeque::new(),
            granted_at: HashMap::new(),
            stats: LockStats::default(),
        });
        id
    }

    /// Registers a counting semaphore with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn register_semaphore(&mut self, name: impl Into<String>, capacity: u32) -> SemaphoreId {
        self.register_sem_inner(name.into(), capacity, None)
    }

    /// Registers a counting semaphore whose wait queue is bounded: when
    /// `max_waiters` jobs are already queued, further acquisitions are
    /// [`SemGrant::Rejected`] instead of queued. This is the admission-control
    /// primitive behind per-tier accept queues.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn register_semaphore_bounded(
        &mut self,
        name: impl Into<String>,
        capacity: u32,
        max_waiters: u32,
    ) -> SemaphoreId {
        self.register_sem_inner(name.into(), capacity, Some(max_waiters))
    }

    fn register_sem_inner(
        &mut self,
        name: String,
        capacity: u32,
        max_waiters: Option<u32>,
    ) -> SemaphoreId {
        assert!(capacity > 0, "semaphore capacity must be positive");
        let id = SemaphoreId(self.sems.len() as u32);
        self.sems.push(Semaphore {
            name,
            capacity,
            in_use: 0,
            max_waiters,
            queue: VecDeque::new(),
            stats: LockStats::default(),
        });
        id
    }

    /// Number of registered locks.
    pub fn lock_count(&self) -> usize {
        self.locks.len()
    }

    /// The display name of a lock.
    pub fn lock_name(&self, lock: LockId) -> &str {
        &self.locks[lock.0 as usize].name
    }

    /// Statistics for a lock.
    pub fn lock_stats(&self, lock: LockId) -> LockStats {
        self.locks[lock.0 as usize].stats
    }

    /// The display name of a semaphore.
    pub fn semaphore_name(&self, sem: SemaphoreId) -> &str {
        &self.sems[sem.0 as usize].name
    }

    /// Statistics for a semaphore.
    pub fn semaphore_stats(&self, sem: SemaphoreId) -> LockStats {
        self.sems[sem.0 as usize].stats
    }

    /// Aggregate statistics over all locks (not semaphores).
    pub fn total_lock_stats(&self) -> LockStats {
        let mut agg = LockStats::default();
        for l in &self.locks {
            agg.immediate_grants += l.stats.immediate_grants;
            agg.contended += l.stats.contended;
            agg.wait_micros += l.stats.wait_micros;
            agg.hold_micros += l.stats.hold_micros;
            agg.max_queue = agg.max_queue.max(l.stats.max_queue);
        }
        agg
    }

    /// Requests `lock` in `mode` for `job`. Returns `true` when granted
    /// immediately; otherwise the job is queued and will be returned by a
    /// later [`release`](LockManager::release).
    ///
    /// # Panics
    ///
    /// Panics if the job already holds or is already waiting for this lock
    /// (the middleware layer never issues re-entrant table locks).
    pub fn acquire(&mut self, now: SimTime, lock: LockId, mode: LockMode, job: JobId) -> bool {
        let policy = self.policy;
        let st = &mut self.locks[lock.0 as usize];
        assert!(
            st.writer != Some(job)
                && !st.readers.contains(&job)
                && !st.queue.iter().any(|(j, _, _)| *j == job),
            "job {job:?} re-requested lock {}",
            st.name
        );
        let grantable = match mode {
            LockMode::Shared => {
                st.writer.is_none()
                    && match policy {
                        GrantPolicy::Fifo => st.queue.is_empty(),
                        GrantPolicy::WriterPriority => !st.writer_waiting(),
                    }
            }
            LockMode::Exclusive => st.is_free() && st.queue.is_empty(),
        };
        if grantable {
            match mode {
                LockMode::Shared => st.readers.push(job),
                LockMode::Exclusive => st.writer = Some(job),
            }
            st.record_grant(now, job);
            st.stats.immediate_grants += 1;
            true
        } else {
            st.queue.push_back((job, mode, now));
            st.stats.contended += 1;
            st.stats.max_queue = st.stats.max_queue.max(st.queue.len());
            false
        }
    }

    /// Releases `lock` held by `job` and grants waiting requests according
    /// to the policy. Returns the jobs granted by this release, in grant
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if the job does not hold the lock.
    pub fn release(&mut self, now: SimTime, lock: LockId, job: JobId) -> Vec<JobId> {
        let policy = self.policy;
        let st = &mut self.locks[lock.0 as usize];
        if st.writer == Some(job) {
            st.writer = None;
        } else if let Some(pos) = st.readers.iter().position(|j| *j == job) {
            st.readers.swap_remove(pos);
        } else {
            panic!("job {job:?} released lock {} it does not hold", st.name);
        }
        if let Some(granted) = st.granted_at.remove(&job) {
            st.stats.hold_micros += now.duration_since(granted).as_micros();
        }
        Self::grant_waiters(st, policy, now)
    }

    fn grant_waiters(st: &mut LockState, policy: GrantPolicy, now: SimTime) -> Vec<JobId> {
        let mut granted = Vec::new();
        loop {
            // Pick the next candidate position according to the policy.
            let candidate = match policy {
                GrantPolicy::Fifo => {
                    if st.queue.is_empty() {
                        None
                    } else {
                        Some(0)
                    }
                }
                GrantPolicy::WriterPriority => {
                    let writer_pos =
                        st.queue.iter().position(|(_, m, _)| *m == LockMode::Exclusive);
                    match writer_pos {
                        Some(p) if st.is_free() => Some(p),
                        // A writer waits but the lock is not free: nothing
                        // can be granted (readers would starve the writer).
                        Some(_) => None,
                        // No writer waiting: grant readers from the front.
                        None => {
                            if st.queue.is_empty() {
                                None
                            } else {
                                Some(0)
                            }
                        }
                    }
                }
            };
            let Some(pos) = candidate else { break };
            let (job, mode, since) = st.queue[pos];
            let ok = match mode {
                LockMode::Shared => st.writer.is_none(),
                LockMode::Exclusive => st.is_free(),
            };
            if !ok {
                break;
            }
            st.queue.remove(pos);
            match mode {
                LockMode::Shared => st.readers.push(job),
                LockMode::Exclusive => st.writer = Some(job),
            }
            st.stats.wait_micros += now.duration_since(since).as_micros();
            st.record_grant(now, job);
            granted.push(job);
            if mode == LockMode::Exclusive {
                break;
            }
        }
        granted
    }

    /// `true` if the lock currently has any holder.
    pub fn is_held(&self, lock: LockId) -> bool {
        !self.locks[lock.0 as usize].is_free()
    }

    /// Number of jobs waiting on the lock.
    pub fn queue_len(&self, lock: LockId) -> usize {
        self.locks[lock.0 as usize].queue.len()
    }

    /// Requests one unit of `sem` for `job`. The job queues when no unit is
    /// free, unless the semaphore is bounded and its queue is full, in which
    /// case the request is rejected outright.
    pub fn sem_acquire(&mut self, now: SimTime, sem: SemaphoreId, job: JobId) -> SemGrant {
        let s = &mut self.sems[sem.0 as usize];
        if s.in_use < s.capacity {
            s.in_use += 1;
            s.stats.immediate_grants += 1;
            SemGrant::Granted
        } else if s.max_waiters.is_some_and(|max| s.queue.len() >= max as usize) {
            s.stats.rejected += 1;
            SemGrant::Rejected
        } else {
            s.queue.push_back((job, now));
            s.stats.contended += 1;
            s.stats.max_queue = s.stats.max_queue.max(s.queue.len());
            SemGrant::Queued
        }
    }

    /// Releases one unit of `sem`; returns the job granted by this release,
    /// if any.
    ///
    /// # Panics
    ///
    /// Panics if the semaphore has no units in use.
    pub fn sem_release(&mut self, now: SimTime, sem: SemaphoreId) -> Option<JobId> {
        let s = &mut self.sems[sem.0 as usize];
        assert!(s.in_use > 0, "semaphore {} over-released", s.name);
        if let Some((job, since)) = s.queue.pop_front() {
            // Hand the unit directly to the waiter.
            s.stats.wait_micros += now.duration_since(since).as_micros();
            Some(job)
        } else {
            s.in_use -= 1;
            None
        }
    }

    /// Units of the semaphore currently in use.
    pub fn sem_in_use(&self, sem: SemaphoreId) -> u32 {
        self.sems[sem.0 as usize].in_use
    }

    /// `true` if `job` currently holds `lock` (as reader or writer).
    pub fn holds(&self, lock: LockId, job: JobId) -> bool {
        let st = &self.locks[lock.0 as usize];
        st.writer == Some(job) || st.readers.contains(&job)
    }

    /// Every current holder of `lock`: the writer, or the readers in
    /// acquisition order. Deterministic — deadlock detection walks these
    /// edges and its victim choice must not depend on hash order.
    pub fn holders(&self, lock: LockId) -> Vec<JobId> {
        let st = &self.locks[lock.0 as usize];
        st.writer.into_iter().chain(st.readers.iter().copied()).collect()
    }

    /// The lock `job` is currently queued on, if any. A job waits on at
    /// most one lock at a time (traces are linear).
    pub fn waiting_on(&self, job: JobId) -> Option<LockId> {
        self.locks.iter().enumerate().find_map(|(i, st)| {
            st.queue.iter().any(|(j, _, _)| *j == job).then_some(LockId(i as u32))
        })
    }

    /// `true` if `job` holds `lock` or is queued waiting for it.
    pub fn is_holder_or_waiter(&self, lock: LockId, job: JobId) -> bool {
        self.holds(lock, job) || self.locks[lock.0 as usize].queue.iter().any(|(j, _, _)| *j == job)
    }

    /// Removes `job` from `lock`'s wait queue (abort path). Removing a
    /// waiter can make the lock grantable to jobs queued behind it (e.g., a
    /// cancelled writer was blocking readers), so this runs the grant pass
    /// and returns any jobs granted as a result. Returns an empty vec when
    /// the job was not waiting.
    pub fn cancel_waiting(&mut self, now: SimTime, lock: LockId, job: JobId) -> Vec<JobId> {
        let policy = self.policy;
        let st = &mut self.locks[lock.0 as usize];
        let Some(pos) = st.queue.iter().position(|(j, _, _)| *j == job) else {
            return Vec::new();
        };
        st.queue.remove(pos);
        Self::grant_waiters(st, policy, now)
    }

    /// Removes `job` from `sem`'s wait queue (abort path). Returns `true`
    /// if the job was waiting. Removing a waiter never grants anyone (units
    /// are handed out on release only).
    pub fn sem_cancel_waiting(&mut self, sem: SemaphoreId, job: JobId) -> bool {
        let s = &mut self.sems[sem.0 as usize];
        if let Some(pos) = s.queue.iter().position(|(j, _)| *j == job) {
            s.queue.remove(pos);
            true
        } else {
            false
        }
    }

    /// `true` if releasing one unit of `sem` is currently legal (at least
    /// one unit is in use). Used by the engine to surface a structured error
    /// instead of panicking on a malformed trace.
    pub fn sem_can_release(&self, sem: SemaphoreId) -> bool {
        self.sems[sem.0 as usize].in_use > 0
    }

    /// Describes any lock or semaphore state that should not survive a
    /// drained simulation — a held lock, a queued waiter, or a semaphore
    /// unit still in use. Returns `None` when everything is quiescent.
    /// Aborted jobs must leave no trace here.
    pub fn leak_report(&self) -> Option<String> {
        for st in &self.locks {
            if !st.is_free() {
                return Some(format!(
                    "lock {} still held (writer {:?}, {} readers)",
                    st.name,
                    st.writer,
                    st.readers.len()
                ));
            }
            if !st.queue.is_empty() {
                return Some(format!("lock {} has {} stranded waiters", st.name, st.queue.len()));
            }
        }
        for s in &self.sems {
            if s.in_use > 0 {
                return Some(format!("semaphore {} has {} leaked units", s.name, s.in_use));
            }
            if !s.queue.is_empty() {
                return Some(format!(
                    "semaphore {} has {} stranded waiters",
                    s.name,
                    s.queue.len()
                ));
            }
        }
        None
    }

    /// `true` when no lock is held or waited on and no semaphore unit is in
    /// use — the expected state after a drained run with aborts.
    pub fn is_quiescent(&self) -> bool {
        self.leak_report().is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(micros: u64) -> SimTime {
        SimTime::from_micros(micros)
    }

    #[test]
    fn shared_locks_coexist() {
        let mut lm = LockManager::default();
        let l = lm.register_lock("t");
        assert!(lm.acquire(t(0), l, LockMode::Shared, JobId(1)));
        assert!(lm.acquire(t(0), l, LockMode::Shared, JobId(2)));
        assert!(lm.is_held(l));
        assert!(lm.release(t(5), l, JobId(1)).is_empty());
        assert!(lm.release(t(9), l, JobId(2)).is_empty());
        assert!(!lm.is_held(l));
        let s = lm.lock_stats(l);
        assert_eq!(s.immediate_grants, 2);
        assert_eq!(s.hold_micros, 5 + 9);
    }

    #[test]
    fn exclusive_excludes_everyone() {
        let mut lm = LockManager::default();
        let l = lm.register_lock("t");
        assert!(lm.acquire(t(0), l, LockMode::Exclusive, JobId(1)));
        assert!(!lm.acquire(t(1), l, LockMode::Shared, JobId(2)));
        assert!(!lm.acquire(t(2), l, LockMode::Exclusive, JobId(3)));
        assert_eq!(lm.queue_len(l), 2);
    }

    #[test]
    fn fifo_grants_in_arrival_order() {
        let mut lm = LockManager::new(GrantPolicy::Fifo);
        let l = lm.register_lock("t");
        assert!(lm.acquire(t(0), l, LockMode::Exclusive, JobId(1)));
        assert!(!lm.acquire(t(1), l, LockMode::Shared, JobId(2)));
        assert!(!lm.acquire(t(2), l, LockMode::Exclusive, JobId(3)));
        assert!(!lm.acquire(t(3), l, LockMode::Shared, JobId(4)));
        // Release grants the head (shared J2) only, because J3 (exclusive)
        // is next and blocks J4.
        assert_eq!(lm.release(t(10), l, JobId(1)), vec![JobId(2)]);
        assert_eq!(lm.release(t(20), l, JobId(2)), vec![JobId(3)]);
        assert_eq!(lm.release(t(30), l, JobId(3)), vec![JobId(4)]);
    }

    #[test]
    fn writer_priority_prefers_writers() {
        let mut lm = LockManager::new(GrantPolicy::WriterPriority);
        let l = lm.register_lock("t");
        assert!(lm.acquire(t(0), l, LockMode::Exclusive, JobId(1)));
        assert!(!lm.acquire(t(1), l, LockMode::Shared, JobId(2)));
        assert!(!lm.acquire(t(2), l, LockMode::Exclusive, JobId(3)));
        // The waiting writer J3 jumps ahead of the earlier reader J2.
        assert_eq!(lm.release(t(10), l, JobId(1)), vec![JobId(3)]);
        assert_eq!(lm.release(t(20), l, JobId(3)), vec![JobId(2)]);
    }

    #[test]
    fn writer_priority_blocks_new_readers_when_writer_waits() {
        let mut lm = LockManager::new(GrantPolicy::WriterPriority);
        let l = lm.register_lock("t");
        assert!(lm.acquire(t(0), l, LockMode::Shared, JobId(1)));
        assert!(!lm.acquire(t(1), l, LockMode::Exclusive, JobId(2)));
        // A new reader must queue behind the waiting writer.
        assert!(!lm.acquire(t(2), l, LockMode::Shared, JobId(3)));
        assert_eq!(lm.release(t(10), l, JobId(1)), vec![JobId(2)]);
        assert_eq!(lm.release(t(20), l, JobId(2)), vec![JobId(3)]);
    }

    #[test]
    fn release_grants_batch_of_readers() {
        let mut lm = LockManager::new(GrantPolicy::Fifo);
        let l = lm.register_lock("t");
        assert!(lm.acquire(t(0), l, LockMode::Exclusive, JobId(1)));
        for j in 2..=4 {
            assert!(!lm.acquire(t(j), l, LockMode::Shared, JobId(j)));
        }
        let granted = lm.release(t(10), l, JobId(1));
        assert_eq!(granted, vec![JobId(2), JobId(3), JobId(4)]);
    }

    #[test]
    fn wait_time_is_accounted() {
        let mut lm = LockManager::default();
        let l = lm.register_lock("t");
        assert!(lm.acquire(t(0), l, LockMode::Exclusive, JobId(1)));
        assert!(!lm.acquire(t(100), l, LockMode::Exclusive, JobId(2)));
        lm.release(t(400), l, JobId(1));
        assert_eq!(lm.lock_stats(l).wait_micros, 300);
        assert_eq!(lm.lock_stats(l).contended, 1);
    }

    #[test]
    #[should_panic(expected = "does not hold")]
    fn release_without_hold_panics() {
        let mut lm = LockManager::default();
        let l = lm.register_lock("t");
        lm.release(t(0), l, JobId(1));
    }

    #[test]
    #[should_panic(expected = "re-requested")]
    fn reentrant_acquire_panics() {
        let mut lm = LockManager::default();
        let l = lm.register_lock("t");
        assert!(lm.acquire(t(0), l, LockMode::Shared, JobId(1)));
        lm.acquire(t(1), l, LockMode::Shared, JobId(1));
    }

    #[test]
    fn semaphore_caps_concurrency() {
        let mut lm = LockManager::default();
        let s = lm.register_semaphore("httpd", 2);
        assert_eq!(lm.sem_acquire(t(0), s, JobId(1)), SemGrant::Granted);
        assert_eq!(lm.sem_acquire(t(0), s, JobId(2)), SemGrant::Granted);
        assert_eq!(lm.sem_acquire(t(1), s, JobId(3)), SemGrant::Queued);
        assert_eq!(lm.sem_in_use(s), 2);
        // Releasing hands the unit to the waiter directly.
        assert_eq!(lm.sem_release(t(5), s), Some(JobId(3)));
        assert_eq!(lm.sem_in_use(s), 2);
        assert_eq!(lm.sem_release(t(6), s), None);
        assert_eq!(lm.sem_release(t(7), s), None);
        assert_eq!(lm.sem_in_use(s), 0);
        assert_eq!(lm.semaphore_stats(s).wait_micros, 4);
    }

    #[test]
    fn bounded_semaphore_rejects_when_queue_full() {
        let mut lm = LockManager::default();
        let s = lm.register_semaphore_bounded("accept", 1, 1);
        assert_eq!(lm.sem_acquire(t(0), s, JobId(1)), SemGrant::Granted);
        assert_eq!(lm.sem_acquire(t(0), s, JobId(2)), SemGrant::Queued);
        // Queue bound of 1 is reached: the third request is shed.
        assert_eq!(lm.sem_acquire(t(1), s, JobId(3)), SemGrant::Rejected);
        assert_eq!(lm.semaphore_stats(s).rejected, 1);
        // A rejection leaves no state behind: release hands the unit to the
        // one legitimate waiter, then the pool drains clean.
        assert_eq!(lm.sem_release(t(5), s), Some(JobId(2)));
        assert_eq!(lm.sem_release(t(6), s), None);
        assert!(lm.is_quiescent());
    }

    #[test]
    fn zero_queue_bound_rejects_any_overflow() {
        let mut lm = LockManager::default();
        let s = lm.register_semaphore_bounded("accept", 1, 0);
        assert_eq!(lm.sem_acquire(t(0), s, JobId(1)), SemGrant::Granted);
        assert_eq!(lm.sem_acquire(t(0), s, JobId(2)), SemGrant::Rejected);
    }

    #[test]
    fn cancel_waiting_writer_unblocks_readers() {
        let mut lm = LockManager::new(GrantPolicy::WriterPriority);
        let l = lm.register_lock("t");
        assert!(lm.acquire(t(0), l, LockMode::Shared, JobId(1)));
        // A waiting writer blocks new readers under writer priority.
        assert!(!lm.acquire(t(1), l, LockMode::Exclusive, JobId(2)));
        assert!(!lm.acquire(t(2), l, LockMode::Shared, JobId(3)));
        // Aborting the writer must re-run the grant pass so the stranded
        // reader joins the current read crowd immediately.
        assert_eq!(lm.cancel_waiting(t(3), l, JobId(2)), vec![JobId(3)]);
        assert!(lm.holds(l, JobId(3)));
        lm.release(t(4), l, JobId(1));
        lm.release(t(5), l, JobId(3));
        assert!(lm.is_quiescent());
    }

    #[test]
    fn cancel_waiting_absent_job_is_noop() {
        let mut lm = LockManager::default();
        let l = lm.register_lock("t");
        assert!(lm.cancel_waiting(t(0), l, JobId(9)).is_empty());
        let s = lm.register_semaphore("p", 1);
        assert!(!lm.sem_cancel_waiting(s, JobId(9)));
    }

    #[test]
    fn holder_and_waiter_queries() {
        let mut lm = LockManager::default();
        let l = lm.register_lock("t");
        assert!(lm.acquire(t(0), l, LockMode::Exclusive, JobId(1)));
        assert!(!lm.acquire(t(1), l, LockMode::Shared, JobId(2)));
        assert!(lm.holds(l, JobId(1)));
        assert!(!lm.holds(l, JobId(2)));
        assert!(lm.is_holder_or_waiter(l, JobId(2)));
        assert!(!lm.is_holder_or_waiter(l, JobId(3)));
    }

    #[test]
    fn leak_report_flags_held_state() {
        let mut lm = LockManager::default();
        let l = lm.register_lock("t");
        assert!(lm.is_quiescent());
        assert!(lm.acquire(t(0), l, LockMode::Exclusive, JobId(1)));
        assert!(lm.leak_report().unwrap().contains("still held"));
        lm.release(t(1), l, JobId(1));
        let s = lm.register_semaphore("p", 1);
        assert_eq!(lm.sem_acquire(t(2), s, JobId(1)), SemGrant::Granted);
        assert!(lm.leak_report().unwrap().contains("leaked units"));
        lm.sem_release(t(3), s);
        assert!(lm.is_quiescent());
    }

    #[test]
    #[should_panic(expected = "over-released")]
    fn semaphore_over_release_panics() {
        let mut lm = LockManager::default();
        let s = lm.register_semaphore("x", 1);
        lm.sem_release(t(0), s);
    }

    #[test]
    fn aggregate_stats_roll_up() {
        let mut lm = LockManager::default();
        let a = lm.register_lock("a");
        let b = lm.register_lock("b");
        assert!(lm.acquire(t(0), a, LockMode::Exclusive, JobId(1)));
        assert!(lm.acquire(t(0), b, LockMode::Exclusive, JobId(2)));
        assert!(!lm.acquire(t(1), a, LockMode::Shared, JobId(3)));
        lm.release(t(10), a, JobId(1));
        lm.release(t(10), b, JobId(2));
        let s = lm.total_lock_stats();
        assert_eq!(s.immediate_grants, 2);
        assert_eq!(s.contended, 1);
        assert_eq!(s.hold_micros, 20);
    }
}
