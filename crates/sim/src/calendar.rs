//! Two-level calendar queue: the event structure behind [`Simulation`].
//!
//! The engine's event calendar was originally a `BinaryHeap<Reverse<_>>`,
//! which costs `O(log n)` per operation and — worse — carries every stale
//! processor-sharing prediction until its turn comes up, so under load the
//! heap is mostly garbage and live events starve behind it. This module
//! replaces it with a bucketed timer wheel keyed on the integer-microsecond
//! [`SimTime`]:
//!
//! * **Level 0** — one bucket per microsecond over a 2048 µs window.
//!   Scheduling into the window and popping the front are O(1).
//! * **Level 1** — 2048 slots of 2048 µs each (≈4.3 s). When level 0
//!   drains, the next occupied slot is scattered into level 0.
//! * **Overflow** — a `BTreeMap` for the far future (rare: long deadlines
//!   and end-of-run timers).
//!
//! Occupancy bitmaps (one bit per bucket/slot) make "next non-empty
//! bucket" a handful of word scans.
//!
//! Events live in a generational slot-map, so [`CalendarQueue::cancel`] is
//! O(1): it frees the arena slot and bumps its generation, leaving the
//! bucket reference behind as a tombstone that the pop path skips (and
//! counts, see [`CalendarQueue::stale_popped`]). The engine uses this to
//! retire superseded PS completion predictions instead of letting them
//! pile up. When the superseded prediction still sits at its bucket tail
//! — the common case, since predictions are re-issued right after being
//! scheduled — [`CalendarQueue::reschedule`] moves it in O(1) and leaves
//! no tombstone at all.
//!
//! **Ordering contract**: pops come out in exactly the order the old
//! binary heap produced — ascending `(time, schedule-sequence)`. Within a
//! bucket (one microsecond) FIFO order *is* schedule order; the transfer
//! chain (overflow → level 1 → level 0) always appends in stored order, so
//! two events for the same microsecond can never swap places no matter
//! which levels they traveled through. `tests/calendar_oracle.rs` checks
//! this against a retained `BinaryHeap` oracle under randomized
//! schedule/cancel workloads.
//!
//! [`Simulation`]: crate::engine::Simulation

use crate::time::SimTime;
use std::collections::{BTreeMap, VecDeque};

/// Microseconds covered by level 0 (one bucket each).
const L0_SPAN: u64 = 2048;
/// Microseconds covered by one level-1 slot.
const L1_SLOT: u64 = L0_SPAN;
/// Microseconds covered by all of level 1.
const L1_SPAN: u64 = L1_SLOT * L0_SPAN;
/// Words in an occupancy bitmap.
const WORDS: usize = (L0_SPAN as usize) / 64;

/// Handle to a scheduled event, valid until it pops or is cancelled. The
/// generation makes a handle to a completed event harmlessly stale instead
/// of aliasing whatever reused its arena slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventId {
    idx: u32,
    gen: u32,
}

/// Arena slot. `gen` is bumped on free, invalidating outstanding
/// `EventId`s and bucket references that still name this slot.
#[derive(Debug)]
struct Slot<T> {
    gen: u32,
    at: u64,
    payload: Option<T>,
}

/// Reference stored in a bucket: arena index plus the generation it was
/// scheduled under.
type Ref = (u32, u32);

/// The two-level calendar queue. See the module docs for the design.
#[derive(Debug)]
pub struct CalendarQueue<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    /// One bucket per microsecond of `[l0_start, l0_start + L0_SPAN)`.
    l0: Vec<VecDeque<Ref>>,
    l0_occ: [u64; WORDS],
    l0_start: u64,
    /// One slot per `L1_SLOT` microseconds of `[l1_start, l1_start + L1_SPAN)`.
    l1: Vec<Vec<Ref>>,
    l1_occ: [u64; WORDS],
    l1_start: u64,
    overflow: BTreeMap<u64, Vec<Ref>>,
    live: usize,
    peak_live: usize,
    stale_popped: u64,
}

fn bit_set(bits: &mut [u64; WORDS], i: usize) {
    bits[i / 64] |= 1 << (i % 64);
}

fn bit_clear(bits: &mut [u64; WORDS], i: usize) {
    bits[i / 64] &= !(1 << (i % 64));
}

fn first_bit(bits: &[u64; WORDS]) -> Option<usize> {
    bits.iter()
        .enumerate()
        .find(|(_, w)| **w != 0)
        .map(|(i, w)| i * 64 + w.trailing_zeros() as usize)
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> CalendarQueue<T> {
    /// An empty calendar starting at time zero.
    pub fn new() -> Self {
        CalendarQueue {
            slots: Vec::new(),
            free: Vec::new(),
            l0: (0..L0_SPAN).map(|_| VecDeque::new()).collect(),
            l0_occ: [0; WORDS],
            l0_start: 0,
            l1: (0..L0_SPAN).map(|_| Vec::new()).collect(),
            l1_occ: [0; WORDS],
            l1_start: 0,
            overflow: BTreeMap::new(),
            live: 0,
            peak_live: 0,
            stale_popped: 0,
        }
    }

    /// Number of live (scheduled, not cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// High-water mark of [`len`](Self::len) over the queue's lifetime.
    pub fn peak_len(&self) -> usize {
        self.peak_live
    }

    /// Tombstoned references discarded so far: events that were cancelled
    /// and later reached the pop or scatter path.
    pub fn stale_popped(&self) -> u64 {
        self.stale_popped
    }

    /// Schedules `payload` at `at`. Events at the same instant pop in
    /// schedule order.
    ///
    /// `at` must not precede the time of the last popped event (the engine
    /// never schedules into the past); violating this corrupts ordering.
    pub fn schedule(&mut self, at: SimTime, payload: T) -> EventId {
        let t = at.as_micros();
        let idx = match self.free.pop() {
            Some(idx) => {
                let slot = &mut self.slots[idx as usize];
                slot.at = t;
                slot.payload = Some(payload);
                idx
            }
            None => {
                self.slots.push(Slot { gen: 0, at: t, payload: Some(payload) });
                (self.slots.len() - 1) as u32
            }
        };
        let gen = self.slots[idx as usize].gen;
        self.place((idx, gen), t);
        self.live += 1;
        self.peak_live = self.peak_live.max(self.live);
        EventId { idx, gen }
    }

    /// Routes a reference to the level containing its time.
    fn place(&mut self, r: Ref, t: u64) {
        if t < self.l0_start + L0_SPAN {
            debug_assert!(t >= self.l0_start, "event before the level-0 window");
            let b = (t - self.l0_start) as usize;
            self.l0[b].push_back(r);
            bit_set(&mut self.l0_occ, b);
        } else if t < self.l1_start + L1_SPAN {
            let s = ((t - self.l1_start) / L1_SLOT) as usize;
            self.l1[s].push(r);
            bit_set(&mut self.l1_occ, s);
        } else {
            self.overflow.entry(t).or_default().push(r);
        }
    }

    /// Cancels a scheduled event in O(1). Returns `false` when the event
    /// already popped or was cancelled (stale handle). The bucket keeps a
    /// tombstone that is skipped — and counted — when reached.
    pub fn cancel(&mut self, id: EventId) -> bool {
        match self.slots.get_mut(id.idx as usize) {
            Some(slot) if slot.gen == id.gen => {
                slot.gen = slot.gen.wrapping_add(1);
                slot.payload = None;
                self.free.push(id.idx);
                self.live -= 1;
                true
            }
            _ => false,
        }
    }

    /// Moves a live event to `at` with a new payload, keeping `id` valid
    /// and leaving no tombstone, when doing so is indistinguishable from
    /// [`cancel`](Self::cancel) + [`schedule`](Self::schedule): the
    /// reference must be the **tail of its bucket**, so it can be removed
    /// in O(1) and re-placed at the target bucket's tail — exactly where a
    /// fresh schedule would append it. Returns `false` — touching nothing
    /// — for a mid-bucket reference or a stale handle; the caller falls
    /// back to cancel + schedule.
    ///
    /// `at` obeys the same contract as [`schedule`](Self::schedule): it
    /// must not precede the time of the last popped event.
    ///
    /// This is the hot path for processor-sharing completion predictions,
    /// which are superseded on every enqueue to the same resource — being
    /// the most recent schedule they usually sit at their bucket tail, and
    /// would otherwise each leave a tombstone behind (see
    /// [`stale_popped`](Self::stale_popped)).
    pub fn reschedule(&mut self, id: EventId, at: SimTime, payload: T) -> bool {
        let t = at.as_micros();
        let old = match self.slots.get(id.idx as usize) {
            Some(slot) if slot.gen == id.gen => slot.at,
            _ => return false,
        };
        let r: Ref = (id.idx, id.gen);
        // Route `old` exactly as `place` did. Live references never move
        // between containers except by scattering, which empties the source,
        // so the current window positions locate the ref correctly.
        if old < self.l0_start + L0_SPAN {
            let b = (old - self.l0_start) as usize;
            if self.l0[b].back() != Some(&r) {
                return false;
            }
            self.l0[b].pop_back();
            if self.l0[b].is_empty() {
                bit_clear(&mut self.l0_occ, b);
            }
        } else if old < self.l1_start + L1_SPAN {
            let s = ((old - self.l1_start) / L1_SLOT) as usize;
            if self.l1[s].last() != Some(&r) {
                return false;
            }
            self.l1[s].pop();
            if self.l1[s].is_empty() {
                bit_clear(&mut self.l1_occ, s);
            }
        } else {
            match self.overflow.get_mut(&old) {
                Some(refs) if refs.last() == Some(&r) => {
                    refs.pop();
                    if refs.is_empty() {
                        self.overflow.remove(&old);
                    }
                }
                _ => return false,
            }
        }
        let slot = &mut self.slots[id.idx as usize];
        slot.at = t;
        slot.payload = Some(payload);
        self.place(r, t);
        true
    }

    /// The time of the earliest live event, without disturbing window
    /// state. Tombstones at the front of level 0 are discarded on the way.
    pub fn peek_at(&mut self) -> Option<SimTime> {
        if self.live == 0 {
            return None;
        }
        // Level 0: purge dead refs from the front until a live one shows.
        while let Some(b) = first_bit(&self.l0_occ) {
            while let Some(&(idx, gen)) = self.l0[b].front() {
                if self.slots[idx as usize].gen == gen {
                    return Some(SimTime::from_micros(self.l0_start + b as u64));
                }
                self.l0[b].pop_front();
                self.stale_popped += 1;
            }
            bit_clear(&mut self.l0_occ, b);
        }
        // Level 1: scan occupied slots in order, reaping tombstones so an
        // all-dead slot can't mask live events behind it. The window itself
        // is not advanced (pop does that).
        while let Some(s) = first_bit(&self.l1_occ) {
            let refs = std::mem::take(&mut self.l1[s]);
            let mut kept = Vec::with_capacity(refs.len());
            let mut min: Option<u64> = None;
            for (idx, gen) in refs {
                let slot = &self.slots[idx as usize];
                if slot.gen == gen {
                    min = Some(min.map_or(slot.at, |m| m.min(slot.at)));
                    kept.push((idx, gen));
                } else {
                    self.stale_popped += 1;
                }
            }
            self.l1[s] = kept;
            if let Some(at) = min {
                return Some(SimTime::from_micros(at));
            }
            bit_clear(&mut self.l1_occ, s);
        }
        for refs in self.overflow.values() {
            if let Some(at) = self.min_live(refs) {
                return Some(SimTime::from_micros(at));
            }
        }
        debug_assert!(false, "live count positive but no live event found");
        None
    }

    /// Minimum time among the live references in `refs`.
    fn min_live(&self, refs: &[Ref]) -> Option<u64> {
        refs.iter()
            .filter(|(idx, gen)| self.slots[*idx as usize].gen == *gen)
            .map(|(idx, _)| self.slots[*idx as usize].at)
            .min()
    }

    /// Removes and returns the earliest live event: ascending time,
    /// schedule order within an instant — exactly the order a binary heap
    /// keyed on `(time, sequence)` would produce.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        if self.live == 0 {
            return None;
        }
        loop {
            // Drain the earliest occupied level-0 bucket.
            while let Some(b) = first_bit(&self.l0_occ) {
                while let Some((idx, gen)) = self.l0[b].pop_front() {
                    let slot = &mut self.slots[idx as usize];
                    if slot.gen != gen {
                        self.stale_popped += 1;
                        continue;
                    }
                    let at = slot.at;
                    let payload = slot.payload.take().expect("live slot has a payload");
                    slot.gen = slot.gen.wrapping_add(1);
                    self.free.push(idx);
                    self.live -= 1;
                    if self.l0[b].is_empty() {
                        bit_clear(&mut self.l0_occ, b);
                    }
                    return Some((SimTime::from_micros(at), payload));
                }
                bit_clear(&mut self.l0_occ, b);
            }
            // Level 0 exhausted: advance the window to the next occupied
            // level-1 slot (slots before the window are already empty).
            if let Some(s) = first_bit(&self.l1_occ) {
                self.l0_start = self.l1_start + s as u64 * L1_SLOT;
                let refs = std::mem::take(&mut self.l1[s]);
                bit_clear(&mut self.l1_occ, s);
                for (idx, gen) in refs {
                    if self.slots[idx as usize].gen != gen {
                        self.stale_popped += 1;
                        continue;
                    }
                    let b = (self.slots[idx as usize].at - self.l0_start) as usize;
                    self.l0[b].push_back((idx, gen));
                    bit_set(&mut self.l0_occ, b);
                }
                continue;
            }
            // Level 1 exhausted too: rebase it at the earliest overflow
            // time and pull everything now in range forward.
            let (&k, _) = self.overflow.first_key_value()?;
            self.l1_start = k - (k % L1_SLOT);
            self.l0_start = self.l1_start;
            while let Some(entry) = self.overflow.first_entry() {
                let t = *entry.key();
                if t >= self.l1_start + L1_SPAN {
                    break;
                }
                for r in entry.remove() {
                    self.place(r, t);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(micros: u64) -> SimTime {
        SimTime::from_micros(micros)
    }

    #[test]
    fn pops_in_time_then_fifo_order() {
        let mut q = CalendarQueue::new();
        q.schedule(t(5), "a");
        q.schedule(t(3), "b");
        q.schedule(t(5), "c");
        q.schedule(t(3), "d");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!["b", "d", "a", "c"]);
    }

    #[test]
    fn crosses_level_boundaries() {
        let mut q = CalendarQueue::new();
        // One event per level: l0, l1, overflow.
        q.schedule(t(10), "near");
        q.schedule(t(L0_SPAN + 7), "mid");
        q.schedule(t(L1_SPAN + 99), "far");
        assert_eq!(q.pop().unwrap(), (t(10), "near"));
        assert_eq!(q.pop().unwrap(), (t(L0_SPAN + 7), "mid"));
        assert_eq!(q.pop().unwrap(), (t(L1_SPAN + 99), "far"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn same_instant_fifo_survives_level_transfer() {
        let mut q = CalendarQueue::new();
        let far = L1_SPAN + 500;
        for i in 0..10u32 {
            q.schedule(t(far), i);
        }
        let popped: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(popped, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_is_lazy_and_counted() {
        let mut q = CalendarQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel is stale");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap(), (t(2), "b"));
        assert_eq!(q.stale_popped(), 1);
    }

    #[test]
    fn slot_reuse_does_not_alias_old_handles() {
        let mut q = CalendarQueue::new();
        let a = q.schedule(t(1), "a");
        assert!(q.cancel(a));
        // Reuses the arena slot `a` occupied.
        let b = q.schedule(t(1), "b");
        assert!(!q.cancel(a), "stale handle must not hit the new event");
        assert_eq!(q.pop().unwrap(), (t(1), "b"));
        assert!(!q.cancel(b), "b already popped");
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = CalendarQueue::new();
        q.schedule(t(40), ());
        q.schedule(t(L0_SPAN * 3 + 1), ());
        q.schedule(t(L1_SPAN * 2), ());
        while let Some(at) = q.peek_at() {
            let (popped, ()) = q.pop().unwrap();
            assert_eq!(popped, at);
        }
        assert!(q.is_empty());
    }

    #[test]
    fn peek_skips_cancelled_front() {
        let mut q = CalendarQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(9), "b");
        q.cancel(a);
        assert_eq!(q.peek_at(), Some(t(9)));
        assert_eq!(q.pop().unwrap(), (t(9), "b"));
    }

    #[test]
    fn peek_sees_past_an_all_dead_level1_slot() {
        let mut q = CalendarQueue::new();
        // First occupied l1 slot holds only a cancelled event; live events
        // sit in a later l1 slot and in overflow.
        let dead = q.schedule(t(L0_SPAN + 3), "dead");
        q.schedule(t(L0_SPAN * 5 + 1), "later-l1");
        q.schedule(t(L1_SPAN + 12), "overflow");
        q.cancel(dead);
        assert_eq!(q.peek_at(), Some(t(L0_SPAN * 5 + 1)));
        assert_eq!(q.pop().unwrap(), (t(L0_SPAN * 5 + 1), "later-l1"));
        assert_eq!(q.peek_at(), Some(t(L1_SPAN + 12)));
        assert_eq!(q.pop().unwrap(), (t(L1_SPAN + 12), "overflow"));
        assert!(q.is_empty());
    }

    #[test]
    fn len_and_peak_track_live_events() {
        let mut q = CalendarQueue::new();
        let ids: Vec<EventId> = (0..5).map(|i| q.schedule(t(i), i)).collect();
        assert_eq!(q.len(), 5);
        assert_eq!(q.peak_len(), 5);
        q.cancel(ids[0]);
        q.pop().unwrap();
        assert_eq!(q.len(), 3);
        assert_eq!(q.peak_len(), 5);
    }

    #[test]
    fn reschedule_moves_tail_refs_without_tombstones() {
        let mut q = CalendarQueue::new();
        // Same-instant payload swap at a level-0 bucket tail.
        let a = q.schedule(t(5), "old");
        assert!(q.reschedule(a, t(5), "new"));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap(), (t(5), "new"));
        assert_eq!(q.stale_popped(), 0);

        // Across level-0 buckets, across levels, and out to overflow: the
        // handle stays valid the whole way and nothing goes stale.
        let b = q.schedule(t(6), "roams");
        assert!(q.reschedule(b, t(40), "roams"));
        assert!(q.reschedule(b, t(L0_SPAN * 5 + 1), "roams"));
        assert!(q.reschedule(b, t(L1_SPAN + 9), "roams"));
        assert!(q.reschedule(b, t(7), "landed"));
        assert_eq!(q.pop().unwrap(), (t(7), "landed"));
        assert_eq!(q.len(), 0);

        // Moving within one level-1 slot keeps FIFO order against other
        // events in the slot through the scatter into level 0.
        let base = L0_SPAN + 100;
        q.schedule(t(base), "first");
        let c = q.schedule(t(base + 3), "moves");
        assert!(q.reschedule(c, t(base + 1), "moved"));
        assert_eq!(q.pop().unwrap(), (t(base), "first"));
        assert_eq!(q.pop().unwrap(), (t(base + 1), "moved"));
        assert_eq!(q.stale_popped(), 0);
        assert!(q.is_empty());
    }

    #[test]
    fn reschedule_lands_at_target_bucket_tail() {
        let mut q = CalendarQueue::new();
        // The moved event must pop after events already in its new bucket,
        // exactly like a fresh schedule would.
        let a = q.schedule(t(9), "early");
        q.schedule(t(5), "sits");
        assert!(q.reschedule(a, t(5), "joins"));
        assert_eq!(q.pop().unwrap(), (t(5), "sits"));
        assert_eq!(q.pop().unwrap(), (t(5), "joins"));
        assert_eq!(q.stale_popped(), 0);
    }

    #[test]
    fn reschedule_refuses_mid_bucket_and_stale_refs() {
        let mut q = CalendarQueue::new();
        // Not the bucket tail: a later schedule shares the instant.
        let a = q.schedule(t(5), "a");
        q.schedule(t(5), "b");
        assert!(!q.reschedule(a, t(7), "a2"));

        // Not the level-1 slot tail.
        let c = q.schedule(t(L0_SPAN + 2), "c");
        q.schedule(t(L0_SPAN + 9), "d");
        assert!(!q.reschedule(c, t(L0_SPAN + 4), "c2"));

        // Not the overflow vec tail (same instant, scheduled first).
        let e = q.schedule(t(L1_SPAN + 50), "e");
        q.schedule(t(L1_SPAN + 50), "f");
        assert!(!q.reschedule(e, t(L1_SPAN + 60), "e2"));

        // Stale handles are refused.
        let g = q.schedule(t(1), "g");
        q.cancel(g);
        assert!(!q.reschedule(g, t(1), "g2"));

        let popped: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(popped, vec!["a", "b", "c", "d", "e", "f"]);
    }

    #[test]
    fn empty_queue_behaves() {
        let mut q: CalendarQueue<()> = CalendarQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_at(), None);
        assert!(q.pop().is_none());
    }
}
