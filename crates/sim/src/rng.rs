//! Deterministic random-number generation and the samplers used by the
//! workload generators.
//!
//! Every stochastic element of a run (think times, session lengths, Markov
//! transitions, data population) draws from a [`SimRng`] seeded explicitly, so
//! a run is reproducible bit-for-bit from `(seed, configuration)`.

use crate::time::SimDuration;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A seedable, deterministic random-number generator plus the distribution
/// samplers the benchmarks need.
///
/// ```
/// use dynamid_sim::SimRng;
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.uniform_u64(0, 100), b.uniform_u64(0, 100));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng { inner: SmallRng::seed_from_u64(seed) }
    }

    /// Derives an independent child generator; useful to give each client or
    /// table population its own stream without coupling their draws.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let s = self.inner.gen::<u64>() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::new(s)
    }

    /// A uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// A uniform integer in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "uniform_u64: empty range {lo}..={hi}");
        self.inner.gen_range(lo..=hi)
    }

    /// A uniform integer in `[lo, hi]` (inclusive) as `i64`.
    pub fn uniform_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "uniform_i64: empty range {lo}..={hi}");
        self.inner.gen_range(lo..=hi)
    }

    /// A uniform index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index: empty range");
        self.inner.gen_range(0..n)
    }

    /// A Bernoulli draw that is `true` with probability `p` (clamped to
    /// `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// An exponentially distributed duration with the given mean, via inverse
    /// CDF. TPC-W's client model (clause 5.3.1.1) prescribes this for think
    /// times and session lengths.
    pub fn exponential(&mut self, mean: SimDuration) -> SimDuration {
        // 1 - unit() is in (0, 1], so ln() is finite and non-positive.
        let u = 1.0 - self.unit();
        SimDuration::from_secs_f64(-mean.as_secs_f64() * u.ln())
    }

    /// A Zipf-like draw in `[0, n)`: rank `k` has weight `1/(k+1)^theta`.
    /// Used to skew item popularity. `theta == 0` degenerates to uniform.
    ///
    /// Sampling is by inversion on the (approximated) harmonic CDF, which is
    /// O(log n) and good enough for workload skew.
    pub fn zipf(&mut self, n: usize, theta: f64) -> usize {
        assert!(n > 0, "zipf: empty range");
        if theta <= 0.0 || n == 1 {
            return self.index(n);
        }
        // Inverse-transform on the generalized harmonic numbers via binary
        // search over a partial-sum approximation using the integral of
        // x^-theta: H(k) ~ (k^(1-theta) - 1) / (1 - theta) for theta != 1,
        // H(k) ~ ln(k) for theta == 1. Close enough for load skew.
        let h = |k: f64| -> f64 {
            if (theta - 1.0).abs() < 1e-9 {
                (k + 1.0).ln()
            } else {
                ((k + 1.0).powf(1.0 - theta) - 1.0) / (1.0 - theta)
            }
        };
        let total = h(n as f64);
        let target = self.unit() * total;
        let (mut lo, mut hi) = (0usize, n - 1);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if h(mid as f64 + 1.0) < target {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Chooses an index with probability proportional to `weights[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero (or contains a negative
    /// weight).
    pub fn weighted(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weighted: no weights");
        let total: f64 =
            weights.iter().inspect(|w| assert!(**w >= 0.0, "weighted: negative weight")).sum();
        assert!(total > 0.0, "weighted: weights sum to zero");
        let mut target = self.unit() * total;
        for (i, w) in weights.iter().enumerate() {
            if target < *w {
                return i;
            }
            target -= *w;
        }
        weights.len() - 1
    }

    /// A random lowercase ASCII string of the given length (for synthetic
    /// names, descriptions, etc.).
    pub fn ascii_string(&mut self, len: usize) -> String {
        (0..len).map(|_| (b'a' + self.inner.gen_range(0..26u8)) as char).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.uniform_u64(0, 1_000_000), b.uniform_u64(0, 1_000_000));
        }
    }

    #[test]
    fn fork_produces_distinct_streams() {
        let mut root = SimRng::new(7);
        let mut c1 = root.fork(1);
        let mut c2 = root.fork(2);
        let s1: Vec<u64> = (0..16).map(|_| c1.uniform_u64(0, u64::MAX - 1)).collect();
        let s2: Vec<u64> = (0..16).map(|_| c2.uniform_u64(0, u64::MAX - 1)).collect();
        assert_ne!(s1, s2);
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SimRng::new(11);
        let mean = SimDuration::from_secs(7);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| rng.exponential(mean).as_secs_f64()).sum();
        let avg = total / n as f64;
        assert!((avg - 7.0).abs() < 0.25, "sample mean {avg} too far from 7.0");
    }

    #[test]
    fn uniform_bounds_respected() {
        let mut rng = SimRng::new(3);
        for _ in 0..1_000 {
            let v = rng.uniform_u64(10, 20);
            assert!((10..=20).contains(&v));
            let w = rng.uniform_i64(-5, 5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let mut rng = SimRng::new(5);
        let mut counts = [0usize; 10];
        for _ in 0..50_000 {
            counts[rng.zipf(10, 1.0)] += 1;
        }
        assert!(counts[0] > counts[9] * 3, "counts not skewed: {counts:?}");
        // All ranks should still be reachable.
        assert!(counts.iter().all(|c| *c > 0));
    }

    #[test]
    fn zipf_theta_zero_is_uniformish() {
        let mut rng = SimRng::new(5);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[rng.zipf(4, 0.0)] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "not uniform: {counts:?}");
        }
    }

    #[test]
    fn weighted_prefers_heavier() {
        let mut rng = SimRng::new(9);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[rng.weighted(&[0.1, 0.1, 0.8])] += 1;
        }
        assert!(counts[2] > counts[0] + counts[1]);
    }

    #[test]
    #[should_panic(expected = "weights sum to zero")]
    fn weighted_rejects_zero_total() {
        SimRng::new(1).weighted(&[0.0, 0.0]);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(2);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn ascii_string_shape() {
        let mut rng = SimRng::new(4);
        let s = rng.ascii_string(12);
        assert_eq!(s.len(), 12);
        assert!(s.chars().all(|c| c.is_ascii_lowercase()));
    }
}
