//! Measurement helpers: latency histograms and windowed utilization
//! snapshots.
//!
//! The paper measures throughput (interactions per minute) over a
//! measurement window bracketed by ramp-up and ramp-down phases, and reports
//! per-machine CPU utilization at the peak. [`WindowSnapshot`] captures the
//! cumulative resource integrals at the window edges so the harness can
//! compute exact window utilizations; [`LatencyHistogram`] accumulates
//! response times with logarithmic buckets for percentile reporting.

use crate::ps::PsStats;
use crate::time::{SimDuration, SimTime};

/// A latency histogram with pseudo-logarithmic buckets (2 sub-buckets per
/// octave) from 1 µs to ~1.1 hours.
///
/// ```
/// use dynamid_sim::{LatencyHistogram, SimDuration};
/// let mut h = LatencyHistogram::new();
/// for ms in [1, 2, 3, 4, 100] {
///     h.record(SimDuration::from_millis(ms));
/// }
/// assert_eq!(h.count(), 5);
/// assert!(h.quantile(0.5) <= h.quantile(0.99));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    total_micros: u64,
    max_micros: u64,
}

/// Number of histogram buckets: 32 octaves × 2.
const BUCKETS: usize = 64;

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram { buckets: vec![0; BUCKETS], count: 0, total_micros: 0, max_micros: 0 }
    }

    fn bucket_of(micros: u64) -> usize {
        if micros <= 1 {
            return 0;
        }
        let octave = 63 - micros.leading_zeros() as usize; // floor(log2)
        let half = (micros >> (octave.saturating_sub(1))) & 1; // second half?
        (octave * 2 + half as usize).min(BUCKETS - 1)
    }

    /// Lower bound (in µs) of the bucket with the given index.
    fn bucket_floor(idx: usize) -> u64 {
        let octave = idx / 2;
        let base = 1u64 << octave;
        if idx.is_multiple_of(2) {
            base
        } else {
            base + base / 2
        }
    }

    /// Records one latency observation.
    pub fn record(&mut self, latency: SimDuration) {
        let us = latency.as_micros();
        self.buckets[Self::bucket_of(us)] += 1;
        self.count += 1;
        self.total_micros += us;
        self.max_micros = self.max_micros.max(us);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean of the observations.
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_micros(self.total_micros / self.count)
    }

    /// Largest recorded observation (exact).
    pub fn max(&self) -> SimDuration {
        SimDuration::from_micros(self.max_micros)
    }

    /// Approximate quantile `q` in `[0, 1]`; resolution is one half-octave.
    /// Returns zero when empty.
    pub fn quantile(&self, q: f64) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return SimDuration::from_micros(Self::bucket_floor(i));
            }
        }
        self.max()
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.total_micros += other.total_micros;
        self.max_micros = self.max_micros.max(other.max_micros);
    }

    /// Clears all observations.
    pub fn reset(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.count = 0;
        self.total_micros = 0;
        self.max_micros = 0;
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Error taxonomy over a measurement window: every way a request can fail
/// to produce a good response, each counted exactly once per attempt.
///
/// The classes are disjoint by construction — a request the server rejects
/// at admission is counted under `rejects` and *not* again under `timeouts`
/// when the client's deadline would have fired (the engine drops the stale
/// deadline event once the job is gone). `retries` counts re-submissions
/// (attempts beyond the first), and `abandoned` counts requests given up
/// after exhausting the retry budget; both overlap the failure classes by
/// design (an abandoned request was also counted once per failed attempt).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ErrorCounters {
    /// Attempts that exceeded the client's request deadline.
    pub timeouts: u64,
    /// Attempts shed by admission control (bounded accept queue full).
    pub rejects: u64,
    /// Attempts killed by a fault (machine crash or transient failure).
    pub aborts: u64,
    /// Re-submissions after a failed attempt (attempt number >= 2).
    pub retries: u64,
    /// Requests abandoned after the retry budget ran out.
    pub abandoned: u64,
    /// Attempts aborted as a deadlock victim (also retried like other
    /// aborts). Tracked separately from `aborts` so availability sweeps can
    /// distinguish lock cycles from fault-induced kills.
    pub deadlocks: u64,
}

impl ErrorCounters {
    /// Total failed attempts (timeouts + rejects + aborts + deadlocks).
    pub fn failed_attempts(&self) -> u64 {
        self.timeouts + self.rejects + self.aborts + self.deadlocks
    }

    /// Accumulates another window's counters into this one.
    pub fn merge(&mut self, other: &ErrorCounters) {
        self.timeouts += other.timeouts;
        self.rejects += other.rejects;
        self.aborts += other.aborts;
        self.retries += other.retries;
        self.abandoned += other.abandoned;
        self.deadlocks += other.deadlocks;
    }
}

/// A point-in-time capture of a resource's cumulative counters, used to
/// compute exact utilization over a window by differencing two snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WindowSnapshot {
    /// Time of the snapshot.
    pub at: SimTime,
    /// Cumulative busy microseconds at the snapshot.
    pub busy_micros: f64,
    /// Cumulative work done (service units) at the snapshot.
    pub work_done: f64,
}

impl WindowSnapshot {
    /// Captures a snapshot of `stats` at time `at`.
    pub fn capture(at: SimTime, stats: PsStats) -> Self {
        WindowSnapshot { at, busy_micros: stats.busy_micros, work_done: stats.work_done }
    }

    /// Fraction of time the resource was busy between `self` and `later`
    /// (0.0–1.0). Returns 0 for an empty window.
    pub fn utilization_until(&self, later: &WindowSnapshot) -> f64 {
        let elapsed = later.at.duration_since(self.at).as_micros() as f64;
        if elapsed <= 0.0 {
            return 0.0;
        }
        ((later.busy_micros - self.busy_micros) / elapsed).clamp(0.0, 1.0)
    }

    /// Work delivered between `self` and `later`, in service units per
    /// second (for NICs: bytes/s).
    pub fn throughput_until(&self, later: &WindowSnapshot) -> f64 {
        let elapsed = later.at.duration_since(self.at).as_secs_f64();
        if elapsed <= 0.0 {
            return 0.0;
        }
        (later.work_done - self.work_done) / elapsed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_counts_and_mean() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::from_micros(100));
        h.record(SimDuration::from_micros(300));
        assert_eq!(h.count(), 2);
        assert_eq!(h.mean(), SimDuration::from_micros(200));
        assert_eq!(h.max(), SimDuration::from_micros(300));
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.quantile(0.5), SimDuration::ZERO);
    }

    #[test]
    fn quantiles_are_monotone_and_bracket_data() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1_000u64 {
            h.record(SimDuration::from_micros(i * 10));
        }
        let q50 = h.quantile(0.5);
        let q90 = h.quantile(0.9);
        let q99 = h.quantile(0.99);
        assert!(q50 <= q90 && q90 <= q99);
        // The median of 10..=10000 is ~5000us; half-octave resolution means
        // we accept a generous bracket.
        let med = q50.as_micros();
        assert!((2_500..=8_000).contains(&med), "median bucket {med}");
    }

    #[test]
    fn merge_and_reset() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(SimDuration::from_millis(1));
        b.record(SimDuration::from_millis(2));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), SimDuration::from_millis(2));
        a.reset();
        assert_eq!(a.count(), 0);
        assert_eq!(a.max(), SimDuration::ZERO);
    }

    #[test]
    fn bucket_mapping_is_monotone() {
        let mut last = 0;
        for us in [1u64, 2, 3, 5, 8, 100, 1_000, 65_000, 1 << 30] {
            let b = LatencyHistogram::bucket_of(us);
            assert!(b >= last, "bucket_of({us}) went backwards");
            last = b;
        }
    }

    #[test]
    fn window_utilization_from_snapshots() {
        let s0 = WindowSnapshot {
            at: SimTime::from_micros(1_000),
            busy_micros: 500.0,
            work_done: 400.0,
        };
        let s1 = WindowSnapshot {
            at: SimTime::from_micros(3_000),
            busy_micros: 1_500.0,
            work_done: 2_400.0,
        };
        assert!((s0.utilization_until(&s1) - 0.5).abs() < 1e-12);
        // 2000 service units over 2ms = 1e6 units/s.
        assert!((s0.throughput_until(&s1) - 1e6).abs() < 1e-6);
    }

    #[test]
    fn degenerate_window_is_zero() {
        let s = WindowSnapshot::default();
        assert_eq!(s.utilization_until(&s), 0.0);
        assert_eq!(s.throughput_until(&s), 0.0);
    }
}
