//! Processor-sharing service resource.
//!
//! CPUs and network interfaces are modeled as *processor-sharing* (PS)
//! queues: all jobs in service receive an equal share of the resource's
//! capacity. PS is the standard approximation for time-sliced CPUs and for
//! packet-interleaved links, and it is what makes the paper's saturation
//! phenomena (response times ballooning past the knee, throughput plateaus at
//! capacity) emerge naturally.
//!
//! The implementation uses the classic *virtual-time* formulation so every
//! operation is `O(log n)` in the number of jobs in service: a virtual clock
//! `V` advances at rate `capacity / n`, a job arriving with service demand
//! `d` is assigned virtual finish time `V + d`, and jobs complete in virtual
//! finish order.

use crate::engine::JobId;
use crate::time::SimTime;
use std::collections::{BTreeSet, HashMap};

/// Tolerance (in service units) when popping completed jobs, to absorb
/// floating-point rounding from the virtual-time bookkeeping.
const COMPLETION_EPS: f64 = 1e-3;

/// Key ordering jobs by virtual finish time, with an arrival sequence number
/// breaking ties deterministically.
#[derive(Debug, Clone, Copy, PartialEq)]
struct VirtKey {
    finish: f64,
    seq: u64,
}

impl Eq for VirtKey {}

impl PartialOrd for VirtKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for VirtKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.finish.total_cmp(&other.finish).then(self.seq.cmp(&other.seq))
    }
}

/// Cumulative statistics for a [`PsResource`], exposed for utilization and
/// throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PsStats {
    /// Microseconds during which at least one job was in service.
    pub busy_micros: f64,
    /// Total service units delivered (for a CPU, CPU-microseconds).
    pub work_done: f64,
    /// Number of jobs that entered service.
    pub arrivals: u64,
    /// Number of jobs that completed service.
    pub completions: u64,
}

/// A processor-sharing resource with fixed capacity.
///
/// `capacity` is in *service units per microsecond*: a 1-core CPU has
/// capacity `1.0` with demands expressed in CPU-microseconds; a 100 Mb/s NIC
/// has capacity `12.5` with demands expressed in bytes.
///
/// ```
/// use dynamid_sim::{PsResource, SimTime};
/// use dynamid_sim::engine::JobId;
/// let mut cpu = PsResource::new("cpu", 1.0);
/// cpu.enqueue(SimTime::ZERO, JobId(1), 100.0);
/// let done = cpu.next_completion(SimTime::ZERO).unwrap();
/// assert_eq!(done.as_micros(), 100);
/// ```
#[derive(Debug)]
pub struct PsResource {
    name: String,
    capacity: f64,
    /// Fastest rate a single job may be served at (1.0 for a CPU core;
    /// equal to `capacity` for a NIC, where one transfer can use the full
    /// link).
    per_job_cap: f64,
    /// Virtual clock: service units accrued per job since the last idle
    /// period.
    virt: f64,
    last_update: SimTime,
    active: BTreeSet<VirtKey>,
    by_job: HashMap<JobId, VirtKey>,
    jobs: HashMap<u64, JobId>,
    seq: u64,
    /// Epoch counter used by the engine to invalidate stale completion
    /// events after the active set changes.
    epoch: u64,
    stats: PsStats,
}

impl PsResource {
    /// Creates a resource with the given display name and capacity in
    /// service units per microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not finite and positive.
    pub fn new(name: impl Into<String>, capacity: f64) -> Self {
        Self::with_job_cap(name, capacity, capacity)
    }

    /// Creates a resource where a single job is served at no more than
    /// `per_job_cap` units per microsecond even when the resource is
    /// otherwise idle. A `cores`-core CPU is
    /// `with_job_cap(name, cores, 1.0)`: one request cannot run faster than
    /// one core.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `per_job_cap` is not finite and positive.
    pub fn with_job_cap(name: impl Into<String>, capacity: f64, per_job_cap: f64) -> Self {
        assert!(capacity.is_finite() && capacity > 0.0, "PsResource capacity must be positive");
        assert!(
            per_job_cap.is_finite() && per_job_cap > 0.0,
            "PsResource per-job cap must be positive"
        );
        PsResource {
            name: name.into(),
            capacity,
            per_job_cap,
            virt: 0.0,
            last_update: SimTime::ZERO,
            active: BTreeSet::new(),
            by_job: HashMap::new(),
            jobs: HashMap::new(),
            seq: 0,
            epoch: 0,
            stats: PsStats::default(),
        }
    }

    /// The resource's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The resource's capacity in service units per microsecond.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Number of jobs currently in service.
    pub fn in_service(&self) -> usize {
        self.active.len()
    }

    /// The jobs currently in service, in virtual-finish order. The order is
    /// deterministic, which matters when a machine crash aborts all of them:
    /// the abort sequence must be identical across runs.
    pub fn active_jobs(&self) -> Vec<JobId> {
        self.active.iter().map(|k| self.jobs[&k.seq]).collect()
    }

    /// Current epoch; bumped whenever the completion schedule may change.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Cumulative statistics as of the last update; call [`advance`] first
    /// for up-to-the-instant figures.
    ///
    /// [`advance`]: PsResource::advance
    pub fn stats(&self) -> PsStats {
        self.stats
    }

    /// Advances the internal clocks to `now`, accruing virtual time and busy
    /// time. Idempotent for equal `now`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `now` is before the last update.
    pub fn advance(&mut self, now: SimTime) {
        debug_assert!(now >= self.last_update, "PsResource clock went backwards");
        if now == self.last_update {
            return;
        }
        let elapsed = now.duration_since(self.last_update).as_micros() as f64;
        let n = self.active.len();
        if n > 0 {
            let per_job = self.per_job_rate(n);
            self.virt += elapsed * per_job;
            let delivered = per_job * n as f64;
            // Busy time is the fraction of total capacity in use, so a
            // single job on a 4-core machine counts as 25% busy.
            self.stats.busy_micros += elapsed * (delivered / self.capacity).min(1.0);
            self.stats.work_done += elapsed * delivered;
        }
        self.last_update = now;
    }

    /// Places `job` in service with the given demand (in service units). A
    /// zero or negative demand completes on the next `pop_completed`.
    ///
    /// # Panics
    ///
    /// Panics if the job is already in service here.
    pub fn enqueue(&mut self, now: SimTime, job: JobId, demand: f64) {
        self.advance(now);
        assert!(!self.by_job.contains_key(&job), "job {job:?} already in service on {}", self.name);
        let key = VirtKey { finish: self.virt + demand.max(0.0), seq: self.seq };
        self.seq += 1;
        self.active.insert(key);
        self.by_job.insert(job, key);
        self.jobs.insert(key.seq, job);
        self.epoch += 1;
        self.stats.arrivals += 1;
    }

    /// Removes a job from service without completing it (e.g., on abort).
    /// Returns `true` if the job was present.
    pub fn cancel(&mut self, now: SimTime, job: JobId) -> bool {
        self.advance(now);
        if let Some(key) = self.by_job.remove(&job) {
            self.active.remove(&key);
            self.jobs.remove(&key.seq);
            self.epoch += 1;
            self.reset_if_idle();
            true
        } else {
            false
        }
    }

    /// The absolute time of the next completion, or `None` when idle.
    /// `now` must be current (the caller advances first or passes the
    /// engine's clock).
    pub fn next_completion(&mut self, now: SimTime) -> Option<SimTime> {
        self.advance(now);
        let first = self.active.iter().next()?;
        let remaining = (first.finish - self.virt).max(0.0);
        let micros = (remaining / self.per_job_rate(self.active.len())).ceil() as u64;
        Some(now + crate::time::SimDuration::from_micros(micros))
    }

    /// Service units each of `n` active jobs receives per microsecond.
    fn per_job_rate(&self, n: usize) -> f64 {
        debug_assert!(n > 0);
        (self.capacity / n as f64).min(self.per_job_cap)
    }

    /// Pops every job whose service is complete as of `now`, in virtual
    /// finish order.
    pub fn pop_completed(&mut self, now: SimTime) -> Vec<JobId> {
        self.advance(now);
        // Completions are scheduled by `next_completion`, which rounds the
        // remaining service up to a whole microsecond — so by the time a
        // valid completion event fires, the virtual clock can have run past
        // the job's finish tag by less than one microsecond's worth of
        // service. The rate during that window is at most `per_job_cap`
        // (arrivals inside the window can shrink the sharing rate at pop
        // time below the rate the overshoot accrued at, so the cap — the
        // fastest any single job is ever served — is the sound bound).
        // Anything larger means a completion event was dispatched late (a
        // stale prediction leaked through), which would silently inflate
        // the busy/work integrals.
        let overshoot_bound = self.per_job_cap * 1.0 + COMPLETION_EPS;
        let mut done = Vec::new();
        while let Some(first) = self.active.iter().next().copied() {
            if first.finish <= self.virt + COMPLETION_EPS {
                debug_assert!(
                    self.virt - first.finish <= overshoot_bound,
                    "{}: completion overshoot {} exceeds one microsecond of service ({})",
                    self.name,
                    self.virt - first.finish,
                    overshoot_bound,
                );
                self.active.remove(&first);
                let job = self.jobs.remove(&first.seq).expect("active key without job");
                self.by_job.remove(&job);
                self.stats.completions += 1;
                done.push(job);
            } else {
                break;
            }
        }
        if !done.is_empty() {
            self.epoch += 1;
            self.reset_if_idle();
        }
        done
    }

    /// Re-anchors the virtual clock at zero when the resource idles, keeping
    /// `virt` small so floating-point error cannot accumulate across a long
    /// run.
    fn reset_if_idle(&mut self) {
        if self.active.is_empty() {
            self.virt = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(micros: u64) -> SimTime {
        SimTime::from_micros(micros)
    }

    #[test]
    fn single_job_runs_at_full_capacity() {
        let mut r = PsResource::new("cpu", 1.0);
        r.enqueue(t(0), JobId(1), 1_000.0);
        assert_eq!(r.next_completion(t(0)), Some(t(1_000)));
        assert!(r.pop_completed(t(999)).is_empty());
        assert_eq!(r.pop_completed(t(1_000)), vec![JobId(1)]);
        assert_eq!(r.in_service(), 0);
    }

    #[test]
    fn two_equal_jobs_share_capacity() {
        let mut r = PsResource::new("cpu", 1.0);
        r.enqueue(t(0), JobId(1), 1_000.0);
        r.enqueue(t(0), JobId(2), 1_000.0);
        // Each gets half the CPU, so both finish at 2000.
        assert_eq!(r.next_completion(t(0)), Some(t(2_000)));
        let done = r.pop_completed(t(2_000));
        assert_eq!(done, vec![JobId(1), JobId(2)]);
    }

    #[test]
    fn late_arrival_slows_the_first_job() {
        let mut r = PsResource::new("cpu", 1.0);
        r.enqueue(t(0), JobId(1), 1_000.0);
        // At 500us the first job has 500 units left; a second job arrives.
        r.enqueue(t(500), JobId(2), 1_000.0);
        // First finishes after another 500*2 = 1000us -> at 1500.
        assert_eq!(r.next_completion(t(500)), Some(t(1_500)));
        assert_eq!(r.pop_completed(t(1_500)), vec![JobId(1)]);
        // Second has 500 units left, now alone -> finishes at 2000.
        assert_eq!(r.next_completion(t(1_500)), Some(t(2_000)));
        assert_eq!(r.pop_completed(t(2_000)), vec![JobId(2)]);
    }

    #[test]
    fn capacity_scales_service_rate() {
        let mut r = PsResource::new("dual", 2.0);
        r.enqueue(t(0), JobId(1), 1_000.0);
        assert_eq!(r.next_completion(t(0)), Some(t(500)));
    }

    #[test]
    fn busy_time_counts_only_nonidle_periods() {
        let mut r = PsResource::new("cpu", 1.0);
        r.advance(t(1_000)); // idle
        r.enqueue(t(1_000), JobId(1), 500.0);
        r.pop_completed(t(1_500));
        r.advance(t(3_000)); // idle again
        let s = r.stats();
        assert!((s.busy_micros - 500.0).abs() < 1e-9, "{s:?}");
        assert!((s.work_done - 500.0).abs() < 1e-9);
        assert_eq!(s.arrivals, 1);
        assert_eq!(s.completions, 1);
    }

    #[test]
    fn cancel_removes_without_completion() {
        let mut r = PsResource::new("cpu", 1.0);
        r.enqueue(t(0), JobId(1), 1_000.0);
        r.enqueue(t(0), JobId(2), 1_000.0);
        assert!(r.cancel(t(100), JobId(1)));
        assert!(!r.cancel(t(100), JobId(1)));
        // Job 2 had 900 units left at t=100 (100us at half speed = 50 done...
        // each job got 50 units by t=100), then runs alone.
        let done_at = r.next_completion(t(100)).unwrap();
        assert_eq!(done_at, t(100 + 950));
        assert_eq!(r.pop_completed(done_at), vec![JobId(2)]);
        assert_eq!(r.stats().completions, 1);
    }

    #[test]
    fn zero_demand_completes_immediately() {
        let mut r = PsResource::new("cpu", 1.0);
        r.enqueue(t(0), JobId(7), 0.0);
        assert_eq!(r.next_completion(t(0)), Some(t(0)));
        assert_eq!(r.pop_completed(t(0)), vec![JobId(7)]);
    }

    #[test]
    fn epoch_bumps_on_changes() {
        let mut r = PsResource::new("cpu", 1.0);
        let e0 = r.epoch();
        r.enqueue(t(0), JobId(1), 10.0);
        assert!(r.epoch() > e0);
        let e1 = r.epoch();
        r.pop_completed(t(10));
        assert!(r.epoch() > e1);
    }

    #[test]
    fn work_conservation_under_churn() {
        // Total work completed must equal total demand once drained,
        // regardless of the arrival pattern.
        let mut r = PsResource::new("cpu", 1.0);
        let demands = [100.0, 250.0, 75.0, 400.0, 10.0];
        let mut now = t(0);
        for (i, d) in demands.iter().enumerate() {
            r.enqueue(now, JobId(i as u64), *d);
            now += SimDuration::from_micros(40);
        }
        let mut completed = 0;
        let mut guard = 0;
        while completed < demands.len() {
            guard += 1;
            assert!(guard < 100, "did not drain");
            let nc = r.next_completion(now).expect("still busy");
            now = nc;
            completed += r.pop_completed(now).len();
        }
        let s = r.stats();
        let total: f64 = demands.iter().sum();
        // Completion events are rounded up to integer microseconds, so the
        // busy/work integrals may overshoot by up to 1us per completion —
        // `pop_completed` debug-asserts exactly that per-completion bound,
        // and this end-to-end check covers the accumulated total.
        assert!(
            (s.work_done - total).abs() < demands.len() as f64,
            "work {} != demand {total}",
            s.work_done
        );
    }

    #[test]
    fn per_job_cap_limits_single_job_rate() {
        // A 4-core CPU serving one job delivers at most 1 core.
        let mut r = PsResource::with_job_cap("cpu4", 4.0, 1.0);
        r.enqueue(t(0), JobId(1), 1_000.0);
        assert_eq!(r.next_completion(t(0)), Some(t(1_000)));
        assert_eq!(r.pop_completed(t(1_000)), vec![JobId(1)]);
        // Utilization over the kilo-microsecond: 1 of 4 cores -> 250us busy.
        assert!((r.stats().busy_micros - 250.0).abs() < 1e-9);
    }

    #[test]
    fn per_job_cap_irrelevant_when_saturated() {
        // 4 cores, 8 jobs: each runs at 0.5 cores; all finish at 2000.
        let mut r = PsResource::with_job_cap("cpu4", 4.0, 1.0);
        for j in 0..8 {
            r.enqueue(t(0), JobId(j), 1_000.0);
        }
        assert_eq!(r.next_completion(t(0)), Some(t(2_000)));
        assert_eq!(r.pop_completed(t(2_000)).len(), 8);
        assert!((r.stats().busy_micros - 2_000.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn rejects_bad_capacity() {
        let _ = PsResource::new("x", 0.0);
    }

    #[test]
    #[should_panic(expected = "already in service")]
    fn rejects_duplicate_job() {
        let mut r = PsResource::new("cpu", 1.0);
        r.enqueue(t(0), JobId(1), 10.0);
        r.enqueue(t(0), JobId(1), 10.0);
    }
}
