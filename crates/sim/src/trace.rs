//! Observational op-interval recording for the simulation engine.
//!
//! When a [`TraceRecorder`] is armed (see `Simulation::enable_tracing`), the
//! engine notes, for every job, when its current op started consuming a
//! resource and when it finished: CPU service, a whole NIC transfer
//! (sender NIC through link latency through receiver NIC), a pure delay, a
//! lock wait, or a semaphore (pool/admission) wait. Recording is strictly
//! observational — it never schedules events, consumes randomness, or touches
//! resource state — so the event stream with tracing on is bit-identical to
//! the stream with tracing off, and a run without a recorder pays nothing.
//!
//! Zero-duration acquisitions (a lock or semaphore granted immediately) and
//! no-op transfers (loopback or zero bytes) record nothing: there is no wait
//! to attribute. Each job executes its ops sequentially, so at most one
//! interval per job is open at a time; intervals land in [`TraceRecorder`]'s
//! finished store in *end order*, which is the engine's deterministic event
//! order — draining it yields a byte-stable sequence for a fixed seed.
//!
//! Finished intervals are stored column-wise ([`IntervalColumns`]): one
//! buffer per field instead of a `Vec` of structs. A traced run at 60
//! clients closes hundreds of thousands of intervals, and every consumer
//! (the Chrome-trace renderer, the bottleneck aggregator) scans one or two
//! fields of every interval — columnar layout keeps those scans dense and
//! lets the engine reserve all buffers up front (see
//! [`TraceRecorder::reserve`]) so the record path never reallocates
//! mid-run. [`OpInterval`] survives as the assembled row view.

use crate::engine::{JobId, MachineId};
use crate::lock::{LockId, SemaphoreId};
use crate::time::SimTime;
use std::collections::HashMap;

/// What a job was doing during one recorded interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activity {
    /// CPU service on a machine. `demand_micros` is the op's *base* demand
    /// (before any fault-plan degradation factor), so healthy-run intervals
    /// can be cross-checked against processor-sharing busy counters.
    Cpu {
        /// Machine whose CPU served the op.
        machine: MachineId,
        /// Base service demand of the op, in microseconds.
        demand_micros: u64,
    },
    /// A network transfer: sender NIC, link latency, and receiver NIC.
    Net {
        /// Sending machine.
        from: MachineId,
        /// Receiving machine.
        to: MachineId,
        /// Payload size in bytes.
        bytes: u64,
    },
    /// A pure think/processing delay.
    Delay,
    /// Parked waiting for a read/write lock.
    LockWait {
        /// The contended lock.
        lock: LockId,
    },
    /// Queued waiting for a semaphore unit (process pool, connection pool).
    SemWait {
        /// The contended semaphore.
        sem: SemaphoreId,
    },
}

/// One closed interval: job `job` spent `[start, end]` on `activity` while
/// executing the op at `op_index` of its trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpInterval {
    /// The job the interval belongs to.
    pub job: JobId,
    /// Index of the op within the job's trace.
    pub op_index: usize,
    /// What the job was doing.
    pub activity: Activity,
    /// When the op entered the resource (or wait queue).
    pub start: SimTime,
    /// When service (or the wait) completed.
    pub end: SimTime,
}

/// Finished intervals in struct-of-arrays layout: five parallel column
/// buffers, row `i` of each describing the same interval. Rows are in end
/// order (the engine's deterministic event order). Consumers that only need
/// one or two fields iterate the columns directly; [`get`](Self::get) and
/// [`iter`](Self::iter) assemble [`OpInterval`] row views when the whole
/// record is wanted.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IntervalColumns {
    /// Owning job of each interval.
    pub job: Vec<JobId>,
    /// Op index within the owning job's trace (traces are short; `u32`).
    pub op_index: Vec<u32>,
    /// What the job was doing.
    pub activity: Vec<Activity>,
    /// Interval start times.
    pub start: Vec<SimTime>,
    /// Interval end times.
    pub end: Vec<SimTime>,
}

impl IntervalColumns {
    /// Number of finished intervals.
    pub fn len(&self) -> usize {
        self.job.len()
    }

    /// `true` when no interval has been recorded.
    pub fn is_empty(&self) -> bool {
        self.job.is_empty()
    }

    /// Grows every column so at least `additional` more rows fit without
    /// reallocating.
    pub fn reserve(&mut self, additional: usize) {
        self.job.reserve(additional);
        self.op_index.reserve(additional);
        self.activity.reserve(additional);
        self.start.reserve(additional);
        self.end.reserve(additional);
    }

    /// Appends one row.
    pub fn push(&mut self, iv: OpInterval) {
        self.job.push(iv.job);
        self.op_index.push(iv.op_index as u32);
        self.activity.push(iv.activity);
        self.start.push(iv.start);
        self.end.push(iv.end);
    }

    /// Assembles row `i` as an [`OpInterval`] view.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn get(&self, i: usize) -> OpInterval {
        OpInterval {
            job: self.job[i],
            op_index: self.op_index[i] as usize,
            activity: self.activity[i],
            start: self.start[i],
            end: self.end[i],
        }
    }

    /// Iterates the rows as assembled [`OpInterval`] views, in end order.
    pub fn iter(&self) -> impl Iterator<Item = OpInterval> + '_ {
        (0..self.len()).map(|i| self.get(i))
    }
}

/// Collects intervals column-wise as the engine executes. At most one
/// interval per job is open at any time because a job's ops run
/// sequentially.
#[derive(Debug, Default)]
pub struct TraceRecorder {
    open: HashMap<JobId, (usize, Activity, SimTime)>,
    finished: IntervalColumns,
}

impl TraceRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-sizes the finished store for `additional` more intervals. The
    /// engine calls this on job submission with the job's op count (an
    /// upper bound — each op closes at most one interval), so the hot
    /// record path appends into reserved capacity instead of spilling into
    /// a reallocation mid-run.
    pub fn reserve(&mut self, additional: usize) {
        self.finished.reserve(additional);
    }

    /// Marks the start of an interval for `job`.
    pub fn begin(&mut self, job: JobId, op_index: usize, activity: Activity, at: SimTime) {
        let prev = self.open.insert(job, (op_index, activity, at));
        debug_assert!(prev.is_none(), "job {job:?} opened an interval over an open one");
    }

    /// Closes the open interval for `job`, if any. Jobs whose current op
    /// recorded nothing (immediate grants, loopback transfers) have no open
    /// interval, so a spurious `end` is a silent no-op.
    pub fn end(&mut self, job: JobId, at: SimTime) {
        if let Some((op_index, activity, start)) = self.open.remove(&job) {
            self.finished.push(OpInterval { job, op_index, activity, start, end: at });
        }
    }

    /// Drops the open interval for `job` (the job aborted mid-op).
    pub fn discard(&mut self, job: JobId) {
        self.open.remove(&job);
    }

    /// Takes every finished interval recorded so far, in end order.
    pub fn drain(&mut self) -> IntervalColumns {
        std::mem::take(&mut self.finished)
    }

    /// Number of intervals currently open (jobs mid-op).
    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// Number of finished intervals not yet drained.
    pub fn finished_count(&self) -> usize {
        self.finished.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_end_produces_interval_in_end_order() {
        let mut r = TraceRecorder::new();
        let a = JobId(1);
        let b = JobId(2);
        r.begin(a, 0, Activity::Delay, SimTime::from_micros(10));
        r.begin(b, 3, Activity::Delay, SimTime::from_micros(11));
        r.end(b, SimTime::from_micros(20));
        r.end(a, SimTime::from_micros(30));
        let got = r.drain();
        assert_eq!(got.len(), 2);
        assert_eq!(got.get(0).job, b);
        assert_eq!(got.get(0).op_index, 3);
        assert_eq!(got.get(1).job, a);
        assert_eq!(got.get(1).end, SimTime::from_micros(30));
        assert!(r.drain().is_empty());
    }

    #[test]
    fn end_without_begin_is_a_no_op_and_discard_drops_open() {
        let mut r = TraceRecorder::new();
        let j = JobId(7);
        r.end(j, SimTime::from_micros(5));
        assert_eq!(r.finished_count(), 0);
        r.begin(j, 2, Activity::Delay, SimTime::from_micros(6));
        assert_eq!(r.open_count(), 1);
        r.discard(j);
        assert_eq!(r.open_count(), 0);
        r.end(j, SimTime::from_micros(9));
        assert!(r.drain().is_empty());
    }

    #[test]
    fn columns_stay_parallel_and_views_round_trip() {
        let mut r = TraceRecorder::new();
        r.reserve(3);
        let j = JobId(9);
        for (i, t) in [(0usize, 100u64), (1, 200), (2, 300)] {
            r.begin(j, i, Activity::Delay, SimTime::from_micros(t));
            r.end(j, SimTime::from_micros(t + 50));
        }
        let cols = r.drain();
        assert_eq!(cols.len(), 3);
        assert_eq!(cols.job.len(), 3);
        assert_eq!(cols.op_index, vec![0, 1, 2]);
        assert_eq!(cols.start.len(), 3);
        assert_eq!(cols.end.len(), 3);
        assert_eq!(cols.activity.len(), 3);
        let rows: Vec<OpInterval> = cols.iter().collect();
        assert_eq!(rows[2].start, SimTime::from_micros(300));
        assert_eq!(rows[2].end, SimTime::from_micros(350));
        assert_eq!(cols.get(1), rows[1]);
    }
}
