//! The discrete-event simulation engine.
//!
//! A [`Simulation`] owns a set of machines (each a CPU and a NIC, both
//! processor-sharing), a [`LockManager`], and a calendar of events. Work
//! enters as jobs — linear [`Trace`]s of [`Op`]s — submitted by a
//! [`Driver`] (the client emulator). The engine plays each trace against the
//! contended resources and calls the driver back when a job finishes or a
//! timer fires.
//!
//! Determinism: given the same machines, traces, timers, and seeds, two runs
//! produce identical event orders (ties are broken by a monotone sequence
//! number).

use crate::calendar::{CalendarQueue, EventId};
use crate::fault::FaultPlan;
use crate::lock::{GrantPolicy, LockId, LockManager, LockStats, SemGrant, SemaphoreId};
use crate::op::{Op, Trace};
use crate::ps::{PsResource, PsStats};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::trace::{Activity, IntervalColumns, TraceRecorder};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Identifies a simulated machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MachineId(pub u32);

/// Identifies a job (one submitted trace).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

/// Details handed to [`Driver::on_job_complete`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobDone {
    /// The completed job.
    pub id: JobId,
    /// The caller-supplied tag from [`Simulation::submit`].
    pub tag: u64,
    /// When the job was submitted.
    pub submitted: SimTime,
    /// When the job finished its last op.
    pub completed: SimTime,
}

impl JobDone {
    /// End-to-end simulated latency of the job.
    pub fn latency(&self) -> SimDuration {
        self.completed.duration_since(self.submitted)
    }
}

/// Why a job was torn down before finishing its trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// [`Simulation::cancel`] was called.
    Cancelled,
    /// The deadline from [`Simulation::submit_with_deadline`] expired.
    DeadlineExpired,
    /// A machine the job was using (or about to use) is down.
    MachineCrash,
    /// A transient per-op fault from the installed [`FaultPlan`] tripped.
    TransientFault,
    /// Admission control refused the job (a bounded semaphore's wait queue
    /// was full). Counted under [`EngineStats::rejected`], not `aborted`.
    Rejected,
    /// The job was chosen as the victim of a lock wait-for cycle. The
    /// engine detects cycles when a lock request parks and deterministically
    /// aborts the youngest (highest [`JobId`]) job in the cycle.
    Deadlock,
}

/// Details handed to [`Driver::on_job_aborted`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobAborted {
    /// The torn-down job.
    pub id: JobId,
    /// The caller-supplied tag from [`Simulation::submit`].
    pub tag: u64,
    /// When the job was submitted.
    pub submitted: SimTime,
    /// When the job was torn down.
    pub aborted: SimTime,
    /// Why.
    pub reason: AbortReason,
}

/// A malformed trace detected during execution: the offending job, the
/// index of the offending op within its trace, and what went wrong. The
/// engine surfaces this instead of panicking so chaos runs fail diagnosably.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimError {
    /// The job whose trace misbehaved.
    pub job: JobId,
    /// Index of the offending op within the job's trace.
    pub op_index: usize,
    /// What went wrong.
    pub kind: SimErrorKind,
}

/// The ways a trace can be malformed at execution time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimErrorKind {
    /// An `Unlock` op named a lock the job does not hold.
    UnlockNotHeld(LockId),
    /// A `Lock` op re-requested a lock the job already holds or waits on.
    LockReacquired(LockId),
    /// A `SemRelease` op fired with no unit of the semaphore in use.
    SemOverRelease(SemaphoreId),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job {:?} op {}: ", self.job, self.op_index)?;
        match self.kind {
            SimErrorKind::UnlockNotHeld(l) => write!(f, "unlock of {l:?} not held"),
            SimErrorKind::LockReacquired(l) => write!(f, "re-acquisition of {l:?}"),
            SimErrorKind::SemOverRelease(s) => write!(f, "over-release of semaphore {s:?}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Callbacks through which the simulation hands control to the workload
/// layer. The driver is external to the [`Simulation`], so callbacks receive
/// `&mut Simulation` and may submit jobs or set timers re-entrantly.
pub trait Driver {
    /// A job finished its trace.
    fn on_job_complete(&mut self, sim: &mut Simulation, done: JobDone);
    /// A timer set with [`Simulation::set_timer`] fired.
    fn on_timer(&mut self, sim: &mut Simulation, token: u64);
    /// A job was torn down by the engine before completing (deadline,
    /// fault, or admission rejection). Not called for
    /// [`Simulation::cancel`], whose caller already knows. Default: ignore.
    fn on_job_aborted(&mut self, _sim: &mut Simulation, _info: JobAborted) {}
}

/// A no-op driver, useful for tests that only exercise resources.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullDriver;

impl Driver for NullDriver {
    fn on_job_complete(&mut self, _sim: &mut Simulation, _done: JobDone) {}
    fn on_timer(&mut self, _sim: &mut Simulation, _token: u64) {}
}

/// Which processor-sharing resource of a machine an event refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ResKey {
    Cpu(u32),
    Nic(u32),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    /// A predicted processor-sharing completion; stale if the epoch moved.
    Ps { res: ResKey, epoch: u64 },
    /// A `Delay` op (or the latency leg of a `Net` op) finished.
    DelayDone { job: JobId },
    /// Deferred start of a freshly submitted job, or deferred resumption of
    /// a job granted a lock/semaphore by an aborting holder.
    JobStart { job: JobId },
    /// A driver timer.
    Timer { token: u64 },
    /// A per-job deadline; stale if the job already finished or aborted.
    Deadline { job: JobId },
    /// A planned machine crash from the installed [`FaultPlan`].
    Crash { machine: u32 },
    /// A planned machine restart from the installed [`FaultPlan`].
    Restart { machine: u32 },
}

/// Progress of a `Net` op within a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NetPhase {
    Idle,
    SenderNic,
    Latency,
    ReceiverNic,
}

#[derive(Debug)]
struct Job {
    trace: Trace,
    pc: usize,
    net_phase: NetPhase,
    tag: u64,
    submitted: SimTime,
    /// Pending deadline event, cancelled eagerly when the job ends so the
    /// calendar never carries deadlines for finished jobs.
    deadline_ev: Option<EventId>,
}

#[derive(Debug)]
struct Machine {
    name: String,
    cpu: PsResource,
    nic: PsResource,
    /// Set while the machine is inside a [`FaultPlan`] crash window.
    down: bool,
    /// Live completion predictions; superseded ones are cancelled on the
    /// calendar instead of lingering as stale events.
    cpu_ev: Option<EventId>,
    nic_ev: Option<EventId>,
}

/// Counters maintained by the engine itself. Always balanced:
/// `submitted == completed + aborted + rejected + jobs_in_flight()`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EngineStats {
    /// Jobs submitted so far.
    pub submitted: u64,
    /// Jobs that ran to completion.
    pub completed: u64,
    /// Jobs torn down before completion (cancelled, deadline expired,
    /// machine crash, transient fault).
    pub aborted: u64,
    /// Jobs refused by admission control (bounded semaphore queue full).
    pub rejected: u64,
    /// Lock wait-for cycles broken by aborting a victim. Victims are also
    /// counted under `aborted`.
    pub deadlocks: u64,
    /// Calendar events dispatched.
    pub events: u64,
    /// Events that were dead on arrival: cancelled calendar entries
    /// (superseded PS predictions, retired deadlines) plus lazily detected
    /// stale dispatches (epoch mismatches, delays/deadlines of jobs that
    /// already ended). High values mean the calendar is mostly garbage.
    pub stale_events: u64,
    /// High-water mark of pending events on the calendar.
    pub peak_calendar: u64,
}

/// Fault-injection state: the plan plus its private random stream, present
/// only when a non-trivial plan is installed so the healthy path costs
/// nothing.
#[derive(Debug)]
struct FaultState {
    plan: FaultPlan,
    rng: SimRng,
}

/// The simulation world: machines, locks, jobs, and the event calendar.
///
/// ```
/// use dynamid_sim::*;
/// use dynamid_sim::engine::NullDriver;
/// let mut sim = Simulation::new(SimDuration::from_micros(100));
/// let m = sim.add_machine("web", 1.0, 100.0);
/// let trace: Trace = [Op::Cpu { machine: m, micros: 500 }].into_iter().collect();
/// sim.submit(trace, 0);
/// sim.run(SimTime::from_micros(10_000), &mut NullDriver).unwrap();
/// assert_eq!(sim.stats().completed, 1);
/// ```
#[derive(Debug)]
pub struct Simulation {
    now: SimTime,
    queue: CalendarQueue<EventKind>,
    machines: Vec<Machine>,
    locks: LockManager,
    jobs: HashMap<JobId, Job>,
    next_job: u64,
    link_latency: SimDuration,
    stats: EngineStats,
    faults: Option<FaultState>,
    trace: Option<TraceRecorder>,
}

impl Simulation {
    /// Creates a simulation whose machine-to-machine transfers incur the
    /// given one-way link latency, with the default (writer-priority) lock
    /// grant policy.
    pub fn new(link_latency: SimDuration) -> Self {
        Self::with_policy(link_latency, GrantPolicy::default())
    }

    /// Creates a simulation with an explicit lock grant policy.
    pub fn with_policy(link_latency: SimDuration, policy: GrantPolicy) -> Self {
        Simulation {
            now: SimTime::ZERO,
            queue: CalendarQueue::new(),
            machines: Vec::new(),
            locks: LockManager::new(policy),
            jobs: HashMap::new(),
            next_job: 0,
            link_latency,
            stats: EngineStats::default(),
            faults: None,
            trace: None,
        }
    }

    /// Arms the op-interval recorder: from now on every CPU service, NIC
    /// transfer, delay, lock wait, and semaphore wait is captured as an
    /// [`OpInterval`](crate::trace::OpInterval) row in the recorder's column
    /// store. Recording is purely observational — it never schedules
    /// events or consumes randomness — so the event stream is bit-identical
    /// to an untraced run.
    pub fn enable_tracing(&mut self) {
        self.trace = Some(TraceRecorder::new());
    }

    /// `true` once [`enable_tracing`](Self::enable_tracing) has been called.
    pub fn tracing_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// Takes every finished op interval recorded so far as column buffers,
    /// in the engine's deterministic end order. Empty when tracing is off.
    pub fn take_op_intervals(&mut self) -> IntervalColumns {
        self.trace.as_mut().map(TraceRecorder::drain).unwrap_or_default()
    }

    /// A lock's registered name (e.g. `table:items`).
    pub fn lock_name(&self, lock: LockId) -> &str {
        self.locks.lock_name(lock)
    }

    /// A semaphore's registered name (e.g. `web-pool`).
    pub fn semaphore_name(&self, sem: SemaphoreId) -> &str {
        self.locks.semaphore_name(sem)
    }

    /// Installs a [`FaultPlan`]: schedules its crash/restart windows on the
    /// calendar and arms transient-failure draws and degradation factors.
    /// Installing a trivial plan is a no-op, so a zero-fault run is
    /// bit-identical to one that never called this.
    ///
    /// # Panics
    ///
    /// Panics if the plan fails [`FaultPlan::validate`] or names an unknown
    /// machine.
    pub fn install_faults(&mut self, plan: FaultPlan) {
        plan.validate().expect("invalid fault plan");
        if plan.is_trivial() {
            return;
        }
        for w in &plan.crashes {
            assert!(
                (w.machine.0 as usize) < self.machines.len(),
                "fault plan names unknown machine {:?}",
                w.machine
            );
            self.schedule(w.at.max(self.now), EventKind::Crash { machine: w.machine.0 });
            self.schedule(w.restart.max(self.now), EventKind::Restart { machine: w.machine.0 });
        }
        for d in &plan.degradations {
            assert!(
                (d.machine.0 as usize) < self.machines.len(),
                "fault plan names unknown machine {:?}",
                d.machine
            );
        }
        // A salted fork keeps the fault stream disjoint from client streams
        // even when callers reuse the same master seed everywhere.
        let mut root = SimRng::new(plan.seed);
        let rng = root.fork(0xFA17);
        self.faults = Some(FaultState { plan, rng });
    }

    /// `true` while `m` is inside an installed crash window.
    pub fn machine_is_down(&self, m: MachineId) -> bool {
        self.machines[m.0 as usize].down
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Engine-level counters, folding in the calendar's tombstone count
    /// and high-water mark.
    pub fn stats(&self) -> EngineStats {
        let mut s = self.stats;
        s.stale_events += self.queue.stale_popped();
        s.peak_calendar = self.queue.peak_len() as u64;
        s
    }

    /// Jobs currently in flight (submitted but not completed).
    pub fn jobs_in_flight(&self) -> usize {
        self.jobs.len()
    }

    /// Adds a machine with `cores` CPU cores and a NIC of `nic_mbps`
    /// megabits per second, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if `cores` or `nic_mbps` is not positive.
    pub fn add_machine(&mut self, name: impl Into<String>, cores: f64, nic_mbps: f64) -> MachineId {
        let name = name.into();
        let id = MachineId(self.machines.len() as u32);
        self.machines.push(Machine {
            // One request cannot run faster than one core.
            cpu: PsResource::with_job_cap(format!("{name}.cpu"), cores, 1.0),
            // Mb/s -> bytes per microsecond: mbps * 1e6 / 8 / 1e6.
            nic: PsResource::new(format!("{name}.nic"), nic_mbps / 8.0),
            name,
            down: false,
            cpu_ev: None,
            nic_ev: None,
        });
        id
    }

    /// Number of machines.
    pub fn machine_count(&self) -> usize {
        self.machines.len()
    }

    /// A machine's display name.
    pub fn machine_name(&self, m: MachineId) -> &str {
        &self.machines[m.0 as usize].name
    }

    /// CPU statistics for a machine, current as of [`now`](Self::now).
    pub fn cpu_stats(&mut self, m: MachineId) -> PsStats {
        let now = self.now;
        let mach = &mut self.machines[m.0 as usize];
        mach.cpu.advance(now);
        mach.cpu.stats()
    }

    /// NIC statistics for a machine, current as of [`now`](Self::now).
    /// `work_done` is in bytes transferred through the interface.
    pub fn nic_stats(&mut self, m: MachineId) -> PsStats {
        let now = self.now;
        let mach = &mut self.machines[m.0 as usize];
        mach.nic.advance(now);
        mach.nic.stats()
    }

    /// Registers a read/write lock (e.g., one per database table).
    pub fn register_lock(&mut self, name: impl Into<String>) -> LockId {
        self.locks.register_lock(name)
    }

    /// Registers a counting semaphore (e.g., the web-server process pool).
    pub fn register_semaphore(&mut self, name: impl Into<String>, capacity: u32) -> SemaphoreId {
        self.locks.register_semaphore(name, capacity)
    }

    /// Registers a counting semaphore with a bounded accept queue: once
    /// `max_waiters` jobs are queued, further acquisitions are rejected and
    /// the requesting job is torn down with [`AbortReason::Rejected`].
    pub fn register_semaphore_bounded(
        &mut self,
        name: impl Into<String>,
        capacity: u32,
        max_waiters: u32,
    ) -> SemaphoreId {
        self.locks.register_semaphore_bounded(name, capacity, max_waiters)
    }

    /// Statistics for one semaphore (rejections land in
    /// [`LockStats::rejected`]).
    pub fn semaphore_stats(&self, sem: SemaphoreId) -> LockStats {
        self.locks.semaphore_stats(sem)
    }

    /// Describes any lock/semaphore state or in-service PS share that should
    /// not exist once a run has drained (no jobs in flight): aborted jobs
    /// must have released everything. Returns `None` when clean.
    pub fn leak_report(&self) -> Option<String> {
        if let Some(r) = self.locks.leak_report() {
            return Some(r);
        }
        for m in &self.machines {
            if m.cpu.in_service() > 0 {
                return Some(format!(
                    "{} still has {} jobs in service",
                    m.name,
                    m.cpu.in_service()
                ));
            }
            if m.nic.in_service() > 0 {
                return Some(format!(
                    "{}.nic still has {} jobs in service",
                    m.name,
                    m.nic.in_service()
                ));
            }
        }
        None
    }

    /// Statistics for one lock.
    pub fn lock_stats(&self, lock: LockId) -> LockStats {
        self.locks.lock_stats(lock)
    }

    /// Aggregate statistics over all locks.
    pub fn total_lock_stats(&self) -> LockStats {
        self.locks.total_lock_stats()
    }

    /// Submits a trace for execution, returning its job id. The job starts
    /// at the current instant (via a zero-delay calendar event, so it is
    /// safe to call from driver callbacks).
    ///
    /// Malformed traces (unbalanced lock/semaphore ops) are accepted here
    /// and surface as a structured [`SimError`] from [`run`](Self::run) when
    /// the offending op executes.
    pub fn submit(&mut self, trace: Trace, tag: u64) -> JobId {
        let id = JobId(self.next_job);
        self.next_job += 1;
        if let Some(t) = &mut self.trace {
            // Each op closes at most one interval, so the op count bounds
            // what this job can append — reserving here keeps the record
            // path free of mid-run reallocations.
            t.reserve(trace.len());
        }
        self.jobs.insert(
            id,
            Job {
                trace,
                pc: 0,
                net_phase: NetPhase::Idle,
                tag,
                submitted: self.now,
                deadline_ev: None,
            },
        );
        self.stats.submitted += 1;
        self.schedule(self.now, EventKind::JobStart { job: id });
        id
    }

    /// Submits a trace with a deadline: if the job is still in flight
    /// `deadline` from now, it is torn down with
    /// [`AbortReason::DeadlineExpired`] and the driver's
    /// [`on_job_aborted`](Driver::on_job_aborted) is called. A job that
    /// completes (or is rejected) first leaves a stale deadline event that
    /// is ignored — it is never counted twice.
    pub fn submit_with_deadline(&mut self, trace: Trace, tag: u64, deadline: SimDuration) -> JobId {
        let id = self.submit(trace, tag);
        let ev = self.schedule(self.now + deadline, EventKind::Deadline { job: id });
        self.jobs.get_mut(&id).expect("just submitted").deadline_ev = Some(ev);
        id
    }

    /// Tears down an in-flight job: removes it from whatever resource or
    /// wait queue it occupies, releases every lock and semaphore unit its
    /// trace prefix acquired (granting waiters), and counts it under
    /// [`EngineStats::aborted`]. Returns `false` when the job is unknown or
    /// already finished. [`Driver::on_job_aborted`] is *not* invoked — the
    /// caller initiated the cancellation and accounts for it directly.
    pub fn cancel(&mut self, job: JobId) -> bool {
        self.abort_job(job, AbortReason::Cancelled).is_some()
    }

    /// Schedules a driver timer at the given absolute time.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn set_timer(&mut self, at: SimTime, token: u64) {
        assert!(at >= self.now, "timer set in the past");
        self.schedule(at, EventKind::Timer { token });
    }

    /// Convenience: a timer `delay` from now.
    pub fn set_timer_after(&mut self, delay: SimDuration, token: u64) {
        self.set_timer(self.now + delay, token);
    }

    fn schedule(&mut self, at: SimTime, kind: EventKind) -> EventId {
        self.queue.schedule(at, kind)
    }

    /// Runs the calendar until `until` (inclusive), advancing all resource
    /// clocks to `until` at the end so utilization integrals are exact.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] naming the offending job and op when a
    /// malformed trace executes (unlock without hold, lock re-acquisition,
    /// semaphore over-release). The simulation should be discarded after an
    /// error: partial state of the offending job is not unwound.
    pub fn run<D: Driver>(&mut self, until: SimTime, driver: &mut D) -> Result<(), SimError> {
        while let Some(at) = self.queue.peek_at() {
            if at > until {
                break;
            }
            let (at, kind) = self.queue.pop().expect("peeked event is poppable");
            debug_assert!(at >= self.now, "event in the past");
            self.now = at;
            self.stats.events += 1;
            self.dispatch(kind, driver)?;
        }
        self.now = until;
        for m in &mut self.machines {
            m.cpu.advance(until);
            m.nic.advance(until);
        }
        Ok(())
    }

    /// Runs until the calendar is empty (tests and drain scenarios).
    /// Returns the time of the last processed event.
    ///
    /// # Errors
    ///
    /// Same contract as [`run`](Self::run).
    pub fn run_until_idle<D: Driver>(&mut self, driver: &mut D) -> Result<SimTime, SimError> {
        while let Some((at, kind)) = self.queue.pop() {
            self.now = at;
            self.stats.events += 1;
            self.dispatch(kind, driver)?;
        }
        Ok(self.now)
    }

    fn dispatch<D: Driver>(&mut self, kind: EventKind, driver: &mut D) -> Result<(), SimError> {
        match kind {
            EventKind::Ps { res, epoch } => {
                let resource = self.resource_mut(res);
                if resource.epoch() != epoch {
                    // Predictions are cancelled eagerly in `refresh_ps`, so an
                    // epoch mismatch here is a backstop, not the common path.
                    self.stats.stale_events += 1;
                    return Ok(()); // stale prediction
                }
                let now = self.now;
                let resource = self.resource_mut(res);
                resource.advance(now);
                let done = resource.pop_completed(now);
                let mut work: Vec<JobId> = Vec::with_capacity(done.len());
                for job in done {
                    self.on_service_done(res, job, &mut work, driver);
                }
                self.refresh_ps(res);
                self.drain(work, driver)
            }
            EventKind::DelayDone { job } => {
                let mut work = Vec::new();
                self.on_delay_done(job, &mut work, driver);
                self.drain(work, driver)
            }
            EventKind::JobStart { job } => self.drain(vec![job], driver),
            EventKind::Timer { token } => {
                driver.on_timer(self, token);
                Ok(())
            }
            EventKind::Deadline { job } => {
                // Stale when the job already completed, aborted, or was
                // rejected: deadline events are cancelled eagerly when a job
                // leaves the table, so reaching here for a dead job means the
                // cancel was missed — count it.
                if let Some(info) = self.abort_job(job, AbortReason::DeadlineExpired) {
                    driver.on_job_aborted(self, info);
                } else {
                    self.stats.stale_events += 1;
                }
                Ok(())
            }
            EventKind::Crash { machine } => {
                self.machines[machine as usize].down = true;
                // Abort everything in service on the machine, in the
                // resources' deterministic virtual-finish order.
                let mut victims = self.machines[machine as usize].cpu.active_jobs();
                victims.extend(self.machines[machine as usize].nic.active_jobs());
                for v in victims {
                    if let Some(info) = self.abort_job(v, AbortReason::MachineCrash) {
                        driver.on_job_aborted(self, info);
                    }
                }
                Ok(())
            }
            EventKind::Restart { machine } => {
                self.machines[machine as usize].down = false;
                Ok(())
            }
        }
    }

    fn resource_mut(&mut self, res: ResKey) -> &mut PsResource {
        match res {
            ResKey::Cpu(i) => &mut self.machines[i as usize].cpu,
            ResKey::Nic(i) => &mut self.machines[i as usize].nic,
        }
    }

    /// (Re)schedules the completion prediction for a resource.
    ///
    /// When the new prediction lands in the calendar bucket the old one
    /// already occupies, the event is updated in place and no tombstone is
    /// created; otherwise the previous prediction is cancelled so stale
    /// `Ps` events almost never surface. The epoch check in `dispatch`
    /// remains as a counted backstop either way.
    fn refresh_ps(&mut self, res: ResKey) {
        let now = self.now;
        let resource = self.resource_mut(res);
        let next = resource.next_completion(now).map(|at| (at, resource.epoch()));
        let machine = match res {
            ResKey::Cpu(i) | ResKey::Nic(i) => i as usize,
        };
        let slot = match res {
            ResKey::Cpu(_) => &mut self.machines[machine].cpu_ev,
            ResKey::Nic(_) => &mut self.machines[machine].nic_ev,
        };
        let new = match (slot.take(), next) {
            (None, None) => None,
            (None, Some((at, epoch))) => {
                Some(self.queue.schedule(at, EventKind::Ps { res, epoch }))
            }
            (Some(id), None) => {
                self.queue.cancel(id);
                None
            }
            (Some(id), Some((at, epoch))) => {
                if self.queue.reschedule(id, at, EventKind::Ps { res, epoch }) {
                    Some(id)
                } else {
                    let new = self.queue.schedule(at, EventKind::Ps { res, epoch });
                    self.queue.cancel(id);
                    Some(new)
                }
            }
        };
        let slot = match res {
            ResKey::Cpu(_) => &mut self.machines[machine].cpu_ev,
            ResKey::Nic(_) => &mut self.machines[machine].nic_ev,
        };
        *slot = new;
    }

    /// A job finished service on a CPU or NIC: advance its program state and
    /// queue it for further stepping.
    fn on_service_done<D: Driver>(
        &mut self,
        res: ResKey,
        job_id: JobId,
        work: &mut Vec<JobId>,
        driver: &mut D,
    ) {
        let job = self.jobs.get_mut(&job_id).expect("service for unknown job");
        match res {
            ResKey::Cpu(_) => {
                if let Some(t) = &mut self.trace {
                    t.end(job_id, self.now);
                }
                let job = self.jobs.get_mut(&job_id).expect("service for unknown job");
                job.pc += 1;
                work.push(job_id);
            }
            ResKey::Nic(_) => match job.net_phase {
                NetPhase::SenderNic => {
                    job.net_phase = NetPhase::Latency;
                    if self.link_latency.is_zero() {
                        self.enter_receiver_nic(job_id, work, driver);
                    } else {
                        let at = self.now + self.link_latency;
                        self.schedule(at, EventKind::DelayDone { job: job_id });
                    }
                }
                NetPhase::ReceiverNic => {
                    job.net_phase = NetPhase::Idle;
                    job.pc += 1;
                    if let Some(t) = &mut self.trace {
                        t.end(job_id, self.now);
                    }
                    work.push(job_id);
                }
                other => panic!("NIC completion in phase {other:?}"),
            },
        }
    }

    fn enter_receiver_nic<D: Driver>(
        &mut self,
        job_id: JobId,
        work: &mut Vec<JobId>,
        driver: &mut D,
    ) {
        let job = self.jobs.get_mut(&job_id).expect("unknown job");
        let Op::Net { to, bytes, .. } = job.trace.ops()[job.pc] else {
            panic!("receiver phase on non-Net op");
        };
        // The destination crashed while the message was on the wire.
        if self.machines[to.0 as usize].down {
            if let Some(info) = self.abort_job(job_id, AbortReason::MachineCrash) {
                driver.on_job_aborted(self, info);
            }
            return;
        }
        let job = self.jobs.get_mut(&job_id).expect("unknown job");
        job.net_phase = NetPhase::ReceiverNic;
        let mut demand = bytes as f64;
        if let Some(f) = &self.faults {
            demand *= f.plan.nic_factor(to, self.now);
        }
        let now = self.now;
        let nic = &mut self.machines[to.0 as usize].nic;
        nic.enqueue(now, job_id, demand);
        self.refresh_ps(ResKey::Nic(to.0));
        let _ = work;
    }

    fn on_delay_done<D: Driver>(&mut self, job_id: JobId, work: &mut Vec<JobId>, driver: &mut D) {
        // Stale when the job aborted while its delay (or the latency leg of
        // its transfer) was pending.
        let Some(job) = self.jobs.get_mut(&job_id) else {
            self.stats.stale_events += 1;
            return;
        };
        match job.net_phase {
            NetPhase::Latency => self.enter_receiver_nic(job_id, work, driver),
            NetPhase::Idle => {
                job.pc += 1;
                if let Some(t) = &mut self.trace {
                    t.end(job_id, self.now);
                }
                work.push(job_id);
            }
            other => panic!("delay completion in phase {other:?}"),
        }
    }

    /// Steps every job in `work` (and any jobs they unblock) until each is
    /// parked in a resource, waiting on a lock, delayed, or complete.
    fn drain<D: Driver>(&mut self, work: Vec<JobId>, driver: &mut D) -> Result<(), SimError> {
        let mut queue: Vec<JobId> = work;
        while let Some(job_id) = queue.pop() {
            self.step_job(job_id, &mut queue, driver)?;
        }
        Ok(())
    }

    /// `true` when the installed fault plan's transient-failure draw trips.
    /// Draws come from the plan's private stream, in event order, so the
    /// sequence is deterministic; without a plan no randomness is consumed.
    fn transient_trips(&mut self) -> bool {
        match &mut self.faults {
            Some(f) if f.plan.transient_fail_prob > 0.0 => f.rng.chance(f.plan.transient_fail_prob),
            _ => false,
        }
    }

    /// Tears down `job_id` from the fault path inside a drain, notifying the
    /// driver.
    fn abort_in_step<D: Driver>(&mut self, job_id: JobId, reason: AbortReason, driver: &mut D) {
        if let Some(info) = self.abort_job(job_id, reason) {
            driver.on_job_aborted(self, info);
        }
    }

    /// Executes ops of one job until it blocks or finishes. Newly unblocked
    /// jobs are appended to `queue`.
    fn step_job<D: Driver>(
        &mut self,
        job_id: JobId,
        queue: &mut Vec<JobId>,
        driver: &mut D,
    ) -> Result<(), SimError> {
        loop {
            // Stale when the job was aborted between being scheduled to
            // start/resume and the event firing.
            let Some(job) = self.jobs.get_mut(&job_id) else {
                return Ok(());
            };
            if job.pc >= job.trace.len() {
                let done = JobDone {
                    id: job_id,
                    tag: job.tag,
                    submitted: job.submitted,
                    completed: self.now,
                };
                let deadline_ev = job.deadline_ev;
                self.jobs.remove(&job_id);
                if let Some(ev) = deadline_ev {
                    self.queue.cancel(ev);
                }
                self.stats.completed += 1;
                driver.on_job_complete(self, done);
                return Ok(());
            }
            let pc = job.pc;
            let op = job.trace.ops()[pc].clone();
            match op {
                Op::Cpu { machine, micros } => {
                    if self.machines[machine.0 as usize].down {
                        self.abort_in_step(job_id, AbortReason::MachineCrash, driver);
                        return Ok(());
                    }
                    if self.transient_trips() {
                        self.abort_in_step(job_id, AbortReason::TransientFault, driver);
                        return Ok(());
                    }
                    let mut demand = micros as f64;
                    if let Some(f) = &self.faults {
                        demand *= f.plan.cpu_factor(machine, self.now);
                    }
                    let now = self.now;
                    if let Some(t) = &mut self.trace {
                        t.begin(job_id, pc, Activity::Cpu { machine, demand_micros: micros }, now);
                    }
                    self.machines[machine.0 as usize].cpu.enqueue(now, job_id, demand);
                    self.refresh_ps(ResKey::Cpu(machine.0));
                    return Ok(());
                }
                Op::Net { from, to, bytes } => {
                    if from == to || bytes == 0 {
                        job.pc += 1;
                        continue;
                    }
                    if self.machines[from.0 as usize].down || self.machines[to.0 as usize].down {
                        self.abort_in_step(job_id, AbortReason::MachineCrash, driver);
                        return Ok(());
                    }
                    if self.transient_trips() {
                        self.abort_in_step(job_id, AbortReason::TransientFault, driver);
                        return Ok(());
                    }
                    let job = self.jobs.get_mut(&job_id).expect("job");
                    job.net_phase = NetPhase::SenderNic;
                    let mut demand = bytes as f64;
                    if let Some(f) = &self.faults {
                        demand *= f.plan.nic_factor(from, self.now);
                    }
                    let now = self.now;
                    if let Some(t) = &mut self.trace {
                        t.begin(job_id, pc, Activity::Net { from, to, bytes }, now);
                    }
                    self.machines[from.0 as usize].nic.enqueue(now, job_id, demand);
                    self.refresh_ps(ResKey::Nic(from.0));
                    return Ok(());
                }
                Op::Delay { micros } => {
                    if let Some(t) = &mut self.trace {
                        t.begin(job_id, pc, Activity::Delay, self.now);
                    }
                    let at = self.now + SimDuration::from_micros(micros);
                    self.schedule(at, EventKind::DelayDone { job: job_id });
                    return Ok(());
                }
                Op::Lock { lock, mode } => {
                    if self.locks.is_holder_or_waiter(lock, job_id) {
                        return Err(SimError {
                            job: job_id,
                            op_index: pc,
                            kind: SimErrorKind::LockReacquired(lock),
                        });
                    }
                    if self.locks.acquire(self.now, lock, mode, job_id) {
                        let job = self.jobs.get_mut(&job_id).expect("job");
                        job.pc += 1;
                        continue;
                    }
                    // Parked; the pc stays at the Lock op and is advanced by
                    // the grant path below. A new wait-for edge exists only
                    // at this point, so this is the one place a cycle can
                    // appear.
                    if let Some(t) = &mut self.trace {
                        t.begin(job_id, pc, Activity::LockWait { lock }, self.now);
                    }
                    if let Some(victim) = self.find_deadlock_victim(job_id) {
                        self.stats.deadlocks += 1;
                        self.abort_in_step(victim, AbortReason::Deadlock, driver);
                    }
                    return Ok(());
                }
                Op::Unlock { lock } => {
                    if !self.locks.holds(lock, job_id) {
                        return Err(SimError {
                            job: job_id,
                            op_index: pc,
                            kind: SimErrorKind::UnlockNotHeld(lock),
                        });
                    }
                    let granted = self.locks.release(self.now, lock, job_id);
                    for g in granted {
                        // The granted job was parked at its Lock op.
                        if let Some(t) = &mut self.trace {
                            t.end(g, self.now);
                        }
                        let gj = self.jobs.get_mut(&g).expect("granted unknown job");
                        gj.pc += 1;
                        queue.push(g);
                    }
                    let job = self.jobs.get_mut(&job_id).expect("job");
                    job.pc += 1;
                    continue;
                }
                Op::SemAcquire { sem } => match self.locks.sem_acquire(self.now, sem, job_id) {
                    SemGrant::Granted => {
                        let job = self.jobs.get_mut(&job_id).expect("job");
                        job.pc += 1;
                        continue;
                    }
                    SemGrant::Queued => {
                        if let Some(t) = &mut self.trace {
                            t.begin(job_id, pc, Activity::SemWait { sem }, self.now);
                        }
                        return Ok(());
                    }
                    SemGrant::Rejected => {
                        self.abort_in_step(job_id, AbortReason::Rejected, driver);
                        return Ok(());
                    }
                },
                Op::SemRelease { sem } => {
                    if !self.locks.sem_can_release(sem) {
                        return Err(SimError {
                            job: job_id,
                            op_index: pc,
                            kind: SimErrorKind::SemOverRelease(sem),
                        });
                    }
                    if let Some(g) = self.locks.sem_release(self.now, sem) {
                        if let Some(t) = &mut self.trace {
                            t.end(g, self.now);
                        }
                        let gj = self.jobs.get_mut(&g).expect("granted unknown job");
                        gj.pc += 1;
                        queue.push(g);
                    }
                    let job = self.jobs.get_mut(&job_id).expect("job");
                    job.pc += 1;
                    continue;
                }
            }
        }
    }

    /// The common teardown path: removes the job from whatever it occupies,
    /// releases everything its trace prefix acquired (granting waiters via
    /// zero-delay resume events, which keeps this callable without a driver
    /// borrow), and updates the abort/reject counters. Returns `None` when
    /// the job is unknown (stale deadline, double cancel).
    fn abort_job(&mut self, job_id: JobId, reason: AbortReason) -> Option<JobAborted> {
        let job = self.jobs.remove(&job_id)?;
        if let Some(ev) = job.deadline_ev {
            self.queue.cancel(ev);
        }
        // A half-finished op interval is unattributable: drop it.
        if let Some(t) = &mut self.trace {
            t.discard(job_id);
        }
        // 1. Detach from the resource or wait queue the job is parked in.
        if job.pc < job.trace.len() {
            let now = self.now;
            match job.trace.ops()[job.pc] {
                Op::Cpu { machine, .. } => {
                    if self.machines[machine.0 as usize].cpu.cancel(now, job_id) {
                        self.refresh_ps(ResKey::Cpu(machine.0));
                    }
                }
                Op::Net { from, to, .. } => match job.net_phase {
                    NetPhase::SenderNic => {
                        if self.machines[from.0 as usize].nic.cancel(now, job_id) {
                            self.refresh_ps(ResKey::Nic(from.0));
                        }
                    }
                    NetPhase::ReceiverNic => {
                        if self.machines[to.0 as usize].nic.cancel(now, job_id) {
                            self.refresh_ps(ResKey::Nic(to.0));
                        }
                    }
                    // Latency leg (or not yet started): the pending
                    // DelayDone event goes stale and is ignored.
                    NetPhase::Latency | NetPhase::Idle => {}
                },
                Op::Lock { lock, .. } => {
                    for g in self.locks.cancel_waiting(now, lock, job_id) {
                        self.resume_granted(g);
                    }
                }
                Op::SemAcquire { sem } => {
                    self.locks.sem_cancel_waiting(sem, job_id);
                }
                // Delay: the pending DelayDone event goes stale.
                Op::Delay { .. } | Op::Unlock { .. } | Op::SemRelease { .. } => {}
            }
        }
        // 2. Release every lock and semaphore unit the executed prefix still
        //    holds, newest first (reverse acquisition order).
        let (held_locks, held_sems) = held_resources(&job.trace, job.pc);
        let now = self.now;
        for lock in held_locks.into_iter().rev() {
            for g in self.locks.release(now, lock, job_id) {
                self.resume_granted(g);
            }
        }
        for sem in held_sems.into_iter().rev() {
            if let Some(g) = self.locks.sem_release(now, sem) {
                self.resume_granted(g);
            }
        }
        // 3. Account. Rejections are load shedding, not faults.
        match reason {
            AbortReason::Rejected => self.stats.rejected += 1,
            _ => self.stats.aborted += 1,
        }
        Some(JobAborted {
            id: job_id,
            tag: job.tag,
            submitted: job.submitted,
            aborted: self.now,
            reason,
        })
    }

    /// Looks for a lock wait-for cycle through the freshly parked `start`
    /// and returns the victim to abort: the youngest (highest [`JobId`]) job
    /// on the cycle. Edges run from a parked waiter to every current holder
    /// of the lock it wants; since each job waits on at most one lock, any
    /// cycle created by this park must pass through `start`, so a reachability
    /// search from `start` back to itself is complete. Holders that are
    /// running (not parked on a lock) are dead ends. Returns `None` — at no
    /// cost beyond one queue scan — when there is no cycle, which is every
    /// park in the healthy figure runs (the paper apps order their locks
    /// globally).
    fn find_deadlock_victim(&self, start: JobId) -> Option<JobId> {
        let mut path = vec![start];
        let mut visited: HashSet<JobId> = HashSet::new();
        visited.insert(start);
        if self.deadlock_dfs(start, start, &mut path, &mut visited) {
            path.into_iter().max()
        } else {
            None
        }
    }

    fn deadlock_dfs(
        &self,
        node: JobId,
        start: JobId,
        path: &mut Vec<JobId>,
        visited: &mut HashSet<JobId>,
    ) -> bool {
        let Some(lock) = self.locks.waiting_on(node) else {
            return false;
        };
        for h in self.locks.holders(lock) {
            if h == start {
                return true;
            }
            if visited.insert(h) {
                path.push(h);
                if self.deadlock_dfs(h, start, path, visited) {
                    return true;
                }
                path.pop();
            }
        }
        false
    }

    /// A job granted a lock/semaphore by an aborting holder: advance it past
    /// its acquire op and schedule a zero-delay resume event.
    fn resume_granted(&mut self, g: JobId) {
        if let Some(t) = &mut self.trace {
            t.end(g, self.now);
        }
        let gj = self.jobs.get_mut(&g).expect("granted unknown job");
        gj.pc += 1;
        self.schedule(self.now, EventKind::JobStart { job: g });
    }
}

/// The locks and semaphore units still held after executing `trace[..pc]`,
/// in acquisition order.
fn held_resources(trace: &Trace, pc: usize) -> (Vec<LockId>, Vec<SemaphoreId>) {
    let mut locks = Vec::new();
    let mut sems = Vec::new();
    for op in &trace.ops()[..pc] {
        match op {
            Op::Lock { lock, .. } => locks.push(*lock),
            Op::Unlock { lock } => {
                if let Some(pos) = locks.iter().rposition(|l| l == lock) {
                    locks.remove(pos);
                }
            }
            Op::SemAcquire { sem } => sems.push(*sem),
            Op::SemRelease { sem } => {
                if let Some(pos) = sems.iter().rposition(|s| s == sem) {
                    sems.remove(pos);
                }
            }
            _ => {}
        }
    }
    (locks, sems)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lock::LockMode;

    struct Recorder {
        done: Vec<JobDone>,
        timers: Vec<(SimTime, u64)>,
        aborted: Vec<JobAborted>,
    }

    impl Recorder {
        fn new() -> Self {
            Recorder { done: Vec::new(), timers: Vec::new(), aborted: Vec::new() }
        }
    }

    impl Driver for Recorder {
        fn on_job_complete(&mut self, _sim: &mut Simulation, done: JobDone) {
            self.done.push(done);
        }
        fn on_timer(&mut self, sim: &mut Simulation, token: u64) {
            self.timers.push((sim.now(), token));
        }
        fn on_job_aborted(&mut self, _sim: &mut Simulation, info: JobAborted) {
            self.aborted.push(info);
        }
    }

    fn t(micros: u64) -> SimTime {
        SimTime::from_micros(micros)
    }

    #[test]
    fn single_cpu_job_completes_on_time() {
        let mut sim = Simulation::new(SimDuration::ZERO);
        let m = sim.add_machine("web", 1.0, 100.0);
        let trace: Trace = [Op::Cpu { machine: m, micros: 400 }].into_iter().collect();
        sim.submit(trace, 42);
        let mut rec = Recorder::new();
        sim.run(t(10_000), &mut rec).unwrap();
        assert_eq!(rec.done.len(), 1);
        assert_eq!(rec.done[0].tag, 42);
        assert_eq!(rec.done[0].completed, t(400));
        assert_eq!(rec.done[0].latency(), SimDuration::from_micros(400));
    }

    #[test]
    fn ps_contention_stretches_latency() {
        let mut sim = Simulation::new(SimDuration::ZERO);
        let m = sim.add_machine("web", 1.0, 100.0);
        for i in 0..2 {
            let trace: Trace = [Op::Cpu { machine: m, micros: 1_000 }].into_iter().collect();
            sim.submit(trace, i);
        }
        let mut rec = Recorder::new();
        sim.run(t(100_000), &mut rec).unwrap();
        assert_eq!(rec.done.len(), 2);
        // Both share the CPU: each takes ~2000us.
        for d in &rec.done {
            assert!(d.latency() >= SimDuration::from_micros(1_999), "{d:?}");
        }
    }

    #[test]
    fn net_transfer_charges_both_nics_and_latency() {
        let mut sim = Simulation::new(SimDuration::from_micros(150));
        let a = sim.add_machine("a", 1.0, 100.0); // 12.5 B/us
        let b = sim.add_machine("b", 1.0, 100.0);
        let trace: Trace = [Op::Net { from: a, to: b, bytes: 1_250 }].into_iter().collect();
        sim.submit(trace, 0);
        let mut rec = Recorder::new();
        sim.run(t(100_000), &mut rec).unwrap();
        // 1250 bytes at 12.5 B/us = 100us per NIC + 150us latency = 350us.
        assert_eq!(rec.done[0].completed, t(350));
        let sa = sim.nic_stats(a);
        let sb = sim.nic_stats(b);
        assert!((sa.work_done - 1_250.0).abs() < 1e-6);
        assert!((sb.work_done - 1_250.0).abs() < 1e-6);
    }

    #[test]
    fn loopback_and_zero_byte_transfers_are_free() {
        let mut sim = Simulation::new(SimDuration::from_micros(150));
        let a = sim.add_machine("a", 1.0, 100.0);
        let b = sim.add_machine("b", 1.0, 100.0);
        let trace: Trace =
            [Op::Net { from: a, to: a, bytes: 1_000_000 }, Op::Net { from: a, to: b, bytes: 0 }]
                .into_iter()
                .collect();
        sim.submit(trace, 0);
        let mut rec = Recorder::new();
        sim.run(t(10_000), &mut rec).unwrap();
        assert_eq!(rec.done[0].completed, t(0));
    }

    #[test]
    fn delay_op_waits_exactly() {
        let mut sim = Simulation::new(SimDuration::ZERO);
        let _ = sim.add_machine("a", 1.0, 100.0);
        let trace: Trace = [Op::Delay { micros: 777 }].into_iter().collect();
        sim.submit(trace, 0);
        let mut rec = Recorder::new();
        sim.run(t(10_000), &mut rec).unwrap();
        assert_eq!(rec.done[0].completed, t(777));
    }

    #[test]
    fn lock_serializes_critical_sections() {
        let mut sim = Simulation::new(SimDuration::ZERO);
        let m = sim.add_machine("db", 1.0, 100.0);
        let l = sim.register_lock("items");
        for i in 0..3 {
            let trace: Trace = [
                Op::Lock { lock: l, mode: LockMode::Exclusive },
                Op::Cpu { machine: m, micros: 1_000 },
                Op::Unlock { lock: l },
            ]
            .into_iter()
            .collect();
            sim.submit(trace, i);
        }
        let mut rec = Recorder::new();
        sim.run(t(100_000), &mut rec).unwrap();
        assert_eq!(rec.done.len(), 3);
        // Fully serialized: completions at 1000, 2000, 3000 (the CPU is
        // never shared because the lock serializes).
        let mut ends: Vec<u64> = rec.done.iter().map(|d| d.completed.as_micros()).collect();
        ends.sort_unstable();
        assert_eq!(ends, vec![1_000, 2_000, 3_000]);
        let ls = sim.lock_stats(l);
        assert_eq!(ls.immediate_grants + ls.contended, 3);
        assert_eq!(ls.contended, 2);
    }

    #[test]
    fn deadlock_aborts_youngest_and_lets_the_other_finish() {
        let mut sim = Simulation::new(SimDuration::ZERO);
        let m = sim.add_machine("db", 2.0, 100.0);
        let a = sim.register_lock("a");
        let b = sim.register_lock("b");
        // Two jobs take the locks in opposite orders; the CPU op between
        // the acquisitions lets both grab their first lock before either
        // requests its second — a guaranteed cycle.
        let mk = |first: LockId, second: LockId| -> Trace {
            [
                Op::Lock { lock: first, mode: LockMode::Exclusive },
                Op::Cpu { machine: m, micros: 500 },
                Op::Lock { lock: second, mode: LockMode::Exclusive },
                Op::Cpu { machine: m, micros: 500 },
                Op::Unlock { lock: second },
                Op::Unlock { lock: first },
            ]
            .into_iter()
            .collect()
        };
        let j1 = sim.submit(mk(a, b), 1);
        let j2 = sim.submit(mk(b, a), 2);
        let mut rec = Recorder::new();
        sim.run(t(100_000), &mut rec).unwrap();
        // The youngest job in the cycle is the victim; the survivor finishes.
        assert_eq!(rec.aborted.len(), 1);
        assert_eq!(rec.aborted[0].id, j2.max(j1));
        assert_eq!(rec.aborted[0].reason, AbortReason::Deadlock);
        assert_eq!(rec.done.len(), 1);
        assert_eq!(rec.done[0].id, j1.min(j2));
        assert_eq!(sim.stats().deadlocks, 1);
        assert_eq!(sim.stats().aborted, 1);
        assert_eq!(sim.stats().completed, 1);
        assert_eq!(sim.leak_report(), None);
    }

    #[test]
    fn deadlock_detection_handles_three_job_cycles() {
        let mut sim = Simulation::new(SimDuration::ZERO);
        let m = sim.add_machine("db", 4.0, 100.0);
        let locks: Vec<LockId> = ["a", "b", "c"].iter().map(|n| sim.register_lock(*n)).collect();
        // Job i holds lock i and then wants lock (i+1) % 3.
        for i in 0..3u64 {
            let first = locks[i as usize];
            let second = locks[(i as usize + 1) % 3];
            let trace: Trace = [
                Op::Lock { lock: first, mode: LockMode::Exclusive },
                Op::Cpu { machine: m, micros: 500 },
                Op::Lock { lock: second, mode: LockMode::Exclusive },
                Op::Unlock { lock: second },
                Op::Unlock { lock: first },
            ]
            .into_iter()
            .collect();
            sim.submit(trace, i);
        }
        let mut rec = Recorder::new();
        sim.run(t(100_000), &mut rec).unwrap();
        // One victim breaks the 3-cycle; the other two finish.
        assert_eq!(rec.aborted.len(), 1);
        assert_eq!(rec.aborted[0].reason, AbortReason::Deadlock);
        assert_eq!(rec.done.len(), 2);
        assert_eq!(sim.stats().deadlocks, 1);
        assert_eq!(sim.leak_report(), None);
    }

    #[test]
    fn uncontended_and_ordered_locking_never_reports_deadlock() {
        let mut sim = Simulation::new(SimDuration::ZERO);
        let m = sim.add_machine("db", 1.0, 100.0);
        let a = sim.register_lock("a");
        let b = sim.register_lock("b");
        // Same global order in both jobs: contention but no cycle.
        for i in 0..2 {
            let trace: Trace = [
                Op::Lock { lock: a, mode: LockMode::Exclusive },
                Op::Lock { lock: b, mode: LockMode::Exclusive },
                Op::Cpu { machine: m, micros: 300 },
                Op::Unlock { lock: b },
                Op::Unlock { lock: a },
            ]
            .into_iter()
            .collect();
            sim.submit(trace, i);
        }
        let mut rec = Recorder::new();
        sim.run(t(100_000), &mut rec).unwrap();
        assert_eq!(rec.done.len(), 2);
        assert!(rec.aborted.is_empty());
        assert_eq!(sim.stats().deadlocks, 0);
    }

    #[test]
    fn readers_proceed_in_parallel() {
        let mut sim = Simulation::new(SimDuration::ZERO);
        let m = sim.add_machine("db", 2.0, 100.0); // 2 cores
        let l = sim.register_lock("items");
        for i in 0..2 {
            let trace: Trace = [
                Op::Lock { lock: l, mode: LockMode::Shared },
                Op::Cpu { machine: m, micros: 1_000 },
                Op::Unlock { lock: l },
            ]
            .into_iter()
            .collect();
            sim.submit(trace, i);
        }
        let mut rec = Recorder::new();
        sim.run(t(100_000), &mut rec).unwrap();
        // Both run concurrently on 2 cores: both end at 1000us.
        assert!(rec.done.iter().all(|d| d.completed == t(1_000)));
    }

    #[test]
    fn semaphore_limits_concurrency() {
        let mut sim = Simulation::new(SimDuration::ZERO);
        let m = sim.add_machine("web", 4.0, 100.0);
        let s = sim.register_semaphore("pool", 1);
        for i in 0..2 {
            let trace: Trace = [
                Op::SemAcquire { sem: s },
                Op::Cpu { machine: m, micros: 500 },
                Op::SemRelease { sem: s },
            ]
            .into_iter()
            .collect();
            sim.submit(trace, i);
        }
        let mut rec = Recorder::new();
        sim.run(t(100_000), &mut rec).unwrap();
        let mut ends: Vec<u64> = rec.done.iter().map(|d| d.completed.as_micros()).collect();
        ends.sort_unstable();
        // Despite 4 cores, the pool of 1 serializes: 500 then 1000... the
        // second job starts only when the first releases.
        assert_eq!(ends, vec![500, 1_000]);
    }

    #[test]
    fn timers_fire_in_order() {
        let mut sim = Simulation::new(SimDuration::ZERO);
        sim.set_timer(t(300), 3);
        sim.set_timer(t(100), 1);
        sim.set_timer(t(200), 2);
        let mut rec = Recorder::new();
        sim.run(t(1_000), &mut rec).unwrap();
        assert_eq!(rec.timers, vec![(t(100), 1), (t(200), 2), (t(300), 3)]);
    }

    #[test]
    fn empty_trace_completes_immediately() {
        let mut sim = Simulation::new(SimDuration::ZERO);
        sim.submit(Trace::new(), 9);
        let mut rec = Recorder::new();
        sim.run(t(1), &mut rec).unwrap();
        assert_eq!(rec.done.len(), 1);
        assert_eq!(rec.done[0].completed, t(0));
    }

    /// A driver that submits a new job from within a completion callback.
    struct Chainer {
        m: MachineId,
        remaining: u32,
        finished: u32,
    }

    impl Driver for Chainer {
        fn on_job_complete(&mut self, sim: &mut Simulation, _done: JobDone) {
            self.finished += 1;
            if self.remaining > 0 {
                self.remaining -= 1;
                let trace: Trace = [Op::Cpu { machine: self.m, micros: 100 }].into_iter().collect();
                sim.submit(trace, 0);
            }
        }
        fn on_timer(&mut self, _sim: &mut Simulation, _token: u64) {}
    }

    #[test]
    fn reentrant_submission_from_callback() {
        let mut sim = Simulation::new(SimDuration::ZERO);
        let m = sim.add_machine("web", 1.0, 100.0);
        let trace: Trace = [Op::Cpu { machine: m, micros: 100 }].into_iter().collect();
        sim.submit(trace, 0);
        let mut chain = Chainer { m, remaining: 4, finished: 0 };
        sim.run(t(10_000), &mut chain).unwrap();
        assert_eq!(chain.finished, 5);
        assert_eq!(sim.stats().completed, 5);
        // 5 sequential 100us jobs.
        assert_eq!(sim.cpu_stats(m).busy_micros as u64, 500);
    }

    #[test]
    fn utilization_integrals_are_exact_at_run_end() {
        let mut sim = Simulation::new(SimDuration::ZERO);
        let m = sim.add_machine("web", 1.0, 100.0);
        let trace: Trace = [Op::Cpu { machine: m, micros: 2_500 }].into_iter().collect();
        sim.submit(trace, 0);
        let mut rec = Recorder::new();
        sim.run(t(10_000), &mut rec).unwrap();
        let s = sim.cpu_stats(m);
        assert!((s.busy_micros - 2_500.0).abs() < 1e-6);
        // Utilization over the window: 25%.
        let util = s.busy_micros / sim.now().as_micros() as f64;
        assert!((util - 0.25).abs() < 1e-6);
    }

    #[test]
    fn deadline_aborts_and_releases_locks() {
        let mut sim = Simulation::new(SimDuration::ZERO);
        let m = sim.add_machine("db", 1.0, 100.0);
        let l = sim.register_lock("items");
        // Job 0 holds the lock for 5000us of CPU; its deadline fires at
        // 1000us, which must release the lock to job 1.
        let hog: Trace = [
            Op::Lock { lock: l, mode: LockMode::Exclusive },
            Op::Cpu { machine: m, micros: 5_000 },
            Op::Unlock { lock: l },
        ]
        .into_iter()
        .collect();
        sim.submit_with_deadline(hog, 0, SimDuration::from_micros(1_000));
        let waiter: Trace = [
            Op::Lock { lock: l, mode: LockMode::Exclusive },
            Op::Cpu { machine: m, micros: 100 },
            Op::Unlock { lock: l },
        ]
        .into_iter()
        .collect();
        sim.submit(waiter, 1);
        let mut rec = Recorder::new();
        sim.run(t(100_000), &mut rec).unwrap();
        assert_eq!(rec.aborted.len(), 1);
        assert_eq!(rec.aborted[0].tag, 0);
        assert_eq!(rec.aborted[0].reason, AbortReason::DeadlineExpired);
        assert_eq!(rec.aborted[0].aborted, t(1_000));
        // The waiter got the lock at abort time and ran its 100us.
        assert_eq!(rec.done.len(), 1);
        assert_eq!(rec.done[0].tag, 1);
        assert_eq!(rec.done[0].completed, t(1_100));
        let s = sim.stats();
        assert_eq!((s.submitted, s.completed, s.aborted, s.rejected), (2, 1, 1, 0));
        assert!(sim.leak_report().is_none(), "{:?}", sim.leak_report());
    }

    #[test]
    fn deadline_after_completion_is_stale() {
        let mut sim = Simulation::new(SimDuration::ZERO);
        let m = sim.add_machine("web", 1.0, 100.0);
        let trace: Trace = [Op::Cpu { machine: m, micros: 100 }].into_iter().collect();
        sim.submit_with_deadline(trace, 0, SimDuration::from_micros(10_000));
        let mut rec = Recorder::new();
        sim.run_until_idle(&mut rec).unwrap();
        assert_eq!(rec.done.len(), 1);
        assert!(rec.aborted.is_empty());
        assert_eq!(sim.stats().aborted, 0);
    }

    #[test]
    fn cancel_unwinds_semaphore_and_grants_waiter() {
        let mut sim = Simulation::new(SimDuration::ZERO);
        let m = sim.add_machine("web", 4.0, 100.0);
        let s = sim.register_semaphore("pool", 1);
        let mk = || -> Trace {
            [
                Op::SemAcquire { sem: s },
                Op::Cpu { machine: m, micros: 1_000 },
                Op::SemRelease { sem: s },
            ]
            .into_iter()
            .collect()
        };
        let first = sim.submit(mk(), 0);
        sim.submit(mk(), 1);
        let mut rec = Recorder::new();
        sim.run(t(500), &mut rec).unwrap();
        // First holds the pool and is mid-CPU; second is queued.
        assert!(sim.cancel(first));
        assert!(!sim.cancel(first), "double cancel is a no-op");
        sim.run(t(100_000), &mut rec).unwrap();
        assert_eq!(rec.done.len(), 1);
        assert_eq!(rec.done[0].tag, 1);
        // Cancel does not invoke on_job_aborted; the caller knows.
        assert!(rec.aborted.is_empty());
        assert_eq!(sim.stats().aborted, 1);
        assert!(sim.leak_report().is_none(), "{:?}", sim.leak_report());
    }

    #[test]
    fn cancel_of_lock_waiter_leaves_queue_clean() {
        let mut sim = Simulation::new(SimDuration::ZERO);
        let m = sim.add_machine("db", 1.0, 100.0);
        let l = sim.register_lock("items");
        let mk = |micros| -> Trace {
            [
                Op::Lock { lock: l, mode: LockMode::Exclusive },
                Op::Cpu { machine: m, micros },
                Op::Unlock { lock: l },
            ]
            .into_iter()
            .collect()
        };
        sim.submit(mk(1_000), 0);
        let waiter = sim.submit(mk(1_000), 1);
        let mut rec = Recorder::new();
        sim.run(t(500), &mut rec).unwrap();
        assert!(sim.cancel(waiter));
        sim.run(t(100_000), &mut rec).unwrap();
        assert_eq!(rec.done.len(), 1);
        assert_eq!(rec.done[0].tag, 0);
        assert!(sim.leak_report().is_none(), "{:?}", sim.leak_report());
    }

    #[test]
    fn bounded_semaphore_rejects_and_deadline_does_not_double_count() {
        // The satellite guarantee: a rejected request is counted exactly
        // once, not again as a timeout when its deadline later fires.
        let mut sim = Simulation::new(SimDuration::ZERO);
        let m = sim.add_machine("web", 1.0, 100.0);
        let s = sim.register_semaphore_bounded("accept", 1, 0);
        let mk = || -> Trace {
            [
                Op::SemAcquire { sem: s },
                Op::Cpu { machine: m, micros: 5_000 },
                Op::SemRelease { sem: s },
            ]
            .into_iter()
            .collect()
        };
        sim.submit_with_deadline(mk(), 0, SimDuration::from_micros(1_000));
        sim.submit_with_deadline(mk(), 1, SimDuration::from_micros(1_000));
        let mut rec = Recorder::new();
        sim.run_until_idle(&mut rec).unwrap();
        // Job 1 was rejected at t=0. Job 0's own deadline then kills it at
        // t=1000. Job 1's deadline event is stale and counts nothing.
        let reasons: Vec<(u64, AbortReason)> =
            rec.aborted.iter().map(|a| (a.tag, a.reason)).collect();
        assert_eq!(reasons, vec![(1, AbortReason::Rejected), (0, AbortReason::DeadlineExpired)]);
        let st = sim.stats();
        assert_eq!((st.submitted, st.completed, st.aborted, st.rejected), (2, 0, 1, 1));
        assert_eq!(sim.semaphore_stats(s).rejected, 1);
        assert!(sim.leak_report().is_none(), "{:?}", sim.leak_report());
    }

    #[test]
    fn machine_crash_aborts_in_service_jobs_and_fast_fails_new_ones() {
        let mut sim = Simulation::new(SimDuration::ZERO);
        let web = sim.add_machine("web", 1.0, 100.0);
        let db = sim.add_machine("db", 1.0, 100.0);
        let plan = FaultPlan {
            seed: 7,
            transient_fail_prob: 0.0,
            crashes: vec![crate::fault::CrashWindow {
                machine: db,
                at: t(1_000),
                restart: t(3_000),
            }],
            degradations: Vec::new(),
        };
        sim.install_faults(plan);
        // In service on the db at crash time: aborted.
        let victim: Trace = [Op::Cpu { machine: db, micros: 5_000 }].into_iter().collect();
        sim.submit(victim, 0);
        // Arrives while the db is down: fast-fails.
        let during: Trace = [
            Op::Delay { micros: 2_000 },
            Op::Cpu { machine: web, micros: 10 },
            Op::Net { from: web, to: db, bytes: 100 },
        ]
        .into_iter()
        .collect();
        sim.submit(during, 1);
        // Arrives after the restart: completes.
        let after: Trace = [Op::Delay { micros: 4_000 }, Op::Cpu { machine: db, micros: 100 }]
            .into_iter()
            .collect();
        sim.submit(after, 2);
        let mut rec = Recorder::new();
        sim.run_until_idle(&mut rec).unwrap();
        assert!(!sim.machine_is_down(db));
        let reasons: Vec<(u64, AbortReason)> =
            rec.aborted.iter().map(|a| (a.tag, a.reason)).collect();
        assert_eq!(reasons, vec![(0, AbortReason::MachineCrash), (1, AbortReason::MachineCrash)]);
        assert_eq!(rec.done.len(), 1);
        assert_eq!(rec.done[0].tag, 2);
        let st = sim.stats();
        assert_eq!((st.completed, st.aborted), (1, 2));
        assert!(sim.leak_report().is_none(), "{:?}", sim.leak_report());
    }

    #[test]
    fn degradation_stretches_service() {
        let mut sim = Simulation::new(SimDuration::ZERO);
        let m = sim.add_machine("db", 1.0, 100.0);
        let plan = FaultPlan {
            seed: 0,
            transient_fail_prob: 0.0,
            crashes: Vec::new(),
            degradations: vec![crate::fault::Degradation {
                machine: m,
                from: t(0),
                until: t(10_000),
                cpu_factor: 2.0,
                nic_factor: 1.0,
            }],
        };
        sim.install_faults(plan);
        let trace: Trace = [Op::Cpu { machine: m, micros: 1_000 }].into_iter().collect();
        sim.submit(trace, 0);
        let mut rec = Recorder::new();
        sim.run_until_idle(&mut rec).unwrap();
        assert_eq!(rec.done[0].completed, t(2_000));
    }

    #[test]
    fn unlock_without_hold_is_structured_error() {
        let mut sim = Simulation::new(SimDuration::ZERO);
        let _ = sim.add_machine("db", 1.0, 100.0);
        let l = sim.register_lock("items");
        let bad: Trace = [Op::Unlock { lock: l }].into_iter().collect();
        let id = sim.submit(bad, 0);
        let err = sim.run_until_idle(&mut NullDriver).unwrap_err();
        assert_eq!(err.job, id);
        assert_eq!(err.op_index, 0);
        assert_eq!(err.kind, SimErrorKind::UnlockNotHeld(l));
        assert!(err.to_string().contains("unlock"));
    }

    #[test]
    fn lock_reacquisition_is_structured_error() {
        let mut sim = Simulation::new(SimDuration::ZERO);
        let l = sim.register_lock("items");
        let bad: Trace = [
            Op::Lock { lock: l, mode: LockMode::Shared },
            Op::Lock { lock: l, mode: LockMode::Shared },
            Op::Unlock { lock: l },
        ]
        .into_iter()
        .collect();
        sim.submit(bad, 0);
        let err = sim.run_until_idle(&mut NullDriver).unwrap_err();
        assert_eq!(err.op_index, 1);
        assert_eq!(err.kind, SimErrorKind::LockReacquired(l));
    }

    #[test]
    fn semaphore_over_release_is_structured_error() {
        let mut sim = Simulation::new(SimDuration::ZERO);
        let s = sim.register_semaphore("pool", 1);
        let bad: Trace = [Op::SemRelease { sem: s }].into_iter().collect();
        sim.submit(bad, 0);
        let err = sim.run_until_idle(&mut NullDriver).unwrap_err();
        assert_eq!(err.kind, SimErrorKind::SemOverRelease(s));
    }

    #[test]
    fn faulty_runs_are_deterministic() {
        let run = || {
            let mut sim = Simulation::new(SimDuration::from_micros(10));
            let a = sim.add_machine("a", 1.0, 100.0);
            let b = sim.add_machine("b", 1.0, 100.0);
            let l = sim.register_lock("x");
            sim.install_faults(FaultPlan {
                seed: 99,
                transient_fail_prob: 0.05,
                crashes: vec![crate::fault::CrashWindow {
                    machine: b,
                    at: t(2_000),
                    restart: t(4_000),
                }],
                degradations: vec![crate::fault::Degradation {
                    machine: a,
                    from: t(1_000),
                    until: t(6_000),
                    cpu_factor: 1.5,
                    nic_factor: 1.25,
                }],
            });
            for i in 0..30 {
                let trace: Trace = [
                    Op::Cpu { machine: a, micros: 100 + i * 7 },
                    Op::Lock { lock: l, mode: LockMode::Exclusive },
                    Op::Net { from: a, to: b, bytes: 200 + i * 13 },
                    Op::Cpu { machine: b, micros: 50 },
                    Op::Unlock { lock: l },
                ]
                .into_iter()
                .collect();
                sim.submit(trace, i);
            }
            let mut rec = Recorder::new();
            sim.run_until_idle(&mut rec).unwrap();
            let st = sim.stats();
            assert_eq!(st.submitted, st.completed + st.aborted + st.rejected);
            assert!(sim.leak_report().is_none(), "{:?}", sim.leak_report());
            (
                rec.done.iter().map(|d| (d.tag, d.completed.as_micros())).collect::<Vec<_>>(),
                rec.aborted.iter().map(|a| (a.tag, a.reason)).collect::<Vec<_>>(),
                st,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn deterministic_event_order() {
        let run = || {
            let mut sim = Simulation::new(SimDuration::from_micros(10));
            let a = sim.add_machine("a", 1.0, 100.0);
            let b = sim.add_machine("b", 1.0, 100.0);
            let l = sim.register_lock("x");
            for i in 0..20 {
                let trace: Trace = [
                    Op::Cpu { machine: a, micros: 100 + i * 7 },
                    Op::Lock { lock: l, mode: LockMode::Exclusive },
                    Op::Net { from: a, to: b, bytes: 200 + i * 13 },
                    Op::Cpu { machine: b, micros: 50 },
                    Op::Unlock { lock: l },
                ]
                .into_iter()
                .collect();
                sim.submit(trace, i);
            }
            let mut rec = Recorder::new();
            sim.run(t(1_000_000), &mut rec).unwrap();
            rec.done.iter().map(|d| (d.tag, d.completed.as_micros())).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
