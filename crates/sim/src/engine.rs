//! The discrete-event simulation engine.
//!
//! A [`Simulation`] owns a set of machines (each a CPU and a NIC, both
//! processor-sharing), a [`LockManager`], and a calendar of events. Work
//! enters as jobs — linear [`Trace`]s of [`Op`]s — submitted by a
//! [`Driver`] (the client emulator). The engine plays each trace against the
//! contended resources and calls the driver back when a job finishes or a
//! timer fires.
//!
//! Determinism: given the same machines, traces, timers, and seeds, two runs
//! produce identical event orders (ties are broken by a monotone sequence
//! number).

use crate::lock::{GrantPolicy, LockId, LockManager, LockStats, SemaphoreId};
use crate::op::{Op, Trace};
use crate::ps::{PsResource, PsStats};
use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Identifies a simulated machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MachineId(pub u32);

/// Identifies a job (one submitted trace).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

/// Details handed to [`Driver::on_job_complete`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobDone {
    /// The completed job.
    pub id: JobId,
    /// The caller-supplied tag from [`Simulation::submit`].
    pub tag: u64,
    /// When the job was submitted.
    pub submitted: SimTime,
    /// When the job finished its last op.
    pub completed: SimTime,
}

impl JobDone {
    /// End-to-end simulated latency of the job.
    pub fn latency(&self) -> SimDuration {
        self.completed.duration_since(self.submitted)
    }
}

/// Callbacks through which the simulation hands control to the workload
/// layer. The driver is external to the [`Simulation`], so callbacks receive
/// `&mut Simulation` and may submit jobs or set timers re-entrantly.
pub trait Driver {
    /// A job finished its trace.
    fn on_job_complete(&mut self, sim: &mut Simulation, done: JobDone);
    /// A timer set with [`Simulation::set_timer`] fired.
    fn on_timer(&mut self, sim: &mut Simulation, token: u64);
}

/// A no-op driver, useful for tests that only exercise resources.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullDriver;

impl Driver for NullDriver {
    fn on_job_complete(&mut self, _sim: &mut Simulation, _done: JobDone) {}
    fn on_timer(&mut self, _sim: &mut Simulation, _token: u64) {}
}

/// Which processor-sharing resource of a machine an event refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ResKey {
    Cpu(u32),
    Nic(u32),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    /// A predicted processor-sharing completion; stale if the epoch moved.
    Ps { res: ResKey, epoch: u64 },
    /// A `Delay` op (or the latency leg of a `Net` op) finished.
    DelayDone { job: JobId },
    /// Deferred start of a freshly submitted job.
    JobStart { job: JobId },
    /// A driver timer.
    Timer { token: u64 },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Scheduled {
    at: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

/// Progress of a `Net` op within a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NetPhase {
    Idle,
    SenderNic,
    Latency,
    ReceiverNic,
}

#[derive(Debug)]
struct Job {
    trace: Trace,
    pc: usize,
    net_phase: NetPhase,
    tag: u64,
    submitted: SimTime,
}

#[derive(Debug)]
struct Machine {
    name: String,
    cpu: PsResource,
    nic: PsResource,
}

/// Counters maintained by the engine itself.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EngineStats {
    /// Jobs submitted so far.
    pub submitted: u64,
    /// Jobs that ran to completion.
    pub completed: u64,
    /// Calendar events processed (including stale ones).
    pub events: u64,
}

/// The simulation world: machines, locks, jobs, and the event calendar.
///
/// ```
/// use dynamid_sim::*;
/// use dynamid_sim::engine::NullDriver;
/// let mut sim = Simulation::new(SimDuration::from_micros(100));
/// let m = sim.add_machine("web", 1.0, 100.0);
/// let trace: Trace = [Op::Cpu { machine: m, micros: 500 }].into_iter().collect();
/// sim.submit(trace, 0);
/// sim.run(SimTime::from_micros(10_000), &mut NullDriver);
/// assert_eq!(sim.stats().completed, 1);
/// ```
#[derive(Debug)]
pub struct Simulation {
    now: SimTime,
    queue: BinaryHeap<Reverse<Scheduled>>,
    seq: u64,
    machines: Vec<Machine>,
    locks: LockManager,
    jobs: HashMap<JobId, Job>,
    next_job: u64,
    link_latency: SimDuration,
    stats: EngineStats,
}

impl Simulation {
    /// Creates a simulation whose machine-to-machine transfers incur the
    /// given one-way link latency, with the default (writer-priority) lock
    /// grant policy.
    pub fn new(link_latency: SimDuration) -> Self {
        Self::with_policy(link_latency, GrantPolicy::default())
    }

    /// Creates a simulation with an explicit lock grant policy.
    pub fn with_policy(link_latency: SimDuration, policy: GrantPolicy) -> Self {
        Simulation {
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            seq: 0,
            machines: Vec::new(),
            locks: LockManager::new(policy),
            jobs: HashMap::new(),
            next_job: 0,
            link_latency,
            stats: EngineStats::default(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Engine-level counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Jobs currently in flight (submitted but not completed).
    pub fn jobs_in_flight(&self) -> usize {
        self.jobs.len()
    }

    /// Adds a machine with `cores` CPU cores and a NIC of `nic_mbps`
    /// megabits per second, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if `cores` or `nic_mbps` is not positive.
    pub fn add_machine(&mut self, name: impl Into<String>, cores: f64, nic_mbps: f64) -> MachineId {
        let name = name.into();
        let id = MachineId(self.machines.len() as u32);
        self.machines.push(Machine {
            // One request cannot run faster than one core.
            cpu: PsResource::with_job_cap(format!("{name}.cpu"), cores, 1.0),
            // Mb/s -> bytes per microsecond: mbps * 1e6 / 8 / 1e6.
            nic: PsResource::new(format!("{name}.nic"), nic_mbps / 8.0),
            name,
        });
        id
    }

    /// Number of machines.
    pub fn machine_count(&self) -> usize {
        self.machines.len()
    }

    /// A machine's display name.
    pub fn machine_name(&self, m: MachineId) -> &str {
        &self.machines[m.0 as usize].name
    }

    /// CPU statistics for a machine, current as of [`now`](Self::now).
    pub fn cpu_stats(&mut self, m: MachineId) -> PsStats {
        let now = self.now;
        let mach = &mut self.machines[m.0 as usize];
        mach.cpu.advance(now);
        mach.cpu.stats()
    }

    /// NIC statistics for a machine, current as of [`now`](Self::now).
    /// `work_done` is in bytes transferred through the interface.
    pub fn nic_stats(&mut self, m: MachineId) -> PsStats {
        let now = self.now;
        let mach = &mut self.machines[m.0 as usize];
        mach.nic.advance(now);
        mach.nic.stats()
    }

    /// Registers a read/write lock (e.g., one per database table).
    pub fn register_lock(&mut self, name: impl Into<String>) -> LockId {
        self.locks.register_lock(name)
    }

    /// Registers a counting semaphore (e.g., the web-server process pool).
    pub fn register_semaphore(&mut self, name: impl Into<String>, capacity: u32) -> SemaphoreId {
        self.locks.register_semaphore(name, capacity)
    }

    /// Statistics for one lock.
    pub fn lock_stats(&self, lock: LockId) -> LockStats {
        self.locks.lock_stats(lock)
    }

    /// Aggregate statistics over all locks.
    pub fn total_lock_stats(&self) -> LockStats {
        self.locks.total_lock_stats()
    }

    /// Submits a trace for execution, returning its job id. The job starts
    /// at the current instant (via a zero-delay calendar event, so it is
    /// safe to call from driver callbacks).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the trace's lock operations are unbalanced.
    pub fn submit(&mut self, trace: Trace, tag: u64) -> JobId {
        debug_assert!(
            trace.check_balanced().is_ok(),
            "unbalanced trace: {:?}",
            trace.check_balanced().unwrap_err()
        );
        let id = JobId(self.next_job);
        self.next_job += 1;
        self.jobs
            .insert(id, Job { trace, pc: 0, net_phase: NetPhase::Idle, tag, submitted: self.now });
        self.stats.submitted += 1;
        self.schedule(self.now, EventKind::JobStart { job: id });
        id
    }

    /// Schedules a driver timer at the given absolute time.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn set_timer(&mut self, at: SimTime, token: u64) {
        assert!(at >= self.now, "timer set in the past");
        self.schedule(at, EventKind::Timer { token });
    }

    /// Convenience: a timer `delay` from now.
    pub fn set_timer_after(&mut self, delay: SimDuration, token: u64) {
        self.set_timer(self.now + delay, token);
    }

    fn schedule(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Scheduled { at, seq, kind }));
    }

    /// Runs the calendar until `until` (inclusive), advancing all resource
    /// clocks to `until` at the end so utilization integrals are exact.
    pub fn run<D: Driver>(&mut self, until: SimTime, driver: &mut D) {
        while let Some(Reverse(ev)) = self.queue.peek().copied() {
            if ev.at > until {
                break;
            }
            self.queue.pop();
            debug_assert!(ev.at >= self.now, "event in the past");
            self.now = ev.at;
            self.stats.events += 1;
            self.dispatch(ev.kind, driver);
        }
        self.now = until;
        for m in &mut self.machines {
            m.cpu.advance(until);
            m.nic.advance(until);
        }
    }

    /// Runs until the calendar is empty (tests and drain scenarios).
    /// Returns the time of the last processed event.
    pub fn run_until_idle<D: Driver>(&mut self, driver: &mut D) -> SimTime {
        while let Some(Reverse(ev)) = self.queue.peek().copied() {
            self.queue.pop();
            self.now = ev.at;
            self.stats.events += 1;
            self.dispatch(ev.kind, driver);
        }
        self.now
    }

    fn dispatch<D: Driver>(&mut self, kind: EventKind, driver: &mut D) {
        match kind {
            EventKind::Ps { res, epoch } => {
                let resource = self.resource_mut(res);
                if resource.epoch() != epoch {
                    return; // stale prediction
                }
                let now = self.now;
                let resource = self.resource_mut(res);
                resource.advance(now);
                let done = resource.pop_completed(now);
                let mut work: Vec<JobId> = Vec::with_capacity(done.len());
                for job in done {
                    self.on_service_done(res, job, &mut work);
                }
                self.refresh_ps(res);
                self.drain(work, driver);
            }
            EventKind::DelayDone { job } => {
                let mut work = Vec::new();
                self.on_delay_done(job, &mut work);
                self.drain(work, driver);
            }
            EventKind::JobStart { job } => {
                self.drain(vec![job], driver);
            }
            EventKind::Timer { token } => {
                driver.on_timer(self, token);
            }
        }
    }

    fn resource_mut(&mut self, res: ResKey) -> &mut PsResource {
        match res {
            ResKey::Cpu(i) => &mut self.machines[i as usize].cpu,
            ResKey::Nic(i) => &mut self.machines[i as usize].nic,
        }
    }

    /// (Re)schedules the completion prediction for a resource.
    fn refresh_ps(&mut self, res: ResKey) {
        let now = self.now;
        let resource = self.resource_mut(res);
        if let Some(at) = resource.next_completion(now) {
            let epoch = resource.epoch();
            self.schedule(at, EventKind::Ps { res, epoch });
        }
    }

    /// A job finished service on a CPU or NIC: advance its program state and
    /// queue it for further stepping.
    fn on_service_done(&mut self, res: ResKey, job_id: JobId, work: &mut Vec<JobId>) {
        let job = self.jobs.get_mut(&job_id).expect("service for unknown job");
        match res {
            ResKey::Cpu(_) => {
                job.pc += 1;
                work.push(job_id);
            }
            ResKey::Nic(_) => match job.net_phase {
                NetPhase::SenderNic => {
                    job.net_phase = NetPhase::Latency;
                    if self.link_latency.is_zero() {
                        self.enter_receiver_nic(job_id, work);
                    } else {
                        let at = self.now + self.link_latency;
                        self.schedule(at, EventKind::DelayDone { job: job_id });
                    }
                }
                NetPhase::ReceiverNic => {
                    job.net_phase = NetPhase::Idle;
                    job.pc += 1;
                    work.push(job_id);
                }
                other => panic!("NIC completion in phase {other:?}"),
            },
        }
    }

    fn enter_receiver_nic(&mut self, job_id: JobId, work: &mut Vec<JobId>) {
        let job = self.jobs.get_mut(&job_id).expect("unknown job");
        let Op::Net { to, bytes, .. } = job.trace.ops()[job.pc] else {
            panic!("receiver phase on non-Net op");
        };
        job.net_phase = NetPhase::ReceiverNic;
        let now = self.now;
        let nic = &mut self.machines[to.0 as usize].nic;
        nic.enqueue(now, job_id, bytes as f64);
        self.refresh_ps(ResKey::Nic(to.0));
        let _ = work;
    }

    fn on_delay_done(&mut self, job_id: JobId, work: &mut Vec<JobId>) {
        let job = self.jobs.get_mut(&job_id).expect("delay for unknown job");
        match job.net_phase {
            NetPhase::Latency => self.enter_receiver_nic(job_id, work),
            NetPhase::Idle => {
                job.pc += 1;
                work.push(job_id);
            }
            other => panic!("delay completion in phase {other:?}"),
        }
    }

    /// Steps every job in `work` (and any jobs they unblock) until each is
    /// parked in a resource, waiting on a lock, delayed, or complete.
    fn drain<D: Driver>(&mut self, work: Vec<JobId>, driver: &mut D) {
        let mut queue: Vec<JobId> = work;
        while let Some(job_id) = queue.pop() {
            self.step_job(job_id, &mut queue, driver);
        }
    }

    /// Executes ops of one job until it blocks or finishes. Newly unblocked
    /// jobs are appended to `queue`.
    fn step_job<D: Driver>(&mut self, job_id: JobId, queue: &mut Vec<JobId>, driver: &mut D) {
        loop {
            let job = self.jobs.get_mut(&job_id).expect("step for unknown job");
            if job.pc >= job.trace.len() {
                let done = JobDone {
                    id: job_id,
                    tag: job.tag,
                    submitted: job.submitted,
                    completed: self.now,
                };
                self.jobs.remove(&job_id);
                self.stats.completed += 1;
                driver.on_job_complete(self, done);
                return;
            }
            let op = job.trace.ops()[job.pc].clone();
            match op {
                Op::Cpu { machine, micros } => {
                    let now = self.now;
                    self.machines[machine.0 as usize].cpu.enqueue(now, job_id, micros as f64);
                    self.refresh_ps(ResKey::Cpu(machine.0));
                    return;
                }
                Op::Net { from, to, bytes } => {
                    if from == to || bytes == 0 {
                        job.pc += 1;
                        continue;
                    }
                    job.net_phase = NetPhase::SenderNic;
                    let now = self.now;
                    self.machines[from.0 as usize].nic.enqueue(now, job_id, bytes as f64);
                    self.refresh_ps(ResKey::Nic(from.0));
                    return;
                }
                Op::Delay { micros } => {
                    let at = self.now + SimDuration::from_micros(micros);
                    self.schedule(at, EventKind::DelayDone { job: job_id });
                    return;
                }
                Op::Lock { lock, mode } => {
                    if self.locks.acquire(self.now, lock, mode, job_id) {
                        let job = self.jobs.get_mut(&job_id).expect("job");
                        job.pc += 1;
                        continue;
                    }
                    // Parked; the pc stays at the Lock op and is advanced by
                    // the grant path below.
                    return;
                }
                Op::Unlock { lock } => {
                    let granted = self.locks.release(self.now, lock, job_id);
                    for g in granted {
                        // The granted job was parked at its Lock op.
                        let gj = self.jobs.get_mut(&g).expect("granted unknown job");
                        gj.pc += 1;
                        queue.push(g);
                    }
                    let job = self.jobs.get_mut(&job_id).expect("job");
                    job.pc += 1;
                    continue;
                }
                Op::SemAcquire { sem } => {
                    if self.locks.sem_acquire(self.now, sem, job_id) {
                        let job = self.jobs.get_mut(&job_id).expect("job");
                        job.pc += 1;
                        continue;
                    }
                    return;
                }
                Op::SemRelease { sem } => {
                    if let Some(g) = self.locks.sem_release(self.now, sem) {
                        let gj = self.jobs.get_mut(&g).expect("granted unknown job");
                        gj.pc += 1;
                        queue.push(g);
                    }
                    let job = self.jobs.get_mut(&job_id).expect("job");
                    job.pc += 1;
                    continue;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lock::LockMode;

    struct Recorder {
        done: Vec<JobDone>,
        timers: Vec<(SimTime, u64)>,
    }

    impl Recorder {
        fn new() -> Self {
            Recorder { done: Vec::new(), timers: Vec::new() }
        }
    }

    impl Driver for Recorder {
        fn on_job_complete(&mut self, _sim: &mut Simulation, done: JobDone) {
            self.done.push(done);
        }
        fn on_timer(&mut self, sim: &mut Simulation, token: u64) {
            self.timers.push((sim.now(), token));
        }
    }

    fn t(micros: u64) -> SimTime {
        SimTime::from_micros(micros)
    }

    #[test]
    fn single_cpu_job_completes_on_time() {
        let mut sim = Simulation::new(SimDuration::ZERO);
        let m = sim.add_machine("web", 1.0, 100.0);
        let trace: Trace = [Op::Cpu { machine: m, micros: 400 }].into_iter().collect();
        sim.submit(trace, 42);
        let mut rec = Recorder::new();
        sim.run(t(10_000), &mut rec);
        assert_eq!(rec.done.len(), 1);
        assert_eq!(rec.done[0].tag, 42);
        assert_eq!(rec.done[0].completed, t(400));
        assert_eq!(rec.done[0].latency(), SimDuration::from_micros(400));
    }

    #[test]
    fn ps_contention_stretches_latency() {
        let mut sim = Simulation::new(SimDuration::ZERO);
        let m = sim.add_machine("web", 1.0, 100.0);
        for i in 0..2 {
            let trace: Trace = [Op::Cpu { machine: m, micros: 1_000 }].into_iter().collect();
            sim.submit(trace, i);
        }
        let mut rec = Recorder::new();
        sim.run(t(100_000), &mut rec);
        assert_eq!(rec.done.len(), 2);
        // Both share the CPU: each takes ~2000us.
        for d in &rec.done {
            assert!(d.latency() >= SimDuration::from_micros(1_999), "{d:?}");
        }
    }

    #[test]
    fn net_transfer_charges_both_nics_and_latency() {
        let mut sim = Simulation::new(SimDuration::from_micros(150));
        let a = sim.add_machine("a", 1.0, 100.0); // 12.5 B/us
        let b = sim.add_machine("b", 1.0, 100.0);
        let trace: Trace = [Op::Net { from: a, to: b, bytes: 1_250 }].into_iter().collect();
        sim.submit(trace, 0);
        let mut rec = Recorder::new();
        sim.run(t(100_000), &mut rec);
        // 1250 bytes at 12.5 B/us = 100us per NIC + 150us latency = 350us.
        assert_eq!(rec.done[0].completed, t(350));
        let sa = sim.nic_stats(a);
        let sb = sim.nic_stats(b);
        assert!((sa.work_done - 1_250.0).abs() < 1e-6);
        assert!((sb.work_done - 1_250.0).abs() < 1e-6);
    }

    #[test]
    fn loopback_and_zero_byte_transfers_are_free() {
        let mut sim = Simulation::new(SimDuration::from_micros(150));
        let a = sim.add_machine("a", 1.0, 100.0);
        let b = sim.add_machine("b", 1.0, 100.0);
        let trace: Trace =
            [Op::Net { from: a, to: a, bytes: 1_000_000 }, Op::Net { from: a, to: b, bytes: 0 }]
                .into_iter()
                .collect();
        sim.submit(trace, 0);
        let mut rec = Recorder::new();
        sim.run(t(10_000), &mut rec);
        assert_eq!(rec.done[0].completed, t(0));
    }

    #[test]
    fn delay_op_waits_exactly() {
        let mut sim = Simulation::new(SimDuration::ZERO);
        let _ = sim.add_machine("a", 1.0, 100.0);
        let trace: Trace = [Op::Delay { micros: 777 }].into_iter().collect();
        sim.submit(trace, 0);
        let mut rec = Recorder::new();
        sim.run(t(10_000), &mut rec);
        assert_eq!(rec.done[0].completed, t(777));
    }

    #[test]
    fn lock_serializes_critical_sections() {
        let mut sim = Simulation::new(SimDuration::ZERO);
        let m = sim.add_machine("db", 1.0, 100.0);
        let l = sim.register_lock("items");
        for i in 0..3 {
            let trace: Trace = [
                Op::Lock { lock: l, mode: LockMode::Exclusive },
                Op::Cpu { machine: m, micros: 1_000 },
                Op::Unlock { lock: l },
            ]
            .into_iter()
            .collect();
            sim.submit(trace, i);
        }
        let mut rec = Recorder::new();
        sim.run(t(100_000), &mut rec);
        assert_eq!(rec.done.len(), 3);
        // Fully serialized: completions at 1000, 2000, 3000 (the CPU is
        // never shared because the lock serializes).
        let mut ends: Vec<u64> = rec.done.iter().map(|d| d.completed.as_micros()).collect();
        ends.sort_unstable();
        assert_eq!(ends, vec![1_000, 2_000, 3_000]);
        let ls = sim.lock_stats(l);
        assert_eq!(ls.immediate_grants + ls.contended, 3);
        assert_eq!(ls.contended, 2);
    }

    #[test]
    fn readers_proceed_in_parallel() {
        let mut sim = Simulation::new(SimDuration::ZERO);
        let m = sim.add_machine("db", 2.0, 100.0); // 2 cores
        let l = sim.register_lock("items");
        for i in 0..2 {
            let trace: Trace = [
                Op::Lock { lock: l, mode: LockMode::Shared },
                Op::Cpu { machine: m, micros: 1_000 },
                Op::Unlock { lock: l },
            ]
            .into_iter()
            .collect();
            sim.submit(trace, i);
        }
        let mut rec = Recorder::new();
        sim.run(t(100_000), &mut rec);
        // Both run concurrently on 2 cores: both end at 1000us.
        assert!(rec.done.iter().all(|d| d.completed == t(1_000)));
    }

    #[test]
    fn semaphore_limits_concurrency() {
        let mut sim = Simulation::new(SimDuration::ZERO);
        let m = sim.add_machine("web", 4.0, 100.0);
        let s = sim.register_semaphore("pool", 1);
        for i in 0..2 {
            let trace: Trace = [
                Op::SemAcquire { sem: s },
                Op::Cpu { machine: m, micros: 500 },
                Op::SemRelease { sem: s },
            ]
            .into_iter()
            .collect();
            sim.submit(trace, i);
        }
        let mut rec = Recorder::new();
        sim.run(t(100_000), &mut rec);
        let mut ends: Vec<u64> = rec.done.iter().map(|d| d.completed.as_micros()).collect();
        ends.sort_unstable();
        // Despite 4 cores, the pool of 1 serializes: 500 then 1000... the
        // second job starts only when the first releases.
        assert_eq!(ends, vec![500, 1_000]);
    }

    #[test]
    fn timers_fire_in_order() {
        let mut sim = Simulation::new(SimDuration::ZERO);
        sim.set_timer(t(300), 3);
        sim.set_timer(t(100), 1);
        sim.set_timer(t(200), 2);
        let mut rec = Recorder::new();
        sim.run(t(1_000), &mut rec);
        assert_eq!(rec.timers, vec![(t(100), 1), (t(200), 2), (t(300), 3)]);
    }

    #[test]
    fn empty_trace_completes_immediately() {
        let mut sim = Simulation::new(SimDuration::ZERO);
        sim.submit(Trace::new(), 9);
        let mut rec = Recorder::new();
        sim.run(t(1), &mut rec);
        assert_eq!(rec.done.len(), 1);
        assert_eq!(rec.done[0].completed, t(0));
    }

    /// A driver that submits a new job from within a completion callback.
    struct Chainer {
        m: MachineId,
        remaining: u32,
        finished: u32,
    }

    impl Driver for Chainer {
        fn on_job_complete(&mut self, sim: &mut Simulation, _done: JobDone) {
            self.finished += 1;
            if self.remaining > 0 {
                self.remaining -= 1;
                let trace: Trace = [Op::Cpu { machine: self.m, micros: 100 }].into_iter().collect();
                sim.submit(trace, 0);
            }
        }
        fn on_timer(&mut self, _sim: &mut Simulation, _token: u64) {}
    }

    #[test]
    fn reentrant_submission_from_callback() {
        let mut sim = Simulation::new(SimDuration::ZERO);
        let m = sim.add_machine("web", 1.0, 100.0);
        let trace: Trace = [Op::Cpu { machine: m, micros: 100 }].into_iter().collect();
        sim.submit(trace, 0);
        let mut chain = Chainer { m, remaining: 4, finished: 0 };
        sim.run(t(10_000), &mut chain);
        assert_eq!(chain.finished, 5);
        assert_eq!(sim.stats().completed, 5);
        // 5 sequential 100us jobs.
        assert_eq!(sim.cpu_stats(m).busy_micros as u64, 500);
    }

    #[test]
    fn utilization_integrals_are_exact_at_run_end() {
        let mut sim = Simulation::new(SimDuration::ZERO);
        let m = sim.add_machine("web", 1.0, 100.0);
        let trace: Trace = [Op::Cpu { machine: m, micros: 2_500 }].into_iter().collect();
        sim.submit(trace, 0);
        let mut rec = Recorder::new();
        sim.run(t(10_000), &mut rec);
        let s = sim.cpu_stats(m);
        assert!((s.busy_micros - 2_500.0).abs() < 1e-6);
        // Utilization over the window: 25%.
        let util = s.busy_micros / sim.now().as_micros() as f64;
        assert!((util - 0.25).abs() < 1e-6);
    }

    #[test]
    fn deterministic_event_order() {
        let run = || {
            let mut sim = Simulation::new(SimDuration::from_micros(10));
            let a = sim.add_machine("a", 1.0, 100.0);
            let b = sim.add_machine("b", 1.0, 100.0);
            let l = sim.register_lock("x");
            for i in 0..20 {
                let trace: Trace = [
                    Op::Cpu { machine: a, micros: 100 + i * 7 },
                    Op::Lock { lock: l, mode: LockMode::Exclusive },
                    Op::Net { from: a, to: b, bytes: 200 + i * 13 },
                    Op::Cpu { machine: b, micros: 50 },
                    Op::Unlock { lock: l },
                ]
                .into_iter()
                .collect();
                sim.submit(trace, i);
            }
            let mut rec = Recorder::new();
            sim.run(t(1_000_000), &mut rec);
            rec.done.iter().map(|d| (d.tag, d.completed.as_micros())).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
