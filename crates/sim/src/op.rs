//! The primitive operations a simulated request executes.
//!
//! A request (one dynamic-content interaction, including its embedded static
//! fetches) is compiled by the middleware layer into a linear [`Trace`] of
//! [`Op`]s. The engine plays traces against contended resources: CPU and NIC
//! demands go through processor-sharing queues, lock operations through the
//! queued lock manager, delays through the calendar.

use crate::engine::MachineId;
use crate::lock::{LockId, LockMode, SemaphoreId};

/// One step of a simulated request.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Consume `micros` CPU-microseconds on a machine's CPU (processor
    /// sharing with everything else running there).
    Cpu {
        /// The machine whose CPU is charged.
        machine: MachineId,
        /// Service demand in CPU-microseconds.
        micros: u64,
    },
    /// Transfer `bytes` from one machine to another: charges the sender NIC,
    /// then the configured link latency, then the receiver NIC. A transfer
    /// where `from == to` is loopback and free (in-process / local IPC costs
    /// are modeled explicitly as [`Op::Cpu`] by the middleware layer).
    Net {
        /// Sending machine.
        from: MachineId,
        /// Receiving machine.
        to: MachineId,
        /// Payload size in bytes.
        bytes: u64,
    },
    /// Wait for a fixed duration (disk service, protocol pauses).
    Delay {
        /// Wait length in microseconds.
        micros: u64,
    },
    /// Acquire a read/write lock; parks the job until granted.
    Lock {
        /// The lock to acquire.
        lock: LockId,
        /// Requested mode.
        mode: LockMode,
    },
    /// Release a previously acquired lock.
    Unlock {
        /// The lock to release.
        lock: LockId,
    },
    /// Acquire one unit of a counting semaphore; parks until granted.
    SemAcquire {
        /// The semaphore.
        sem: SemaphoreId,
    },
    /// Release one unit of a counting semaphore.
    SemRelease {
        /// The semaphore.
        sem: SemaphoreId,
    },
}

/// A linear program of [`Op`]s executed by one job.
///
/// ```
/// use dynamid_sim::{Trace, Op, MachineId};
/// let mut t = Trace::new();
/// t.push(Op::Cpu { machine: MachineId(0), micros: 150 });
/// t.push(Op::Net { from: MachineId(0), to: MachineId(1), bytes: 512 });
/// assert_eq!(t.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    ops: Vec<Op>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Creates an empty trace with room for `cap` ops.
    pub fn with_capacity(cap: usize) -> Self {
        Trace { ops: Vec::with_capacity(cap) }
    }

    /// Appends an op.
    pub fn push(&mut self, op: Op) {
        self.ops.push(op);
    }

    /// Appends every op of `other`.
    pub fn extend_from(&mut self, other: Trace) {
        self.ops.extend(other.ops);
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when the trace has no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The ops in execution order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Total CPU demand placed on `machine` by this trace, in microseconds.
    /// Useful for tests and for service-demand reporting.
    pub fn cpu_demand(&self, machine: MachineId) -> u64 {
        self.ops
            .iter()
            .map(|op| match op {
                Op::Cpu { machine: m, micros } if *m == machine => *micros,
                _ => 0,
            })
            .sum()
    }

    /// Total bytes sent from `machine` by this trace.
    pub fn bytes_sent(&self, machine: MachineId) -> u64 {
        self.ops
            .iter()
            .map(|op| match op {
                Op::Net { from, to, bytes } if *from == machine && from != to => *bytes,
                _ => 0,
            })
            .sum()
    }

    /// Checks that every `Lock`/`SemAcquire` has a matching later release and
    /// vice versa, returning a description of the first violation. The
    /// middleware layer runs this in debug builds before submitting a trace.
    pub fn check_balanced(&self) -> Result<(), String> {
        use std::collections::HashMap;
        let mut held: HashMap<LockId, usize> = HashMap::new();
        let mut sems: HashMap<SemaphoreId, i64> = HashMap::new();
        for (i, op) in self.ops.iter().enumerate() {
            match op {
                Op::Lock { lock, .. } => {
                    let n = held.entry(*lock).or_insert(0);
                    if *n > 0 {
                        return Err(format!("op {i}: re-entrant lock {lock:?}"));
                    }
                    *n += 1;
                }
                Op::Unlock { lock } => {
                    let n = held.entry(*lock).or_insert(0);
                    if *n == 0 {
                        return Err(format!("op {i}: unlock of unheld {lock:?}"));
                    }
                    *n -= 1;
                }
                Op::SemAcquire { sem } => *sems.entry(*sem).or_insert(0) += 1,
                Op::SemRelease { sem } => {
                    let n = sems.entry(*sem).or_insert(0);
                    if *n <= 0 {
                        return Err(format!("op {i}: release of unheld {sem:?}"));
                    }
                    *n -= 1;
                }
                _ => {}
            }
        }
        if let Some((l, _)) = held.iter().find(|(_, n)| **n > 0) {
            return Err(format!("trace ends holding lock {l:?}"));
        }
        if let Some((s, _)) = sems.iter().find(|(_, n)| **n > 0) {
            return Err(format!("trace ends holding semaphore {s:?}"));
        }
        Ok(())
    }
}

impl FromIterator<Op> for Trace {
    fn from_iter<I: IntoIterator<Item = Op>>(iter: I) -> Self {
        Trace { ops: iter.into_iter().collect() }
    }
}

impl Extend<Op> for Trace {
    fn extend<I: IntoIterator<Item = Op>>(&mut self, iter: I) {
        self.ops.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demand_accounting() {
        let m0 = MachineId(0);
        let m1 = MachineId(1);
        let t: Trace = [
            Op::Cpu { machine: m0, micros: 100 },
            Op::Cpu { machine: m1, micros: 40 },
            Op::Cpu { machine: m0, micros: 60 },
            Op::Net { from: m0, to: m1, bytes: 512 },
            Op::Net { from: m0, to: m0, bytes: 999 }, // loopback: not sent
        ]
        .into_iter()
        .collect();
        assert_eq!(t.cpu_demand(m0), 160);
        assert_eq!(t.cpu_demand(m1), 40);
        assert_eq!(t.bytes_sent(m0), 512);
        assert_eq!(t.bytes_sent(m1), 0);
    }

    #[test]
    fn balanced_trace_passes() {
        let l = LockId(0);
        let s = SemaphoreId(0);
        let t: Trace = [
            Op::SemAcquire { sem: s },
            Op::Lock { lock: l, mode: LockMode::Exclusive },
            Op::Cpu { machine: MachineId(0), micros: 10 },
            Op::Unlock { lock: l },
            Op::SemRelease { sem: s },
        ]
        .into_iter()
        .collect();
        assert!(t.check_balanced().is_ok());
    }

    #[test]
    fn unbalanced_traces_fail() {
        let l = LockId(3);
        let dangling: Trace = [Op::Lock { lock: l, mode: LockMode::Shared }].into_iter().collect();
        assert!(dangling.check_balanced().unwrap_err().contains("ends holding"));

        let unheld: Trace = [Op::Unlock { lock: l }].into_iter().collect();
        assert!(unheld.check_balanced().unwrap_err().contains("unheld"));

        let reentrant: Trace = [
            Op::Lock { lock: l, mode: LockMode::Shared },
            Op::Lock { lock: l, mode: LockMode::Shared },
        ]
        .into_iter()
        .collect();
        assert!(reentrant.check_balanced().unwrap_err().contains("re-entrant"));
    }

    #[test]
    fn extend_and_collect() {
        let mut t = Trace::with_capacity(2);
        t.push(Op::Delay { micros: 5 });
        let mut u = Trace::new();
        u.push(Op::Delay { micros: 6 });
        t.extend_from(u);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.ops(), &[Op::Delay { micros: 5 }, Op::Delay { micros: 6 }]);
    }
}
