//! Simulation clock types.
//!
//! The simulator measures time in integer **microseconds**. Two newtypes keep
//! instants and durations from being confused ([`SimTime`] vs
//! [`SimDuration`]), mirroring `std::time::{Instant, Duration}`.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock, in microseconds since the start of the
/// simulation.
///
/// ```
/// use dynamid_sim::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_millis(3);
/// assert_eq!(t.as_micros(), 3_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
///
/// ```
/// use dynamid_sim::SimDuration;
/// assert_eq!(SimDuration::from_secs(2) + SimDuration::from_millis(500),
///            SimDuration::from_micros(2_500_000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the simulation clock.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `micros` microseconds after the origin.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Microseconds since the origin.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the origin as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier <= self, "duration_since: {earlier} > {self}");
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// A zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Creates a duration of `mins` minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60_000_000)
    }

    /// Creates a duration from a float number of seconds, rounding to the
    /// nearest microsecond and clamping negatives to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((secs * 1e6).round().min(u64::MAX as f64) as u64)
    }

    /// Length in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Length in seconds as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// `true` when the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        assert_eq!(SimDuration::from_secs(1).as_micros(), 1_000_000);
        assert_eq!(SimDuration::from_millis(2).as_micros(), 2_000);
        assert_eq!(SimDuration::from_mins(1).as_micros(), 60_000_000);
        assert_eq!(SimTime::from_micros(5).as_micros(), 5);
        assert!(SimDuration::ZERO.is_zero());
        assert!(!SimDuration::from_micros(1).is_zero());
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_secs(1);
        let u = t + SimDuration::from_millis(500);
        assert_eq!(u - t, SimDuration::from_millis(500));
        assert_eq!(u.duration_since(SimTime::ZERO).as_micros(), 1_500_000);
        assert_eq!(
            SimDuration::from_secs(3) - SimDuration::from_secs(1),
            SimDuration::from_secs(2)
        );
        // saturating subtraction of durations
        assert_eq!(SimDuration::from_secs(1) - SimDuration::from_secs(3), SimDuration::ZERO);
        assert_eq!(SimDuration::from_millis(3) * 4, SimDuration::from_millis(12));
        assert_eq!(SimDuration::from_millis(12) / 4, SimDuration::from_millis(3));
    }

    #[test]
    fn float_conversions() {
        assert_eq!(SimDuration::from_secs_f64(1.5).as_micros(), 1_500_000);
        assert_eq!(SimDuration::from_secs_f64(-2.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert!((SimTime::from_micros(2_500_000).as_secs_f64() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn ordering_and_sum() {
        assert!(SimTime::from_micros(1) < SimTime::from_micros(2));
        let total: SimDuration = [1, 2, 3].into_iter().map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(6));
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_micros(7).to_string(), "7us");
        assert_eq!(SimDuration::from_millis(3).to_string(), "3.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimTime::from_micros(1_000_000).to_string(), "1.000000s");
    }
}
