//! Deterministic fault injection: crash/restart windows, transient per-op
//! failures, and resource degradation.
//!
//! A [`FaultPlan`] describes everything that will go wrong during a run,
//! fixed up front and driven off the simulation's event calendar: machines
//! crash and restart at planned instants, individual resource operations
//! fail with a seeded per-op probability, and CPU/NIC service degrades by a
//! factor over planned intervals. Because the plan is data (not callbacks)
//! and every random draw comes from a dedicated [`SimRng`] stream owned by
//! the plan, two runs with the same seed and plan produce identical event
//! orders and metrics — chaos is replayable.
//!
//! The healthy path pays nothing: a simulation without an installed plan
//! (or with [`FaultPlan::none`]) schedules no fault events and draws no
//! random numbers, so its event sequence is bit-identical to a build
//! without this module.

use crate::engine::MachineId;
use crate::time::SimTime;

/// One planned machine outage: the machine drops at `at` and serves again
/// at `restart`. Jobs in service on the machine when it drops are aborted;
/// jobs that try to use it while it is down fail fast.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashWindow {
    /// The machine that crashes.
    pub machine: MachineId,
    /// When it drops.
    pub at: SimTime,
    /// When it serves again (must be after `at`).
    pub restart: SimTime,
}

/// A planned degradation interval: while `now` is in `[from, until)` the
/// machine's CPU and NIC service demands are inflated by the given factors
/// (a factor of 2.0 means operations take twice the service; 1.0 is
/// healthy). Models thermal throttling, a flaky NIC, a noisy neighbour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Degradation {
    /// The machine affected.
    pub machine: MachineId,
    /// Interval start (inclusive).
    pub from: SimTime,
    /// Interval end (exclusive).
    pub until: SimTime,
    /// Multiplier on CPU service demand (>= 1.0 degrades).
    pub cpu_factor: f64,
    /// Multiplier on NIC service demand (>= 1.0 degrades).
    pub nic_factor: f64,
}

/// A complete, deterministic description of the faults of one run.
///
/// ```
/// use dynamid_sim::fault::FaultPlan;
/// let plan = FaultPlan::none();
/// assert!(plan.is_trivial());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the plan's private random stream (transient-failure draws).
    pub seed: u64,
    /// Probability that any single CPU or network operation fails
    /// transiently, aborting its job. Drawn from the plan's own stream so
    /// client randomness is unaffected.
    pub transient_fail_prob: f64,
    /// Planned machine outages.
    pub crashes: Vec<CrashWindow>,
    /// Planned degradation intervals.
    pub degradations: Vec<Degradation>,
}

impl FaultPlan {
    /// The zero-fault plan: nothing crashes, nothing fails, nothing slows.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            transient_fail_prob: 0.0,
            crashes: Vec::new(),
            degradations: Vec::new(),
        }
    }

    /// `true` when the plan injects nothing (installing it is a no-op).
    pub fn is_trivial(&self) -> bool {
        self.transient_fail_prob <= 0.0 && self.crashes.is_empty() && self.degradations.is_empty()
    }

    /// Validates internal consistency: windows ordered, probabilities in
    /// `[0, 1]`, factors finite and positive.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.transient_fail_prob) {
            return Err(format!("transient_fail_prob {} not in [0,1]", self.transient_fail_prob));
        }
        for (i, c) in self.crashes.iter().enumerate() {
            if c.restart <= c.at {
                return Err(format!("crash window {i}: restart {:?} <= at {:?}", c.restart, c.at));
            }
        }
        for (i, d) in self.degradations.iter().enumerate() {
            if d.until <= d.from {
                return Err(format!("degradation {i}: until {:?} <= from {:?}", d.until, d.from));
            }
            for (name, f) in [("cpu", d.cpu_factor), ("nic", d.nic_factor)] {
                if !f.is_finite() || f <= 0.0 {
                    return Err(format!("degradation {i}: {name} factor {f} must be positive"));
                }
            }
        }
        Ok(())
    }

    /// The CPU demand multiplier in effect on `machine` at `now` (product
    /// of all matching intervals; 1.0 when none match).
    pub fn cpu_factor(&self, machine: MachineId, now: SimTime) -> f64 {
        self.factor(machine, now, |d| d.cpu_factor)
    }

    /// The NIC demand multiplier in effect on `machine` at `now`.
    pub fn nic_factor(&self, machine: MachineId, now: SimTime) -> f64 {
        self.factor(machine, now, |d| d.nic_factor)
    }

    fn factor(&self, machine: MachineId, now: SimTime, pick: impl Fn(&Degradation) -> f64) -> f64 {
        self.degradations
            .iter()
            .filter(|d| d.machine == machine && d.from <= now && now < d.until)
            .map(pick)
            .product()
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(micros: u64) -> SimTime {
        SimTime::from_micros(micros)
    }

    #[test]
    fn trivial_plan_is_trivial() {
        assert!(FaultPlan::none().is_trivial());
        assert!(FaultPlan::default().is_trivial());
        let mut p = FaultPlan::none();
        p.transient_fail_prob = 0.1;
        assert!(!p.is_trivial());
    }

    #[test]
    fn validation_catches_bad_windows() {
        let mut p = FaultPlan::none();
        p.crashes.push(CrashWindow { machine: MachineId(0), at: t(100), restart: t(100) });
        assert!(p.validate().is_err());
        p.crashes[0].restart = t(200);
        assert!(p.validate().is_ok());
        p.transient_fail_prob = 1.5;
        assert!(p.validate().is_err());
    }

    #[test]
    fn degradation_factors_compose_over_matching_intervals() {
        let m = MachineId(1);
        let p = FaultPlan {
            seed: 0,
            transient_fail_prob: 0.0,
            crashes: Vec::new(),
            degradations: vec![
                Degradation {
                    machine: m,
                    from: t(0),
                    until: t(100),
                    cpu_factor: 2.0,
                    nic_factor: 1.0,
                },
                Degradation {
                    machine: m,
                    from: t(50),
                    until: t(150),
                    cpu_factor: 3.0,
                    nic_factor: 1.5,
                },
            ],
        };
        assert_eq!(p.cpu_factor(m, t(10)), 2.0);
        assert_eq!(p.cpu_factor(m, t(75)), 6.0);
        assert_eq!(p.cpu_factor(m, t(120)), 3.0);
        assert_eq!(p.cpu_factor(m, t(150)), 1.0);
        assert_eq!(p.nic_factor(m, t(75)), 1.5);
        // Other machines are unaffected.
        assert_eq!(p.cpu_factor(MachineId(0), t(75)), 1.0);
    }

    #[test]
    fn factor_boundaries_are_half_open() {
        let m = MachineId(0);
        let p = FaultPlan {
            seed: 0,
            transient_fail_prob: 0.0,
            crashes: Vec::new(),
            degradations: vec![Degradation {
                machine: m,
                from: t(100),
                until: t(200),
                cpu_factor: 4.0,
                nic_factor: 4.0,
            }],
        };
        assert_eq!(p.cpu_factor(m, t(99)), 1.0);
        assert_eq!(p.cpu_factor(m, t(100)), 4.0);
        assert_eq!(p.cpu_factor(m, t(199)), 4.0);
        assert_eq!(p.cpu_factor(m, t(200)), 1.0);
    }
}
