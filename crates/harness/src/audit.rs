//! Post-run consistency auditor: replays the commit ledger against the
//! final database and asserts application-level invariants.
//!
//! Every chaos/availability run ends with the driver's crash-consistent
//! unwind: aborted and in-flight transactions are rolled back, committed
//! ones keep their writes and leave a receipt in the
//! [`CommitLedger`](dynamid_workload::CommitLedger). The auditor then
//! checks that the surviving database is exactly "baseline + committed
//! transactions":
//!
//! - per-table live row counts match the baseline plus the ledger's net
//!   committed deltas;
//! - no item's stock is negative, and total stock equals baseline stock
//!   minus the quantities on committed (surviving) order lines — a
//!   cross-table conservation law that fails if an abort ever tears a
//!   half-written purchase;
//! - every order placed during the run satisfies the application's pricing
//!   arithmetic bit-exactly (`tax = subtotal * 0.0825`,
//!   `total = subtotal * (1 - discount) * 1.0825 + 3.0`), owns at least one
//!   order line, and has exactly one credit-card record whose amount equals
//!   the order total;
//! - (auction) bids placed on the same item strictly increase in commit
//!   order, as the store-bid interaction always bids above the current
//!   maximum.
//!
//! A violation means the rollback machinery lost or invented a write;
//! [`AuditReport::assert_clean`] fails loudly with every violation listed.

use dynamid_sqldb::{Database, Value};
use dynamid_workload::CommitLedger;

/// Outcome of one audit pass: how many invariants were checked and which
/// ones failed.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// Number of individual invariant checks performed.
    pub checks: u64,
    /// Human-readable description of every violated invariant.
    pub violations: Vec<String>,
}

impl AuditReport {
    /// `true` when no invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panics with every violation listed when the audit found any.
    ///
    /// # Panics
    ///
    /// Panics if the report contains violations.
    pub fn assert_clean(&self, context: &str) {
        assert!(
            self.is_clean(),
            "consistency audit FAILED ({context}): {}/{} checks violated:\n  {}",
            self.violations.len(),
            self.checks,
            self.violations.join("\n  "),
        );
    }

    fn check(&mut self, ok: bool, msg: impl FnOnce() -> String) {
        self.checks += 1;
        if !ok {
            self.violations.push(msg());
        }
    }
}

/// Runs a query expected to produce a single integer scalar (`COUNT`,
/// `SUM`, `MAX`); `NULL` (empty aggregate) maps to 0.
fn scalar_i64(db: &mut Database, sql: &str, params: &[Value]) -> i64 {
    db.execute(sql, params)
        .unwrap_or_else(|e| panic!("audit query failed: {sql}: {e}"))
        .scalar()
        .and_then(|v| v.as_int())
        .unwrap_or(0)
}

/// Per-table live row counts must equal the baseline plus the ledger's net
/// committed insert/delete deltas.
fn audit_row_counts(
    baseline: &Database,
    fin: &Database,
    ledger: &CommitLedger,
    report: &mut AuditReport,
) {
    for (id, name) in baseline.table_names().into_iter().enumerate() {
        let before = baseline.table(name).expect("baseline table").row_count() as i64;
        let after = fin.table(name).expect("final table").row_count() as i64;
        let delta = ledger.delta(id);
        report.check(after == before + delta, || {
            format!(
                "{name}: {after} live rows, expected {before} baseline + {delta} committed = {}",
                before + delta
            )
        });
    }
}

/// Audits a bookstore database after a run against the run's commit
/// ledger. `baseline` is the freshly populated database the run started
/// from.
pub fn audit_bookstore(
    baseline: &Database,
    final_db: &Database,
    ledger: &CommitLedger,
) -> AuditReport {
    let mut report = AuditReport::default();
    audit_row_counts(baseline, final_db, ledger, &mut report);

    // Queries bump statement counters, so audit clones (cheap: tables are
    // copy-on-write) rather than the run databases themselves.
    let mut base = baseline.clone();
    let mut db = final_db.clone();

    let negative = scalar_i64(&mut db, "SELECT COUNT(*) FROM items WHERE stock < 0", &[]);
    report.check(negative == 0, || format!("{negative} item(s) with negative stock"));

    // Conservation: every committed purchase decremented stock by exactly
    // the quantities on its surviving order lines; every rolled-back one
    // restored them.
    let base_stock = scalar_i64(&mut base, "SELECT SUM(stock) FROM items", &[]);
    let final_stock = scalar_i64(&mut db, "SELECT SUM(stock) FROM items", &[]);
    let base_max_line = scalar_i64(&mut base, "SELECT MAX(id) FROM order_line", &[]);
    let sold = scalar_i64(
        &mut db,
        "SELECT SUM(qty) FROM order_line WHERE id > ?",
        &[Value::Int(base_max_line)],
    );
    report.check(final_stock == base_stock - sold, || {
        format!(
            "stock not conserved: baseline {base_stock} - {sold} committed units \
             = {}, but final stock is {final_stock}",
            base_stock - sold
        )
    });

    // Every order placed during the run (baseline orders predate the
    // pricing code) satisfies the buy-confirm arithmetic bit-exactly.
    let base_max_order = scalar_i64(&mut base, "SELECT MAX(id) FROM orders", &[]);
    let orders = db
        .execute(
            "SELECT id, subtotal, tax, total FROM orders WHERE id > ? ORDER BY id",
            &[Value::Int(base_max_order)],
        )
        .expect("orders query");
    for row in &orders.rows {
        let id = row[0].as_int().unwrap_or(0);
        let subtotal = row[1].as_float().unwrap_or(f64::NAN);
        let tax = row[2].as_float().unwrap_or(f64::NAN);
        let total = row[3].as_float().unwrap_or(f64::NAN);
        report.check(tax == subtotal * 0.0825, || {
            format!("order {id}: tax {tax} != subtotal {subtotal} * 0.0825")
        });
        let lines = db
            .execute("SELECT discount, qty FROM order_line WHERE order_id = ?", &[Value::Int(id)])
            .expect("order_line query");
        report.check(!lines.rows.is_empty(), || format!("order {id}: no order lines"));
        if let Some(line) = lines.rows.first() {
            let disc = line[0].as_float().unwrap_or(f64::NAN);
            let expect = subtotal * (1.0 - disc) * 1.0825 + 3.0;
            report.check(total == expect, || {
                format!(
                    "order {id}: total {total} != subtotal {subtotal} \
                     * (1 - {disc}) * 1.0825 + 3.0 = {expect}"
                )
            });
        }
        let credit = db
            .execute("SELECT amount FROM credit_info WHERE order_id = ?", &[Value::Int(id)])
            .expect("credit_info query");
        report.check(credit.rows.len() == 1, || {
            format!("order {id}: {} credit records, expected exactly 1", credit.rows.len())
        });
        if let Some(c) = credit.rows.first() {
            let amount = c[0].as_float().unwrap_or(f64::NAN);
            report.check(amount == total, || {
                format!("order {id}: charged {amount} != order total {total}")
            });
        }
    }
    report
}

/// Audits an auction database after a run: ledger row-count replay plus
/// bid monotonicity — bids committed on the same item strictly increase,
/// because store-bid always bids above the item's current maximum.
pub fn audit_auction(
    baseline: &Database,
    final_db: &Database,
    ledger: &CommitLedger,
) -> AuditReport {
    let mut report = AuditReport::default();
    audit_row_counts(baseline, final_db, ledger, &mut report);

    let mut base = baseline.clone();
    let mut db = final_db.clone();
    let base_max_bid = scalar_i64(&mut base, "SELECT MAX(id) FROM bids", &[]);
    let bids = db
        .execute(
            "SELECT id, item_id, bid FROM bids WHERE id > ? ORDER BY id",
            &[Value::Int(base_max_bid)],
        )
        .expect("bids query");
    let mut high: std::collections::BTreeMap<i64, f64> = std::collections::BTreeMap::new();
    for row in &bids.rows {
        let bid_id = row[0].as_int().unwrap_or(0);
        let item = row[1].as_int().unwrap_or(0);
        let bid = row[2].as_float().unwrap_or(f64::NAN);
        if let Some(prev) = high.get(&item) {
            report.check(bid > *prev, || {
                format!("bid {bid_id} on item {item}: {bid} does not beat earlier bid {prev}")
            });
        }
        high.insert(item, bid);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynamid_workload::CommitLedger;

    fn two_table_db() -> Database {
        use dynamid_sqldb::{ColumnType, TableSchema};
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("a")
                .column("id", ColumnType::Int)
                .primary_key("id")
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_table(
            TableSchema::builder("b")
                .column("id", ColumnType::Int)
                .primary_key("id")
                .build()
                .unwrap(),
        )
        .unwrap();
        db.execute("INSERT INTO a (id) VALUES (1)", &[]).unwrap();
        db
    }

    #[test]
    fn row_count_replay_catches_lost_and_invented_rows() {
        let baseline = two_table_db();
        let mut fin = baseline.clone();
        fin.execute("INSERT INTO a (id) VALUES (2)", &[]).unwrap();

        // Ledger that accounts for the insert: clean.
        let mut ledger = CommitLedger::default();
        ledger.row_deltas.insert(0, 1);
        let mut report = AuditReport::default();
        audit_row_counts(&baseline, &fin, &ledger, &mut report);
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(report.checks, 2);

        // Ledger that claims nothing was committed: the extra row is an
        // invented write.
        let mut report = AuditReport::default();
        audit_row_counts(&baseline, &fin, &CommitLedger::default(), &mut report);
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].contains("a:"), "{:?}", report.violations);
    }

    #[test]
    #[should_panic(expected = "consistency audit FAILED")]
    fn assert_clean_panics_loudly() {
        let mut report = AuditReport::default();
        report.check(false, || "broken invariant".to_string());
        report.assert_clean("unit test");
    }

    #[test]
    fn auction_bidding_run_passes_bid_monotonicity_audit() {
        use dynamid_auction::{Auction, AuctionScale};
        use dynamid_core::StandardConfig;
        use dynamid_sim::SimDuration;
        use dynamid_workload::{ExperimentSpec, ResilienceConfig, WorkloadConfig};

        let scale = AuctionScale::scaled(0.002);
        let baseline = dynamid_auction::build_db(&scale, 7).expect("population");
        let app = Auction::new(scale);
        let mix = dynamid_auction::mixes::bidding();
        let workload = WorkloadConfig {
            clients: 20,
            think_time: SimDuration::from_millis(300),
            session_time: SimDuration::from_secs(60),
            ramp_up: SimDuration::from_secs(1),
            measure: SimDuration::from_secs(8),
            ramp_down: SimDuration::from_secs(1),
            seed: 7,
            resilience: ResilienceConfig::disabled(),
        };
        let mut db = baseline.clone();
        let r = ExperimentSpec::for_config(StandardConfig::PhpColocated)
            .mix(&mix)
            .workload(workload)
            .run(&mut db, &app);
        assert!(r.ledger.committed > 0, "no commits — the audit would be vacuous");
        let report = audit_auction(&baseline, &db, &r.ledger);
        report.assert_clean("auction bidding unit run");
        // Bids were actually placed, so monotonicity was really checked.
        assert!(
            db.table("bids").unwrap().row_count() > baseline.table("bids").unwrap().row_count(),
            "bidding mix placed no bids"
        );
    }
}
