//! The cache-ablation sweep: throughput versus caching policy across the
//! deployment configurations.
//!
//! The paper's headline is that the EJB configurations lose to PHP and
//! servlets largely on per-interaction middleware cost — exactly the cost
//! a transaction-consistent cache amortizes away (Pfeifer & Lockemann's
//! transactional method caching). This sweep quantifies that: every
//! configuration × {cache off, TTL, transactional} × cache capacity, on
//! the read-heavy browsing mix where the recipe has the most to gain.
//!
//! Every point ends with the post-run consistency audit. Points running
//! with the cache **off** or under **transactional** invalidation must be
//! audit-clean — commit-driven invalidation guarantees coherent hits, so a
//! violation means the caching tier corrupted a run and the sweep panics.
//! **TTL** points are allowed to be stale by construction; their violation
//! counts are *recorded* in the CSV instead, making the auditor the
//! pricing oracle for TTL staleness.

use crate::HarnessConfig;
use dynamid_bookstore::{Bookstore, BookstoreScale};
use dynamid_core::{CacheInvalidation, CachePolicy, CacheScope, CostModel, StandardConfig};
use dynamid_workload::{CacheStats, ExperimentSpec};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The caching policies the sweep ablates over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheMode {
    /// No caching tier installed: the baseline every figure golden uses.
    Off,
    /// Both layers with time-to-live expiry ([`CACHE_TTL_MICROS`]); commits
    /// do not invalidate, so hits may be stale.
    Ttl,
    /// Both layers with commit-driven (transactional) invalidation; hits
    /// are always coherent with committed state.
    Transactional,
}

/// Sweep order: baseline first, then the two cached policies.
pub const CACHE_MODES: [CacheMode; 3] = [CacheMode::Off, CacheMode::Ttl, CacheMode::Transactional];

/// TTL for [`CacheMode::Ttl`] points, in simulated microseconds (2 s —
/// long enough to serve stale reads across commits, short enough that the
/// working set keeps turning over).
pub const CACHE_TTL_MICROS: u64 = 2_000_000;

/// Cache capacities the cached modes sweep over: a constrained cache that
/// churns under the browsing working set, and an ample one.
pub const DEFAULT_CACHE_CAPACITIES: [usize; 2] = [256, 4096];

impl CacheMode {
    /// CSV / display label.
    pub fn label(self) -> &'static str {
        match self {
            CacheMode::Off => "off",
            CacheMode::Ttl => "ttl",
            CacheMode::Transactional => "txn",
        }
    }

    /// The experiment policy for this mode at `capacity`; `None` for
    /// [`CacheMode::Off`].
    pub fn policy(self, capacity: usize) -> Option<CachePolicy> {
        let invalidation = match self {
            CacheMode::Off => return None,
            CacheMode::Ttl => CacheInvalidation::Ttl(CACHE_TTL_MICROS),
            CacheMode::Transactional => CacheInvalidation::Transactional,
        };
        Some(CachePolicy { capacity, scope: CacheScope::Both, invalidation })
    }

    /// Whether the consistency auditor must be clean at this mode's points.
    /// TTL trades coherence for hit rate on purpose; everything else has no
    /// excuse.
    pub fn must_audit_clean(self) -> bool {
        !matches!(self, CacheMode::Ttl)
    }
}

/// One (configuration, mode, capacity, client count) measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct CachePoint {
    /// The deployment measured.
    pub config: StandardConfig,
    /// Caching policy.
    pub mode: CacheMode,
    /// Cache capacity per layer (0 for [`CacheMode::Off`]).
    pub capacity: usize,
    /// Offered clients.
    pub clients: usize,
    /// Measured throughput (interactions per minute).
    pub throughput_ipm: f64,
    /// 90th-percentile response time (ms) of window completions.
    pub latency_p90_ms: f64,
    /// Cache counters for the run (all zero for [`CacheMode::Off`]).
    pub cache: CacheStats,
    /// Invariant checks the post-run consistency audit performed.
    pub audit_checks: u64,
    /// Invariants the audit found violated. Always 0 for off/transactional
    /// points (the sweep panics otherwise); TTL points record their
    /// staleness damage here.
    pub audit_violations: u64,
}

/// A complete cache-ablation sweep, points in grid order: configurations
/// in `cfg.configs` order, then (mode, capacity) in [`CACHE_MODES`] ×
/// capacity order, then client counts ascending.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheSweepData {
    /// The (mode, capacity) arms each configuration ran (capacity 0 = off).
    pub arms: Vec<(CacheMode, usize)>,
    /// The client ladder.
    pub clients: Vec<usize>,
    /// All measured points.
    pub points: Vec<CachePoint>,
}

impl CacheSweepData {
    /// The point for an exact (config, mode, capacity, clients) tuple.
    pub fn point(
        &self,
        config: StandardConfig,
        mode: CacheMode,
        capacity: usize,
        clients: usize,
    ) -> Option<&CachePoint> {
        self.points.iter().find(|p| {
            p.config == config && p.mode == mode && p.capacity == capacity && p.clients == clients
        })
    }

    /// Best throughput any arm of `mode` reaches for `config` at the
    /// largest client count.
    pub fn best_at_peak_clients(&self, config: StandardConfig, mode: CacheMode) -> Option<f64> {
        let &peak = self.clients.last()?;
        self.points
            .iter()
            .filter(|p| p.config == config && p.mode == mode && p.clients == peak)
            .map(|p| p.throughput_ipm)
            .max_by(f64::total_cmp)
    }
}

/// Runs one sweep point: fresh database fork, one experiment under the
/// arm's cache policy, then the consistency audit. Self-contained and
/// deterministically seeded, so points can run in any order or in parallel
/// without changing results.
fn run_cache_point(
    cfg: &HarnessConfig,
    base_db: &dynamid_sqldb::Database,
    config: StandardConfig,
    mode: CacheMode,
    capacity: usize,
    clients: usize,
) -> CachePoint {
    let mut db = base_db.clone();
    let app = Bookstore::new(BookstoreScale::scaled(cfg.scale));
    let mix = dynamid_bookstore::mixes::browsing();
    let mut spec = ExperimentSpec::for_config(config)
        .mix(&mix)
        .costs(CostModel::default())
        .workload(crate::figures::sweep_workload(cfg, clients))
        .policy(cfg.policy);
    if let Some(policy) = mode.policy(capacity) {
        spec = spec.caching(policy);
    }
    let r = spec.run(&mut db, &app);
    let report = crate::audit::audit_bookstore(base_db, &db, &r.ledger);
    if mode.must_audit_clean() {
        report.assert_clean(&format!(
            "{} cache={} capacity={capacity} clients={clients}",
            config.paper_name(),
            mode.label()
        ));
    }
    let cache = r.cache_stats.unwrap_or_default();
    if cfg.verbose {
        eprintln!(
            "  {:<22} cache={:<4} cap={:<5} clients={:<5} ipm={:>9.0} \
             q-hit={:.2} m-hit={:.2} audit {}/{}",
            config.paper_name(),
            mode.label(),
            capacity,
            clients,
            r.throughput_ipm,
            cache.query_hit_rate(),
            cache.method_hit_rate(),
            report.violations.len(),
            report.checks,
        );
    }
    CachePoint {
        config,
        mode,
        capacity,
        clients,
        throughput_ipm: r.throughput_ipm,
        latency_p90_ms: r.metrics.latency.quantile(0.9).as_micros() as f64 / 1_000.0,
        cache,
        audit_checks: report.checks,
        audit_violations: report.violations.len() as u64,
    }
}

/// Runs the full cache-ablation sweep over `cfg.configs` ×
/// ([`CacheMode::Off`] + cached modes × `capacities`) × the client ladder,
/// on the bookstore browsing mix, using the same worker-pool pattern as
/// the figure sweeps (results are bit-identical for any `--jobs` value).
///
/// # Panics
///
/// Panics when the consistency audit finds a violation at a point whose
/// mode demands coherence (off or transactional) — see the module docs.
pub fn run_cache_sweep(cfg: &HarnessConfig, capacities: &[usize]) -> CacheSweepData {
    let clients = if cfg.clients.is_empty() {
        crate::figures::default_clients(crate::Benchmark::Bookstore)
    } else {
        cfg.clients.clone()
    };
    let mut arms: Vec<(CacheMode, usize)> = vec![(CacheMode::Off, 0)];
    for mode in [CacheMode::Ttl, CacheMode::Transactional] {
        arms.extend(capacities.iter().map(|&c| (mode, c)));
    }
    let base_db = dynamid_bookstore::build_db(&BookstoreScale::scaled(cfg.scale), cfg.seed)
        .expect("population");

    let grid: Vec<(usize, usize, usize)> = (0..cfg.configs.len())
        .flat_map(|ci| {
            let n = clients.len();
            (0..arms.len()).flat_map(move |ai| (0..n).map(move |ni| (ci, ai, ni)))
        })
        .collect();
    let workers = cfg.effective_jobs().min(grid.len()).max(1);

    let run = |i: usize| {
        let (ci, ai, ni) = grid[i];
        let (mode, capacity) = arms[ai];
        run_cache_point(cfg, &base_db, cfg.configs[ci], mode, capacity, clients[ni])
    };
    let points: Vec<CachePoint> = if workers == 1 {
        (0..grid.len()).map(run).collect()
    } else {
        let slots: Mutex<Vec<Option<CachePoint>>> = Mutex::new(vec![None; grid.len()]);
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= grid.len() {
                        break;
                    }
                    let point = run(i);
                    slots.lock().expect("no panics hold the lock")[i] = Some(point);
                });
            }
        });
        slots
            .into_inner()
            .expect("workers joined")
            .into_iter()
            .map(|p| p.expect("every grid slot filled"))
            .collect()
    };

    CacheSweepData { arms, clients, points }
}

/// Renders the sweep as CSV (stable column order; used by `repro cache`
/// and byte-compared against `results/golden/cache.csv` by check.sh).
pub fn cache_csv(data: &CacheSweepData) -> String {
    let mut out = String::from(
        "config,mode,capacity,clients,throughput_ipm,latency_p90_ms,\
         query_hits,query_misses,query_invalidations,query_bypasses,\
         method_hits,method_misses,method_invalidations,method_bypasses,\
         audit_checks,audit_violations\n",
    );
    for p in &data.points {
        out.push_str(&format!(
            "{},{},{},{},{:.1},{:.3},{},{},{},{},{},{},{},{},{},{}\n",
            p.config.paper_name(),
            p.mode.label(),
            p.capacity,
            p.clients,
            p.throughput_ipm,
            p.latency_p90_ms,
            p.cache.query_hits,
            p.cache.query_misses,
            p.cache.query_invalidations,
            p.cache.query_bypasses,
            p.cache.method.hits,
            p.cache.method.misses,
            p.cache.method.invalidations,
            p.cache.method.bypasses,
            p.audit_checks,
            p.audit_violations,
        ));
    }
    out
}

/// Renders the headline comparison as markdown: per configuration, the
/// browsing-mix throughput at the largest client count for each arm, the
/// uplift of the best transactional arm over cache-off, and the EJB+cache
/// versus best-servlet gap the sweep exists to quantify.
pub fn cache_markdown(data: &CacheSweepData) -> String {
    let mut out = String::from(
        "# Cache ablation: browsing-mix throughput (ipm) at the largest client count\n\n",
    );
    let Some(&peak) = data.clients.last() else { return out };
    out.push_str(&format!("At {peak} clients:\n\n| config |"));
    for (mode, cap) in &data.arms {
        match mode {
            CacheMode::Off => out.push_str(" off |"),
            _ => out.push_str(&format!(" {}@{cap} |", mode.label())),
        }
    }
    out.push_str(" txn uplift |\n|---|");
    for _ in &data.arms {
        out.push_str("---|");
    }
    out.push_str("---|\n");
    let mut configs: Vec<StandardConfig> = Vec::new();
    for p in &data.points {
        if !configs.contains(&p.config) {
            configs.push(p.config);
        }
    }
    for &config in &configs {
        out.push_str(&format!("| {} |", config.paper_name()));
        for &(mode, cap) in &data.arms {
            match data.point(config, mode, cap, peak) {
                Some(p) => out.push_str(&format!(" {:.0} |", p.throughput_ipm)),
                None => out.push_str(" - |"),
            }
        }
        let off = data.best_at_peak_clients(config, CacheMode::Off).unwrap_or(0.0);
        let txn = data.best_at_peak_clients(config, CacheMode::Transactional).unwrap_or(0.0);
        if off > 0.0 {
            out.push_str(&format!(" {:+.0}% |\n", (txn / off - 1.0) * 100.0));
        } else {
            out.push_str(" - |\n");
        }
    }
    // The headline: does transactional caching close the EJB-vs-servlet
    // gap the paper measured?
    let ejb = StandardConfig::EjbFourTier;
    let servlet_best = configs
        .iter()
        .filter(|c| !matches!(c, StandardConfig::EjbFourTier))
        .filter_map(|&c| data.best_at_peak_clients(c, CacheMode::Off).map(|t| (c, t)))
        .max_by(|a, b| a.1.total_cmp(&b.1));
    if let (Some(off), Some(txn), Some((sc, st))) = (
        data.best_at_peak_clients(ejb, CacheMode::Off),
        data.best_at_peak_clients(ejb, CacheMode::Transactional),
        servlet_best,
    ) {
        out.push_str(&format!(
            "\nEJB four-tier at {peak} clients: {off:.0} ipm uncached vs {txn:.0} ipm with \
             transactional caching ({:+.0}%); best non-EJB config uncached ({}) reaches \
             {st:.0} ipm — the cached EJB stack runs at {:.0}% of it (uncached: {:.0}%).\n",
            (txn / off - 1.0) * 100.0,
            sc.paper_name(),
            txn / st * 100.0,
            off / st * 100.0,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> HarnessConfig {
        let mut cfg = HarnessConfig::smoke();
        cfg.configs = vec![StandardConfig::PhpColocated, StandardConfig::EjbFourTier];
        cfg.clients = vec![10];
        cfg.jobs = 1;
        cfg
    }

    #[test]
    fn sweep_covers_grid_and_caches_actually_hit() {
        let data = run_cache_sweep(&tiny(), &[1024]);
        // 2 configs × (off + 2 modes × 1 capacity) × 1 client count.
        assert_eq!(data.points.len(), 2 * 3);
        for p in &data.points {
            assert!(p.throughput_ipm > 0.0, "{} produced no throughput", p.config);
            match p.mode {
                CacheMode::Off => assert_eq!(p.cache, CacheStats::default()),
                _ => assert!(
                    p.cache.query_hits > 0,
                    "{} {}: query cache never hit",
                    p.config,
                    p.mode.label()
                ),
            }
            // Off and transactional points reached us, so they audited
            // clean (assert_clean panics otherwise) — the recorded count
            // must agree.
            if p.mode.must_audit_clean() {
                assert_eq!(p.audit_violations, 0);
            }
            assert!(p.audit_checks > 0, "audit ran no checks");
        }
        // The EJB configuration's method cache participates.
        let ejb_txn = data
            .point(StandardConfig::EjbFourTier, CacheMode::Transactional, 1024, 10)
            .expect("grid point");
        assert!(ejb_txn.cache.method.hits > 0, "method cache never hit on the EJB config");
        let csv = cache_csv(&data);
        assert_eq!(csv.lines().count(), 1 + data.points.len());
        assert!(cache_markdown(&data).contains("EJB four-tier"));
    }

    #[test]
    fn sweep_is_bit_identical_for_any_job_count() {
        let serial = tiny();
        let mut parallel = serial.clone();
        parallel.jobs = 4;
        let a = run_cache_sweep(&serial, &[256]);
        let b = run_cache_sweep(&parallel, &[256]);
        assert_eq!(a, b, "--jobs changed cache sweep results");
        assert_eq!(cache_csv(&a), cache_csv(&b));
    }
}
