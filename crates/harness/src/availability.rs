//! The availability sweep: goodput, tail latency, and failure taxonomy
//! versus fault intensity.
//!
//! The paper's figures ask "how fast is each architecture when everything
//! works"; this family asks the complementary robustness question: as the
//! environment degrades — transient faults, machine crash/restart cycles,
//! CPU/NIC brownouts — how gracefully does each architecture shed load?
//! More tiers mean more machines that can fail (the four-tier EJB
//! deployment exposes twice the crash surface of co-located PHP), but also
//! more places to reject early before work is wasted.
//!
//! Every point runs with the same client-side resilience policy (deadline,
//! two retries with capped exponential backoff) and the same server-side
//! admission limits, so the curves isolate the architecture, not the
//! policy. Fault schedules compile deterministically from the sweep seed:
//! the whole sweep is bit-reproducible.

use crate::HarnessConfig;
use dynamid_bookstore::{Bookstore, BookstoreScale};
use dynamid_core::{AdmissionControl, CostModel, StandardConfig};
use dynamid_sim::SimDuration;
use dynamid_workload::{ChaosOptions, ExperimentSpec, FaultSpec, ResilienceConfig, WorkloadConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The three architectures the sweep compares, one per paper family:
/// C1 `WsPhp-DB` (2 machines), C4 `Ws-Servlet-DB` (3 machines), and
/// C6 `Ws-Servlet-EJB-DB` (4 machines).
pub const AVAILABILITY_CONFIGS: [StandardConfig; 3] =
    [StandardConfig::PhpColocated, StandardConfig::ServletDedicated, StandardConfig::EjbFourTier];

/// The default fault-intensity ladder (see [`FaultSpec::at_intensity`]).
pub const DEFAULT_INTENSITIES: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];

/// The client-side policy every sweep point runs under.
pub fn sweep_resilience() -> ResilienceConfig {
    ResilienceConfig {
        request_timeout: Some(SimDuration::from_secs(5)),
        max_retries: 2,
        backoff_base: SimDuration::from_millis(250),
        backoff_cap: SimDuration::from_secs(2),
    }
}

/// The server-side admission limits every sweep point runs under.
pub fn sweep_admission() -> AdmissionControl {
    AdmissionControl {
        web_accept_queue: Some(128),
        db_connections: Some(48),
        db_accept_queue: Some(64),
    }
}

/// One (configuration, fault intensity) measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct AvailabilityPoint {
    /// The deployment measured.
    pub config: StandardConfig,
    /// Fault intensity in `[0, 1]`.
    pub intensity: f64,
    /// Attempts per minute the clients offered inside the window.
    pub offered_ipm: f64,
    /// Completions per minute inside the window.
    pub throughput_ipm: f64,
    /// Good (error-free) completions per minute inside the window.
    pub goodput_ipm: f64,
    /// 99th-percentile response time (ms) of window completions.
    pub latency_p99_ms: f64,
    /// Deadline expirations inside the window.
    pub timeouts: u64,
    /// Admission rejections inside the window.
    pub rejects: u64,
    /// Fault-killed attempts inside the window.
    pub aborts: u64,
    /// Retries issued inside the window.
    pub retries: u64,
    /// Interactions abandoned after the retry budget inside the window.
    pub abandoned: u64,
    /// Attempts aborted as deadlock victims inside the window.
    pub deadlocks: u64,
}

impl AvailabilityPoint {
    /// Total failed attempts inside the window.
    pub fn failed(&self) -> u64 {
        self.timeouts + self.rejects + self.aborts + self.deadlocks
    }
}

/// A complete availability sweep: configurations × intensities, in grid
/// order.
#[derive(Debug, Clone, PartialEq)]
pub struct AvailabilityData {
    /// The intensity ladder used.
    pub intensities: Vec<f64>,
    /// Points grouped by configuration (outer order =
    /// [`AVAILABILITY_CONFIGS`] order), intensities ascending within.
    pub points: Vec<AvailabilityPoint>,
}

/// Runs one sweep point. Self-contained and deterministically seeded, so
/// points can run in any order or in parallel without changing results.
fn run_avail_point(
    cfg: &HarnessConfig,
    base_db: &dynamid_sqldb::Database,
    config: StandardConfig,
    intensity: f64,
) -> AvailabilityPoint {
    let mut db = base_db.clone();
    let app = Bookstore::new(BookstoreScale::scaled(cfg.scale));
    let mix = dynamid_bookstore::mixes::shopping();
    let clients = cfg.clients.first().copied().unwrap_or(100);
    let workload = WorkloadConfig {
        clients,
        think_time: cfg.think_time,
        session_time: cfg.session_time,
        ramp_up: cfg.ramp_up,
        measure: cfg.measure,
        ramp_down: cfg.ramp_down,
        seed: cfg.seed ^ clients as u64,
        resilience: sweep_resilience(),
    };
    // The fault seed folds in the intensity rank so ladder points draw
    // independent schedules, but nothing about the configuration: the same
    // storm hits every architecture.
    let fault_seed = cfg.seed ^ ((intensity * 1_000.0).round() as u64).wrapping_mul(0x9E37);
    let chaos = ChaosOptions {
        faults: Some(FaultSpec::at_intensity(fault_seed, intensity)),
        admission: sweep_admission(),
    };
    let r = ExperimentSpec::for_config(config)
        .mix(&mix)
        .costs(CostModel::default())
        .workload(workload)
        .policy(cfg.policy)
        .chaos(chaos)
        .run(&mut db, &app);
    // Every sweep point ends with a consistency audit: after the driver's
    // crash-consistent unwind the surviving database must be exactly
    // "baseline + committed transactions", whatever the faults did.
    crate::audit::audit_bookstore(base_db, &db, &r.ledger)
        .assert_clean(&format!("{} at intensity {intensity}", config.paper_name()));
    if cfg.verbose {
        eprintln!(
            "  {:<22} intensity={:<5} goodput={:>8.0} ipm p99={:>7.1} ms \
             t/o={} rej={} abort={}",
            config.paper_name(),
            intensity,
            r.goodput_ipm,
            r.latency_p99.as_micros() as f64 / 1_000.0,
            r.errors.timeouts,
            r.errors.rejects,
            r.errors.aborts,
        );
    }
    AvailabilityPoint {
        config,
        intensity,
        offered_ipm: r.offered_ipm,
        throughput_ipm: r.throughput_ipm,
        goodput_ipm: r.goodput_ipm,
        latency_p99_ms: r.latency_p99.as_micros() as f64 / 1_000.0,
        timeouts: r.errors.timeouts,
        rejects: r.errors.rejects,
        aborts: r.errors.aborts,
        retries: r.errors.retries,
        abandoned: r.errors.abandoned,
        deadlocks: r.errors.deadlocks,
    }
}

/// Runs the full availability sweep over [`AVAILABILITY_CONFIGS`] ×
/// `intensities`, using the same worker-pool pattern as the figure sweeps
/// (results are bit-identical for any `--jobs` value).
pub fn run_availability(cfg: &HarnessConfig, intensities: &[f64]) -> AvailabilityData {
    let base_db = dynamid_bookstore::build_db(&BookstoreScale::scaled(cfg.scale), cfg.seed)
        .expect("population");
    let grid: Vec<(usize, usize)> = (0..AVAILABILITY_CONFIGS.len())
        .flat_map(|ci| (0..intensities.len()).map(move |ii| (ci, ii)))
        .collect();
    let workers = cfg.effective_jobs().min(grid.len()).max(1);

    let points: Vec<AvailabilityPoint> = if workers == 1 {
        grid.iter()
            .map(|&(ci, ii)| {
                run_avail_point(cfg, &base_db, AVAILABILITY_CONFIGS[ci], intensities[ii])
            })
            .collect()
    } else {
        let slots: Mutex<Vec<Option<AvailabilityPoint>>> = Mutex::new(vec![None; grid.len()]);
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&(ci, ii)) = grid.get(i) else { break };
                    let point =
                        run_avail_point(cfg, &base_db, AVAILABILITY_CONFIGS[ci], intensities[ii]);
                    slots.lock().expect("no panics hold the lock")[i] = Some(point);
                });
            }
        });
        slots
            .into_inner()
            .expect("workers joined")
            .into_iter()
            .map(|p| p.expect("every grid slot filled"))
            .collect()
    };

    AvailabilityData { intensities: intensities.to_vec(), points }
}

/// Renders the sweep as CSV (stable column order; used by `repro avail`
/// and the chaos smoke probe).
pub fn availability_csv(data: &AvailabilityData) -> String {
    let mut out = String::from(
        "config,intensity,offered_ipm,throughput_ipm,goodput_ipm,latency_p99_ms,\
         timeouts,rejects,aborts,retries,abandoned,deadlocks\n",
    );
    for p in &data.points {
        out.push_str(&format!(
            "{},{},{:.1},{:.1},{:.1},{:.3},{},{},{},{},{},{}\n",
            p.config.paper_name(),
            p.intensity,
            p.offered_ipm,
            p.throughput_ipm,
            p.goodput_ipm,
            p.latency_p99_ms,
            p.timeouts,
            p.rejects,
            p.aborts,
            p.retries,
            p.abandoned,
            p.deadlocks,
        ));
    }
    out
}

/// Renders a compact markdown table: goodput (and failure counts) per
/// configuration per intensity.
pub fn availability_markdown(data: &AvailabilityData) -> String {
    let mut out = String::from("# Availability sweep: goodput (ipm) vs fault intensity\n\n");
    out.push_str("| config |");
    for i in &data.intensities {
        out.push_str(&format!(" i={i} |"));
    }
    out.push_str("\n|---|");
    for _ in &data.intensities {
        out.push_str("---|");
    }
    out.push('\n');
    for config in AVAILABILITY_CONFIGS {
        out.push_str(&format!("| {} |", config.paper_name()));
        for p in data.points.iter().filter(|p| p.config == config) {
            out.push_str(&format!(" {:.0} |", p.goodput_ipm));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> HarnessConfig {
        let mut cfg = HarnessConfig::smoke();
        cfg.clients = vec![15];
        cfg.jobs = 1;
        cfg
    }

    #[test]
    fn sweep_covers_grid_and_zero_intensity_is_clean() {
        let data = run_availability(&tiny(), &[0.0, 1.0]);
        assert_eq!(data.points.len(), AVAILABILITY_CONFIGS.len() * 2);
        for config in AVAILABILITY_CONFIGS {
            let clean = data
                .points
                .iter()
                .find(|p| p.config == config && p.intensity == 0.0)
                .expect("zero point");
            assert!(clean.goodput_ipm > 0.0, "{config}: no goodput");
            // No fault state is installed at intensity 0: nothing can be
            // fault-aborted, and this light load cannot fill the admission
            // queues. (Client timeouts can still fire on a slow-but-healthy
            // deployment — that is the resilience policy, not a fault.)
            assert_eq!(clean.aborts, 0, "{config}: fault aborts at intensity 0");
            assert_eq!(clean.rejects, 0, "{config}: admission rejects at intensity 0");
        }
        // Full intensity hurts someone: at least one failure recorded
        // somewhere in the hostile column.
        let hostile: u64 = data
            .points
            .iter()
            .filter(|p| p.intensity == 1.0)
            .map(|p| p.timeouts + p.rejects + p.aborts)
            .sum();
        assert!(hostile > 0, "full intensity produced zero failures");
    }

    #[test]
    fn sweep_is_deterministic() {
        let a = run_availability(&tiny(), &[0.0, 0.75]);
        let b = run_availability(&tiny(), &[0.0, 0.75]);
        assert_eq!(a, b);
        assert_eq!(availability_csv(&a), availability_csv(&b));
    }

    #[test]
    fn sweep_is_bit_identical_for_any_job_count() {
        let mut serial = tiny();
        serial.seed = 42;
        let mut parallel = serial.clone();
        parallel.jobs = 4;
        let a = run_availability(&serial, &[0.0, 0.5, 1.0]);
        let b = run_availability(&parallel, &[0.0, 0.5, 1.0]);
        assert_eq!(a, b, "--jobs changed sweep results");
        assert_eq!(availability_csv(&a), availability_csv(&b));
        // And a repeat at the same seed replays bit-identically.
        let c = run_availability(&parallel, &[0.0, 0.5, 1.0]);
        assert_eq!(availability_csv(&b), availability_csv(&c));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let data = AvailabilityData {
            intensities: vec![0.0],
            points: vec![AvailabilityPoint {
                config: StandardConfig::PhpColocated,
                intensity: 0.0,
                offered_ipm: 100.0,
                throughput_ipm: 99.0,
                goodput_ipm: 98.0,
                latency_p99_ms: 12.5,
                timeouts: 1,
                rejects: 2,
                aborts: 3,
                retries: 4,
                abandoned: 5,
                deadlocks: 6,
            }],
        };
        let csv = availability_csv(&data);
        let mut lines = csv.lines();
        assert!(lines.next().unwrap().starts_with("config,intensity,offered_ipm"));
        assert_eq!(lines.next().unwrap(), "WsPhp-DB,0,100.0,99.0,98.0,12.500,1,2,3,4,5,6");
        let md = availability_markdown(&data);
        assert!(md.contains("WsPhp-DB"));
    }
}
