//! The paper's experiment catalog: one entry per throughput/CPU figure
//! pair, plus the sweep runner that regenerates them.

use crate::HarnessConfig;
use dynamid_auction::{Auction, AuctionScale};
use dynamid_bookstore::{Bookstore, BookstoreScale};
use dynamid_core::{Application, CostModel, StandardConfig};
use dynamid_sim::EngineStats;
use dynamid_sqldb::Database;
use dynamid_workload::{ExperimentResult, ExperimentSpec, Mix, WorkloadConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Which benchmark application a figure uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Benchmark {
    /// TPC-W online bookstore.
    Bookstore,
    /// Auction site.
    Auction,
}

/// One throughput-curve figure and its companion CPU-utilization figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FigurePair {
    /// Paper id of the throughput figure ("fig05").
    pub throughput_id: &'static str,
    /// Paper id of the CPU figure ("fig06").
    pub cpu_id: &'static str,
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Mix name within the benchmark.
    pub mix: &'static str,
    /// Human-readable description.
    pub title: &'static str,
}

/// All five figure pairs of the paper's evaluation (Figures 5–14).
pub const FIGURES: [FigurePair; 5] = [
    FigurePair {
        throughput_id: "fig05",
        cpu_id: "fig06",
        benchmark: Benchmark::Bookstore,
        mix: "shopping",
        title: "Online bookstore, shopping mix (80/20)",
    },
    FigurePair {
        throughput_id: "fig07",
        cpu_id: "fig08",
        benchmark: Benchmark::Bookstore,
        mix: "browsing",
        title: "Online bookstore, browsing mix (95/5)",
    },
    FigurePair {
        throughput_id: "fig09",
        cpu_id: "fig10",
        benchmark: Benchmark::Bookstore,
        mix: "ordering",
        title: "Online bookstore, ordering mix (50/50)",
    },
    FigurePair {
        throughput_id: "fig11",
        cpu_id: "fig12",
        benchmark: Benchmark::Auction,
        mix: "bidding",
        title: "Auction site, bidding mix (15% read-write)",
    },
    FigurePair {
        throughput_id: "fig13",
        cpu_id: "fig14",
        benchmark: Benchmark::Auction,
        mix: "browsing",
        title: "Auction site, browsing mix (read-only)",
    },
];

/// Looks a figure pair up by either of its ids or by
/// `"<benchmark>-<mix>"`.
pub fn find_figure(key: &str) -> Option<FigurePair> {
    FIGURES.iter().copied().find(|f| {
        f.throughput_id == key
            || f.cpu_id == key
            || format!(
                "{}-{}",
                match f.benchmark {
                    Benchmark::Bookstore => "bookstore",
                    Benchmark::Auction => "auction",
                },
                f.mix
            ) == key
    })
}

/// One sweep point: a full experiment at one client count.
#[derive(Debug, Clone, PartialEq)]
pub struct CurvePoint {
    /// Offered clients.
    pub clients: usize,
    /// Measured throughput (interactions per minute).
    pub ipm: f64,
    /// Fraction of completions that errored.
    pub error_rate: f64,
    /// Per-machine CPU utilization (0..1) over the window.
    pub cpu: Vec<(String, f64)>,
    /// Per-machine NIC throughput (Mb/s) over the window.
    pub nic: Vec<(String, f64)>,
    /// Total lock wait time per completed interaction (ms) — contention
    /// diagnostic.
    pub lock_wait_ms_per_interaction: f64,
    /// Median response time (ms) of window completions.
    pub latency_p50_ms: f64,
    /// 90th-percentile response time (ms).
    pub latency_p90_ms: f64,
    /// Engine-level event accounting for the run behind this point
    /// (host-cost diagnostics: calendar traffic, stale-event ratio,
    /// calendar high-water mark). Not part of any figure CSV.
    pub engine: EngineStats,
}

impl CurvePoint {
    fn from_result(r: &ExperimentResult) -> CurvePoint {
        let lock_wait_ms = if r.metrics.completed > 0 {
            r.lock_stats.wait_micros as f64 / 1_000.0 / r.metrics.completed as f64
        } else {
            0.0
        };
        CurvePoint {
            clients: r.clients,
            ipm: r.throughput_ipm,
            error_rate: r.metrics.error_rate(),
            cpu: r.resources.cpu_util.clone(),
            nic: r.resources.nic_mbps.clone(),
            lock_wait_ms_per_interaction: lock_wait_ms,
            latency_p50_ms: r.metrics.latency.quantile(0.5).as_micros() as f64 / 1000.0,
            latency_p90_ms: r.metrics.latency.quantile(0.9).as_micros() as f64 / 1000.0,
            engine: r.engine,
        }
    }

    /// CPU utilization of the named machine, if present.
    pub fn cpu_of(&self, machine: &str) -> Option<f64> {
        self.cpu.iter().find(|(n, _)| n == machine).map(|(_, u)| *u)
    }

    /// NIC Mb/s of the named machine, if present.
    pub fn nic_of(&self, machine: &str) -> Option<f64> {
        self.nic.iter().find(|(n, _)| n == machine).map(|(_, u)| *u)
    }
}

/// The sweep of one deployment configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigCurve {
    /// The deployment.
    pub config: StandardConfig,
    /// Points in increasing client order.
    pub points: Vec<CurvePoint>,
}

impl ConfigCurve {
    /// The point with the highest throughput.
    pub fn peak(&self) -> &CurvePoint {
        self.points
            .iter()
            .max_by(|a, b| a.ipm.total_cmp(&b.ipm))
            .expect("curve has at least one point")
    }
}

/// A fully executed figure pair.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureData {
    /// Which figure this is.
    pub pair: FigurePair,
    /// One curve per deployment configuration.
    pub curves: Vec<ConfigCurve>,
}

impl FigureData {
    /// The curve for one configuration.
    pub fn curve(&self, config: StandardConfig) -> Option<&ConfigCurve> {
        self.curves.iter().find(|c| c.config == config)
    }
}

pub(crate) fn mix_for(pair: &FigurePair) -> Mix {
    match (pair.benchmark, pair.mix) {
        (Benchmark::Bookstore, "browsing") => dynamid_bookstore::mixes::browsing(),
        (Benchmark::Bookstore, "shopping") => dynamid_bookstore::mixes::shopping(),
        (Benchmark::Bookstore, "ordering") => dynamid_bookstore::mixes::ordering(),
        (Benchmark::Auction, "bidding") => dynamid_auction::mixes::bidding(),
        (Benchmark::Auction, "browsing") => dynamid_auction::mixes::browsing(),
        other => panic!("unknown benchmark/mix {other:?}"),
    }
}

/// Default client sweep for a benchmark at population scale 1.0. Chosen to
/// bracket the saturation knee of every configuration under the default
/// cost model.
pub fn default_clients(benchmark: Benchmark) -> Vec<usize> {
    match benchmark {
        Benchmark::Bookstore => vec![50, 100, 150, 225, 325, 450],
        Benchmark::Auction => vec![100, 250, 500, 800, 1200, 1700, 2300, 3000],
    }
}

/// Builds a fresh application instance for one experiment point.
///
/// Applications hold per-run state and are not shareable across threads,
/// but constructing one is trivial next to the seconds-long experiment it
/// drives.
pub(crate) fn make_app(benchmark: Benchmark, scale: f64) -> Box<dyn Application> {
    match benchmark {
        Benchmark::Bookstore => Box::new(Bookstore::new(BookstoreScale::scaled(scale))),
        Benchmark::Auction => Box::new(Auction::new(AuctionScale::scaled(scale))),
    }
}

/// The workload phases for one sweep point: harness phase lengths with
/// the point seed derived only from the master seed and the client count.
pub(crate) fn sweep_workload(cfg: &HarnessConfig, clients: usize) -> WorkloadConfig {
    WorkloadConfig {
        clients,
        think_time: cfg.think_time,
        session_time: cfg.session_time,
        ramp_up: cfg.ramp_up,
        measure: cfg.measure,
        ramp_down: cfg.ramp_down,
        seed: cfg.seed ^ clients as u64,
        resilience: Default::default(),
    }
}

/// Runs one (configuration, client count) point of a sweep.
///
/// Each point is fully self-contained: it starts from the pristine
/// populated database (the worker rewinds its fork between points), builds
/// its own application instance, and derives its seed only from the master
/// seed and the client count. That independence is what makes the parallel
/// sweep in [`run_figure`] bit-identical to the sequential one — no state
/// flows between points, in either order of execution. (Statement and plan
/// caches do stay warm across points within a worker, but statement cost
/// is a pure function of per-query counters, never of cache warmth.)
fn run_point(
    pair: &FigurePair,
    cfg: &HarnessConfig,
    db: &mut Database,
    mix: &Mix,
    config: StandardConfig,
    n: usize,
) -> CurvePoint {
    let stats_before = db.stats();
    let app = make_app(pair.benchmark, cfg.scale);
    let result = ExperimentSpec::for_config(config)
        .mix(mix)
        .costs(CostModel::default())
        .workload(sweep_workload(cfg, n))
        .policy(cfg.policy)
        .defer_unwind(true)
        .run(db, app.as_ref());
    if cfg.verbose {
        let s = db.stats();
        let hits = s.plan_cache_hits - stats_before.plan_cache_hits;
        let misses = s.plan_cache_misses - stats_before.plan_cache_misses;
        eprintln!(
            "  {:<22} clients={:<6} ipm={:>9.0} errors={:.2}% plan-cache {hits}/{} hits",
            config.paper_name(),
            n,
            result.throughput_ipm,
            result.metrics.error_rate() * 100.0,
            hits + misses,
        );
    }
    CurvePoint::from_result(&result)
}

/// Runs the full sweep for one figure pair.
///
/// The (configuration × client count) grid is executed by
/// [`HarnessConfig::jobs`] worker threads pulling points off a shared
/// queue; every point is independent and deterministically seeded, so the
/// returned curves are bit-identical regardless of thread count — `--jobs
/// 1` and `--jobs 8` produce the same [`FigureData`]. Points are returned
/// in sweep order (configurations in `cfg.configs` order, client counts
/// ascending as given).
pub fn run_figure(pair: FigurePair, cfg: &HarnessConfig) -> FigureData {
    let clients =
        if cfg.clients.is_empty() { default_clients(pair.benchmark) } else { cfg.clients.clone() };
    let mix = mix_for(&pair);

    // The populated database depends only on benchmark, scale, and seed —
    // never on the deployment configuration — so one build serves every
    // point via cloning.
    let base_db: Database = match pair.benchmark {
        Benchmark::Bookstore => {
            dynamid_bookstore::build_db(&BookstoreScale::scaled(cfg.scale), cfg.seed)
                .expect("population")
        }
        Benchmark::Auction => dynamid_auction::build_db(&AuctionScale::scaled(cfg.scale), cfg.seed)
            .expect("population"),
    };

    let grid: Vec<(usize, usize)> =
        (0..cfg.configs.len()).flat_map(|ci| (0..clients.len()).map(move |ni| (ci, ni))).collect();
    let workers = cfg.effective_jobs().min(grid.len()).max(1);

    // Each worker holds ONE copy-on-write fork of the base database for its
    // whole lifetime and rewinds it to pristine between points, so the
    // per-point cost is proportional to the rows the point touched instead
    // of a full table un-share (and drop) per point. A point whose run
    // performed a mutation the rewind journal cannot exactly reverse (an
    // in-flight abort's rollback) poisons the journal; the worker then
    // discards the fork and re-clones — correctness never depends on
    // approximate unwinding.
    let run_worker = |next: &AtomicUsize, slots: &Mutex<Vec<Option<CurvePoint>>>| {
        let mut db = base_db.clone();
        db.begin_rewind();
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            let Some(&(ci, ni)) = grid.get(i) else { break };
            let point = run_point(&pair, cfg, &mut db, &mix, cfg.configs[ci], clients[ni]);
            if !db.rewind() {
                db = base_db.clone();
                db.begin_rewind();
            }
            debug_assert!(
                db.same_data(&base_db),
                "rewind must restore the pristine populated database"
            );
            slots.lock().expect("no panics hold the lock")[i] = Some(point);
        }
    };

    let slots: Mutex<Vec<Option<CurvePoint>>> = Mutex::new(vec![None; grid.len()]);
    let next = AtomicUsize::new(0);
    if workers == 1 {
        run_worker(&next, &slots);
    } else {
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| run_worker(&next, &slots));
            }
        });
    }
    let points: Vec<CurvePoint> = slots
        .into_inner()
        .expect("workers joined")
        .into_iter()
        .map(|p| p.expect("every grid slot filled"))
        .collect();

    let mut points = points.into_iter();
    let curves = cfg
        .configs
        .iter()
        .map(|config| ConfigCurve {
            config: *config,
            points: points.by_ref().take(clients.len()).collect(),
        })
        .collect();
    FigureData { pair, curves }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_all_ten_figures() {
        assert_eq!(FIGURES.len(), 5);
        let ids: Vec<&str> = FIGURES.iter().flat_map(|f| [f.throughput_id, f.cpu_id]).collect();
        assert_eq!(
            ids,
            vec![
                "fig05", "fig06", "fig07", "fig08", "fig09", "fig10", "fig11", "fig12", "fig13",
                "fig14"
            ]
        );
    }

    #[test]
    fn lookup_by_any_key() {
        assert_eq!(find_figure("fig05").unwrap().mix, "shopping");
        assert_eq!(find_figure("fig12").unwrap().mix, "bidding");
        assert_eq!(find_figure("bookstore-ordering").unwrap().cpu_id, "fig10");
        assert_eq!(find_figure("auction-browsing").unwrap().throughput_id, "fig13");
        assert!(find_figure("fig99").is_none());
    }

    #[test]
    fn tiny_sweep_produces_curves() {
        let cfg = HarnessConfig::smoke();
        let pair = find_figure("fig11").unwrap();
        let data = run_figure(pair, &cfg);
        assert_eq!(data.curves.len(), cfg.configs.len());
        for curve in &data.curves {
            assert_eq!(curve.points.len(), cfg.clients.len());
            assert!(curve.peak().ipm > 0.0, "{}", curve.config);
            // Every point reports the web and db machines.
            for p in &curve.points {
                assert!(p.cpu_of("web").is_some());
                assert!(p.cpu_of("db").is_some());
                assert!(p.nic_of("web").is_some());
            }
        }
        assert!(data.curve(cfg.configs[0]).is_some());
    }

    /// A multi-threaded sweep must be bit-identical to the sequential
    /// one: every point is independent and deterministically seeded, so
    /// thread count only changes wall-clock time.
    #[test]
    fn parallel_sweep_matches_sequential() {
        let mut cfg = HarnessConfig::smoke();
        let pair = find_figure("fig05").unwrap();
        cfg.jobs = 1;
        let sequential = run_figure(pair, &cfg);
        cfg.jobs = 4;
        let parallel = run_figure(pair, &cfg);
        assert_eq!(sequential, parallel);
    }
}
