//! Command-line experiment runner: regenerates the paper's figures.
//!
//! ```text
//! repro fig05                     one figure pair
//! repro bookstore-shopping        same, by benchmark-mix name
//! repro all                       every figure, CSVs into results/
//! repro summary                   peak table across all figures
//! options:
//!   --fast            scaled-down populations and short windows
//!   --scale <f>       population scale factor (default 1.0)
//!   --clients a,b,c   explicit client sweep
//!   --measure <secs>  measurement window length
//!   --seed <n>        master seed
//!   --jobs <n>        sweep worker threads (0 = all cores; results are
//!                     identical for any value)
//!   --out <dir>       output directory (default results/)
//!   --quiet           suppress progress
//! ```

use dynamid_harness::report::{cpu_markdown, peak_summary_line, sweep_csv, throughput_markdown};
use dynamid_harness::{find_figure, run_figure, FigureData, HarnessConfig, FIGURES};
use dynamid_sim::SimDuration;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = HarnessConfig { verbose: true, ..HarnessConfig::default() };
    let mut targets: Vec<String> = Vec::new();
    let mut out_dir = PathBuf::from("results");

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--fast" => {
                let verbose = cfg.verbose;
                cfg = HarnessConfig::fast();
                cfg.verbose = verbose;
            }
            "--quiet" => cfg.verbose = false,
            "--scale" => {
                i += 1;
                cfg.scale = match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(v) => v,
                    None => return usage("--scale needs a number"),
                };
            }
            "--seed" => {
                i += 1;
                cfg.seed = match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(v) => v,
                    None => return usage("--seed needs an integer"),
                };
            }
            "--jobs" => {
                i += 1;
                cfg.jobs = match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(v) => v,
                    None => return usage("--jobs needs an integer (0 = all cores)"),
                };
            }
            "--measure" => {
                i += 1;
                cfg.measure = match args.get(i).and_then(|v| v.parse::<u64>().ok()) {
                    Some(v) => SimDuration::from_secs(v),
                    None => return usage("--measure needs seconds"),
                };
            }
            "--clients" => {
                i += 1;
                let Some(list) = args.get(i) else {
                    return usage("--clients needs a list");
                };
                match list
                    .split(',')
                    .map(|s| s.trim().parse::<usize>())
                    .collect::<Result<Vec<_>, _>>()
                {
                    Ok(v) if !v.is_empty() => cfg.clients = v,
                    _ => return usage("--clients needs comma-separated integers"),
                }
            }
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(d) => out_dir = PathBuf::from(d),
                    None => return usage("--out needs a directory"),
                }
            }
            "--policy" => {
                // Ablation: MyISAM grants writers priority; FIFO shows how
                // much of the bookstore contention collapse that policy
                // choice causes.
                i += 1;
                cfg.policy = match args.get(i).map(String::as_str) {
                    Some("fifo") => dynamid_sim::GrantPolicy::Fifo,
                    Some("writer") => dynamid_sim::GrantPolicy::WriterPriority,
                    _ => return usage("--policy needs 'fifo' or 'writer'"),
                };
            }
            flag if flag.starts_with("--") => {
                return usage(&format!("unknown option {flag}"));
            }
            target => targets.push(target.to_string()),
        }
        i += 1;
    }
    if targets.is_empty() {
        return usage("no target given");
    }

    if let Err(e) = fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }

    for target in &targets {
        match target.as_str() {
            "all" => {
                for pair in FIGURES {
                    run_and_emit(pair.throughput_id, &cfg, &out_dir);
                }
            }
            "summary" => {
                println!("# Peak throughput summary (all figures)\n");
                for pair in FIGURES {
                    eprintln!("== {}", pair.title);
                    let data = run_figure(pair, &cfg);
                    println!("## {}", pair.title);
                    for curve in &data.curves {
                        println!("{}", peak_summary_line(curve));
                    }
                    println!();
                }
            }
            key => {
                if find_figure(key).is_none() {
                    return usage(&format!("unknown figure '{key}'"));
                }
                run_and_emit(key, &cfg, &out_dir);
            }
        }
    }
    ExitCode::SUCCESS
}

fn run_and_emit(key: &str, cfg: &HarnessConfig, out_dir: &std::path::Path) {
    let pair = find_figure(key).expect("validated by caller");
    eprintln!("== {} ({} / {})", pair.title, pair.throughput_id, pair.cpu_id);
    let data: FigureData = run_figure(pair, cfg);
    println!("{}", throughput_markdown(&data));
    println!("{}", cpu_markdown(&data));
    let csv_path = out_dir.join(format!("{}.csv", pair.throughput_id));
    if let Err(e) = fs::write(&csv_path, sweep_csv(&data)) {
        eprintln!("could not write {}: {e}", csv_path.display());
    } else {
        eprintln!("wrote {}", csv_path.display());
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("error: {err}\n");
    eprintln!("usage: repro [options] <fig05|..|fig13|bookstore-shopping|..|all|summary>");
    eprintln!("options: --fast --quiet --scale <f> --clients a,b,c --measure <secs> --seed <n> --jobs <n> --out <dir> --policy fifo|writer");
    ExitCode::FAILURE
}
