//! Command-line experiment runner: regenerates the paper's figures.
//!
//! ```text
//! repro fig05                     one figure pair
//! repro bookstore-shopping        same, by benchmark-mix name
//! repro all                       every figure, CSVs into results/
//! repro summary                   peak table across all figures
//! repro avail                     availability sweep: goodput/p99/error
//!                                 taxonomy vs fault intensity for three
//!                                 architectures, results/avail.csv
//! repro trace <figure>            one traced point: span capture,
//!                                 Chrome-trace JSON + bottleneck-report
//!                                 CSV into results/, cross-checked
//!                                 against the PS CPU counters (pick the
//!                                 deployment with --config C1..C6)
//! repro cache                     cache-ablation sweep: browsing-mix
//!                                 throughput with the caching tier off,
//!                                 TTL, and transactional, audited at
//!                                 every point, results/cache.csv
//! ```
//!
//! Flags are listed in [`FLAGS`]; unknown flags and unknown subcommands
//! exit nonzero with a usage message.

use dynamid_core::StandardConfig;
use dynamid_harness::report::{cpu_markdown, peak_summary_line, sweep_csv, throughput_markdown};
use dynamid_harness::{find_figure, run_figure, run_traced, FigureData, HarnessConfig, FIGURES};
use dynamid_sim::SimDuration;
use dynamid_sqldb::Database;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

/// One command-line flag: name, value placeholder (`None` for boolean
/// switches), and help text. The parser and the usage message are both
/// driven by this table, so they cannot drift apart.
struct Flag {
    name: &'static str,
    value: Option<&'static str>,
    help: &'static str,
}

/// Every flag `repro` accepts.
const FLAGS: &[Flag] = &[
    Flag {
        name: "--smoke",
        value: None,
        help: "quick perf smoke: mini sweeps + snapshot-fork and plan-cache probes \
               -> BENCH_repro.json (ignores targets)",
    },
    Flag {
        name: "--chaos",
        value: None,
        help: "with --smoke: also run a miniature availability sweep",
    },
    Flag { name: "--fast", value: None, help: "scaled-down populations and short windows" },
    Flag { name: "--quiet", value: None, help: "suppress progress" },
    Flag { name: "--scale", value: Some("<f>"), help: "population scale factor (default 1.0)" },
    Flag { name: "--clients", value: Some("a,b,c"), help: "explicit client sweep" },
    Flag { name: "--measure", value: Some("<secs>"), help: "measurement window length" },
    Flag { name: "--seed", value: Some("<n>"), help: "master seed" },
    Flag {
        name: "--jobs",
        value: Some("<n>"),
        help: "sweep worker threads (0 = all cores; results identical for any value)",
    },
    Flag { name: "--out", value: Some("<dir>"), help: "output directory (default results/)" },
    Flag {
        name: "--policy",
        value: Some("fifo|writer"),
        help: "lock grant policy (MyISAM default: writer priority)",
    },
    Flag {
        name: "--config",
        value: Some("C1..C6"),
        help: "restrict to one or more deployment configurations (comma-separated codes)",
    },
];

/// The subcommands, for the usage message.
const COMMANDS: &[(&str, &str)] = &[
    ("<figure>", "one figure pair, by id (fig05..fig14) or <benchmark>-<mix> name"),
    ("all", "every figure pair, CSVs into the output directory"),
    ("summary", "peak-throughput table across all figures"),
    ("avail", "availability sweep (goodput vs fault intensity), avail.csv"),
    ("trace <figure>", "one traced point: Chrome-trace JSON + bottleneck CSV"),
    (
        "cache",
        "cache-ablation sweep (off/TTL/transactional on the browsing mix), cache.csv; \
         with --smoke: the pinned deterministic grid check.sh compares to the golden",
    ),
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = HarnessConfig { verbose: true, ..HarnessConfig::default() };
    let mut targets: Vec<String> = Vec::new();
    let mut out_dir = PathBuf::from("results");
    let mut smoke = false;
    let mut chaos = false;

    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        let value = |i: &mut usize| -> Option<&String> {
            *i += 1;
            args.get(*i)
        };
        if arg.starts_with("--") {
            let Some(flag) = FLAGS.iter().find(|f| f.name == arg) else {
                return usage(&format!("unknown option {arg}"));
            };
            match flag.name {
                "--smoke" => smoke = true,
                "--chaos" => chaos = true,
                "--fast" => {
                    let verbose = cfg.verbose;
                    cfg = HarnessConfig::fast();
                    cfg.verbose = verbose;
                }
                "--quiet" => cfg.verbose = false,
                "--scale" => {
                    cfg.scale = match value(&mut i).and_then(|v| v.parse().ok()) {
                        Some(v) => v,
                        None => return usage("--scale needs a number"),
                    };
                }
                "--seed" => {
                    cfg.seed = match value(&mut i).and_then(|v| v.parse().ok()) {
                        Some(v) => v,
                        None => return usage("--seed needs an integer"),
                    };
                }
                "--jobs" => {
                    cfg.jobs = match value(&mut i).and_then(|v| v.parse().ok()) {
                        Some(v) => v,
                        None => return usage("--jobs needs an integer (0 = all cores)"),
                    };
                }
                "--measure" => {
                    cfg.measure = match value(&mut i).and_then(|v| v.parse::<u64>().ok()) {
                        Some(v) => SimDuration::from_secs(v),
                        None => return usage("--measure needs seconds"),
                    };
                }
                "--clients" => {
                    let Some(list) = value(&mut i) else {
                        return usage("--clients needs a list");
                    };
                    match list
                        .split(',')
                        .map(|s| s.trim().parse::<usize>())
                        .collect::<Result<Vec<_>, _>>()
                    {
                        Ok(v) if !v.is_empty() => cfg.clients = v,
                        _ => return usage("--clients needs comma-separated integers"),
                    }
                }
                "--out" => match value(&mut i) {
                    Some(d) => out_dir = PathBuf::from(d),
                    None => return usage("--out needs a directory"),
                },
                "--policy" => {
                    // Ablation: MyISAM grants writers priority; FIFO shows
                    // how much of the bookstore contention collapse that
                    // policy choice causes.
                    cfg.policy = match value(&mut i).map(String::as_str) {
                        Some("fifo") => dynamid_sim::GrantPolicy::Fifo,
                        Some("writer") => dynamid_sim::GrantPolicy::WriterPriority,
                        _ => return usage("--policy needs 'fifo' or 'writer'"),
                    };
                }
                "--config" => {
                    let Some(list) = value(&mut i) else {
                        return usage("--config needs C1..C6 codes");
                    };
                    match list
                        .split(',')
                        .map(|s| StandardConfig::parse(s.trim()))
                        .collect::<Option<Vec<_>>>()
                    {
                        Some(v) if !v.is_empty() => cfg.configs = v,
                        _ => return usage("--config needs comma-separated C1..C6 codes"),
                    }
                }
                other => unreachable!("flag {other} listed but not handled"),
            }
        } else {
            targets.push(arg.to_string());
        }
        i += 1;
    }
    if smoke {
        // `repro cache --smoke` is its own pinned grid (check.sh's golden
        // gate); every other target combination defers to the perf smoke.
        if targets.iter().any(|t| t == "cache") {
            return run_cache_smoke(cfg.jobs, &out_dir, cfg.verbose);
        }
        return run_smoke(cfg.verbose, chaos);
    }
    if targets.is_empty() {
        return usage("no target given");
    }

    if let Err(e) = fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }

    if targets[0] == "trace" {
        let [_, figure] = targets.as_slice() else {
            return usage("trace needs exactly one figure, e.g. 'trace fig05 --config C1'");
        };
        if find_figure(figure).is_none() {
            return usage(&format!("unknown figure '{figure}'"));
        }
        return run_trace(figure, &cfg, &out_dir);
    }

    for target in &targets {
        match target.as_str() {
            "all" => {
                for pair in FIGURES {
                    run_and_emit(pair.throughput_id, &cfg, &out_dir);
                }
            }
            "avail" => {
                use dynamid_harness::{
                    availability_csv, availability_markdown, run_availability, DEFAULT_INTENSITIES,
                };
                eprintln!("== Availability sweep (goodput vs fault intensity)");
                let data = run_availability(&cfg, &DEFAULT_INTENSITIES);
                println!("{}", availability_markdown(&data));
                let csv_path = out_dir.join("avail.csv");
                if let Err(e) = fs::write(&csv_path, availability_csv(&data)) {
                    eprintln!("could not write {}: {e}", csv_path.display());
                } else {
                    eprintln!("wrote {}", csv_path.display());
                }
            }
            "cache" => {
                use dynamid_harness::{
                    cache_csv, cache_markdown, run_cache_sweep, DEFAULT_CACHE_CAPACITIES,
                };
                eprintln!("== Cache-ablation sweep (browsing mix, off/TTL/transactional)");
                let data = run_cache_sweep(&cfg, &DEFAULT_CACHE_CAPACITIES);
                println!("{}", cache_markdown(&data));
                let csv_path = out_dir.join("cache.csv");
                if let Err(e) = fs::write(&csv_path, cache_csv(&data)) {
                    eprintln!("could not write {}: {e}", csv_path.display());
                } else {
                    eprintln!("wrote {}", csv_path.display());
                }
            }
            "summary" => {
                println!("# Peak throughput summary (all figures)\n");
                for pair in FIGURES {
                    eprintln!("== {}", pair.title);
                    let data = run_figure(pair, &cfg);
                    println!("## {}", pair.title);
                    for curve in &data.curves {
                        println!("{}", peak_summary_line(curve));
                    }
                    println!();
                }
            }
            key => {
                if find_figure(key).is_none() {
                    return usage(&format!("unknown figure '{key}'"));
                }
                run_and_emit(key, &cfg, &out_dir);
            }
        }
    }
    ExitCode::SUCCESS
}

fn run_and_emit(key: &str, cfg: &HarnessConfig, out_dir: &std::path::Path) {
    let pair = find_figure(key).expect("validated by caller");
    eprintln!("== {} ({} / {})", pair.title, pair.throughput_id, pair.cpu_id);
    let data: FigureData = run_figure(pair, cfg);
    println!("{}", throughput_markdown(&data));
    println!("{}", cpu_markdown(&data));
    let csv_path = out_dir.join(format!("{}.csv", pair.throughput_id));
    if let Err(e) = fs::write(&csv_path, sweep_csv(&data)) {
        eprintln!("could not write {}: {e}", csv_path.display());
    } else {
        eprintln!("wrote {}", csv_path.display());
    }
}

/// `repro trace <figure>`: one traced point per selected configuration.
/// Writes `trace_<fig>_<code>.json` (Chrome trace) and
/// `bottleneck_<fig>_<code>.csv` per configuration, prints the report
/// summary, and fails if the span trees are malformed or the
/// trace-derived CPU utilizations drift more than 1% from the PS
/// counters.
fn run_trace(figure: &str, cfg: &HarnessConfig, out_dir: &std::path::Path) -> ExitCode {
    let pair = find_figure(figure).expect("validated by caller");
    for &config in &cfg.configs {
        eprintln!("== trace {} {} ({})", pair.throughput_id, config.code(), config.paper_name());
        let traced = run_traced(pair, config, cfg);
        if let Err(e) = traced.cross_check() {
            eprintln!("trace cross-check failed for {}: {e}", config.paper_name());
            return ExitCode::FAILURE;
        }
        println!(
            "## {} {} at {} clients\n\n{}",
            pair.throughput_id,
            config.code(),
            traced.clients,
            traced.report.to_markdown()
        );
        let stem = format!("{}_{}", pair.throughput_id, config.code());
        let json_path = out_dir.join(format!("trace_{stem}.json"));
        let csv_path = out_dir.join(format!("bottleneck_{stem}.csv"));
        for (path, contents) in
            [(&json_path, traced.chrome_json()), (&csv_path, traced.bottleneck_csv())]
        {
            if let Err(e) = fs::write(path, contents) {
                eprintln!("could not write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {}", path.display());
        }
    }
    ExitCode::SUCCESS
}

/// The pinned deterministic cache-ablation grid behind `repro cache
/// --smoke` — check.sh byte-compares its CSV against
/// `results/golden/cache.csv`.
///
/// Every knob except `--jobs` (which never changes results) and `--out`
/// is pinned here rather than taken from the command line: the golden is
/// only meaningful for one exact grid. The load is deliberately harsher
/// than the figure smokes — 500 ms think time instead of 7 s — so the
/// EJB four-tier configuration is actually saturated at the top client
/// count and the sweep exercises the regime where caching moves
/// throughput, not just latency. The run fails unless transactional
/// caching lifts EJB browsing throughput at the top client count by at
/// least 30% — the headline this tier exists to demonstrate — so the
/// check.sh gate certifies the result, not just byte stability.
fn run_cache_smoke(jobs: usize, out_dir: &std::path::Path, verbose: bool) -> ExitCode {
    use dynamid_harness::{cache_csv, cache_markdown, run_cache_sweep, CacheMode};
    use std::time::Instant;

    let mut cfg = HarnessConfig::fast();
    cfg.verbose = false;
    cfg.jobs = jobs;
    cfg.seed = 42;
    cfg.scale = 0.1;
    cfg.clients = vec![20, 100];
    cfg.think_time = SimDuration::from_millis(500);
    cfg.measure = SimDuration::from_secs(8);
    cfg.ramp_up = SimDuration::from_secs(2);
    cfg.ramp_down = SimDuration::from_secs(1);

    let t0 = Instant::now();
    let data = run_cache_sweep(&cfg, &[1024]);
    let secs = t0.elapsed().as_secs_f64();
    // Reaching this line means every cache-off and transactional point
    // passed the consistency audit (run_cache_sweep panics otherwise).
    println!("{}", cache_markdown(&data));

    let ejb = StandardConfig::EjbFourTier;
    let off = data.best_at_peak_clients(ejb, CacheMode::Off).unwrap_or(0.0);
    let txn = data.best_at_peak_clients(ejb, CacheMode::Transactional).unwrap_or(0.0);
    let uplift = if off > 0.0 { txn / off - 1.0 } else { 0.0 };
    if verbose {
        eprintln!(
            "cache smoke: {} points in {secs:.3}s; EJB browsing at {} clients \
             {off:.0} -> {txn:.0} ipm with transactional caching ({:+.1}%)",
            data.points.len(),
            data.clients.last().copied().unwrap_or(0),
            uplift * 100.0,
        );
    }
    if uplift < 0.30 {
        eprintln!(
            "cache smoke FAILED: transactional caching lifted EJB browsing throughput \
             by only {:.1}% (< 30%) at the top client count",
            uplift * 100.0
        );
        return ExitCode::FAILURE;
    }

    if let Err(e) = fs::create_dir_all(out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }
    let csv_path = out_dir.join("cache.csv");
    if let Err(e) = fs::write(&csv_path, cache_csv(&data)) {
        eprintln!("could not write {}: {e}", csv_path.display());
        return ExitCode::FAILURE;
    }
    if verbose {
        eprintln!("wrote {}", csv_path.display());
    }
    ExitCode::SUCCESS
}

/// The perf smoke harness behind `repro --smoke`: two miniature figure
/// sweeps timed end-to-end, a snapshot-fork probe (copy-on-write clone vs
/// deep clone of the populated bookstore database), and a plan-cache probe
/// (hit rate over one experiment point). With `--chaos`, a miniature
/// availability sweep (fault injection + client resilience + admission
/// control) is timed and summarized too. Everything lands in
/// `BENCH_repro.json` in the working directory so CI can diff wall-clock
/// regressions; the modeled results themselves are covered by tests.
fn run_smoke(verbose: bool, chaos: bool) -> ExitCode {
    use dynamid_bookstore::BookstoreScale;
    use std::time::Instant;

    // Deterministic miniature sweeps, each reproducible on any build as
    // `repro --fast --quiet --jobs 1 --seed 42 --scale <s> --clients <c>
    // --measure <m> <fig>`. The first two are dense low-client grids over
    // both benchmarks; the third raises the population scale so per-point
    // setup (snapshot forking) dominates the way it does in full-scale
    // `repro all` runs.
    let sweeps: [(&str, f64, &[usize], u64); 3] = [
        ("fig05", 0.1, &[5, 10, 15, 20, 25, 30], 4),
        ("fig11", 0.1, &[10, 20, 30, 40, 50, 60], 4),
        ("fig05", 0.3, &[5, 10, 15], 2),
    ];
    let mut fig_json = Vec::new();
    let mut profile_json = Vec::new();
    let mut total_secs = 0.0f64;
    let (mut all_events, mut all_stale, mut all_peak) = (0u64, 0u64, 0u64);
    for (key, scale, clients, measure) in sweeps {
        let mut cfg = HarnessConfig::fast();
        cfg.verbose = false;
        cfg.jobs = 1;
        cfg.seed = 42;
        cfg.scale = scale;
        cfg.clients = clients.to_vec();
        cfg.measure = SimDuration::from_secs(measure);
        let pair = find_figure(key).expect("smoke figure exists");
        let t0 = Instant::now();
        let data = run_figure(pair, &cfg);
        let secs = t0.elapsed().as_secs_f64();
        total_secs += secs;
        let points: usize = data.curves.iter().map(|c| c.points.len()).sum();
        // Host-cost accounting: calendar traffic across every point of the
        // sweep, and the largest calendar any single point ever held.
        let pts = || data.curves.iter().flat_map(|c| c.points.iter());
        let events: u64 = pts().map(|p| p.engine.events).sum();
        let stale: u64 = pts().map(|p| p.engine.stale_events).sum();
        let peak: u64 = pts().map(|p| p.engine.peak_calendar).max().unwrap_or(0);
        all_events += events;
        all_stale += stale;
        all_peak = all_peak.max(peak);
        if verbose {
            eprintln!(
                "smoke {key}@{scale}: {points} points in {secs:.3}s \
                 ({events} events, {stale} stale, peak calendar {peak})"
            );
        }
        let client_list = clients.iter().map(usize::to_string).collect::<Vec<_>>().join(",");
        fig_json.push(format!(
            "    {{\"id\": \"{key}\", \"scale\": {scale}, \"points\": {points}, \
             \"wall_secs\": {secs:.3}, \"equivalent_flags\": \"--fast --quiet --jobs 1 \
             --seed 42 --scale {scale} --clients {client_list} --measure {measure} {key}\"}}"
        ));
        profile_json.push(format!(
            "      {{\"id\": \"{key}\", \"scale\": {scale}, \"wall_secs\": {secs:.3}, \
             \"events\": {events}, \"stale_events\": {stale}, \
             \"stale_ratio\": {:.4}, \"peak_calendar\": {peak}}}",
            stale as f64 / events.max(1) as f64
        ));
    }

    // Snapshot forks: what every sweep point pays to get its private
    // database. Copy-on-write makes this O(tables); the deep clone is the
    // pre-CoW cost, kept as the comparison baseline.
    let base = dynamid_bookstore::build_db(&BookstoreScale::scaled(0.1), 42).expect("population");
    let t0 = Instant::now();
    const FORKS: u32 = 200;
    for _ in 0..FORKS {
        std::hint::black_box(base.clone());
    }
    let cow_micros = t0.elapsed().as_micros() as f64 / f64::from(FORKS);
    let t0 = Instant::now();
    const DEEPS: u32 = 20;
    for _ in 0..DEEPS {
        std::hint::black_box(base.deep_clone());
    }
    let deep_micros = t0.elapsed().as_micros() as f64 / f64::from(DEEPS);

    // Plan-cache temperature over one experiment point.
    let mut cfg = HarnessConfig::fast();
    cfg.verbose = false;
    cfg.jobs = 1;
    cfg.seed = 42;
    cfg.clients = vec![25];
    cfg.measure = SimDuration::from_secs(10);
    cfg.configs.truncate(1);
    let mut db = base.clone();
    let before = db.stats();
    run_smoke_point(&cfg, &mut db);
    let after = db.stats();
    let hits = after.plan_cache_hits - before.plan_cache_hits;
    let misses = after.plan_cache_misses - before.plan_cache_misses;
    let rate = if hits + misses == 0 { 0.0 } else { hits as f64 / (hits + misses) as f64 };

    // Chaos probe: a miniature availability sweep exercising the fault
    // plan, client retries/timeouts, and admission control end to end.
    let chaos_json = if chaos {
        use dynamid_harness::run_availability;
        let mut ccfg = HarnessConfig::fast();
        ccfg.verbose = false;
        ccfg.jobs = 1;
        ccfg.seed = 42;
        ccfg.scale = 0.05;
        ccfg.clients = vec![25];
        ccfg.measure = SimDuration::from_secs(6);
        ccfg.ramp_up = SimDuration::from_secs(2);
        ccfg.ramp_down = SimDuration::from_secs(1);
        let intensities = [0.0, 0.5, 1.0];
        let t0 = Instant::now();
        let data = run_availability(&ccfg, &intensities);
        let secs = t0.elapsed().as_secs_f64();
        let goodput_clean: f64 =
            data.points.iter().filter(|p| p.intensity == 0.0).map(|p| p.goodput_ipm).sum();
        let failed_hostile: u64 =
            data.points.iter().filter(|p| p.intensity == 1.0).map(|p| p.failed()).sum();
        let retries: u64 = data.points.iter().map(|p| p.retries).sum();
        let deadlocks: u64 = data.points.iter().map(|p| p.deadlocks).sum();
        // Every sweep point runs the post-run consistency audit and panics
        // on any violation; reaching this line means all points were clean.
        if verbose {
            eprintln!(
                "smoke chaos: {} points in {secs:.3}s, hostile failures {failed_hostile}, \
                 retries {retries}, deadlocks {deadlocks}, audit clean",
                data.points.len()
            );
        }
        format!(
            ",\n  \"chaos\": {{\"points\": {}, \"wall_secs\": {secs:.3}, \
             \"clean_goodput_ipm\": {goodput_clean:.1}, \
             \"hostile_failed_attempts\": {failed_hostile}, \"retries\": {retries}, \
             \"deadlocks\": {deadlocks}, \"consistency_audit\": \"clean\", \
             \"audited_points\": {}, \
             \"equivalent_flags\": \"avail with seed 42, scale 0.05, clients 25, \
             intensities 0,0.5,1\"}}",
            data.points.len(),
            data.points.len()
        )
    } else {
        String::new()
    };

    // Cache probe: the EJB four-tier configuration on the browsing mix,
    // cache off versus the transactional two-layer cache, under the same
    // saturating 500 ms think time the `repro cache --smoke` golden uses.
    // Records hit/miss/invalidation counters and the throughput uplift so
    // the perf history tracks the caching tier alongside raw wall clock.
    let cache_json = {
        use dynamid_harness::{run_cache_sweep, CacheMode};
        let mut ccfg = HarnessConfig::fast();
        ccfg.verbose = false;
        ccfg.jobs = 1;
        ccfg.seed = 42;
        ccfg.scale = 0.1;
        ccfg.clients = vec![40];
        ccfg.think_time = SimDuration::from_millis(500);
        ccfg.measure = SimDuration::from_secs(6);
        ccfg.ramp_up = SimDuration::from_secs(2);
        ccfg.ramp_down = SimDuration::from_secs(1);
        ccfg.configs = vec![StandardConfig::EjbFourTier];
        let t0 = Instant::now();
        let data = run_cache_sweep(&ccfg, &[1024]);
        let secs = t0.elapsed().as_secs_f64();
        let ejb = StandardConfig::EjbFourTier;
        let off = data.point(ejb, CacheMode::Off, 0, 40).expect("off point");
        let txn = data.point(ejb, CacheMode::Transactional, 1024, 40).expect("txn point");
        let uplift = if off.throughput_ipm > 0.0 {
            txn.throughput_ipm / off.throughput_ipm - 1.0
        } else {
            0.0
        };
        // Both points passed the consistency audit or run_cache_sweep
        // would have panicked before returning.
        if verbose {
            eprintln!(
                "smoke cache: EJB browsing {:.0} -> {:.0} ipm with transactional caching \
                 ({:+.1}%) in {secs:.3}s, q-hit {:.3} m-hit {:.3}, audit clean",
                off.throughput_ipm,
                txn.throughput_ipm,
                uplift * 100.0,
                txn.cache.query_hit_rate(),
                txn.cache.method_hit_rate(),
            );
        }
        format!(
            ",\n  \"cache\": {{\"wall_secs\": {secs:.3}, \
             \"off_ipm\": {:.1}, \"txn_ipm\": {:.1}, \"uplift\": {uplift:.4},\n    \
             \"query\": {{\"hits\": {}, \"misses\": {}, \"invalidations\": {}, \
             \"bypasses\": {}, \"hit_rate\": {:.4}}},\n    \
             \"method\": {{\"hits\": {}, \"misses\": {}, \"invalidations\": {}, \
             \"bypasses\": {}, \"hit_rate\": {:.4}}},\n    \
             \"consistency_audit\": \"clean\", \
             \"equivalent_flags\": \"cache --smoke restricted to C6, clients 40\"}}",
            off.throughput_ipm,
            txn.throughput_ipm,
            txn.cache.query_hits,
            txn.cache.query_misses,
            txn.cache.query_invalidations,
            txn.cache.query_bypasses,
            txn.cache.query_hit_rate(),
            txn.cache.method.hits,
            txn.cache.method.misses,
            txn.cache.method.invalidations,
            txn.cache.method.bypasses,
            txn.cache.method_hit_rate(),
        )
    };

    // Host execution profile: what the simulator costs the *host*, as
    // opposed to the modeled results above (which tests pin down). The
    // recorded per-PR history lives in results/bench_history.json; when it
    // is readable, the current run is compared against the first
    // (baseline) and latest recorded entries — check.sh turns the latter
    // comparison into a regression gate. Looked up relative to the
    // current directory first (how check.sh runs), then relative to the
    // source tree so a smoke run from any directory still gets the
    // comparison.
    let history = fs::read_to_string("results/bench_history.json")
        .or_else(|_| {
            fs::read_to_string(concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/../../results/bench_history.json"
            ))
        })
        .ok();
    let history_totals: Vec<f64> = history
        .as_deref()
        .map(|h| {
            h.split("\"total_wall_secs\":")
                .skip(1)
                .filter_map(|rest| {
                    rest.trim_start()
                        .split(|c: char| !(c.is_ascii_digit() || c == '.'))
                        .next()?
                        .parse()
                        .ok()
                })
                .collect()
        })
        .unwrap_or_default();
    let num_or_null = |v: Option<f64>| match v {
        Some(v) => format!("{v:.3}"),
        None => "null".to_string(),
    };
    let baseline = history_totals.first().copied();
    let latest = history_totals.last().copied();
    let profile = format!(
        "  \"host_profile\": {{\n    \"events\": {all_events}, \"stale_events\": {all_stale}, \
         \"stale_ratio\": {:.4}, \"peak_calendar\": {all_peak},\n    \"figures\": [\n{}\n    ],\n    \
         \"baseline_total_wall_secs\": {}, \"speedup_vs_baseline\": {},\n    \
         \"latest_recorded_total_wall_secs\": {}, \"speedup_vs_latest_recorded\": {},\n    \
         \"history\": {}\n  }}",
        all_stale as f64 / all_events.max(1) as f64,
        profile_json.join(",\n"),
        num_or_null(baseline),
        num_or_null(baseline.map(|b| b / total_secs)),
        num_or_null(latest),
        num_or_null(latest.map(|l| l / total_secs)),
        history.as_deref().map(str::trim).unwrap_or("[]"),
    );

    let json = format!(
        "{{\n  \"generated_by\": \"repro --smoke\",\n  \"figures\": [\n{}\n  ],\n  \
         \"total_wall_secs\": {total_secs:.3},\n{profile},\n  \
         \"plan_cache\": {{\"hits\": {hits}, \"misses\": {misses}, \"hit_rate\": {rate:.4}}},\n  \
         \"snapshot_fork\": {{\"cow_micros\": {cow_micros:.1}, \
         \"deep_clone_micros\": {deep_micros:.1}}}{cache_json}{chaos_json}\n}}\n",
        fig_json.join(",\n"),
    );
    // Written atomically (temp file + rename) so an interrupted run can
    // never leave a torn or half-stale BENCH_repro.json behind — the perf
    // gate's speedup baseline either updates completely or not at all.
    let tmp = "BENCH_repro.json.tmp";
    if let Err(e) = fs::write(tmp, &json).and_then(|()| fs::rename(tmp, "BENCH_repro.json")) {
        eprintln!("could not write BENCH_repro.json: {e}");
        let _ = fs::remove_file(tmp);
        return ExitCode::FAILURE;
    }
    if verbose {
        eprintln!(
            "smoke total {total_secs:.3}s, plan-cache hit rate {rate:.4}, \
             fork {cow_micros:.1}us vs deep clone {deep_micros:.1}us"
        );
        eprintln!("wrote BENCH_repro.json");
    }
    ExitCode::SUCCESS
}

/// Runs one experiment point against `db` so the plan-cache counters can
/// be read back from it afterwards.
fn run_smoke_point(cfg: &HarnessConfig, db: &mut Database) {
    use dynamid_core::CostModel;
    use dynamid_workload::{ExperimentSpec, WorkloadConfig};
    let app =
        dynamid_bookstore::Bookstore::new(dynamid_bookstore::BookstoreScale::scaled(cfg.scale));
    let mix = dynamid_bookstore::mixes::browsing();
    let workload = WorkloadConfig {
        clients: cfg.clients[0],
        think_time: cfg.think_time,
        session_time: cfg.session_time,
        ramp_up: cfg.ramp_up,
        measure: cfg.measure,
        ramp_down: cfg.ramp_down,
        seed: cfg.seed ^ cfg.clients[0] as u64,
        resilience: Default::default(),
    };
    ExperimentSpec::for_config(cfg.configs[0])
        .mix(&mix)
        .costs(CostModel::default())
        .workload(workload)
        .policy(cfg.policy)
        .run(db, &app);
}

fn usage(err: &str) -> ExitCode {
    eprintln!("error: {err}\n");
    eprintln!("usage: repro [options] <command>\n\ncommands:");
    for (cmd, help) in COMMANDS {
        eprintln!("  {cmd:<16} {help}");
    }
    eprintln!("\noptions:");
    for f in FLAGS {
        let head = match f.value {
            Some(v) => format!("{} {v}", f.name),
            None => f.name.to_string(),
        };
        eprintln!("  {head:<20} {}", f.help);
    }
    ExitCode::FAILURE
}
