//! Rendering figure data as markdown tables and CSV files.

use crate::figures::{ConfigCurve, FigureData};
use std::fmt::Write as _;

/// Markdown throughput table: one row per client count, one column per
/// configuration (the paper's Figures 5/7/9/11/13 as a table).
pub fn throughput_markdown(data: &FigureData) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "### {} — throughput (interactions/minute) [{}]",
        data.pair.title, data.pair.throughput_id
    );
    let _ = write!(out, "\n| clients |");
    for c in &data.curves {
        let _ = write!(out, " {} |", c.config.paper_name());
    }
    let _ = write!(out, "\n|---|");
    for _ in &data.curves {
        let _ = write!(out, "---|");
    }
    let _ = writeln!(out);
    let n_points = data.curves.first().map_or(0, |c| c.points.len());
    for i in 0..n_points {
        let clients = data.curves[0].points[i].clients;
        let _ = write!(out, "| {clients} |");
        for c in &data.curves {
            let _ = write!(out, " {:.0} |", c.points[i].ipm);
        }
        let _ = writeln!(out);
    }
    let _ = write!(out, "| **peak** |");
    for c in &data.curves {
        let _ = write!(out, " **{:.0}** |", c.peak().ipm);
    }
    let _ = writeln!(out);
    out
}

/// Markdown CPU-utilization table at each configuration's peak (the
/// paper's Figures 6/8/10/12/14).
pub fn cpu_markdown(data: &FigureData) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "### {} — CPU utilization at peak throughput (%) [{}]",
        data.pair.title, data.pair.cpu_id
    );
    let _ = writeln!(
        out,
        "\n| configuration | WebServer | Servlet | EJB | Database | web NIC Mb/s | lock wait ms/itx |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|");
    for c in &data.curves {
        let p = c.peak();
        let fmt = |v: Option<f64>| match v {
            Some(u) => format!("{:.0}", u * 100.0),
            None => "—".to_string(),
        };
        // When the servlet shares the web machine its CPU is reported
        // under WebServer, as in the paper.
        let servlet = if c.config.servlet_dedicated() { p.cpu_of("servlet") } else { None };
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {:.1} | {:.2} |",
            c.config.paper_name(),
            fmt(p.cpu_of("web")),
            fmt(servlet),
            fmt(p.cpu_of("ejb")),
            fmt(p.cpu_of("db")),
            p.nic_of("web").unwrap_or(0.0),
            p.lock_wait_ms_per_interaction,
        );
    }
    out
}

/// CSV of the full sweep (one line per config × client count).
pub fn sweep_csv(data: &FigureData) -> String {
    let mut out = String::from(
        "figure,config,clients,ipm,error_rate,web_cpu,servlet_cpu,ejb_cpu,db_cpu,web_nic_mbps,lock_wait_ms,latency_p50_ms,latency_p90_ms\n",
    );
    for c in &data.curves {
        for p in &c.points {
            let f = |v: Option<f64>| v.map_or(String::new(), |u| format!("{u:.4}"));
            let _ = writeln!(
                out,
                "{},{},{},{:.1},{:.4},{},{},{},{},{:.2},{:.3},{:.1},{:.1}",
                data.pair.throughput_id,
                c.config.paper_name(),
                p.clients,
                p.ipm,
                p.error_rate,
                f(p.cpu_of("web")),
                f(p.cpu_of("servlet")),
                f(p.cpu_of("ejb")),
                f(p.cpu_of("db")),
                p.nic_of("web").unwrap_or(0.0),
                p.lock_wait_ms_per_interaction,
                p.latency_p50_ms,
                p.latency_p90_ms,
            );
        }
    }
    out
}

/// One-line peak summary per configuration (the paper's in-text numbers).
pub fn peak_summary_line(curve: &ConfigCurve) -> String {
    let p = curve.peak();
    format!(
        "{:<22} peak {:>9.0} ipm at {:>6} clients (db {:>3.0}%, web {:>3.0}%)",
        curve.config.paper_name(),
        p.ipm,
        p.clients,
        p.cpu_of("db").unwrap_or(0.0) * 100.0,
        p.cpu_of("web").unwrap_or(0.0) * 100.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::{find_figure, run_figure};
    use crate::HarnessConfig;

    #[test]
    fn reports_render() {
        let cfg = HarnessConfig::smoke();
        let data = run_figure(find_figure("fig05").unwrap(), &cfg);
        let md = throughput_markdown(&data);
        assert!(md.contains("fig05"));
        assert!(md.contains("WsPhp-DB"));
        assert!(md.contains("**peak**"));
        let cpu = cpu_markdown(&data);
        assert!(cpu.contains("Database"));
        let csv = sweep_csv(&data);
        // Header + one line per config x point.
        let expected = 1 + cfg.configs.len() * cfg.clients.len();
        assert_eq!(csv.lines().count(), expected);
        let line = peak_summary_line(&data.curves[0]);
        assert!(line.contains("peak"));
    }
}
