//! Traced experiment points: span capture, Chrome-trace export, and the
//! aggregated bottleneck report behind `repro trace`.
//!
//! A traced point is an ordinary figure sweep point with span recording
//! switched on: the simulation emits every CPU/network/lock/queue
//! interval and the middleware wraps its stages (web serve, AJP hop,
//! handler invoke, CMP entity access, SQL statement) in hierarchical
//! spans. The capture exports two artifacts — a Chrome-trace JSON
//! timeline and a [`BottleneckReport`] CSV — and every run cross-checks
//! the trace-derived per-tier CPU utilizations against the
//! processor-sharing counters the untraced figures report, within 1%.

use crate::figures::{make_app, mix_for, sweep_workload, FigurePair};
use crate::HarnessConfig;
use dynamid_core::{CostModel, StandardConfig};
use dynamid_trace::{chrome_trace_json, verify_capture, BottleneckReport, TraceCapture};
use dynamid_workload::{ExperimentResult, ExperimentSpec};

/// The absolute CPU-utilization tolerance of the PS cross-check.
pub const CPU_SHARE_TOLERANCE: f64 = 0.01;

/// One traced run: the ordinary experiment result (whose metrics are
/// bit-identical to the untraced run at the same seed), the raw span
/// capture, and the aggregated bottleneck report.
#[derive(Debug)]
pub struct TracedRun {
    /// The deployment traced.
    pub config: StandardConfig,
    /// Emulated clients offered.
    pub clients: usize,
    /// The full experiment result, `trace` populated.
    pub result: ExperimentResult,
    /// The aggregated report derived from the capture.
    pub report: BottleneckReport,
}

impl TracedRun {
    /// The raw capture (machine/interaction tables, jobs, intervals).
    pub fn capture(&self) -> &TraceCapture {
        self.result.trace.as_ref().expect("traced run always captures")
    }

    /// Renders the capture as Chrome-trace JSON (load in
    /// `chrome://tracing` or Perfetto).
    pub fn chrome_json(&self) -> String {
        chrome_trace_json(self.capture())
    }

    /// Renders the bottleneck report as CSV (byte-stable for a fixed
    /// seed).
    pub fn bottleneck_csv(&self) -> String {
        self.report.to_csv(&self.capture().machines)
    }

    /// Validates the capture: span trees well-formed, and trace-derived
    /// per-machine CPU utilization within
    /// [`CPU_SHARE_TOLERANCE`] of the processor-sharing counters.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn cross_check(&self) -> Result<(), String> {
        verify_capture(self.capture())?;
        self.report.check_cpu_shares(&self.result.resources.cpu_util, CPU_SHARE_TOLERANCE)
    }
}

/// The client count a traced point runs at when the sweep grid does not
/// pin one: near the saturation knee, where attribution is interesting.
pub fn default_trace_clients(pair: &FigurePair) -> usize {
    crate::figures::default_clients(pair.benchmark)[3]
}

/// Runs one traced point of `pair` under `config`.
///
/// Uses the first entry of `cfg.clients` (or
/// [`default_trace_clients`]), the same point seed as the untraced
/// sweep, and the same phase structure — so the metrics half of the
/// result is bit-identical to the corresponding untraced sweep point.
pub fn run_traced(pair: FigurePair, config: StandardConfig, cfg: &HarnessConfig) -> TracedRun {
    let clients = cfg.clients.first().copied().unwrap_or_else(|| default_trace_clients(&pair));
    let mix = mix_for(&pair);
    let mut db = match pair.benchmark {
        crate::figures::Benchmark::Bookstore => dynamid_bookstore::build_db(
            &dynamid_bookstore::BookstoreScale::scaled(cfg.scale),
            cfg.seed,
        )
        .expect("population"),
        crate::figures::Benchmark::Auction => {
            dynamid_auction::build_db(&dynamid_auction::AuctionScale::scaled(cfg.scale), cfg.seed)
                .expect("population")
        }
    };
    let app = make_app(pair.benchmark, cfg.scale);
    let result = ExperimentSpec::for_config(config)
        .mix(&mix)
        .costs(CostModel::default())
        .workload(sweep_workload(cfg, clients))
        .policy(cfg.policy)
        .tracing(true)
        .run(&mut db, app.as_ref());
    let report =
        BottleneckReport::from_capture(result.trace.as_ref().expect("tracing was requested"));
    TracedRun { config, clients, result, report }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::find_figure;

    fn tiny() -> HarnessConfig {
        let mut cfg = HarnessConfig::smoke();
        cfg.clients = vec![20];
        cfg
    }

    #[test]
    fn traced_point_matches_untraced_metrics_and_passes_cross_check() {
        let cfg = tiny();
        let pair = find_figure("fig05").unwrap();
        let traced = run_traced(pair, StandardConfig::PhpColocated, &cfg);
        assert!(traced.result.metrics.completed > 0);
        traced.cross_check().expect("span trees and CPU shares check out");
        // Same seed, tracing off: the figure-facing numbers must agree.
        let data = crate::run_figure(
            pair,
            &HarnessConfig { configs: vec![StandardConfig::PhpColocated], ..cfg },
        );
        let p = &data.curves[0].points[0];
        assert_eq!(p.ipm, traced.result.throughput_ipm, "tracing perturbed throughput");
        assert_eq!(p.cpu, traced.result.resources.cpu_util, "tracing perturbed CPU counters");
    }

    #[test]
    fn artifacts_are_deterministic_and_nonempty() {
        let cfg = tiny();
        let pair = find_figure("fig11").unwrap();
        let a = run_traced(pair, StandardConfig::EjbFourTier, &cfg);
        let b = run_traced(pair, StandardConfig::EjbFourTier, &cfg);
        assert_eq!(a.chrome_json(), b.chrome_json(), "chrome trace not byte-stable");
        assert_eq!(a.bottleneck_csv(), b.bottleneck_csv(), "bottleneck CSV not byte-stable");
        assert!(a.chrome_json().contains("\"traceEvents\""));
        assert!(a.bottleneck_csv().lines().count() > 4);
        // Four-tier deployment: the clients machine plus all four server
        // machines show up in the capture's name table.
        assert_eq!(a.capture().machines.len(), 5);
    }
}
