//! # dynamid-harness — regenerating every figure of the paper
//!
//! The paper's evaluation consists of five throughput-vs-clients figures
//! and five companion CPU-utilization-at-peak figures (Figures 5–14),
//! covering two benchmarks × their mixes × six deployment configurations.
//! This crate enumerates them ([`FIGURES`]), runs the sweeps
//! ([`run_figure`]), and renders the paper-style tables
//! ([`report`]).
//!
//! The `repro` binary is the command-line entry point:
//!
//! ```text
//! repro fig05                   # one figure pair (table + CPU breakdown)
//! repro auction-bidding         # same thing, by name
//! repro all                     # the whole evaluation, writes results/*.csv
//! repro summary                 # peak throughput of every config on every mix
//! repro trace fig05 --config C1 # traced point: Chrome trace + bottleneck CSV
//! repro --fast all              # scaled-down populations and short windows
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod audit;
pub mod availability;
pub mod cache_sweep;
pub mod figures;
pub mod report;
pub mod trace_run;

pub use audit::{audit_auction, audit_bookstore, AuditReport};
pub use availability::{
    availability_csv, availability_markdown, run_availability, AvailabilityData, AvailabilityPoint,
    AVAILABILITY_CONFIGS, DEFAULT_INTENSITIES,
};
pub use cache_sweep::{
    cache_csv, cache_markdown, run_cache_sweep, CacheMode, CachePoint, CacheSweepData, CACHE_MODES,
    DEFAULT_CACHE_CAPACITIES,
};
pub use figures::{
    default_clients, find_figure, run_figure, Benchmark, ConfigCurve, CurvePoint, FigureData,
    FigurePair, FIGURES,
};
pub use trace_run::{default_trace_clients, run_traced, TracedRun, CPU_SHARE_TOLERANCE};

use dynamid_core::StandardConfig;
use dynamid_sim::{GrantPolicy, SimDuration};

/// Everything that parameterizes a harness run.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Population scale relative to the paper (1.0 = paper sizes).
    pub scale: f64,
    /// Client sweep; empty means the per-benchmark default grid.
    pub clients: Vec<usize>,
    /// Configurations to run (default: all six).
    pub configs: Vec<StandardConfig>,
    /// Mean think time.
    pub think_time: SimDuration,
    /// Mean session length.
    pub session_time: SimDuration,
    /// Ramp-up phase.
    pub ramp_up: SimDuration,
    /// Measurement phase.
    pub measure: SimDuration,
    /// Ramp-down phase.
    pub ramp_down: SimDuration,
    /// Lock grant policy (MyISAM default: writer priority).
    pub policy: GrantPolicy,
    /// Master seed.
    pub seed: u64,
    /// Print progress to stderr.
    pub verbose: bool,
    /// Worker threads for sweep points (`0` = one per available core).
    ///
    /// Points are independent and deterministically seeded, so results do
    /// not depend on this value — only wall-clock time does.
    pub jobs: usize,
}

impl Default for HarnessConfig {
    /// Paper-scale populations with shortened (but steady-state) phases:
    /// 20 s ramp-up, 100 s measurement, 5 s ramp-down. The paper used
    /// 1–5 min / 20–30 min / 1–5 min on real hardware; in simulation the
    /// variance at 100 s is already below the plot resolution.
    fn default() -> Self {
        HarnessConfig {
            scale: 1.0,
            clients: Vec::new(),
            configs: StandardConfig::ALL.to_vec(),
            think_time: SimDuration::from_secs(7),
            session_time: SimDuration::from_mins(15),
            ramp_up: SimDuration::from_secs(20),
            measure: SimDuration::from_secs(100),
            ramp_down: SimDuration::from_secs(5),
            policy: GrantPolicy::default(),
            seed: 42,
            verbose: false,
            jobs: 0,
        }
    }
}

impl HarnessConfig {
    /// A scaled-down configuration for quick runs (`repro --fast`).
    pub fn fast() -> Self {
        HarnessConfig {
            scale: 0.1,
            ramp_up: SimDuration::from_secs(10),
            measure: SimDuration::from_secs(40),
            ramp_down: SimDuration::from_secs(2),
            ..Self::default()
        }
    }

    /// A tiny configuration for unit tests.
    pub fn smoke() -> Self {
        HarnessConfig {
            scale: 0.002,
            clients: vec![5, 20],
            configs: vec![StandardConfig::PhpColocated, StandardConfig::ServletDedicated],
            think_time: SimDuration::from_millis(500),
            session_time: SimDuration::from_secs(60),
            ramp_up: SimDuration::from_secs(2),
            measure: SimDuration::from_secs(8),
            ramp_down: SimDuration::from_secs(1),
            policy: GrantPolicy::default(),
            seed: 7,
            verbose: false,
            jobs: 1,
        }
    }

    /// Resolves [`jobs`](Self::jobs): `0` means one worker per available
    /// core.
    pub fn effective_jobs(&self) -> usize {
        if self.jobs == 0 {
            std::thread::available_parallelism().map(usize::from).unwrap_or(1)
        } else {
            self.jobs
        }
    }
}
