//! Property-based tests for the SQL engine.
//!
//! Core invariants: inserted data is faithfully returned, indexed and
//! unindexed access paths agree, ORDER BY/LIMIT behave like the obvious
//! reference implementation, and the LIKE matcher agrees with a naive
//! backtracking oracle.

use dynamid_sqldb::{
    CacheInvalidation, ColumnType, Database, ResultCacheConfig, TableSchema, Value,
};
use proptest::prelude::*;

/// Builds two tables with identical content; `fast` has a secondary index
/// on `k`, `slow` does not.
fn twin_tables(rows: &[(i64, i64)]) -> Database {
    let mut db = Database::new();
    for (name, indexed) in [("fast", true), ("slow", false)] {
        let mut b = TableSchema::builder(name)
            .column("id", ColumnType::Int)
            .column("k", ColumnType::Int)
            .primary_key("id")
            .auto_increment();
        if indexed {
            b = b.index("k");
        }
        db.create_table(b.build().unwrap()).unwrap();
    }
    for (id, k) in rows {
        for t in ["fast", "slow"] {
            db.execute(
                &format!("INSERT INTO {t} (id, k) VALUES (?, ?)"),
                &[Value::Int(*id), Value::Int(*k)],
            )
            .unwrap();
        }
    }
    db
}

fn ids_of(r: &dynamid_sqldb::QueryResult) -> Vec<i64> {
    let c = r.col_index("id").unwrap();
    let mut ids: Vec<i64> = r.rows.iter().map(|row| row[c].as_int().unwrap()).collect();
    ids.sort_unstable();
    ids
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever we insert comes back unchanged.
    #[test]
    fn insert_select_roundtrip(
        vals in prop::collection::vec((0i64..1000, -1000i64..1000, ".{0,12}"), 0..40)
    ) {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("t")
                .column("id", ColumnType::Int)
                .column("n", ColumnType::Int)
                .column("s", ColumnType::Str)
                .primary_key("id")
                .auto_increment()
                .build()
                .unwrap(),
        )
        .unwrap();
        let mut expected = Vec::new();
        for (i, (_, n, s)) in vals.iter().enumerate() {
            db.execute(
                "INSERT INTO t (id, n, s) VALUES (?, ?, ?)",
                &[Value::Int(i as i64 + 1), Value::Int(*n), Value::str(s)],
            )
            .unwrap();
            expected.push((i as i64 + 1, *n, s.clone()));
        }
        let r = db.execute("SELECT id, n, s FROM t ORDER BY id", &[]).unwrap();
        prop_assert_eq!(r.rows.len(), expected.len());
        for (row, (id, n, s)) in r.rows.iter().zip(&expected) {
            prop_assert_eq!(row[0].as_int().unwrap(), *id);
            prop_assert_eq!(row[1].as_int().unwrap(), *n);
            prop_assert_eq!(row[2].as_str().unwrap(), s.as_str());
        }
    }

    /// Index-equality and full-scan paths return the same rows.
    #[test]
    fn index_eq_matches_scan(
        rows in prop::collection::vec((1i64..500, 0i64..10), 1..60),
        probe in 0i64..10,
    ) {
        // De-duplicate primary keys.
        let mut seen = std::collections::HashSet::new();
        let rows: Vec<(i64, i64)> = rows
            .into_iter()
            .filter(|(id, _)| seen.insert(*id))
            .collect();
        let mut db = twin_tables(&rows);
        let f = db.execute("SELECT id FROM fast WHERE k = ?", &[Value::Int(probe)]).unwrap();
        let s = db.execute("SELECT id FROM slow WHERE k = ?", &[Value::Int(probe)]).unwrap();
        prop_assert_eq!(ids_of(&f), ids_of(&s));
        // The indexed path examined no more rows than the scan.
        prop_assert!(f.counters.rows_examined <= s.counters.rows_examined);
    }

    /// Index-range and full-scan paths agree on BETWEEN.
    #[test]
    fn index_range_matches_scan(
        rows in prop::collection::vec((1i64..500, -50i64..50), 1..60),
        lo in -50i64..50,
        width in 0i64..40,
    ) {
        let mut seen = std::collections::HashSet::new();
        let rows: Vec<(i64, i64)> = rows
            .into_iter()
            .filter(|(id, _)| seen.insert(*id))
            .collect();
        let mut db = twin_tables(&rows);
        let hi = lo + width;
        let q = "SELECT id FROM fast WHERE k BETWEEN ? AND ?";
        let f = db.execute(q, &[Value::Int(lo), Value::Int(hi)]).unwrap();
        let s = db
            .execute(
                "SELECT id FROM slow WHERE k BETWEEN ? AND ?",
                &[Value::Int(lo), Value::Int(hi)],
            )
            .unwrap();
        prop_assert_eq!(ids_of(&f), ids_of(&s));
    }

    /// ORDER BY k produces a non-decreasing (or non-increasing) column, and
    /// LIMIT yields exactly the prefix of the full ordering.
    #[test]
    fn order_and_limit_are_consistent(
        rows in prop::collection::vec((1i64..500, -100i64..100), 1..60),
        limit in 1u64..20,
        desc in any::<bool>(),
    ) {
        let mut seen = std::collections::HashSet::new();
        let rows: Vec<(i64, i64)> = rows
            .into_iter()
            .filter(|(id, _)| seen.insert(*id))
            .collect();
        let mut db = twin_tables(&rows);
        let dir = if desc { "DESC" } else { "ASC" };
        let full = db
            .execute(&format!("SELECT id, k FROM fast ORDER BY k {dir}, id"), &[])
            .unwrap();
        let ks: Vec<i64> = full.rows.iter().map(|r| r[1].as_int().unwrap()).collect();
        for w in ks.windows(2) {
            if desc {
                prop_assert!(w[0] >= w[1]);
            } else {
                prop_assert!(w[0] <= w[1]);
            }
        }
        let page = db
            .execute(
                &format!("SELECT id, k FROM fast ORDER BY k {dir}, id LIMIT {limit}"),
                &[],
            )
            .unwrap();
        prop_assert_eq!(&page.rows[..], &full.rows[..page.rows.len()]);
        prop_assert!(page.rows.len() as u64 <= limit);
    }

    /// COUNT(*) equals the number of matching rows; SUM matches a fold.
    #[test]
    fn aggregates_match_reference(
        rows in prop::collection::vec((1i64..500, -20i64..20), 0..60),
        probe in -20i64..20,
    ) {
        let mut seen = std::collections::HashSet::new();
        let rows: Vec<(i64, i64)> = rows
            .into_iter()
            .filter(|(id, _)| seen.insert(*id))
            .collect();
        let mut db = twin_tables(&rows);
        let r = db
            .execute(
                "SELECT COUNT(*), SUM(k) FROM fast WHERE k >= ?",
                &[Value::Int(probe)],
            )
            .unwrap();
        let matching: Vec<i64> = rows.iter().filter(|(_, k)| *k >= probe).map(|(_, k)| *k).collect();
        prop_assert_eq!(r.rows[0][0].as_int().unwrap(), matching.len() as i64);
        if matching.is_empty() {
            prop_assert!(r.rows[0][1].is_null());
        } else {
            prop_assert_eq!(r.rows[0][1].as_int().unwrap(), matching.iter().sum::<i64>());
        }
    }

    /// DELETE removes exactly the matching rows; survivors unchanged.
    #[test]
    fn delete_complements_select(
        rows in prop::collection::vec((1i64..500, 0i64..10), 0..60),
        probe in 0i64..10,
    ) {
        let mut seen = std::collections::HashSet::new();
        let rows: Vec<(i64, i64)> = rows
            .into_iter()
            .filter(|(id, _)| seen.insert(*id))
            .collect();
        let mut db = twin_tables(&rows);
        let before = db.execute("SELECT id FROM fast", &[]).unwrap();
        let hit = db
            .execute("SELECT id FROM fast WHERE k = ?", &[Value::Int(probe)])
            .unwrap();
        let del = db
            .execute("DELETE FROM fast WHERE k = ?", &[Value::Int(probe)])
            .unwrap();
        prop_assert_eq!(del.affected as usize, hit.rows.len());
        let after = db.execute("SELECT id FROM fast", &[]).unwrap();
        prop_assert_eq!(after.rows.len(), before.rows.len() - hit.rows.len());
        // None of the survivors match the probe.
        let rematch = db
            .execute("SELECT id FROM fast WHERE k = ?", &[Value::Int(probe)])
            .unwrap();
        prop_assert!(rematch.is_empty());
    }

    /// The LIKE matcher agrees with a naive recursive oracle.
    #[test]
    fn like_matches_oracle(text in "[ab_%]{0,10}", pattern in "[ab_%]{0,8}") {
        fn oracle(t: &[char], p: &[char]) -> bool {
            match p.first() {
                None => t.is_empty(),
                Some('%') => {
                    (0..=t.len()).any(|i| oracle(&t[i..], &p[1..]))
                }
                Some('_') => !t.is_empty() && oracle(&t[1..], &p[1..]),
                Some(c) => t.first() == Some(c) && oracle(&t[1..], &p[1..]),
            }
        }
        let tc: Vec<char> = text.chars().collect();
        let pc: Vec<char> = pattern.chars().collect();
        let expect = oracle(&tc, &pc);
        let got = Value::str(&text).like(&Value::str(&pattern)).unwrap();
        prop_assert_eq!(got, expect, "text={:?} pattern={:?}", text, pattern);
    }

    /// UPDATE arithmetic matches the reference computation.
    #[test]
    fn update_arithmetic_reference(
        rows in prop::collection::vec((1i64..200, -100i64..100), 1..40),
        delta in -10i64..10,
    ) {
        let mut seen = std::collections::HashSet::new();
        let rows: Vec<(i64, i64)> = rows
            .into_iter()
            .filter(|(id, _)| seen.insert(*id))
            .collect();
        let mut db = twin_tables(&rows);
        db.execute("UPDATE fast SET k = k + ?", &[Value::Int(delta)]).unwrap();
        let r = db.execute("SELECT id, k FROM fast ORDER BY id", &[]).unwrap();
        let mut expected: Vec<(i64, i64)> =
            rows.iter().map(|(id, k)| (*id, *k + delta)).collect();
        expected.sort_unstable();
        let got: Vec<(i64, i64)> = r
            .rows
            .iter()
            .map(|row| (row[0].as_int().unwrap(), row[1].as_int().unwrap()))
            .collect();
        prop_assert_eq!(got, expected);
    }
}

/// Read-only query templates exercising every plan shape; the pair is
/// (SQL, how many `?` parameters it binds).
const READ_TEMPLATES: [(&str, usize); 6] = [
    ("SELECT id, k FROM fast WHERE id = ?", 1),
    ("SELECT id, k FROM fast WHERE k = ?", 1),
    ("SELECT id FROM fast WHERE k BETWEEN ? AND ? ORDER BY id", 2),
    ("SELECT COUNT(*), SUM(k) FROM fast WHERE k >= ?", 1),
    ("SELECT k, COUNT(*) AS n FROM fast GROUP BY k ORDER BY n DESC, k", 0),
    ("SELECT id FROM slow WHERE k = ? ORDER BY id LIMIT 5", 1),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A statement served from the plan cache returns exactly what the
    /// fresh compilation returned: same rows, same columns, same counters.
    /// Cost accounting must not depend on cache temperature.
    #[test]
    fn warm_plan_equals_cold_plan(
        rows in prop::collection::vec((1i64..300, -20i64..20), 0..50),
        queries in prop::collection::vec((0usize..6, -25i64..25, 0i64..30), 1..12),
    ) {
        let mut seen = std::collections::HashSet::new();
        let rows: Vec<(i64, i64)> = rows
            .into_iter()
            .filter(|(id, _)| seen.insert(*id))
            .collect();
        // `kept` reuses cached plans; `cleared` recompiles every statement.
        // (Population itself hits the plan cache, hence the baselines.)
        let mut kept = twin_tables(&rows);
        let mut cleared = twin_tables(&rows);
        let kept_base = kept.stats().plan_cache_hits;
        let cleared_base = cleared.stats().plan_cache_hits;
        for (tpl, a, w) in queries {
            let (sql, nparams) = READ_TEMPLATES[tpl];
            let params = [Value::Int(a), Value::Int(a + w)];
            let params = &params[..nparams];
            // Execute twice on `kept`: the second run is a guaranteed
            // plan-cache hit and must match the first exactly.
            let cold = kept.execute(sql, params).unwrap();
            let warm = kept.execute(sql, params).unwrap();
            prop_assert_eq!(&cold, &warm, "cache hit diverged on {}", sql);
            cleared.clear_caches();
            let fresh = cleared.execute(sql, params).unwrap();
            prop_assert_eq!(&cold, &fresh, "cleared-cache run diverged on {}", sql);
        }
        // The kept database really did serve from the plan cache: one hit
        // per repeated execution. The cleared one never did.
        prop_assert!(kept.stats().plan_cache_hits > kept_base);
        prop_assert_eq!(cleared.stats().plan_cache_hits, cleared_base);
    }

    /// DDL invalidates cached plans lazily; the recompiled plan answers
    /// identically and the invalidation is visible in the stats.
    #[test]
    fn ddl_invalidation_preserves_results(
        rows in prop::collection::vec((1i64..300, -20i64..20), 0..50),
        tpl in 0usize..6,
        a in -25i64..25,
        w in 0i64..30,
    ) {
        let mut seen = std::collections::HashSet::new();
        let rows: Vec<(i64, i64)> = rows
            .into_iter()
            .filter(|(id, _)| seen.insert(*id))
            .collect();
        let mut db = twin_tables(&rows);
        let (sql, nparams) = READ_TEMPLATES[tpl];
        let params = [Value::Int(a), Value::Int(a + w)];
        let params = &params[..nparams];
        let before = db.execute(sql, params).unwrap();

        let inv0 = db.stats().plan_invalidations;
        db.create_table(
            TableSchema::builder("unrelated")
                .column("id", ColumnType::Int)
                .primary_key("id")
                .build()
                .unwrap(),
        )
        .unwrap();

        // The stale plan is recompiled transparently and agrees with the
        // pre-DDL execution (the new table cannot affect these queries).
        let after = db.execute(sql, params).unwrap();
        prop_assert_eq!(&before, &after, "post-DDL recompile diverged on {}", sql);
        prop_assert_eq!(db.stats().plan_invalidations, inv0 + 1);
        // And the recompiled plan is cached again.
        let hits = db.stats().plan_cache_hits;
        let again = db.execute(sql, params).unwrap();
        prop_assert_eq!(&after, &again);
        prop_assert_eq!(db.stats().plan_cache_hits, hits + 1);
    }
}

/// Builds a parent/child pair with randomized index coverage. `parent.grp`
/// and `child.pid` are secondary-indexed only when the flags say so, which
/// steers the compiled executor between hash-of-index, hash-of-scan, B-tree
/// probe, and scan join strategies.
fn parent_child(
    parents: &[(i64, String, i64)],
    children: &[(i64, i64, i64)],
    grp_indexed: bool,
    pid_indexed: bool,
) -> Database {
    let mut db = Database::new();
    let mut pb = TableSchema::builder("parent")
        .column("id", ColumnType::Int)
        .column("name", ColumnType::Str)
        .column("grp", ColumnType::Int)
        .primary_key("id");
    if grp_indexed {
        pb = pb.index("grp");
    }
    db.create_table(pb.build().unwrap()).unwrap();
    let mut cb = TableSchema::builder("child")
        .column("id", ColumnType::Int)
        .column("pid", ColumnType::Int)
        .column("v", ColumnType::Int)
        .primary_key("id");
    if pid_indexed {
        cb = cb.index("pid");
    }
    db.create_table(cb.build().unwrap()).unwrap();
    for (id, name, grp) in parents {
        db.execute(
            "INSERT INTO parent (id, name, grp) VALUES (?, ?, ?)",
            &[Value::Int(*id), Value::str(name), Value::Int(*grp)],
        )
        .unwrap();
    }
    for (id, pid, v) in children {
        db.execute(
            "INSERT INTO child (id, pid, v) VALUES (?, ?, ?)",
            &[Value::Int(*id), Value::Int(*pid), Value::Int(*v)],
        )
        .unwrap();
    }
    db
}

fn dedup_by_id<T: Clone>(rows: Vec<(i64, T)>) -> Vec<(i64, T)> {
    let mut seen = std::collections::HashSet::new();
    rows.into_iter().filter(|(id, _)| seen.insert(*id)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The late-materializing executor (hash joins, top-K ORDER BY+LIMIT,
    /// hash aggregation) is byte-identical to the AST interpreter — rows,
    /// columns, AND every modeled counter — over randomized schemas, data,
    /// and LIMIT/OFFSET windows. The interpreter runs through
    /// `Database::execute_interpreted`, which bypasses the plan cache.
    #[test]
    fn compiled_executor_matches_interpreter(
        parents in prop::collection::vec((1i64..80, "[a-e]{1,4}", 0i64..6), 1..60),
        children in prop::collection::vec((1i64..200, 0i64..90, -8i64..8), 0..150),
        grp_indexed in any::<bool>(),
        pid_indexed in any::<bool>(),
        offset in 0u64..12,
        count in 0u64..15,
        probe in -8i64..8,
    ) {
        let parents: Vec<(i64, (String, i64))> =
            dedup_by_id(parents.into_iter().map(|(id, n, g)| (id, (n, g))).collect());
        let parents: Vec<(i64, String, i64)> =
            parents.into_iter().map(|(id, (n, g))| (id, n, g)).collect();
        let children: Vec<(i64, (i64, i64))> =
            dedup_by_id(children.into_iter().map(|(id, p, v)| (id, (p, v))).collect());
        let children: Vec<(i64, i64, i64)> =
            children.into_iter().map(|(id, (p, v))| (id, p, v)).collect();
        let mut db = parent_child(&parents, &children, grp_indexed, pid_indexed);

        let queries: Vec<(String, Vec<Value>)> = vec![
            (format!(
                "SELECT p.name, c.v FROM child c JOIN parent p ON c.pid = p.id \
                 ORDER BY c.v, c.id LIMIT {offset}, {count}"
            ), vec![]),
            (format!(
                "SELECT pid, COUNT(*) AS n, SUM(v) AS s, MAX(v) AS m FROM child \
                 GROUP BY pid ORDER BY s DESC, pid LIMIT {offset}, {count}"
            ), vec![]),
            ("SELECT grp, MIN(name), AVG(grp) FROM parent GROUP BY grp ORDER BY grp"
                .to_string(), vec![]),
            (format!(
                "SELECT c.id FROM child c JOIN parent p ON c.pid = p.id \
                 WHERE p.grp = ? ORDER BY c.id LIMIT {count}"
            ), vec![Value::Int(probe.rem_euclid(6))]),
            ("SELECT AVG(v), COUNT(*), MIN(v) FROM child WHERE v > ?".to_string(),
                vec![Value::Int(probe)]),
            (format!("SELECT v, id FROM child ORDER BY v DESC LIMIT {offset}, {count}"), vec![]),
            // Unindexed inner side: parent.grp = child.v has no index on
            // either column's inner role, exercising the hash-of-scan path.
            (format!(
                "SELECT p.name, c.id FROM parent p JOIN child c ON p.grp = c.v \
                 ORDER BY p.id, c.id LIMIT {count}"
            ), vec![]),
        ];
        for (sql, params) in &queries {
            let got = db.execute(sql, params);
            let want = db.execute_interpreted(sql, params);
            match (got, want) {
                (Ok(g), Ok(w)) => prop_assert_eq!(g, w, "divergence on {}", sql),
                (Err(_), Err(_)) => {}
                (g, w) => prop_assert!(false, "status divergence on {}: {:?} vs {:?}", sql, g, w),
            }
        }
    }
}

/// Runs one randomized write statement against `db` (errors are fine —
/// both sides of a comparison fail identically).
fn txn_write(db: &mut Database, kind: usize, a: i64, b: i64) {
    let _ = match kind {
        0 => db.execute("INSERT INTO fast (id, k) VALUES (NULL, ?)", &[Value::Int(a)]),
        1 => db.execute("UPDATE fast SET k = k + ? WHERE k = ?", &[Value::Int(a), Value::Int(b)]),
        2 => db.execute("DELETE FROM fast WHERE k = ?", &[Value::Int(a)]),
        _ => db.execute("SELECT COUNT(*) FROM fast WHERE k >= ?", &[Value::Int(a)]),
    };
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// BEGIN … writes … ROLLBACK leaves the database exactly as if the
    /// transaction never ran: rows, tombstoned slots, free-list order,
    /// secondary-index entry positions, and the auto-increment counter all
    /// match a snapshot taken at BEGIN.
    #[test]
    fn rollback_equals_never_ran(
        rows in prop::collection::vec((1i64..200, -20i64..20), 0..40),
        ops in prop::collection::vec((0usize..4, -20i64..20, -20i64..20), 0..25),
    ) {
        let mut seen = std::collections::HashSet::new();
        let rows: Vec<(i64, i64)> =
            rows.into_iter().filter(|(id, _)| seen.insert(*id)).collect();
        let mut db = twin_tables(&rows);
        let oracle = db.deep_clone();
        db.execute("BEGIN", &[]).unwrap();
        for (kind, a, b) in &ops {
            txn_write(&mut db, *kind, *a, *b);
        }
        db.execute("ROLLBACK", &[]).unwrap();
        prop_assert!(db.same_data(&oracle), "rollback diverged from the pre-BEGIN snapshot");
        // And the rolled-back database keeps working like the snapshot.
        let a = db.execute("SELECT id, k FROM fast ORDER BY k, id", &[]).unwrap();
        let mut oracle = oracle;
        let b = oracle.execute("SELECT id, k FROM fast ORDER BY k, id", &[]).unwrap();
        prop_assert_eq!(a.rows, b.rows);
    }

    /// A committed transaction is indistinguishable from the same
    /// statements run in auto-commit: same data AND same cumulative engine
    /// statistics — transaction control is free in the modeled cost, so
    /// wrapping every interaction in BEGIN/COMMIT cannot move any figure.
    #[test]
    fn commit_equals_autocommit(
        rows in prop::collection::vec((1i64..200, -20i64..20), 0..40),
        ops in prop::collection::vec((0usize..4, -20i64..20, -20i64..20), 0..25),
    ) {
        let mut seen = std::collections::HashSet::new();
        let rows: Vec<(i64, i64)> =
            rows.into_iter().filter(|(id, _)| seen.insert(*id)).collect();
        let mut tx = twin_tables(&rows);
        let mut auto = twin_tables(&rows);
        tx.execute("BEGIN", &[]).unwrap();
        for (kind, a, b) in &ops {
            txn_write(&mut tx, *kind, *a, *b);
            txn_write(&mut auto, *kind, *a, *b);
        }
        tx.execute("COMMIT", &[]).unwrap();
        prop_assert!(tx.same_data(&auto), "committed writes diverged from auto-commit");
        prop_assert_eq!(tx.stats(), auto.stats());
    }
}

/// Zeroes the result-cache counters of a stats snapshot so the remaining
/// (legacy) fields can be compared against a cache-off run.
fn legacy_stats(mut s: dynamid_sqldb::DbStats) -> dynamid_sqldb::DbStats {
    s.result_cache_hits = 0;
    s.result_cache_misses = 0;
    s.result_cache_invalidations = 0;
    s.result_cache_bypasses = 0;
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The transactional result cache is *invisible*: over random
    /// interleaved schedules of reads, writes, and transaction boundaries
    /// (COMMIT and ROLLBACK alike), a cached database returns exactly the
    /// rows and counters of a cache-off twin, ends with the same data, and
    /// accumulates identical legacy statistics. The same must hold for
    /// `Ttl(0)`, where every entry expires before it can be served.
    #[test]
    fn cached_schedule_equals_cache_off(
        rows in prop::collection::vec((1i64..200, -20i64..20), 0..40),
        script in prop::collection::vec((0usize..10, -25i64..25, 0i64..30), 1..40),
        ttl_zero in any::<bool>(),
    ) {
        let mut seen = std::collections::HashSet::new();
        let rows: Vec<(i64, i64)> =
            rows.into_iter().filter(|(id, _)| seen.insert(*id)).collect();
        let mut plain = twin_tables(&rows);
        let mut cached = twin_tables(&rows);
        cached.enable_result_cache(ResultCacheConfig {
            capacity: 32,
            invalidation: if ttl_zero {
                CacheInvalidation::Ttl(0)
            } else {
                CacheInvalidation::Transactional
            },
        });
        let mut in_txn = false;
        for (op, a, w) in &script {
            match op {
                0..=5 => {
                    let (sql, nparams) = READ_TEMPLATES[*op];
                    let params = [Value::Int(*a), Value::Int(*a + *w)];
                    let params = &params[..nparams];
                    let c = cached.execute(sql, params).unwrap();
                    let p = plain.execute(sql, params).unwrap();
                    prop_assert_eq!(c, p, "read diverged on {} (txn={})", sql, in_txn);
                }
                6 | 7 => {
                    let kind = a.rem_euclid(3) as usize;
                    txn_write(&mut cached, kind, *a, *w);
                    txn_write(&mut plain, kind, *a, *w);
                }
                8 if !in_txn => {
                    cached.execute("BEGIN", &[]).unwrap();
                    plain.execute("BEGIN", &[]).unwrap();
                    in_txn = true;
                }
                _ if in_txn => {
                    // Odd offsets roll back, even ones commit — the cache
                    // must stay coherent through both.
                    let stmt = if *a % 2 == 0 { "COMMIT" } else { "ROLLBACK" };
                    cached.execute(stmt, &[]).unwrap();
                    plain.execute(stmt, &[]).unwrap();
                    in_txn = false;
                }
                _ => {}
            }
        }
        if in_txn {
            cached.execute("COMMIT", &[]).unwrap();
            plain.execute("COMMIT", &[]).unwrap();
        }
        // Same final data and identical legacy statistics — the cache only
        // adds its own four counters on top.
        prop_assert!(cached.same_data(&plain), "cached schedule diverged from cache-off twin");
        prop_assert_eq!(legacy_stats(cached.stats()), legacy_stats(plain.stats()));
        if ttl_zero {
            // A zero TTL can never serve: strict equivalence includes the
            // hit counter itself.
            prop_assert_eq!(cached.stats().result_cache_hits, 0);
        }
        // One final read pass compares every template end-state to be sure
        // surviving cache entries (if any) are coherent.
        for (sql, nparams) in READ_TEMPLATES {
            let params = [Value::Int(3), Value::Int(9)];
            let params = &params[..nparams];
            let c = cached.execute(sql, params).unwrap();
            let p = plain.execute(sql, params).unwrap();
            prop_assert_eq!(c, p, "post-schedule read diverged on {}", sql);
        }
    }
}
