//! Transactional read-query result caching.
//!
//! An opt-in cache over `Database::execute` for SELECT statements, modeled
//! on the transactional method/result caching of Pfeifer & Lockemann
//! ("Theory and Practice of Transactional Method Caching"): entries are
//! keyed by *invocation* — the compiled plan's id plus the bound parameter
//! values — and invalidated by the write-sets of committing transactions.
//!
//! Coherence protocol (host side — the engine executes strictly
//! sequentially, one transaction open at a time):
//!
//! * **Bypass**: a statement executed inside an open transaction that has
//!   already written one of the statement's read tables must not be served
//!   from (or stored into) the cache — the transaction would otherwise not
//!   see its own uncommitted writes. Reads of untouched tables still hit:
//!   their content equals the committed state.
//! * **Invalidation at COMMIT**: when a transaction commits (or an
//!   auto-commit statement writes), the write-set extracted from its undo
//!   log drops every dependent entry. Single-table primary-key point reads
//!   are invalidated per row; everything else per table.
//! * **Rollback purge**: unwinding an already-committed receipt
//!   (`Database::apply_rollback`) silently purges dependent entries — the
//!   data they were computed from is being reverted. This is a coherence
//!   flush, not an invalidation: aborts feed no invalidation keys.
//!
//! Under [`CacheInvalidation::Transactional`] these three rules make every
//! cache hit byte-identical to a fresh execution, so enabling the cache is
//! observable only through host wall-clock and the modeled cache-hit cost
//! path. [`CacheInvalidation::Ttl`] replaces commit-driven invalidation
//! with simulated-time expiry and *may serve stale rows* — that is the
//! point of the cache-ablation experiment, and the consistency auditor is
//! the staleness oracle. A TTL of zero expires every entry instantly and
//! is therefore equivalent to running with the cache off.

use crate::exec::QueryResult;
use crate::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// How cached entries are invalidated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheInvalidation {
    /// Commit-driven: the write-set of every committing transaction drops
    /// the dependent entries. Hits are always coherent with the committed
    /// database state.
    Transactional,
    /// Time-to-live in simulated microseconds: entries older than the TTL
    /// (against the clock fed by [`Database::set_cache_clock`]) miss.
    /// Commits do *not* invalidate, so hits may be stale. `Ttl(0)` never
    /// hits — equivalent to the cache being off.
    ///
    /// [`Database::set_cache_clock`]: crate::Database::set_cache_clock
    Ttl(u64),
}

/// Configuration of the read-query result cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResultCacheConfig {
    /// Maximum number of cached result sets; least-recently-used entries
    /// are evicted beyond it.
    pub capacity: usize,
    /// Invalidation protocol.
    pub invalidation: CacheInvalidation,
}

/// A hashable, equality-comparable key built from SQL parameter values.
///
/// [`Value`] itself is deliberately not `Hash`/`Eq` (floats), so cache keys
/// canonicalize: floats key by bit pattern, strings by their cached
/// deterministic FNV-1a hash with byte equality as the tie-breaker.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey(Vec<KeyPart>);

#[derive(Debug, Clone)]
enum KeyPart {
    Null,
    Int(i64),
    Float(u64),
    Str(Arc<crate::value::Istr>),
}

impl PartialEq for KeyPart {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (KeyPart::Null, KeyPart::Null) => true,
            (KeyPart::Int(a), KeyPart::Int(b)) => a == b,
            (KeyPart::Float(a), KeyPart::Float(b)) => a == b,
            (KeyPart::Str(a), KeyPart::Str(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for KeyPart {}

impl std::hash::Hash for KeyPart {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            KeyPart::Null => state.write_u8(0),
            KeyPart::Int(i) => {
                state.write_u8(1);
                state.write_i64(*i);
            }
            KeyPart::Float(bits) => {
                state.write_u8(2);
                state.write_u64(*bits);
            }
            KeyPart::Str(s) => {
                state.write_u8(3);
                state.write_u64(s.cached_hash());
            }
        }
    }
}

impl CacheKey {
    /// Builds a key from parameter values.
    pub fn from_values(values: &[Value]) -> CacheKey {
        CacheKey(
            values
                .iter()
                .map(|v| match v {
                    Value::Null => KeyPart::Null,
                    Value::Int(i) => KeyPart::Int(*i),
                    Value::Float(f) => KeyPart::Float(f.to_bits()),
                    Value::Str(s) => KeyPart::Str(Arc::clone(s)),
                })
                .collect(),
        )
    }
}

#[derive(Debug, Clone)]
struct Entry {
    result: QueryResult,
    /// Catalog ids of every table the plan reads.
    tables: Vec<usize>,
    /// `Some((table, key))` when the entry is a single-table primary-key
    /// point read: only writes touching that exact row (or wildcard writes
    /// to the table) invalidate it.
    pk: Option<(usize, KeyPart)>,
    /// Cache-clock micros at store time (TTL freshness).
    stored_at: u64,
    /// Monotonic LRU tick, refreshed on every hit.
    tick: u64,
}

/// One table's contribution to a committing transaction's write-set.
#[derive(Debug, Clone, PartialEq)]
pub struct TableWrites {
    /// Catalog id of the written table.
    pub table: usize,
    /// Primary-key values of the touched rows, when every write to this
    /// table is attributable to a row key; `None` is a wildcard (no primary
    /// key, or unattributable writes) that invalidates every dependent
    /// entry.
    pub rows: Option<Vec<Value>>,
}

/// The result cache proper. Owned by [`Database`](crate::Database); all
/// coherence decisions and hit/miss/invalidation counting are driven from
/// `Database::execute`, `commit_txn`, and `apply_rollback` — the cache
/// itself only stores, looks up, and drops entries.
#[derive(Debug, Clone)]
pub(crate) struct ResultCache {
    cfg: ResultCacheConfig,
    map: HashMap<(u64, CacheKey), Entry>,
    clock: u64,
    next_tick: u64,
}

impl ResultCache {
    pub(crate) fn new(cfg: ResultCacheConfig) -> ResultCache {
        ResultCache { cfg, map: HashMap::new(), clock: 0, next_tick: 0 }
    }

    pub(crate) fn set_clock(&mut self, micros: u64) {
        self.clock = micros;
    }

    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }

    fn fresh(&self, e: &Entry) -> bool {
        match self.cfg.invalidation {
            CacheInvalidation::Transactional => true,
            CacheInvalidation::Ttl(d) => self.clock.saturating_sub(e.stored_at) < d,
        }
    }

    /// Looks up a cached result, refreshing its LRU tick. A TTL-expired
    /// entry is dropped and misses.
    pub(crate) fn lookup(&mut self, plan_id: u64, key: &CacheKey) -> Option<QueryResult> {
        let lookup_key = (plan_id, key.clone());
        match self.map.get(&lookup_key).map(|e| self.fresh(e)) {
            Some(true) => {
                let e = self.map.get_mut(&lookup_key).expect("entry present");
                e.tick = self.next_tick;
                self.next_tick += 1;
                Some(e.result.clone())
            }
            Some(false) => {
                self.map.remove(&lookup_key);
                None
            }
            None => None,
        }
    }

    /// Stores a result, evicting the least-recently-used entry when over
    /// capacity. `pk` marks single-table primary-key point reads for
    /// per-row invalidation.
    pub(crate) fn store(
        &mut self,
        plan_id: u64,
        key: CacheKey,
        result: QueryResult,
        tables: Vec<usize>,
        pk: Option<(usize, Value)>,
    ) {
        if self.cfg.capacity == 0 {
            return;
        }
        let pk = pk.map(|(t, v)| {
            let CacheKey(mut parts) = CacheKey::from_values(std::slice::from_ref(&v));
            (t, parts.remove(0))
        });
        let tick = self.next_tick;
        self.next_tick += 1;
        self.map.insert((plan_id, key), Entry { result, tables, pk, stored_at: self.clock, tick });
        while self.map.len() > self.cfg.capacity {
            // Ticks are unique, so the minimum is well defined and the
            // eviction deterministic regardless of hash-map iteration order.
            let victim = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, _)| k.clone())
                .expect("non-empty over-capacity cache");
            self.map.remove(&victim);
        }
    }

    /// Drops every entry dependent on the committed write-set, returning
    /// the number removed (the caller counts them as invalidations). Under
    /// TTL invalidation commits do not invalidate — staleness is the
    /// experiment — and this returns 0 without touching the cache.
    pub(crate) fn invalidate_commit(&mut self, writes: &[TableWrites]) -> u64 {
        if self.cfg.invalidation != CacheInvalidation::Transactional {
            return 0;
        }
        let before = self.map.len();
        self.purge(writes);
        (before - self.map.len()) as u64
    }

    /// Drops dependent entries *without* counting invalidations: the
    /// write-set of a rolled-back receipt is a coherence flush, not a
    /// commit.
    pub(crate) fn purge(&mut self, writes: &[TableWrites]) {
        if writes.is_empty() || self.map.is_empty() {
            return;
        }
        let keys: Vec<(usize, Vec<KeyPart>)> = writes
            .iter()
            .filter_map(|w| {
                w.rows.as_ref().map(|rows| {
                    let parts = rows
                        .iter()
                        .map(|v| {
                            let CacheKey(mut p) = CacheKey::from_values(std::slice::from_ref(v));
                            p.remove(0)
                        })
                        .collect();
                    (w.table, parts)
                })
            })
            .collect();
        let wildcard: Vec<usize> =
            writes.iter().filter(|w| w.rows.is_none()).map(|w| w.table).collect();
        self.map.retain(|_, e| {
            for w in writes {
                if !e.tables.contains(&w.table) {
                    continue;
                }
                // Wildcard write to a dependency: drop.
                if wildcard.contains(&w.table) {
                    return false;
                }
                match &e.pk {
                    // A point read survives writes to *other* rows of its
                    // own table.
                    Some((pt, pkey)) if *pt == w.table => {
                        if let Some((_, parts)) = keys.iter().find(|(t, _)| t == pt) {
                            if parts.iter().any(|p| p == pkey) {
                                return false;
                            }
                        }
                    }
                    // Any other dependent entry is dropped by any write to
                    // the table.
                    _ => return false,
                }
            }
            true
        });
    }

    /// Empties the cache (rewind, cold-cache benchmarking). Counters are
    /// untouched.
    pub(crate) fn clear(&mut self) {
        self.map.clear();
    }
}
