//! Per-transaction undo logging.
//!
//! While a transaction is open the database records one [`UndoOp`] per
//! successful row mutation. Rolling back applies the log in reverse, which
//! restores the pre-transaction state *exactly* — row slots, free-list
//! order, secondary-index entry positions, and (when no later insert
//! advanced it) the auto-increment counter — so a rolled-back database is
//! byte-equal to one that never ran the transaction at all.

use crate::table::RowId;
use crate::value::Value;

/// One reversible row mutation recorded while a transaction is open.
#[derive(Debug, Clone)]
pub(crate) enum UndoOp {
    /// A row was inserted at `rid`.
    Insert {
        /// Catalog id of the mutated table.
        table: usize,
        /// Slot the row landed in.
        rid: RowId,
        /// `true` when the insert grew the slot vector (vs. reusing a free
        /// slot); undo pops the vector instead of re-tombstoning.
        new_slot: bool,
        /// Auto-increment counter before the insert.
        prev_next_auto: i64,
        /// Auto-increment counter after the insert; undo only rewinds the
        /// counter when it still has this value (MySQL never reuses ids
        /// handed out before a crash, and neither do we across
        /// transactions).
        post_next_auto: i64,
    },
    /// The row at `rid` was replaced; `old_row` is the pre-image.
    Update {
        /// Catalog id of the mutated table.
        table: usize,
        /// Slot of the replaced row.
        rid: RowId,
        /// Full pre-image of the row.
        old_row: Vec<Value>,
        /// Full post-image of the row. Undo compensates integer columns by
        /// `current + (old - new)` rather than restoring `old` blindly, so
        /// counter-style updates (`stock = stock - ?`) from transactions
        /// that committed in between are not silently erased; for an
        /// uninterleaved transaction `current == new` and the result is the
        /// exact pre-image either way.
        new_row: Vec<Value>,
        /// Position of `rid` within each secondary-index entry before the
        /// update, so undo re-inserts it at the same position instead of
        /// appending.
        sec_pos: Vec<usize>,
    },
    /// The row at `rid` was deleted; `old_row` is the pre-image.
    Delete {
        /// Catalog id of the mutated table.
        table: usize,
        /// Slot the row occupied.
        rid: RowId,
        /// Full pre-image of the row.
        old_row: Vec<Value>,
        /// Secondary-index positions of `rid` before the delete.
        sec_pos: Vec<usize>,
    },
}

impl UndoOp {
    /// Catalog id of the mutated table.
    pub(crate) fn table(&self) -> usize {
        match self {
            UndoOp::Insert { table, .. }
            | UndoOp::Update { table, .. }
            | UndoOp::Delete { table, .. } => *table,
        }
    }
}

/// The undo log of one transaction: every successful row mutation since
/// `BEGIN`, in execution order.
///
/// A committed transaction's log is *kept* by the caller as its write
/// receipt — [`row_deltas`](TxnLog::row_deltas) summarizes the net row-count
/// effect per table, which the consistency auditor replays against the
/// final database. A rolled-back transaction's log is consumed by
/// `Database::apply_rollback`.
#[derive(Debug, Clone, Default)]
pub struct TxnLog {
    ops: Vec<UndoOp>,
}

impl TxnLog {
    /// `true` when the transaction performed no row mutations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of recorded row mutations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    pub(crate) fn record(&mut self, op: UndoOp) {
        self.ops.push(op);
    }

    /// Appends a copy of `other`'s ops, preserving their order. Used by the
    /// rewind journal to absorb a committed transaction's receipt.
    pub(crate) fn extend_cloned(&mut self, other: &TxnLog) {
        self.ops.extend(other.ops.iter().cloned());
    }

    pub(crate) fn into_ops(self) -> Vec<UndoOp> {
        self.ops
    }

    pub(crate) fn ops(&self) -> &[UndoOp] {
        &self.ops
    }

    /// `true` when the log mutated any of the given table ids. Drives the
    /// result-cache bypass rule: a transaction that wrote a table must not
    /// be served cached (committed-state) reads of it.
    pub(crate) fn touches(&self, tables: &[usize]) -> bool {
        self.ops.iter().any(|op| tables.contains(&op.table()))
    }

    /// Catalog ids of every table the transaction mutated, sorted and
    /// deduplicated. This is the invalidation key set the middleware feeds
    /// to its method cache when the receipt commits.
    pub fn touched_tables(&self) -> Vec<usize> {
        let mut tables: Vec<usize> = self.ops.iter().map(UndoOp::table).collect();
        tables.sort_unstable();
        tables.dedup();
        tables
    }

    /// Net live-row delta per table id: inserts count +1, deletes −1,
    /// updates 0. Sorted by table id.
    pub fn row_deltas(&self) -> Vec<(usize, i64)> {
        let mut deltas: std::collections::BTreeMap<usize, i64> = std::collections::BTreeMap::new();
        for op in &self.ops {
            match op {
                UndoOp::Insert { table, .. } => *deltas.entry(*table).or_default() += 1,
                UndoOp::Delete { table, .. } => *deltas.entry(*table).or_default() -= 1,
                UndoOp::Update { .. } => {}
            }
        }
        deltas.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_deltas_net_out_per_table() {
        let mut log = TxnLog::default();
        assert!(log.is_empty());
        log.record(UndoOp::Insert {
            table: 0,
            rid: 0,
            new_slot: true,
            prev_next_auto: 1,
            post_next_auto: 2,
        });
        log.record(UndoOp::Update {
            table: 1,
            rid: 3,
            old_row: Vec::new(),
            new_row: Vec::new(),
            sec_pos: Vec::new(),
        });
        log.record(UndoOp::Delete { table: 0, rid: 0, old_row: Vec::new(), sec_pos: Vec::new() });
        log.record(UndoOp::Insert {
            table: 2,
            rid: 5,
            new_slot: false,
            prev_next_auto: 9,
            post_next_auto: 9,
        });
        assert_eq!(log.len(), 4);
        // Updates contribute no entry; insert + delete on table 0 net out.
        assert_eq!(log.row_deltas(), vec![(0, 0), (2, 1)]);
    }
}
