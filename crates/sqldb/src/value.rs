//! SQL values and their ordering, arithmetic, and pattern semantics.

use crate::error::{SqlError, SqlResult};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A hash-cached string payload: the deterministic FNV-1a hash of the
/// bytes is computed once at construction, so hash joins, hash
/// aggregation, and hash-map probes over string values never re-scan the
/// bytes. Equality still compares bytes (the hash is a fast-path filter)
/// and ordering is plain byte ordering, so B-tree index layouts are
/// unaffected.
#[derive(Debug)]
pub struct Istr {
    hash: u64,
    s: Box<str>,
}

impl Istr {
    fn new(s: &str) -> Istr {
        Istr { hash: fnv1a(s.as_bytes()), s: s.into() }
    }

    /// The string slice.
    pub fn as_str(&self) -> &str {
        &self.s
    }

    /// The cached FNV-1a hash of the bytes.
    pub(crate) fn cached_hash(&self) -> u64 {
        self.hash
    }
}

impl std::ops::Deref for Istr {
    type Target = str;
    fn deref(&self) -> &str {
        &self.s
    }
}

impl PartialEq for Istr {
    fn eq(&self, other: &Self) -> bool {
        self.hash == other.hash && self.s == other.s
    }
}

impl Eq for Istr {}

impl PartialOrd for Istr {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Istr {
    fn cmp(&self, other: &Self) -> Ordering {
        self.s.cmp(&other.s)
    }
}

impl fmt::Display for Istr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.s)
    }
}

/// Deterministic 64-bit FNV-1a. Chosen over the std `RandomState` hasher
/// because the cached hash participates in `Hash for Value` and must be
/// identical across processes and runs for reproducibility.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A single SQL value.
///
/// Strings are reference-counted so result rows and index keys can be cloned
/// cheaply, and carry a cached hash (see [`Istr`]). The total order is
/// `NULL < numbers (Int and Float compared numerically) < strings`, which
/// is what the B-tree indexes use.
///
/// ```
/// use dynamid_sqldb::Value;
/// assert!(Value::Null < Value::Int(0));
/// assert!(Value::Int(2) < Value::Float(2.5));
/// assert!(Value::Float(9.0) < Value::str("a"));
/// ```
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer (also used for dates as epoch seconds).
    Int(i64),
    /// Double-precision float (prices, rates).
    Float(f64),
    /// UTF-8 string.
    Str(Arc<Istr>),
}

impl Value {
    /// Creates a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::new(Istr::new(s.as_ref())))
    }

    /// `true` if the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The integer inside, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as a float, converting integers.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The string inside, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer inside, or a `TypeMismatch` error.
    pub fn expect_int(&self) -> SqlResult<i64> {
        self.as_int().ok_or_else(|| SqlError::TypeMismatch {
            expected: "integer",
            found: self.type_name().to_string(),
        })
    }

    /// The float (or widened integer) inside, or a `TypeMismatch` error.
    pub fn expect_float(&self) -> SqlResult<f64> {
        self.as_float().ok_or_else(|| SqlError::TypeMismatch {
            expected: "number",
            found: self.type_name().to_string(),
        })
    }

    /// The string inside, or a `TypeMismatch` error.
    pub fn expect_str(&self) -> SqlResult<&str> {
        self.as_str().ok_or_else(|| SqlError::TypeMismatch {
            expected: "string",
            found: self.type_name().to_string(),
        })
    }

    /// A short name for the value's runtime type.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "NULL",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
        }
    }

    /// Approximate wire size in bytes, used by the cost model to charge for
    /// result marshalling.
    pub fn wire_size(&self) -> u64 {
        match self {
            Value::Null => 1,
            Value::Int(_) => 8,
            Value::Float(_) => 8,
            Value::Str(s) => s.len() as u64,
        }
    }

    /// SQL three-valued truthiness: NULL is false, numbers by non-zero,
    /// strings by non-empty.
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Int(i) => *i != 0,
            Value::Float(f) => *f != 0.0,
            Value::Str(s) => !s.is_empty(),
        }
    }

    /// Binary addition with numeric promotion.
    pub fn add(&self, rhs: &Value) -> SqlResult<Value> {
        numeric_op(self, rhs, "+", |a, b| a.checked_add(b), |a, b| a + b)
    }

    /// Binary subtraction with numeric promotion.
    pub fn sub(&self, rhs: &Value) -> SqlResult<Value> {
        numeric_op(self, rhs, "-", |a, b| a.checked_sub(b), |a, b| a - b)
    }

    /// Binary multiplication with numeric promotion.
    pub fn mul(&self, rhs: &Value) -> SqlResult<Value> {
        numeric_op(self, rhs, "*", |a, b| a.checked_mul(b), |a, b| a * b)
    }

    /// Binary division; integer division truncates, division by zero is an
    /// error.
    pub fn div(&self, rhs: &Value) -> SqlResult<Value> {
        if matches!(rhs, Value::Int(0)) || matches!(rhs, Value::Float(f) if *f == 0.0) {
            return Err(SqlError::Arithmetic("division by zero".into()));
        }
        numeric_op(self, rhs, "/", |a, b| a.checked_div(b), |a, b| a / b)
    }

    /// SQL `LIKE` with `%` (any run) and `_` (any single char), case
    /// sensitive, over this string value.
    pub fn like(&self, pattern: &Value) -> SqlResult<bool> {
        if self.is_null() || pattern.is_null() {
            return Ok(false);
        }
        Ok(like_match(self.expect_str()?, pattern.expect_str()?))
    }
}

fn numeric_op(
    lhs: &Value,
    rhs: &Value,
    op: &'static str,
    int_op: impl Fn(i64, i64) -> Option<i64>,
    float_op: impl Fn(f64, f64) -> f64,
) -> SqlResult<Value> {
    match (lhs, rhs) {
        (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
        (Value::Int(a), Value::Int(b)) => int_op(*a, *b)
            .map(Value::Int)
            .ok_or_else(|| SqlError::Arithmetic(format!("integer overflow in {op}"))),
        (a, b) => {
            let (Some(x), Some(y)) = (a.as_float(), b.as_float()) else {
                return Err(SqlError::TypeMismatch {
                    expected: "number",
                    found: format!("{} {op} {}", a.type_name(), b.type_name()),
                });
            };
            Ok(Value::Float(float_op(x, y)))
        }
    }
}

/// Iterative `LIKE` matcher (no recursion, no allocation).
fn like_match(text: &str, pattern: &str) -> bool {
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    let (mut ti, mut pi) = (0usize, 0usize);
    let (mut star_p, mut star_t) = (usize::MAX, 0usize);
    while ti < t.len() {
        // '%' must be tested first: it is a wildcard even when the text
        // itself contains a literal '%' character.
        if pi < p.len() && p[pi] == '%' {
            star_p = pi;
            star_t = ti;
            pi += 1;
        } else if pi < p.len() && (p[pi] == '_' || p[pi] == t[ti]) {
            ti += 1;
            pi += 1;
        } else if star_p != usize::MAX {
            star_t += 1;
            ti = star_t;
            pi = star_p + 1;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        // Equality agrees with `cmp`, but the string arm short-circuits on
        // the shared allocation and then the cached hash before ever
        // touching bytes.
        match (self, other) {
            (Value::Str(a), Value::Str(b)) => Arc::ptr_eq(a, b) || a == b,
            _ => self.cmp(other) == Ordering::Equal,
        }
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            // Cloned rows share the same `Arc<str>` allocation, so string
            // comparisons on join keys and group keys are usually a pointer
            // check, never a byte scan.
            (Str(a), Str(b)) => {
                if Arc::ptr_eq(a, b) {
                    Ordering::Equal
                } else {
                    a.cmp(b)
                }
            }
            (Str(_), _) => Ordering::Greater,
            (_, Str(_)) => Ordering::Less,
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            // Hash integers and integral floats identically so Int(2) and
            // Float(2.0), which compare equal, hash equal.
            Value::Int(i) => {
                1u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                1u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                // The byte hash was computed once at construction; reusing it
                // here makes hash-join probes and GROUP BY keys O(1) in the
                // string length.
                2u8.hash(state);
                state.write_u64(s.cached_hash());
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Value {
        Value::Int(v as i64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_across_types() {
        let mut vals = vec![
            Value::str("b"),
            Value::Int(10),
            Value::Null,
            Value::Float(3.5),
            Value::str("a"),
            Value::Int(2),
        ];
        vals.sort();
        assert_eq!(
            vals,
            vec![
                Value::Null,
                Value::Int(2),
                Value::Float(3.5),
                Value::Int(10),
                Value::str("a"),
                Value::str("b"),
            ]
        );
    }

    #[test]
    fn int_float_equality_and_hash() {
        use std::collections::hash_map::DefaultHasher;
        assert_eq!(Value::Int(2), Value::Float(2.0));
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&Value::Int(2)), h(&Value::Float(2.0)));
    }

    #[test]
    fn str_clone_is_a_pointer_bump() {
        let row = vec![Value::str("science fiction"), Value::Int(42)];
        let copy = row.clone();
        match (&row[0], &copy[0]) {
            (Value::Str(a), Value::Str(b)) => assert!(Arc::ptr_eq(a, b)),
            other => panic!("expected strings, got {other:?}"),
        }
        // Shared-allocation comparison takes the pointer fast path but must
        // agree with the byte comparison.
        assert_eq!(row[0], copy[0]);
        assert_eq!(row[0].cmp(&copy[0]), Ordering::Equal);
    }

    #[test]
    fn arithmetic_promotion() {
        assert_eq!(Value::Int(2).add(&Value::Int(3)).unwrap(), Value::Int(5));
        assert_eq!(Value::Int(2).add(&Value::Float(0.5)).unwrap(), Value::Float(2.5));
        assert_eq!(Value::Int(7).div(&Value::Int(2)).unwrap(), Value::Int(3));
        assert_eq!(Value::Float(7.0).div(&Value::Int(2)).unwrap(), Value::Float(3.5));
        assert!(Value::Int(1).div(&Value::Int(0)).is_err());
        assert!(Value::str("x").add(&Value::Int(1)).is_err());
        assert_eq!(Value::Null.add(&Value::Int(1)).unwrap(), Value::Null);
    }

    #[test]
    fn overflow_is_an_error() {
        assert!(Value::Int(i64::MAX).add(&Value::Int(1)).is_err());
        assert!(Value::Int(i64::MIN).sub(&Value::Int(1)).is_err());
    }

    #[test]
    fn like_patterns() {
        let s = Value::str("the great gatsby");
        assert!(s.like(&Value::str("%great%")).unwrap());
        assert!(s.like(&Value::str("the%")).unwrap());
        assert!(s.like(&Value::str("%gatsby")).unwrap());
        assert!(s.like(&Value::str("the _reat gatsby")).unwrap());
        assert!(!s.like(&Value::str("great")).unwrap());
        assert!(s.like(&Value::str("%")).unwrap());
        assert!(!s.like(&Value::str("")).unwrap());
        assert!(!Value::Null.like(&Value::str("%")).unwrap());
        // Multiple wildcards with backtracking.
        assert!(Value::str("abcabc").like(&Value::str("%b%bc")).unwrap());
        assert!(!Value::str("abcabc").like(&Value::str("%b%bd")).unwrap());
    }

    #[test]
    fn truthiness() {
        assert!(!Value::Null.is_truthy());
        assert!(!Value::Int(0).is_truthy());
        assert!(Value::Int(-1).is_truthy());
        assert!(!Value::str("").is_truthy());
        assert!(Value::str("x").is_truthy());
    }

    #[test]
    fn expect_helpers_report_types() {
        let e = Value::str("x").expect_int().unwrap_err();
        assert!(e.to_string().contains("expected integer"));
        assert_eq!(Value::Int(3).expect_float().unwrap(), 3.0);
        assert_eq!(Value::str("ab").expect_str().unwrap(), "ab");
    }

    #[test]
    fn wire_sizes() {
        assert_eq!(Value::Null.wire_size(), 1);
        assert_eq!(Value::Int(1).wire_size(), 8);
        assert_eq!(Value::str("abcd").wire_size(), 4);
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(3u32), Value::Int(3));
        assert_eq!(Value::from("s"), Value::str("s"));
        assert_eq!(Value::from(String::from("s")), Value::str("s"));
        assert_eq!(Value::from(2.5f64), Value::Float(2.5));
    }
}
