//! SQL tokenizer.

use crate::error::{SqlError, SqlResult};

/// A lexical token with its byte offset in the input.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// Byte offset where the token starts.
    pub offset: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (stored as written; keyword matching is
    /// case-insensitive in the parser).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (with `''` unescaped).
    Str(String),
    /// `?` placeholder.
    Param,
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `*`
    Star,
    /// `.`
    Dot,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `;`
    Semicolon,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// `true` if this is the identifier `word` (case-insensitive).
    pub fn is_kw(&self, word: &str) -> bool {
        matches!(self, TokenKind::Ident(s) if s.eq_ignore_ascii_case(word))
    }
}

/// Tokenizes a statement.
///
/// # Errors
///
/// Returns a parse error for unterminated strings, malformed numbers, or
/// unexpected characters.
pub fn tokenize(input: &str) -> SqlResult<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            ',' => {
                tokens.push(Token { kind: TokenKind::Comma, offset: start });
                i += 1;
            }
            '(' => {
                tokens.push(Token { kind: TokenKind::LParen, offset: start });
                i += 1;
            }
            ')' => {
                tokens.push(Token { kind: TokenKind::RParen, offset: start });
                i += 1;
            }
            '*' => {
                tokens.push(Token { kind: TokenKind::Star, offset: start });
                i += 1;
            }
            '.' => {
                tokens.push(Token { kind: TokenKind::Dot, offset: start });
                i += 1;
            }
            ';' => {
                tokens.push(Token { kind: TokenKind::Semicolon, offset: start });
                i += 1;
            }
            '?' => {
                tokens.push(Token { kind: TokenKind::Param, offset: start });
                i += 1;
            }
            '+' => {
                tokens.push(Token { kind: TokenKind::Plus, offset: start });
                i += 1;
            }
            '-' => {
                tokens.push(Token { kind: TokenKind::Minus, offset: start });
                i += 1;
            }
            '/' => {
                tokens.push(Token { kind: TokenKind::Slash, offset: start });
                i += 1;
            }
            '=' => {
                tokens.push(Token { kind: TokenKind::Eq, offset: start });
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token { kind: TokenKind::Ne, offset: start });
                    i += 2;
                } else {
                    return Err(err("expected '=' after '!'", start));
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(b'=') => {
                    tokens.push(Token { kind: TokenKind::Le, offset: start });
                    i += 2;
                }
                Some(b'>') => {
                    tokens.push(Token { kind: TokenKind::Ne, offset: start });
                    i += 2;
                }
                _ => {
                    tokens.push(Token { kind: TokenKind::Lt, offset: start });
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token { kind: TokenKind::Ge, offset: start });
                    i += 2;
                } else {
                    tokens.push(Token { kind: TokenKind::Gt, offset: start });
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => return Err(err("unterminated string literal", start)),
                        Some(b'\'') => {
                            if bytes.get(i + 1) == Some(&b'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(_) => {
                            // Consume one UTF-8 scalar.
                            let rest = &input[i..];
                            let ch = rest.chars().next().expect("in bounds");
                            s.push(ch);
                            i += ch.len_utf8();
                        }
                    }
                }
                tokens.push(Token { kind: TokenKind::Str(s), offset: start });
            }
            '0'..='9' => {
                let mut end = i;
                let mut is_float = false;
                while end < bytes.len() {
                    match bytes[end] {
                        b'0'..=b'9' => end += 1,
                        b'.' if !is_float && bytes.get(end + 1).is_some_and(u8::is_ascii_digit) => {
                            is_float = true;
                            end += 1;
                        }
                        _ => break,
                    }
                }
                let text = &input[i..end];
                let kind = if is_float {
                    TokenKind::Float(
                        text.parse().map_err(|_| err("malformed float literal", start))?,
                    )
                } else {
                    TokenKind::Int(
                        text.parse().map_err(|_| err("integer literal out of range", start))?,
                    )
                };
                tokens.push(Token { kind, offset: start });
                i = end;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut end = i;
                while end < bytes.len()
                    && ((bytes[end] as char).is_ascii_alphanumeric() || bytes[end] == b'_')
                {
                    end += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(input[i..end].to_string()),
                    offset: start,
                });
                i = end;
            }
            other => {
                return Err(err(&format!("unexpected character '{other}'"), start));
            }
        }
    }
    tokens.push(Token { kind: TokenKind::Eof, offset: input.len() });
    Ok(tokens)
}

fn err(message: &str, offset: usize) -> SqlError {
    SqlError::Parse { message: message.to_string(), offset }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        tokenize(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_select_tokens() {
        let k = kinds("SELECT id, name FROM items WHERE id = ?");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("SELECT".into()),
                TokenKind::Ident("id".into()),
                TokenKind::Comma,
                TokenKind::Ident("name".into()),
                TokenKind::Ident("FROM".into()),
                TokenKind::Ident("items".into()),
                TokenKind::Ident("WHERE".into()),
                TokenKind::Ident("id".into()),
                TokenKind::Eq,
                TokenKind::Param,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn numbers_and_strings() {
        let k = kinds("42 3.25 'o''reilly' 'café'");
        assert_eq!(
            k,
            vec![
                TokenKind::Int(42),
                TokenKind::Float(3.25),
                TokenKind::Str("o'reilly".into()),
                TokenKind::Str("café".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        let k = kinds("< <= > >= <> != =");
        assert_eq!(
            k,
            vec![
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Ne,
                TokenKind::Ne,
                TokenKind::Eq,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn arithmetic_and_punctuation() {
        let k = kinds("(a.b + 1) - 2 / 3 * x;");
        assert!(k.contains(&TokenKind::Plus));
        assert!(k.contains(&TokenKind::Minus));
        assert!(k.contains(&TokenKind::Slash));
        assert!(k.contains(&TokenKind::Star));
        assert!(k.contains(&TokenKind::Dot));
        assert!(k.contains(&TokenKind::Semicolon));
    }

    #[test]
    fn offsets_recorded() {
        let toks = tokenize("ab  cd").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 4);
    }

    #[test]
    fn errors() {
        assert!(matches!(tokenize("'abc"), Err(SqlError::Parse { .. })));
        assert!(matches!(tokenize("a ! b"), Err(SqlError::Parse { .. })));
        assert!(matches!(tokenize("a # b"), Err(SqlError::Parse { .. })));
        assert!(tokenize("99999999999999999999").is_err());
    }

    #[test]
    fn kw_matching_is_case_insensitive() {
        let toks = tokenize("select").unwrap();
        assert!(toks[0].kind.is_kw("SELECT"));
        assert!(toks[0].kind.is_kw("select"));
        assert!(!toks[0].kind.is_kw("insert"));
    }

    #[test]
    fn trailing_dot_number_is_int_then_dot() {
        // "1." with no following digit lexes as Int(1), Dot.
        let k = kinds("1.");
        assert_eq!(k, vec![TokenKind::Int(1), TokenKind::Dot, TokenKind::Eof]);
    }
}
