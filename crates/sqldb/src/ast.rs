//! Abstract syntax for the supported SQL subset.
//!
//! The subset is what the two benchmark applications (TPC-W bookstore,
//! RUBiS auction) need, matching the queries the paper's PHP and servlet
//! implementations issue against MySQL 3.23: single-table and
//! nested-loop-join SELECTs with WHERE / GROUP BY / ORDER BY / LIMIT and the
//! COUNT/SUM/MAX/MIN/AVG aggregates, INSERT, UPDATE, DELETE, and the
//! MyISAM `LOCK TABLES` / `UNLOCK TABLES` statements.

use crate::value::Value;

/// A column reference, optionally qualified by table name or alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColRef {
    /// Qualifier (`items.id` -> `Some("items")`).
    pub table: Option<String>,
    /// Column name.
    pub column: String,
}

impl ColRef {
    /// Unqualified reference.
    pub fn new(column: impl Into<String>) -> Self {
        ColRef { table: None, column: column.into() }
    }

    /// Qualified reference.
    pub fn qualified(table: impl Into<String>, column: impl Into<String>) -> Self {
        ColRef { table: Some(table.into()), column: column.into() }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl BinOp {
    /// `true` for the six comparison operators.
    pub fn is_comparison(self) -> bool {
        matches!(self, BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge)
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)` or `COUNT(col)`
    Count,
    /// `SUM(col)`
    Sum,
    /// `MAX(col)`
    Max,
    /// `MIN(col)`
    Min,
    /// `AVG(col)`
    Avg,
}

/// A scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference.
    Col(ColRef),
    /// Literal value.
    Lit(Value),
    /// Positional `?` placeholder (0-based).
    Param(usize),
    /// Arithmetic negation.
    Neg(Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `expr LIKE pattern` (negated when `negated`).
    Like {
        /// Text operand.
        expr: Box<Expr>,
        /// Pattern operand.
        pattern: Box<Expr>,
        /// `NOT LIKE`.
        negated: bool,
    },
    /// `expr BETWEEN lo AND hi`.
    Between {
        /// Tested operand.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        lo: Box<Expr>,
        /// Upper bound (inclusive).
        hi: Box<Expr>,
    },
    /// `expr IN (a, b, ...)`.
    InList {
        /// Tested operand.
        expr: Box<Expr>,
        /// Candidate values.
        list: Vec<Expr>,
    },
    /// `expr IS NULL` / `IS NOT NULL`.
    IsNull {
        /// Tested operand.
        expr: Box<Expr>,
        /// `IS NOT NULL`.
        negated: bool,
    },
    /// Aggregate call; `None` column means `COUNT(*)`.
    Agg {
        /// Function.
        func: AggFunc,
        /// Aggregated column (`None` only for COUNT).
        col: Option<ColRef>,
    },
}

impl Expr {
    /// Convenience constructor for binary expressions.
    pub fn binary(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }
    }

    /// `true` when the expression (transitively) contains an aggregate.
    pub fn contains_agg(&self) -> bool {
        match self {
            Expr::Agg { .. } => true,
            Expr::Col(_) | Expr::Lit(_) | Expr::Param(_) => false,
            Expr::Neg(e) | Expr::Not(e) => e.contains_agg(),
            Expr::Binary { lhs, rhs, .. } => lhs.contains_agg() || rhs.contains_agg(),
            Expr::Like { expr, pattern, .. } => expr.contains_agg() || pattern.contains_agg(),
            Expr::Between { expr, lo, hi } => {
                expr.contains_agg() || lo.contains_agg() || hi.contains_agg()
            }
            Expr::InList { expr, list } => {
                expr.contains_agg() || list.iter().any(Expr::contains_agg)
            }
            Expr::IsNull { expr, .. } => expr.contains_agg(),
        }
    }
}

/// One output of a SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Star,
    /// `table.*`
    TableStar(String),
    /// An expression with an optional `AS` alias.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// Output name override.
        alias: Option<String>,
    },
}

/// A table in FROM, with an optional alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    /// Table name in the catalog.
    pub name: String,
    /// Alias (defaults to the table name).
    pub alias: Option<String>,
}

impl TableRef {
    /// The name this table is referred to by in the query.
    pub fn effective_alias(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

/// An `INNER JOIN ... ON left = right` clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Join {
    /// Joined table.
    pub table: TableRef,
    /// Column from an earlier table.
    pub left: ColRef,
    /// Column of the joined table.
    pub right: ColRef,
}

/// An ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// Sort expression (a column or select-item alias).
    pub expr: Expr,
    /// Descending order.
    pub desc: bool,
}

/// A SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// First FROM table.
    pub from: TableRef,
    /// INNER JOINs, applied left to right.
    pub joins: Vec<Join>,
    /// WHERE predicate.
    pub where_clause: Option<Expr>,
    /// GROUP BY column.
    pub group_by: Option<ColRef>,
    /// ORDER BY keys.
    pub order_by: Vec<OrderKey>,
    /// LIMIT as `(offset, count)`.
    pub limit: Option<(u64, u64)>,
}

/// An INSERT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct InsertStmt {
    /// Target table.
    pub table: String,
    /// Explicit column list, if given.
    pub columns: Option<Vec<String>>,
    /// Value expressions (literals, params, arithmetic).
    pub values: Vec<Expr>,
}

/// An UPDATE statement.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateStmt {
    /// Target table.
    pub table: String,
    /// `SET col = expr` pairs.
    pub sets: Vec<(String, Expr)>,
    /// WHERE predicate.
    pub where_clause: Option<Expr>,
}

/// A DELETE statement.
#[derive(Debug, Clone, PartialEq)]
pub struct DeleteStmt {
    /// Target table.
    pub table: String,
    /// WHERE predicate.
    pub where_clause: Option<Expr>,
}

/// Lock kind in a `LOCK TABLES` statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableLockKind {
    /// `READ`
    Read,
    /// `WRITE`
    Write,
}

/// Any parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// SELECT.
    Select(SelectStmt),
    /// INSERT.
    Insert(InsertStmt),
    /// UPDATE.
    Update(UpdateStmt),
    /// DELETE.
    Delete(DeleteStmt),
    /// `LOCK TABLES t1 READ, t2 WRITE, ...`.
    LockTables(Vec<(String, TableLockKind)>),
    /// `UNLOCK TABLES`.
    UnlockTables,
    /// `BEGIN` / `START TRANSACTION` — opens an undo-logged transaction.
    Begin,
    /// `COMMIT` — closes the open transaction, keeping its writes.
    Commit,
    /// `ROLLBACK` — closes the open transaction, undoing its writes.
    Rollback,
}

impl Stmt {
    /// `true` for statements that modify data.
    pub fn is_write(&self) -> bool {
        matches!(self, Stmt::Insert(_) | Stmt::Update(_) | Stmt::Delete(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn colref_constructors() {
        assert_eq!(ColRef::new("id").table, None);
        let q = ColRef::qualified("items", "id");
        assert_eq!(q.table.as_deref(), Some("items"));
        assert_eq!(q.column, "id");
    }

    #[test]
    fn effective_alias_defaults_to_name() {
        let t = TableRef { name: "items".into(), alias: None };
        assert_eq!(t.effective_alias(), "items");
        let t = TableRef { name: "items".into(), alias: Some("i".into()) };
        assert_eq!(t.effective_alias(), "i");
    }

    #[test]
    fn agg_detection_recurses() {
        let agg = Expr::Agg { func: AggFunc::Sum, col: Some(ColRef::new("qty")) };
        let nested = Expr::binary(BinOp::Mul, agg, Expr::Lit(Value::Int(2)));
        assert!(nested.contains_agg());
        assert!(!Expr::Col(ColRef::new("x")).contains_agg());
        let inlist = Expr::InList {
            expr: Box::new(Expr::Col(ColRef::new("x"))),
            list: vec![Expr::Agg { func: AggFunc::Max, col: Some(ColRef::new("y")) }],
        };
        assert!(inlist.contains_agg());
    }

    #[test]
    fn comparison_classification() {
        assert!(BinOp::Eq.is_comparison());
        assert!(BinOp::Ge.is_comparison());
        assert!(!BinOp::And.is_comparison());
        assert!(!BinOp::Add.is_comparison());
    }

    #[test]
    fn write_classification() {
        let del = Stmt::Delete(DeleteStmt { table: "t".into(), where_clause: None });
        assert!(del.is_write());
        assert!(!Stmt::UnlockTables.is_write());
    }
}
