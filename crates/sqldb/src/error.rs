//! Error type for the SQL engine.

use std::error::Error;
use std::fmt;

/// Errors returned by parsing, planning, or executing a statement.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// The SQL text could not be tokenized or parsed.
    Parse {
        /// Human-readable description.
        message: String,
        /// Byte offset into the statement where the error was noticed.
        offset: usize,
    },
    /// A referenced table does not exist.
    UnknownTable(String),
    /// A referenced column does not exist (optionally qualified).
    UnknownColumn(String),
    /// A column reference is ambiguous between joined tables.
    AmbiguousColumn(String),
    /// A `?` placeholder index has no corresponding parameter.
    MissingParam(usize),
    /// A value had the wrong type for the operation or column.
    TypeMismatch {
        /// What the operation expected.
        expected: &'static str,
        /// What it got.
        found: String,
    },
    /// An INSERT would duplicate a primary key.
    DuplicateKey(String),
    /// A table with this name already exists.
    TableExists(String),
    /// NOT NULL or arity constraint violated.
    Constraint(String),
    /// The statement uses a feature the engine does not support.
    Unsupported(String),
    /// Division by zero or a similar arithmetic failure.
    Arithmetic(String),
    /// Invalid transaction control, e.g. `BEGIN` while a transaction is
    /// already open.
    Transaction(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Parse { message, offset } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            SqlError::UnknownTable(t) => write!(f, "unknown table '{t}'"),
            SqlError::UnknownColumn(c) => write!(f, "unknown column '{c}'"),
            SqlError::AmbiguousColumn(c) => write!(f, "ambiguous column '{c}'"),
            SqlError::MissingParam(i) => write!(f, "missing parameter for placeholder {i}"),
            SqlError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            SqlError::DuplicateKey(k) => write!(f, "duplicate primary key {k}"),
            SqlError::TableExists(t) => write!(f, "table '{t}' already exists"),
            SqlError::Constraint(m) => write!(f, "constraint violation: {m}"),
            SqlError::Unsupported(m) => write!(f, "unsupported: {m}"),
            SqlError::Arithmetic(m) => write!(f, "arithmetic error: {m}"),
            SqlError::Transaction(m) => write!(f, "transaction error: {m}"),
        }
    }
}

impl Error for SqlError {}

/// Convenience alias used throughout the engine.
pub type SqlResult<T> = Result<T, SqlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = SqlError::UnknownTable("itemz".into());
        assert_eq!(e.to_string(), "unknown table 'itemz'");
        let e = SqlError::Parse { message: "expected FROM".into(), offset: 12 };
        assert!(e.to_string().contains("byte 12"));
    }

    #[test]
    fn error_trait_object_compatible() {
        fn takes_err(_: &(dyn Error + Send + Sync)) {}
        takes_err(&SqlError::Constraint("x".into()));
    }
}
