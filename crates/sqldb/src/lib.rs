//! # dynamid-sqldb — in-memory relational engine with MyISAM-style costs
//!
//! The database substrate for the `dynamid` reproduction of *"Performance
//! Comparison of Middleware Architectures for Generating Dynamic Web
//! Content"* (Cecchet et al., MIDDLEWARE 2003). The paper's benchmarks run
//! against MySQL 3.23 with MyISAM tables; this crate provides the pieces of
//! that system the benchmarks exercise:
//!
//! * a SQL subset ([`parse`]) covering the TPC-W bookstore's and the RUBiS
//!   auction site's query shapes: filtered/joined SELECTs with GROUP BY,
//!   ORDER BY, LIMIT and aggregates, INSERT / UPDATE / DELETE, and
//!   MyISAM's `LOCK TABLES` / `UNLOCK TABLES`;
//! * real storage with primary-key and secondary B-tree indexes
//!   ([`Table`]), so queries return real, data-dependent results;
//! * an access-path planner (index equality / range / full scan) and an
//!   executor that counts the work it does;
//! * an analytic [`DbCostModel`] converting those counters into the CPU
//!   microseconds the simulated database machine is charged.
//!
//! Locking is deliberately *not* enforced here: each [`QueryResult`] reports
//! which tables it read and wrote, and the middleware layer
//! (`dynamid-core`) turns that into queued table locks on the simulated
//! database — mirroring how MyISAM serializes statements. The engine itself
//! is single-threaded, exactly like the simulation that drives it.
//!
//! ## Example
//!
//! ```
//! use dynamid_sqldb::{Database, TableSchema, ColumnType, Value};
//! let mut db = Database::new();
//! db.create_table(
//!     TableSchema::builder("items")
//!         .column("id", ColumnType::Int)
//!         .column("name", ColumnType::Str)
//!         .column("price", ColumnType::Float)
//!         .primary_key("id")
//!         .auto_increment()
//!         .build()?,
//! )?;
//! db.execute("INSERT INTO items (id, name, price) VALUES (NULL, 'book', 12.5)", &[])?;
//! let hits = db.execute(
//!     "SELECT name FROM items WHERE price BETWEEN ? AND ?",
//!     &[Value::Float(10.0), Value::Float(20.0)],
//! )?;
//! assert_eq!(hits.rows.len(), 1);
//! # Ok::<(), dynamid_sqldb::SqlError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ast;
pub mod cache;
pub mod compile;
pub mod cost;
pub mod db;
pub mod error;
pub mod exec;
pub mod lexer;
pub mod parser;
pub mod plan;
pub mod schema;
pub mod table;
pub mod txn;
pub mod value;

pub use cache::{CacheInvalidation, CacheKey, ResultCacheConfig, TableWrites};
pub use compile::CompiledStmt;
pub use cost::{DbCostModel, QueryCounters};
pub use db::{Database, DbStats};
pub use error::{SqlError, SqlResult};
pub use exec::{QueryResult, StatementKind};
pub use parser::{count_params, parse};
pub use schema::{Column, ColumnType, TableSchema};
pub use table::{RowId, Table};
pub use txn::TxnLog;
pub use value::Value;
