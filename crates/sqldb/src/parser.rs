//! Recursive-descent parser for the SQL subset.

use crate::ast::*;
use crate::error::{SqlError, SqlResult};
use crate::lexer::{tokenize, Token, TokenKind};
use crate::value::Value;

/// Words that terminate an implicit table/column alias.
const RESERVED: &[&str] = &[
    "select", "from", "where", "group", "order", "limit", "offset", "inner", "join", "on", "and",
    "or", "not", "like", "between", "in", "is", "null", "as", "insert", "into", "values", "update",
    "set", "delete", "lock", "unlock", "tables", "read", "write", "asc", "desc", "by",
];

/// Parses one SQL statement (an optional trailing `;` is allowed).
///
/// # Errors
///
/// Returns [`SqlError::Parse`] with a byte offset on any syntax error.
///
/// ```
/// use dynamid_sqldb::parse;
/// let stmt = parse("SELECT id FROM items WHERE price < ? ORDER BY price DESC LIMIT 10").unwrap();
/// assert!(matches!(stmt, dynamid_sqldb::ast::Stmt::Select(_)));
/// ```
pub fn parse(sql: &str) -> SqlResult<Stmt> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0, params: 0 };
    let stmt = p.statement()?;
    p.eat_if(|k| matches!(k, TokenKind::Semicolon));
    p.expect_eof()?;
    Ok(stmt)
}

/// Number of `?` placeholders in a statement (parses the text).
pub fn count_params(sql: &str) -> SqlResult<usize> {
    let tokens = tokenize(sql)?;
    Ok(tokens.iter().filter(|t| t.kind == TokenKind::Param).count())
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    params: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.tokens[self.pos].kind.clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        k
    }

    fn err(&self, message: impl Into<String>) -> SqlError {
        SqlError::Parse { message: message.into(), offset: self.offset() }
    }

    fn eat_kw(&mut self, word: &str) -> bool {
        if self.peek().is_kw(word) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, word: &str) -> SqlResult<()> {
        if self.eat_kw(word) {
            Ok(())
        } else {
            Err(self.err(format!("expected {}", word.to_uppercase())))
        }
    }

    fn eat_if(&mut self, pred: impl Fn(&TokenKind) -> bool) -> bool {
        if pred(self.peek()) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind, what: &str) -> SqlResult<()> {
        if *self.peek() == kind {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {what}")))
        }
    }

    fn expect_eof(&self) -> SqlResult<()> {
        if *self.peek() == TokenKind::Eof {
            Ok(())
        } else {
            Err(self.err("trailing input after statement"))
        }
    }

    fn ident(&mut self, what: &str) -> SqlResult<String> {
        match self.peek() {
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            _ => Err(self.err(format!("expected {what}"))),
        }
    }

    fn is_reserved(word: &str) -> bool {
        RESERVED.iter().any(|r| word.eq_ignore_ascii_case(r))
    }

    fn statement(&mut self) -> SqlResult<Stmt> {
        if self.peek().is_kw("select") {
            self.select().map(Stmt::Select)
        } else if self.peek().is_kw("insert") {
            self.insert().map(Stmt::Insert)
        } else if self.peek().is_kw("update") {
            self.update().map(Stmt::Update)
        } else if self.peek().is_kw("delete") {
            self.delete().map(Stmt::Delete)
        } else if self.peek().is_kw("lock") {
            self.lock_tables()
        } else if self.peek().is_kw("unlock") {
            self.bump();
            self.expect_kw("tables")?;
            Ok(Stmt::UnlockTables)
        } else if self.peek().is_kw("begin") {
            self.bump();
            Ok(Stmt::Begin)
        } else if self.peek().is_kw("start") {
            self.bump();
            self.expect_kw("transaction")?;
            Ok(Stmt::Begin)
        } else if self.peek().is_kw("commit") {
            self.bump();
            Ok(Stmt::Commit)
        } else if self.peek().is_kw("rollback") {
            self.bump();
            Ok(Stmt::Rollback)
        } else {
            Err(self.err(
                "expected SELECT, INSERT, UPDATE, DELETE, LOCK, UNLOCK, \
                 BEGIN, START, COMMIT or ROLLBACK",
            ))
        }
    }

    fn select(&mut self) -> SqlResult<SelectStmt> {
        self.expect_kw("select")?;
        let mut items = vec![self.select_item()?];
        while self.eat_if(|k| matches!(k, TokenKind::Comma)) {
            items.push(self.select_item()?);
        }
        self.expect_kw("from")?;
        let from = self.table_ref()?;
        let mut joins = Vec::new();
        loop {
            let inner = self.peek().is_kw("inner");
            if inner || self.peek().is_kw("join") {
                if inner {
                    self.bump();
                }
                self.expect_kw("join")?;
                let table = self.table_ref()?;
                self.expect_kw("on")?;
                let left = self.col_ref()?;
                self.expect(TokenKind::Eq, "'=' in JOIN condition")?;
                let right = self.col_ref()?;
                joins.push(Join { table, left, right });
            } else {
                break;
            }
        }
        let where_clause = if self.eat_kw("where") { Some(self.expr()?) } else { None };
        let group_by = if self.eat_kw("group") {
            self.expect_kw("by")?;
            Some(self.col_ref()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_kw("desc") {
                    true
                } else {
                    self.eat_kw("asc");
                    false
                };
                order_by.push(OrderKey { expr, desc });
                if !self.eat_if(|k| matches!(k, TokenKind::Comma)) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("limit") {
            let first = self.limit_number()?;
            if self.eat_if(|k| matches!(k, TokenKind::Comma)) {
                // MySQL style: LIMIT offset, count.
                let count = self.limit_number()?;
                Some((first, count))
            } else if self.eat_kw("offset") {
                let off = self.limit_number()?;
                Some((off, first))
            } else {
                Some((0, first))
            }
        } else {
            None
        };
        Ok(SelectStmt { items, from, joins, where_clause, group_by, order_by, limit })
    }

    fn limit_number(&mut self) -> SqlResult<u64> {
        match self.peek() {
            TokenKind::Int(n) if *n >= 0 => {
                let n = *n as u64;
                self.bump();
                Ok(n)
            }
            _ => Err(self.err("expected non-negative integer in LIMIT")),
        }
    }

    fn select_item(&mut self) -> SqlResult<SelectItem> {
        if matches!(self.peek(), TokenKind::Star) {
            self.bump();
            return Ok(SelectItem::Star);
        }
        // `table.*`
        if let TokenKind::Ident(name) = self.peek() {
            if !Self::is_reserved(name)
                && *self.peek2() == TokenKind::Dot
                && self.tokens[(self.pos + 2).min(self.tokens.len() - 1)].kind == TokenKind::Star
            {
                let name = name.clone();
                self.bump();
                self.bump();
                self.bump();
                return Ok(SelectItem::TableStar(name));
            }
        }
        let expr = self.expr()?;
        let alias = if self.eat_kw("as") {
            Some(self.ident("alias after AS")?)
        } else if let TokenKind::Ident(a) = self.peek() {
            if Self::is_reserved(a) {
                None
            } else {
                let a = a.clone();
                self.bump();
                Some(a)
            }
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn table_ref(&mut self) -> SqlResult<TableRef> {
        let name = self.ident("table name")?;
        if Self::is_reserved(&name) {
            return Err(self.err(format!("'{name}' is reserved")));
        }
        let alias = if self.eat_kw("as") {
            Some(self.ident("alias after AS")?)
        } else if let TokenKind::Ident(a) = self.peek() {
            if Self::is_reserved(a) {
                None
            } else {
                let a = a.clone();
                self.bump();
                Some(a)
            }
        } else {
            None
        };
        Ok(TableRef { name, alias })
    }

    fn col_ref(&mut self) -> SqlResult<ColRef> {
        let first = self.ident("column name")?;
        if *self.peek() == TokenKind::Dot {
            self.bump();
            let column = self.ident("column after '.'")?;
            Ok(ColRef { table: Some(first), column })
        } else {
            Ok(ColRef { table: None, column: first })
        }
    }

    // Expression grammar: or -> and -> not -> predicate -> additive ->
    // multiplicative -> unary -> primary.
    fn expr(&mut self) -> SqlResult<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> SqlResult<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("or") {
            let rhs = self.and_expr()?;
            lhs = Expr::binary(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> SqlResult<Expr> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw("and") {
            let rhs = self.not_expr()?;
            lhs = Expr::binary(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> SqlResult<Expr> {
        if self.eat_kw("not") {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.predicate()
        }
    }

    fn predicate(&mut self) -> SqlResult<Expr> {
        let lhs = self.additive()?;
        let cmp = match self.peek() {
            TokenKind::Eq => Some(BinOp::Eq),
            TokenKind::Ne => Some(BinOp::Ne),
            TokenKind::Lt => Some(BinOp::Lt),
            TokenKind::Le => Some(BinOp::Le),
            TokenKind::Gt => Some(BinOp::Gt),
            TokenKind::Ge => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = cmp {
            self.bump();
            let rhs = self.additive()?;
            return Ok(Expr::binary(op, lhs, rhs));
        }
        let negated = if self.peek().is_kw("not")
            && (self.peek2().is_kw("like")
                || self.peek2().is_kw("between")
                || self.peek2().is_kw("in"))
        {
            self.bump();
            true
        } else {
            false
        };
        if self.eat_kw("like") {
            let pattern = self.additive()?;
            return Ok(Expr::Like { expr: Box::new(lhs), pattern: Box::new(pattern), negated });
        }
        if self.eat_kw("between") {
            let lo = self.additive()?;
            self.expect_kw("and")?;
            let hi = self.additive()?;
            let between = Expr::Between { expr: Box::new(lhs), lo: Box::new(lo), hi: Box::new(hi) };
            return Ok(if negated { Expr::Not(Box::new(between)) } else { between });
        }
        if self.eat_kw("in") {
            self.expect(TokenKind::LParen, "'(' after IN")?;
            let mut list = vec![self.additive()?];
            while self.eat_if(|k| matches!(k, TokenKind::Comma)) {
                list.push(self.additive()?);
            }
            self.expect(TokenKind::RParen, "')' after IN list")?;
            let inlist = Expr::InList { expr: Box::new(lhs), list };
            return Ok(if negated { Expr::Not(Box::new(inlist)) } else { inlist });
        }
        if negated {
            return Err(self.err("expected LIKE, BETWEEN or IN after NOT"));
        }
        if self.eat_kw("is") {
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(Expr::IsNull { expr: Box::new(lhs), negated });
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> SqlResult<Expr> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.multiplicative()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> SqlResult<Expr> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> SqlResult<Expr> {
        if self.eat_if(|k| matches!(k, TokenKind::Minus)) {
            Ok(Expr::Neg(Box::new(self.unary()?)))
        } else {
            self.primary()
        }
    }

    fn primary(&mut self) -> SqlResult<Expr> {
        match self.peek().clone() {
            TokenKind::Int(n) => {
                self.bump();
                Ok(Expr::Lit(Value::Int(n)))
            }
            TokenKind::Float(f) => {
                self.bump();
                Ok(Expr::Lit(Value::Float(f)))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Lit(Value::str(s)))
            }
            TokenKind::Param => {
                self.bump();
                let idx = self.params;
                self.params += 1;
                Ok(Expr::Param(idx))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(TokenKind::RParen, "')'")?;
                Ok(e)
            }
            TokenKind::Ident(word) => {
                if word.eq_ignore_ascii_case("null") {
                    self.bump();
                    return Ok(Expr::Lit(Value::Null));
                }
                let agg = match word.to_ascii_lowercase().as_str() {
                    "count" => Some(AggFunc::Count),
                    "sum" => Some(AggFunc::Sum),
                    "max" => Some(AggFunc::Max),
                    "min" => Some(AggFunc::Min),
                    "avg" => Some(AggFunc::Avg),
                    _ => None,
                };
                if let Some(func) = agg {
                    if *self.peek2() == TokenKind::LParen {
                        self.bump();
                        self.bump();
                        let col =
                            if func == AggFunc::Count && matches!(self.peek(), TokenKind::Star) {
                                self.bump();
                                None
                            } else {
                                Some(self.col_ref()?)
                            };
                        self.expect(TokenKind::RParen, "')' after aggregate")?;
                        return Ok(Expr::Agg { func, col });
                    }
                }
                if Self::is_reserved(&word) {
                    return Err(self.err(format!("unexpected keyword '{word}'")));
                }
                self.col_ref().map(Expr::Col)
            }
            _ => Err(self.err("expected expression")),
        }
    }

    fn insert(&mut self) -> SqlResult<InsertStmt> {
        self.expect_kw("insert")?;
        self.expect_kw("into")?;
        let table = self.ident("table name")?;
        let columns = if *self.peek() == TokenKind::LParen {
            self.bump();
            let mut cols = vec![self.ident("column name")?];
            while self.eat_if(|k| matches!(k, TokenKind::Comma)) {
                cols.push(self.ident("column name")?);
            }
            self.expect(TokenKind::RParen, "')' after column list")?;
            Some(cols)
        } else {
            None
        };
        self.expect_kw("values")?;
        self.expect(TokenKind::LParen, "'(' before values")?;
        let mut values = vec![self.additive()?];
        while self.eat_if(|k| matches!(k, TokenKind::Comma)) {
            values.push(self.additive()?);
        }
        self.expect(TokenKind::RParen, "')' after values")?;
        Ok(InsertStmt { table, columns, values })
    }

    fn update(&mut self) -> SqlResult<UpdateStmt> {
        self.expect_kw("update")?;
        let table = self.ident("table name")?;
        self.expect_kw("set")?;
        let mut sets = Vec::new();
        loop {
            let col = self.ident("column name")?;
            self.expect(TokenKind::Eq, "'=' in SET")?;
            let value = self.additive()?;
            sets.push((col, value));
            if !self.eat_if(|k| matches!(k, TokenKind::Comma)) {
                break;
            }
        }
        let where_clause = if self.eat_kw("where") { Some(self.expr()?) } else { None };
        Ok(UpdateStmt { table, sets, where_clause })
    }

    fn delete(&mut self) -> SqlResult<DeleteStmt> {
        self.expect_kw("delete")?;
        self.expect_kw("from")?;
        let table = self.ident("table name")?;
        let where_clause = if self.eat_kw("where") { Some(self.expr()?) } else { None };
        Ok(DeleteStmt { table, where_clause })
    }

    fn lock_tables(&mut self) -> SqlResult<Stmt> {
        self.expect_kw("lock")?;
        self.expect_kw("tables")?;
        let mut locks = Vec::new();
        loop {
            let table = self.ident("table name")?;
            let kind = if self.eat_kw("read") {
                TableLockKind::Read
            } else if self.eat_kw("write") {
                TableLockKind::Write
            } else {
                return Err(self.err("expected READ or WRITE"));
            };
            locks.push((table, kind));
            if !self.eat_if(|k| matches!(k, TokenKind::Comma)) {
                break;
            }
        }
        Ok(Stmt::LockTables(locks))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(sql: &str) -> SelectStmt {
        match parse(sql).unwrap() {
            Stmt::Select(s) => s,
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn minimal_select() {
        let s = sel("SELECT * FROM items");
        assert_eq!(s.items, vec![SelectItem::Star]);
        assert_eq!(s.from.name, "items");
        assert!(s.where_clause.is_none());
        assert!(s.joins.is_empty());
    }

    #[test]
    fn select_with_everything() {
        let s = sel("SELECT i.id, i.name, SUM(ol.qty) AS total \
             FROM items i \
             INNER JOIN order_line ol ON ol.item_id = i.id \
             WHERE i.subject = ? AND ol.qty > 0 \
             GROUP BY i.id \
             ORDER BY total DESC, i.name \
             LIMIT 50");
        assert_eq!(s.items.len(), 3);
        assert_eq!(s.from.effective_alias(), "i");
        assert_eq!(s.joins.len(), 1);
        assert_eq!(s.joins[0].table.name, "order_line");
        assert!(s.group_by.is_some());
        assert_eq!(s.order_by.len(), 2);
        assert!(s.order_by[0].desc);
        assert!(!s.order_by[1].desc);
        assert_eq!(s.limit, Some((0, 50)));
    }

    #[test]
    fn limit_forms() {
        assert_eq!(sel("SELECT * FROM t LIMIT 10").limit, Some((0, 10)));
        assert_eq!(sel("SELECT * FROM t LIMIT 5, 10").limit, Some((5, 10)));
        assert_eq!(sel("SELECT * FROM t LIMIT 10 OFFSET 5").limit, Some((5, 10)));
    }

    #[test]
    fn params_numbered_in_order() {
        let s = sel("SELECT * FROM t WHERE a = ? AND b = ? AND c BETWEEN ? AND ?");
        let w = s.where_clause.unwrap();
        // Flatten and find params.
        fn params(e: &Expr, out: &mut Vec<usize>) {
            match e {
                Expr::Param(i) => out.push(*i),
                Expr::Binary { lhs, rhs, .. } => {
                    params(lhs, out);
                    params(rhs, out);
                }
                Expr::Between { expr, lo, hi } => {
                    params(expr, out);
                    params(lo, out);
                    params(hi, out);
                }
                _ => {}
            }
        }
        let mut got = Vec::new();
        params(&w, &mut got);
        assert_eq!(got, vec![0, 1, 2, 3]);
        assert_eq!(count_params("SELECT * FROM t WHERE a=? AND b=?").unwrap(), 2);
    }

    #[test]
    fn aggregates() {
        let s = sel("SELECT COUNT(*), MAX(bid), AVG(qty) FROM bids");
        assert_eq!(s.items.len(), 3);
        assert!(matches!(
            s.items[0],
            SelectItem::Expr { expr: Expr::Agg { func: AggFunc::Count, col: None }, .. }
        ));
        assert!(matches!(
            s.items[1],
            SelectItem::Expr { expr: Expr::Agg { func: AggFunc::Max, .. }, .. }
        ));
    }

    #[test]
    fn table_star_and_aliases() {
        let s = sel("SELECT i.*, u.nickname seller FROM items i JOIN users u ON i.seller = u.id");
        assert!(matches!(&s.items[0], SelectItem::TableStar(t) if t == "i"));
        assert!(matches!(&s.items[1], SelectItem::Expr { alias: Some(a), .. } if a == "seller"));
    }

    #[test]
    fn predicates() {
        let s = sel("SELECT * FROM t WHERE a LIKE '%x%' AND b NOT LIKE 'y%' AND c IN (1,2,3) AND d IS NOT NULL AND NOT e = 1 AND f BETWEEN 1 AND 5");
        assert!(s.where_clause.is_some());
    }

    #[test]
    fn arithmetic_precedence() {
        let s = sel("SELECT a + b * 2 FROM t");
        let SelectItem::Expr { expr, .. } = &s.items[0] else { panic!() };
        // a + (b * 2)
        let Expr::Binary { op: BinOp::Add, rhs, .. } = expr else {
            panic!("expected Add at top: {expr:?}")
        };
        assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn insert_forms() {
        let Stmt::Insert(i) = parse("INSERT INTO users (id, nick) VALUES (NULL, 'bob')").unwrap()
        else {
            panic!()
        };
        assert_eq!(i.table, "users");
        assert_eq!(i.columns.as_ref().unwrap().len(), 2);
        assert_eq!(i.values.len(), 2);
        assert!(matches!(i.values[0], Expr::Lit(Value::Null)));

        let Stmt::Insert(i) = parse("INSERT INTO t VALUES (?, ?, 3.5)").unwrap() else { panic!() };
        assert!(i.columns.is_none());
        assert_eq!(i.values.len(), 3);
    }

    #[test]
    fn update_and_delete() {
        let Stmt::Update(u) =
            parse("UPDATE items SET qty = qty - 1, price = ? WHERE id = ?").unwrap()
        else {
            panic!()
        };
        assert_eq!(u.sets.len(), 2);
        assert_eq!(u.sets[0].0, "qty");
        assert!(u.where_clause.is_some());

        let Stmt::Delete(d) = parse("DELETE FROM cart WHERE session = ?").unwrap() else {
            panic!()
        };
        assert_eq!(d.table, "cart");
    }

    #[test]
    fn lock_unlock() {
        let Stmt::LockTables(l) = parse("LOCK TABLES items WRITE, users READ").unwrap() else {
            panic!()
        };
        assert_eq!(
            l,
            vec![
                ("items".to_string(), TableLockKind::Write),
                ("users".to_string(), TableLockKind::Read)
            ]
        );
        assert_eq!(parse("UNLOCK TABLES").unwrap(), Stmt::UnlockTables);
    }

    #[test]
    fn negative_numbers_and_parens() {
        let s = sel("SELECT * FROM t WHERE a > -5 AND (b = 1 OR c = 2)");
        assert!(s.where_clause.is_some());
    }

    #[test]
    fn trailing_semicolon_ok_trailing_garbage_not() {
        assert!(parse("SELECT * FROM t;").is_ok());
        assert!(parse("SELECT * FROM t garbage garbage").is_err());
        assert!(parse("SELECT * FROM t; SELECT * FROM u").is_err());
    }

    #[test]
    fn error_offsets_point_at_problem() {
        let err = parse("SELECT FROM t").unwrap_err();
        let SqlError::Parse { offset, .. } = err else { panic!() };
        assert_eq!(offset, 7);
    }

    #[test]
    fn keyword_cannot_be_table() {
        assert!(parse("SELECT * FROM select").is_err());
    }

    #[test]
    fn count_params_counts() {
        assert_eq!(count_params("UPDATE t SET a=? WHERE b=?").unwrap(), 2);
        assert_eq!(count_params("SELECT 1 FROM t").unwrap(), 0);
    }
}
