//! Row storage with primary-key and secondary B-tree indexes.

use crate::error::{SqlError, SqlResult};
use crate::schema::TableSchema;
use crate::value::{Istr, Value};
use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;
use std::sync::Arc;

/// Identifies a row slot within one table. Stable for the row's lifetime;
/// slots of deleted rows are reused.
pub type RowId = usize;

/// Per-table string interner: one canonical `Arc<Istr>` per distinct byte
/// string, bucketed by the cached FNV-1a hash. Interning at insert/update
/// time means equal strings across rows share one allocation, so the
/// `Arc::ptr_eq` fast paths in `Value::cmp`/`Value::eq` fire on index
/// probes and join keys instead of falling back to byte scans.
///
/// Buckets are keyed by the cached hash directly (rather than wrapping a
/// `HashMap<Arc<Istr>, _>`) because lookups start from an already-hashed
/// `Istr`; no hasher runs during interning.
#[derive(Debug, Default)]
struct StrInterner {
    buckets: HashMap<u64, Arc<Istr>>,
}

/// The interner is a sharing cache, not table state (`PartialEq` for
/// `Table` already ignores it), and for a populated table its bucket map
/// is as big as an index. Cloning it would make the copy-on-write table
/// fork — the hot path under per-point experiment forks — pay for a
/// structure the clone can rebuild lazily, so a cloned interner starts
/// empty. Existing rows keep their shared `Arc`s; only post-clone inserts
/// re-establish sharing as they go.
impl Clone for StrInterner {
    fn clone(&self) -> StrInterner {
        StrInterner::default()
    }
}

impl StrInterner {
    /// Canonicalizes a string value in place; non-strings pass through.
    ///
    /// One canonical entry per 64-bit hash: on the (astronomically rare)
    /// collision of two distinct strings, the later one simply keeps its
    /// own allocation — interning is best-effort sharing, never identity,
    /// so correctness only ever rests on `Value`'s byte-level equality.
    fn intern(&mut self, v: &mut Value) {
        let Value::Str(s) = v else { return };
        match self.buckets.entry(s.cached_hash()) {
            Entry::Occupied(e) => {
                if e.get().as_str() == s.as_str() {
                    *s = Arc::clone(e.get());
                }
            }
            Entry::Vacant(e) => {
                e.insert(Arc::clone(s));
            }
        }
    }
}

/// Sentinel for an unoccupied dense primary-key slot.
const PK_NONE: RowId = RowId::MAX;

/// The primary-key index.
///
/// Every benchmark table keys on a dense auto-increment integer, so the
/// default representation is a direct-map vector (`slots[key - base]` is
/// the row id): O(1) probes instead of a B-tree descent, and — what the
/// copy-on-write table fork cares about — a clone that is one `memcpy`
/// instead of a node-by-node tree rebuild. String keys, or integer keys
/// that go sparse (span > 4·len + 1024), demote the index to a `BTreeMap`
/// permanently.
///
/// Ordering-sensitive callers (`range`, `pairs`) see the exact sequence
/// the B-tree would produce: dense keys are all `Value::Int`, and
/// ascending offset IS ascending `Value::cmp` order; range bounds are
/// resolved by binary search with `Value::cmp` itself, so cross-type
/// bounds (floats, strings) behave identically in both representations.
#[derive(Debug, Clone)]
enum PkIndex {
    /// `slots[k - base]` holds the row id for integer key `k`.
    Dense {
        base: i64,
        slots: Vec<RowId>,
        len: usize,
    },
    Sparse(BTreeMap<Value, RowId>),
}

impl Default for PkIndex {
    fn default() -> Self {
        PkIndex::Dense { base: 0, slots: Vec::new(), len: 0 }
    }
}

impl PkIndex {
    fn len(&self) -> usize {
        match self {
            PkIndex::Dense { len, .. } => *len,
            PkIndex::Sparse(m) => m.len(),
        }
    }

    fn get(&self, key: &Value) -> Option<RowId> {
        match self {
            PkIndex::Dense { base, slots, .. } => {
                let k = key.as_int()?;
                let off = usize::try_from(k.checked_sub(*base)?).ok()?;
                match slots.get(off) {
                    Some(&rid) if rid != PK_NONE => Some(rid),
                    _ => None,
                }
            }
            PkIndex::Sparse(m) => m.get(key).copied(),
        }
    }

    fn contains(&self, key: &Value) -> bool {
        self.get(key).is_some()
    }

    /// `true` when a dense vector spanning `span` slots for `n` keys is
    /// still an acceptable trade of memory for probe speed.
    fn density_ok(span: usize, n: usize) -> bool {
        span <= n.saturating_mul(4) + 1024
    }

    /// Inserts `key -> rid`. The caller has already rejected duplicates.
    fn insert(&mut self, key: Value, rid: RowId) {
        if let PkIndex::Dense { base, slots, len } = self {
            let Some(k) = key.as_int() else {
                self.demote().insert(key, rid);
                return;
            };
            if slots.is_empty() {
                *base = k;
                slots.push(rid);
                *len = 1;
                return;
            }
            match k.checked_sub(*base) {
                Some(off) if off >= 0 => {
                    let off = off as usize;
                    if off < slots.len() {
                        debug_assert_eq!(slots[off], PK_NONE, "duplicate pk slot");
                        slots[off] = rid;
                        *len += 1;
                    } else if Self::density_ok(off + 1, *len + 1) {
                        slots.resize(off + 1, PK_NONE);
                        slots[off] = rid;
                        *len += 1;
                    } else {
                        self.demote().insert(Value::Int(k), rid);
                    }
                }
                Some(neg_off) => {
                    // Key below the base: shift the map down (rare — keys
                    // from auto-increment only ever ascend).
                    let shift = neg_off.unsigned_abs() as usize;
                    if Self::density_ok(slots.len() + shift, *len + 1) {
                        slots.splice(0..0, std::iter::repeat_n(PK_NONE, shift));
                        slots[0] = rid;
                        *base = k;
                        *len += 1;
                    } else {
                        self.demote().insert(Value::Int(k), rid);
                    }
                }
                None => {
                    self.demote().insert(Value::Int(k), rid);
                }
            }
            return;
        }
        let PkIndex::Sparse(m) = self else { unreachable!() };
        m.insert(key, rid);
    }

    fn remove(&mut self, key: &Value) {
        match self {
            PkIndex::Dense { base, slots, len } => {
                let Some(off) = key
                    .as_int()
                    .and_then(|k| k.checked_sub(*base))
                    .and_then(|o| usize::try_from(o).ok())
                else {
                    return;
                };
                if let Some(slot) = slots.get_mut(off) {
                    if *slot != PK_NONE {
                        *slot = PK_NONE;
                        *len -= 1;
                    }
                }
            }
            PkIndex::Sparse(m) => {
                m.remove(key);
            }
        }
    }

    /// Rebuilds as a B-tree and returns it for the pending insert.
    fn demote(&mut self) -> &mut Self {
        if let PkIndex::Dense { base, slots, .. } = self {
            let map: BTreeMap<Value, RowId> = slots
                .iter()
                .enumerate()
                .filter(|(_, rid)| **rid != PK_NONE)
                .map(|(off, rid)| (Value::Int(*base + off as i64), *rid))
                .collect();
            *self = PkIndex::Sparse(map);
        }
        self
    }

    /// First dense offset whose key satisfies `keep` (a monotone predicate
    /// under `Value::cmp`, which ascending offsets follow).
    fn dense_boundary(base: i64, n: usize, keep: impl Fn(&Value) -> bool) -> usize {
        let (mut lo, mut hi) = (0usize, n);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if keep(&Value::Int(base + mid as i64)) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo
    }

    /// Row ids with keys inside the bounds, in ascending key order —
    /// byte-identical to what `BTreeMap::range` over the same pairs yields.
    fn range(&self, lo: Bound<&Value>, hi: Bound<&Value>) -> Vec<RowId> {
        match self {
            PkIndex::Dense { base, slots, .. } => {
                let start = match lo {
                    Bound::Unbounded => 0,
                    Bound::Included(b) => {
                        Self::dense_boundary(*base, slots.len(), |k| k.cmp(b).is_ge())
                    }
                    Bound::Excluded(b) => {
                        Self::dense_boundary(*base, slots.len(), |k| k.cmp(b).is_gt())
                    }
                };
                let end = match hi {
                    Bound::Unbounded => slots.len(),
                    Bound::Included(b) => {
                        Self::dense_boundary(*base, slots.len(), |k| k.cmp(b).is_gt())
                    }
                    Bound::Excluded(b) => {
                        Self::dense_boundary(*base, slots.len(), |k| k.cmp(b).is_ge())
                    }
                };
                slots[start..end.max(start)].iter().copied().filter(|r| *r != PK_NONE).collect()
            }
            PkIndex::Sparse(m) => m.range((lo, hi)).map(|(_, r)| *r).collect(),
        }
    }

    /// `(key, rid)` pairs in ascending key order (equality and diagnostics;
    /// dense keys are synthesized, sparse keys cloned).
    fn pairs(&self) -> Box<dyn Iterator<Item = (Value, RowId)> + '_> {
        match self {
            PkIndex::Dense { base, slots, .. } => Box::new(
                slots
                    .iter()
                    .enumerate()
                    .filter(|(_, rid)| **rid != PK_NONE)
                    .map(move |(off, rid)| (Value::Int(*base + off as i64), *rid)),
            ),
            PkIndex::Sparse(m) => Box::new(m.iter().map(|(k, r)| (k.clone(), *r))),
        }
    }
}

/// Representation-independent equality: the same key→rid mapping compares
/// equal whether it lives in a dense vector or a demoted B-tree.
impl PartialEq for PkIndex {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.pairs().eq(other.pairs())
    }
}

/// A stored table: schema, row slots, and indexes.
///
/// Rows live in a single flat cell arena (`cells`, stride = column count)
/// with a parallel liveness mask, rather than one `Vec<Value>` allocation
/// per row. Inserting into a reused slot overwrites cells in place, and
/// reading a row is a slice borrow — no per-row boxing anywhere on the
/// scan, lookup, or undo paths.
///
/// ```
/// use dynamid_sqldb::{Table, TableSchema, ColumnType, Value};
/// let schema = TableSchema::builder("users")
///     .column("id", ColumnType::Int)
///     .column("nickname", ColumnType::Str)
///     .primary_key("id")
///     .auto_increment()
///     .index("nickname")
///     .build()
///     .unwrap();
/// let mut t = Table::new(schema);
/// let (rid, id) = t.insert(vec![Value::Null, Value::str("bob")]).unwrap();
/// assert_eq!(id, Some(1));
/// assert_eq!(t.get(rid).unwrap()[1], Value::str("bob"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    schema: TableSchema,
    /// Row cells, `width` per slot. Dead slots keep their last values
    /// (excluded from equality) until the slot is reused.
    cells: Vec<Value>,
    /// Cells per row (= number of schema columns).
    width: usize,
    /// Parallel to slots: `true` while the slot holds a live row.
    live_mask: Vec<bool>,
    live: usize,
    free: Vec<RowId>,
    pk_index: PkIndex,
    /// Parallel to `schema.indexes()`: one B-tree per secondary index.
    sec: Vec<BTreeMap<Value, Vec<RowId>>>,
    next_auto: i64,
    interner: StrInterner,
}

/// Equality compares logical content: schema, slot layout, live rows,
/// free list, indexes, and the auto counter. The interner and the garbage
/// cells of dead slots are deliberately excluded — they are caches whose
/// contents depend on mutation history, not on the data.
impl PartialEq for Table {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema
            && self.live == other.live
            && self.next_auto == other.next_auto
            && self.live_mask == other.live_mask
            && self.free == other.free
            && self.pk_index == other.pk_index
            && self.sec == other.sec
            && self
                .live_mask
                .iter()
                .enumerate()
                .filter(|(_, l)| **l)
                .all(|(rid, _)| self.get(rid) == other.get(rid))
    }
}

impl Table {
    /// Creates an empty table for the schema.
    pub fn new(schema: TableSchema) -> Self {
        let sec = schema.indexes().iter().map(|_| BTreeMap::new()).collect();
        let width = schema.columns().len();
        Table {
            schema,
            cells: Vec::new(),
            width,
            live_mask: Vec::new(),
            live: 0,
            free: Vec::new(),
            pk_index: PkIndex::default(),
            sec,
            next_auto: 1,
            interner: StrInterner::default(),
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Number of live rows.
    pub fn row_count(&self) -> usize {
        self.live
    }

    /// Pre-sizes the cell arena and liveness mask for `additional` upcoming
    /// inserts. Purely an allocation hint — bulk loaders (benchmark
    /// population) use it to skip doubling-growth copies of a
    /// multi-megabyte arena.
    pub fn reserve(&mut self, additional: usize) {
        self.cells.reserve(additional * self.width.max(1));
        self.live_mask.reserve(additional);
    }

    /// Inserts a row (values in schema column order). For an auto-increment
    /// table, pass `Value::Null` as the key to have one assigned. Returns
    /// the row id and the auto-assigned key, if any.
    ///
    /// # Errors
    ///
    /// Fails on arity/type/nullability violations or a duplicate primary
    /// key.
    pub fn insert(&mut self, mut row: Vec<Value>) -> SqlResult<(RowId, Option<i64>)> {
        let mut assigned = None;
        if let Some(pk) = self.schema.primary_key() {
            if self.schema.is_auto_increment() && row.get(pk).is_some_and(Value::is_null) {
                let id = self.next_auto;
                self.next_auto += 1;
                row[pk] = Value::Int(id);
                assigned = Some(id);
            }
        }
        self.schema.check_row(&row)?;
        if let Some(pk) = self.schema.primary_key() {
            if self.pk_index.contains(&row[pk]) {
                return Err(SqlError::DuplicateKey(format!(
                    "{}={}",
                    self.schema.columns()[pk].name(),
                    row[pk]
                )));
            }
            // Keep the auto counter ahead of explicit keys.
            if self.schema.is_auto_increment() {
                if let Some(k) = row[pk].as_int() {
                    self.next_auto = self.next_auto.max(k + 1);
                }
            }
        }
        for v in &mut row {
            self.interner.intern(v);
        }
        let rid = match self.free.pop() {
            Some(slot) => {
                for (cell, v) in self.cells[slot * self.width..].iter_mut().zip(row) {
                    *cell = v;
                }
                self.live_mask[slot] = true;
                slot
            }
            None => {
                self.cells.extend(row);
                self.live_mask.push(true);
                self.live_mask.len() - 1
            }
        };
        self.live += 1;
        self.index_insert(rid);
        Ok((rid, assigned))
    }

    /// The row at `rid`, if live.
    pub fn get(&self, rid: RowId) -> Option<&[Value]> {
        if !self.live_mask.get(rid).copied().unwrap_or(false) {
            return None;
        }
        Some(&self.cells[rid * self.width..(rid + 1) * self.width])
    }

    /// Replaces the row at `rid`, maintaining all indexes.
    ///
    /// # Errors
    ///
    /// Fails if the row id is dead, the new row violates the schema, or the
    /// new primary key duplicates another row's.
    pub fn update(&mut self, rid: RowId, mut new_row: Vec<Value>) -> SqlResult<()> {
        self.schema.check_row(&new_row)?;
        let Some(old) = self.get(rid) else {
            return Err(SqlError::Constraint(format!("no row {rid}")));
        };
        if let Some(pk) = self.schema.primary_key() {
            if old[pk] != new_row[pk] && self.pk_index.contains(&new_row[pk]) {
                return Err(SqlError::DuplicateKey(format!(
                    "{}={}",
                    self.schema.columns()[pk].name(),
                    new_row[pk]
                )));
            }
        }
        for v in &mut new_row {
            self.interner.intern(v);
        }
        self.index_remove(rid);
        for (cell, v) in self.cells[rid * self.width..].iter_mut().zip(new_row) {
            *cell = v;
        }
        self.index_insert(rid);
        Ok(())
    }

    /// Deletes the row at `rid`.
    ///
    /// # Errors
    ///
    /// Fails if the row id is dead.
    pub fn delete(&mut self, rid: RowId) -> SqlResult<Vec<Value>> {
        if self.get(rid).is_none() {
            return Err(SqlError::Constraint(format!("no row {rid}")));
        }
        self.index_remove(rid);
        let row = self.cells[rid * self.width..(rid + 1) * self.width]
            .iter_mut()
            .map(|cell| std::mem::replace(cell, Value::Null))
            .collect();
        self.live_mask[rid] = false;
        self.free.push(rid);
        self.live -= 1;
        Ok(row)
    }

    /// Iterates live rows in slot order.
    pub fn scan(&self) -> impl Iterator<Item = (RowId, &[Value])> + '_ {
        self.live_mask
            .iter()
            .enumerate()
            .filter(|(_, live)| **live)
            .map(move |(rid, _)| (rid, &self.cells[rid * self.width..(rid + 1) * self.width]))
    }

    /// Looks up a row by primary key.
    pub fn pk_lookup(&self, key: &Value) -> Option<RowId> {
        self.pk_index.get(key)
    }

    /// `true` when lookups on this column can use an index (primary or
    /// secondary).
    pub fn has_index_on(&self, col: usize) -> bool {
        self.schema.primary_key() == Some(col) || self.schema.indexes().contains(&col)
    }

    /// Row ids matching `key` on column `col`, using an index.
    ///
    /// # Panics
    ///
    /// Panics if the column is not indexed; callers check
    /// [`has_index_on`](Self::has_index_on) first (the planner does).
    pub fn index_lookup(&self, col: usize, key: &Value) -> Vec<RowId> {
        if self.schema.primary_key() == Some(col) {
            return self.pk_lookup(key).into_iter().collect();
        }
        let slot = self.secondary_slot(col);
        self.sec[slot].get(key).cloned().unwrap_or_default()
    }

    /// Row ids with column `col` in the given bounds, in key order, using an
    /// index.
    ///
    /// # Panics
    ///
    /// Panics if the column is not indexed.
    pub fn index_range(&self, col: usize, lo: Bound<&Value>, hi: Bound<&Value>) -> Vec<RowId> {
        if self.schema.primary_key() == Some(col) {
            return self.pk_index.range(lo, hi);
        }
        let slot = self.secondary_slot(col);
        self.sec[slot].range((lo, hi)).flat_map(|(_, rids)| rids.iter().copied()).collect()
    }

    /// Iterates the distinct keys of the index on `col` with their row ids,
    /// in key order. Primary-key entries yield one-element slices; secondary
    /// entries yield ids in insertion order, exactly as
    /// [`index_lookup`](Self::index_lookup) would return them. The hash-join
    /// build side uses this to snapshot an index in one pass instead of one
    /// B-tree probe per outer row.
    ///
    /// # Panics
    ///
    /// Panics if the column is not indexed.
    pub fn index_groups(&self, col: usize) -> Box<dyn Iterator<Item = (&Value, &[RowId])> + '_> {
        if self.schema.primary_key() == Some(col) {
            match &self.pk_index {
                // Ascending offset is ascending key order; the key `Value`
                // is borrowed from the row's own pk cell.
                PkIndex::Dense { slots, .. } => {
                    Box::new(slots.iter().filter(|rid| **rid != PK_NONE).map(move |rid| {
                        (&self.cells[*rid * self.width + col], std::slice::from_ref(rid))
                    }))
                }
                PkIndex::Sparse(m) => {
                    Box::new(m.iter().map(|(k, rid)| (k, std::slice::from_ref(rid))))
                }
            }
        } else {
            let slot = self.secondary_slot(col);
            Box::new(self.sec[slot].iter().map(|(k, rids)| (k, rids.as_slice())))
        }
    }

    /// Number of distinct keys in the index on `col` (diagnostics).
    pub fn index_cardinality(&self, col: usize) -> usize {
        if self.schema.primary_key() == Some(col) {
            self.pk_index.len()
        } else {
            self.sec[self.secondary_slot(col)].len()
        }
    }

    /// Current auto-increment counter (undo-log bookkeeping).
    pub(crate) fn next_auto(&self) -> i64 {
        self.next_auto
    }

    /// Number of row slots, live or tombstoned (undo-log bookkeeping).
    pub(crate) fn slot_count(&self) -> usize {
        self.live_mask.len()
    }

    /// Position of `rid` within each secondary-index entry, parallel to
    /// `schema.indexes()`. Captured before an update/delete so undo can
    /// re-insert the id at the same position instead of appending.
    pub(crate) fn sec_positions(&self, rid: RowId) -> Vec<usize> {
        let row = self.get(rid).expect("live row");
        self.schema
            .indexes()
            .iter()
            .enumerate()
            .map(|(slot, col)| {
                self.sec[slot]
                    .get(&row[*col])
                    .and_then(|rids| rids.iter().position(|r| *r == rid))
                    .expect("indexed live row")
            })
            .collect()
    }

    /// Reverses an insert: removes the row and restores the slot arena,
    /// free list, and (if no later insert advanced it) the auto-increment
    /// counter to their pre-insert state.
    pub(crate) fn undo_insert(
        &mut self,
        rid: RowId,
        new_slot: bool,
        prev_next_auto: i64,
        post_next_auto: i64,
    ) {
        if self.live_mask.get(rid).copied().unwrap_or(false) {
            self.index_remove(rid);
            self.live_mask[rid] = false;
            self.live -= 1;
            if new_slot && rid + 1 == self.live_mask.len() {
                self.live_mask.pop();
                self.cells.truncate(rid * self.width);
            } else {
                // The slot came off the top of the free stack; put it back.
                self.free.push(rid);
            }
        }
        // Never reuse ids another (committed) insert may have observed:
        // only rewind when the counter is exactly where this insert left it.
        if self.next_auto == post_next_auto {
            self.next_auto = prev_next_auto;
        }
    }

    /// Reverses an update: restores the pre-image row and re-inserts its
    /// index entries at their original positions.
    ///
    /// Integer columns are compensated (`current + (old - new)`) instead of
    /// restored, so counter-style writes from transactions that committed
    /// after this one (`stock = stock - ?`) survive the unwind; with no
    /// interleaving `current == new` and the result is the exact pre-image.
    ///
    /// Concurrent in-flight transactions also unwind in abort order, not
    /// reverse begin order, so the slot may meanwhile have been tombstoned
    /// (or even popped) by another transaction's insert-undo; restoring the
    /// pre-image then resurrects it as a live row.
    pub(crate) fn undo_update(
        &mut self,
        rid: RowId,
        old_row: Vec<Value>,
        new_row: Vec<Value>,
        sec_pos: &[usize],
    ) {
        self.grow_to(rid);
        let restored: Vec<Value> = match self.get(rid) {
            Some(current) => old_row
                .into_iter()
                .zip(new_row)
                .zip(current.iter())
                .map(|((old, new), cur)| match (&old, &new, cur) {
                    (Value::Int(o), Value::Int(n), Value::Int(c)) => {
                        Value::Int(c.wrapping_add(o.wrapping_sub(*n)))
                    }
                    _ => old,
                })
                .collect(),
            None => old_row,
        };
        if self.live_mask[rid] {
            self.index_remove(rid);
        } else {
            if let Some(pos) = self.free.iter().rposition(|r| *r == rid) {
                self.free.remove(pos);
            }
            self.live += 1;
            self.live_mask[rid] = true;
        }
        for (cell, v) in self.cells[rid * self.width..].iter_mut().zip(restored) {
            *cell = v;
        }
        self.index_insert_at(rid, sec_pos);
    }

    /// Reverses a delete: un-tombstones the slot, removes it from the free
    /// list, and re-inserts its index entries at their original positions.
    /// Tolerates a slot already restored or popped by an interleaved
    /// rollback (see [`undo_update`](Self::undo_update)).
    pub(crate) fn undo_delete(&mut self, rid: RowId, old_row: Vec<Value>, sec_pos: &[usize]) {
        self.grow_to(rid);
        if let Some(pos) = self.free.iter().rposition(|r| *r == rid) {
            self.free.remove(pos);
        }
        if self.live_mask[rid] {
            self.index_remove(rid);
        } else {
            self.live += 1;
            self.live_mask[rid] = true;
        }
        for (cell, v) in self.cells[rid * self.width..].iter_mut().zip(old_row) {
            *cell = v;
        }
        self.index_insert_at(rid, sec_pos);
    }

    /// Ensures slot `rid` exists (as a dead slot) so an undo can restore a
    /// row whose slot was popped by an interleaved insert-undo.
    fn grow_to(&mut self, rid: RowId) {
        if rid >= self.live_mask.len() {
            self.live_mask.resize(rid + 1, false);
            self.cells.resize((rid + 1) * self.width, Value::Null);
        }
    }

    /// Like `index_insert`, but places the row id at a recorded position
    /// within each secondary-index entry instead of appending, so undo
    /// restores the exact pre-mutation index layout.
    fn index_insert_at(&mut self, rid: RowId, sec_pos: &[usize]) {
        let Table { schema, cells, width, pk_index, sec, .. } = self;
        let row = &cells[rid * *width..(rid + 1) * *width];
        if let Some(pk) = schema.primary_key() {
            pk_index.insert(row[pk].clone(), rid);
        }
        for (slot, col) in schema.indexes().iter().enumerate() {
            let rids = sec[slot].entry(row[*col].clone()).or_default();
            let pos = sec_pos.get(slot).copied().unwrap_or(rids.len()).min(rids.len());
            rids.insert(pos, rid);
        }
    }

    fn secondary_slot(&self, col: usize) -> usize {
        self.schema
            .indexes()
            .iter()
            .position(|c| *c == col)
            .unwrap_or_else(|| panic!("column {col} is not indexed"))
    }

    fn index_insert(&mut self, rid: RowId) {
        let Table { schema, cells, width, pk_index, sec, .. } = self;
        let row = &cells[rid * *width..(rid + 1) * *width];
        if let Some(pk) = schema.primary_key() {
            pk_index.insert(row[pk].clone(), rid);
        }
        for (slot, col) in schema.indexes().iter().enumerate() {
            sec[slot].entry(row[*col].clone()).or_default().push(rid);
        }
    }

    fn index_remove(&mut self, rid: RowId) {
        let Table { schema, cells, width, pk_index, sec, .. } = self;
        let row = &cells[rid * *width..(rid + 1) * *width];
        if let Some(pk) = schema.primary_key() {
            pk_index.remove(&row[pk]);
        }
        for (slot, col) in schema.indexes().iter().enumerate() {
            if let Some(rids) = sec[slot].get_mut(&row[*col]) {
                rids.retain(|r| *r != rid);
                if rids.is_empty() {
                    sec[slot].remove(&row[*col]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;

    fn users() -> Table {
        let schema = TableSchema::builder("users")
            .column("id", ColumnType::Int)
            .column("nickname", ColumnType::Str)
            .column("region", ColumnType::Int)
            .primary_key("id")
            .auto_increment()
            .index("nickname")
            .index("region")
            .build()
            .unwrap();
        Table::new(schema)
    }

    fn row(nick: &str, region: i64) -> Vec<Value> {
        vec![Value::Null, Value::str(nick), Value::Int(region)]
    }

    #[test]
    fn auto_increment_assigns_sequential_keys() {
        let mut t = users();
        let (_, a) = t.insert(row("ann", 1)).unwrap();
        let (_, b) = t.insert(row("bob", 2)).unwrap();
        assert_eq!((a, b), (Some(1), Some(2)));
        // Explicit key advances the counter.
        t.insert(vec![Value::Int(10), Value::str("cat"), Value::Int(1)]).unwrap();
        let (_, c) = t.insert(row("dee", 3)).unwrap();
        assert_eq!(c, Some(11));
        assert_eq!(t.row_count(), 4);
    }

    #[test]
    fn duplicate_pk_rejected() {
        let mut t = users();
        t.insert(vec![Value::Int(5), Value::str("a"), Value::Int(1)]).unwrap();
        let err = t.insert(vec![Value::Int(5), Value::str("b"), Value::Int(1)]).unwrap_err();
        assert!(matches!(err, SqlError::DuplicateKey(_)));
    }

    #[test]
    fn pk_and_secondary_lookup() {
        let mut t = users();
        let (r1, _) = t.insert(row("ann", 1)).unwrap();
        let (r2, _) = t.insert(row("bob", 1)).unwrap();
        let (r3, _) = t.insert(row("bob", 2)).unwrap();
        assert_eq!(t.pk_lookup(&Value::Int(1)), Some(r1));
        assert_eq!(t.pk_lookup(&Value::Int(99)), None);
        let mut bobs = t.index_lookup(1, &Value::str("bob"));
        bobs.sort_unstable();
        assert_eq!(bobs, vec![r2, r3]);
        assert_eq!(t.index_lookup(2, &Value::Int(1)).len(), 2);
        assert!(t.has_index_on(0));
        assert!(t.has_index_on(1));
        assert!(!t.has_index_on(999));
    }

    #[test]
    fn index_range_on_pk_and_secondary() {
        let mut t = users();
        for (n, r) in [("a", 1), ("b", 2), ("c", 3), ("d", 4)] {
            t.insert(row(n, r)).unwrap();
        }
        let ids =
            t.index_range(0, Bound::Included(&Value::Int(2)), Bound::Excluded(&Value::Int(4)));
        assert_eq!(ids.len(), 2);
        let regs = t.index_range(2, Bound::Excluded(&Value::Int(2)), Bound::Unbounded);
        assert_eq!(regs.len(), 2);
    }

    #[test]
    fn update_maintains_indexes() {
        let mut t = users();
        let (rid, _) = t.insert(row("ann", 1)).unwrap();
        t.update(rid, vec![Value::Int(1), Value::str("anna"), Value::Int(7)]).unwrap();
        assert!(t.index_lookup(1, &Value::str("ann")).is_empty());
        assert_eq!(t.index_lookup(1, &Value::str("anna")), vec![rid]);
        assert_eq!(t.index_lookup(2, &Value::Int(7)), vec![rid]);
        assert_eq!(t.get(rid).unwrap()[1], Value::str("anna"));
    }

    #[test]
    fn update_pk_change_checked_for_duplicates() {
        let mut t = users();
        let (r1, _) = t.insert(row("a", 1)).unwrap();
        t.insert(row("b", 2)).unwrap();
        let err = t.update(r1, vec![Value::Int(2), Value::str("a"), Value::Int(1)]).unwrap_err();
        assert!(matches!(err, SqlError::DuplicateKey(_)));
        // Changing to a fresh key works and remaps the pk index.
        t.update(r1, vec![Value::Int(9), Value::str("a"), Value::Int(1)]).unwrap();
        assert_eq!(t.pk_lookup(&Value::Int(9)), Some(r1));
        assert_eq!(t.pk_lookup(&Value::Int(1)), None);
    }

    #[test]
    fn delete_frees_slot_and_cleans_indexes() {
        let mut t = users();
        let (r1, _) = t.insert(row("ann", 1)).unwrap();
        let deleted = t.delete(r1).unwrap();
        assert_eq!(deleted[1], Value::str("ann"));
        assert_eq!(t.row_count(), 0);
        assert!(t.get(r1).is_none());
        assert!(t.pk_lookup(&Value::Int(1)).is_none());
        assert!(t.index_lookup(1, &Value::str("ann")).is_empty());
        assert!(t.delete(r1).is_err());
        // Slot reuse.
        let (r2, _) = t.insert(row("bob", 2)).unwrap();
        assert_eq!(r2, r1);
    }

    #[test]
    fn scan_skips_tombstones() {
        let mut t = users();
        let (r1, _) = t.insert(row("a", 1)).unwrap();
        t.insert(row("b", 2)).unwrap();
        t.delete(r1).unwrap();
        let names: Vec<&str> = t.scan().map(|(_, row)| row[1].as_str().unwrap()).collect();
        assert_eq!(names, vec!["b"]);
    }

    #[test]
    fn index_groups_matches_index_lookup() {
        let mut t = users();
        t.insert(row("x", 1)).unwrap();
        t.insert(row("x", 2)).unwrap();
        t.insert(row("y", 2)).unwrap();
        for col in [0, 1, 2] {
            for (key, rids) in t.index_groups(col) {
                assert_eq!(rids, t.index_lookup(col, key).as_slice());
            }
            assert_eq!(t.index_groups(col).count(), t.index_cardinality(col));
        }
    }

    #[test]
    fn cardinality_reporting() {
        let mut t = users();
        t.insert(row("x", 1)).unwrap();
        t.insert(row("x", 2)).unwrap();
        t.insert(row("y", 2)).unwrap();
        assert_eq!(t.index_cardinality(0), 3);
        assert_eq!(t.index_cardinality(1), 2);
        assert_eq!(t.index_cardinality(2), 2);
    }

    #[test]
    fn interner_shares_equal_strings_across_rows() {
        let mut t = users();
        let (r1, _) = t.insert(row("bob", 1)).unwrap();
        let (r2, _) = t.insert(row("bob", 2)).unwrap();
        match (&t.get(r1).unwrap()[1], &t.get(r2).unwrap()[1]) {
            (Value::Str(a), Value::Str(b)) => assert!(Arc::ptr_eq(a, b)),
            other => panic!("expected strings, got {other:?}"),
        }
    }

    #[test]
    fn equality_ignores_interner_history() {
        let mut a = users();
        let mut b = users();
        // Same logical content, different mutation history: each table has
        // interned a string the other never saw, and each carries a dead
        // slot. Equality must look only at live data.
        let (dead_a, _) = a.insert(row("ghost", 9)).unwrap();
        a.insert(row("ann", 1)).unwrap();
        a.delete(dead_a).unwrap();
        let (dead_b, _) = b.insert(row("other", 3)).unwrap();
        b.insert(row("ann", 1)).unwrap();
        b.delete(dead_b).unwrap();
        assert_eq!(a, b);
    }
}
