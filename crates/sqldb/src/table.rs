//! Row storage with primary-key and secondary B-tree indexes.

use crate::error::{SqlError, SqlResult};
use crate::schema::TableSchema;
use crate::value::Value;
use std::collections::BTreeMap;
use std::ops::Bound;

/// Identifies a row slot within one table. Stable for the row's lifetime;
/// slots of deleted rows are reused.
pub type RowId = usize;

/// A stored table: schema, row slots, and indexes.
///
/// ```
/// use dynamid_sqldb::{Table, TableSchema, ColumnType, Value};
/// let schema = TableSchema::builder("users")
///     .column("id", ColumnType::Int)
///     .column("nickname", ColumnType::Str)
///     .primary_key("id")
///     .auto_increment()
///     .index("nickname")
///     .build()
///     .unwrap();
/// let mut t = Table::new(schema);
/// let (rid, id) = t.insert(vec![Value::Null, Value::str("bob")]).unwrap();
/// assert_eq!(id, Some(1));
/// assert_eq!(t.get(rid).unwrap()[1], Value::str("bob"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    schema: TableSchema,
    rows: Vec<Option<Vec<Value>>>,
    live: usize,
    free: Vec<RowId>,
    pk_index: BTreeMap<Value, RowId>,
    /// Parallel to `schema.indexes()`: one B-tree per secondary index.
    sec: Vec<BTreeMap<Value, Vec<RowId>>>,
    next_auto: i64,
}

impl Table {
    /// Creates an empty table for the schema.
    pub fn new(schema: TableSchema) -> Self {
        let sec = schema.indexes().iter().map(|_| BTreeMap::new()).collect();
        Table {
            schema,
            rows: Vec::new(),
            live: 0,
            free: Vec::new(),
            pk_index: BTreeMap::new(),
            sec,
            next_auto: 1,
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Number of live rows.
    pub fn row_count(&self) -> usize {
        self.live
    }

    /// Inserts a row (values in schema column order). For an auto-increment
    /// table, pass `Value::Null` as the key to have one assigned. Returns
    /// the row id and the auto-assigned key, if any.
    ///
    /// # Errors
    ///
    /// Fails on arity/type/nullability violations or a duplicate primary
    /// key.
    pub fn insert(&mut self, mut row: Vec<Value>) -> SqlResult<(RowId, Option<i64>)> {
        let mut assigned = None;
        if let Some(pk) = self.schema.primary_key() {
            if self.schema.is_auto_increment() && row.get(pk).is_some_and(Value::is_null) {
                let id = self.next_auto;
                self.next_auto += 1;
                row[pk] = Value::Int(id);
                assigned = Some(id);
            }
        }
        self.schema.check_row(&row)?;
        if let Some(pk) = self.schema.primary_key() {
            if self.pk_index.contains_key(&row[pk]) {
                return Err(SqlError::DuplicateKey(format!(
                    "{}={}",
                    self.schema.columns()[pk].name(),
                    row[pk]
                )));
            }
            // Keep the auto counter ahead of explicit keys.
            if self.schema.is_auto_increment() {
                if let Some(k) = row[pk].as_int() {
                    self.next_auto = self.next_auto.max(k + 1);
                }
            }
        }
        let rid = match self.free.pop() {
            Some(slot) => {
                self.rows[slot] = Some(row);
                slot
            }
            None => {
                self.rows.push(Some(row));
                self.rows.len() - 1
            }
        };
        self.live += 1;
        self.index_insert(rid);
        Ok((rid, assigned))
    }

    /// The row at `rid`, if live.
    pub fn get(&self, rid: RowId) -> Option<&[Value]> {
        self.rows.get(rid)?.as_deref()
    }

    /// Replaces the row at `rid`, maintaining all indexes.
    ///
    /// # Errors
    ///
    /// Fails if the row id is dead, the new row violates the schema, or the
    /// new primary key duplicates another row's.
    pub fn update(&mut self, rid: RowId, new_row: Vec<Value>) -> SqlResult<()> {
        self.schema.check_row(&new_row)?;
        let Some(Some(old)) = self.rows.get(rid) else {
            return Err(SqlError::Constraint(format!("no row {rid}")));
        };
        if let Some(pk) = self.schema.primary_key() {
            if old[pk] != new_row[pk] && self.pk_index.contains_key(&new_row[pk]) {
                return Err(SqlError::DuplicateKey(format!(
                    "{}={}",
                    self.schema.columns()[pk].name(),
                    new_row[pk]
                )));
            }
        }
        self.index_remove(rid);
        self.rows[rid] = Some(new_row);
        self.index_insert(rid);
        Ok(())
    }

    /// Deletes the row at `rid`.
    ///
    /// # Errors
    ///
    /// Fails if the row id is dead.
    pub fn delete(&mut self, rid: RowId) -> SqlResult<Vec<Value>> {
        if self.get(rid).is_none() {
            return Err(SqlError::Constraint(format!("no row {rid}")));
        }
        self.index_remove(rid);
        let row = self.rows[rid].take().expect("checked live");
        self.free.push(rid);
        self.live -= 1;
        Ok(row)
    }

    /// Iterates live rows in slot order.
    pub fn scan(&self) -> impl Iterator<Item = (RowId, &[Value])> + '_ {
        self.rows.iter().enumerate().filter_map(|(rid, r)| r.as_deref().map(|row| (rid, row)))
    }

    /// Looks up a row by primary key.
    pub fn pk_lookup(&self, key: &Value) -> Option<RowId> {
        self.pk_index.get(key).copied()
    }

    /// `true` when lookups on this column can use an index (primary or
    /// secondary).
    pub fn has_index_on(&self, col: usize) -> bool {
        self.schema.primary_key() == Some(col) || self.schema.indexes().contains(&col)
    }

    /// Row ids matching `key` on column `col`, using an index.
    ///
    /// # Panics
    ///
    /// Panics if the column is not indexed; callers check
    /// [`has_index_on`](Self::has_index_on) first (the planner does).
    pub fn index_lookup(&self, col: usize, key: &Value) -> Vec<RowId> {
        if self.schema.primary_key() == Some(col) {
            return self.pk_lookup(key).into_iter().collect();
        }
        let slot = self.secondary_slot(col);
        self.sec[slot].get(key).cloned().unwrap_or_default()
    }

    /// Row ids with column `col` in the given bounds, in key order, using an
    /// index.
    ///
    /// # Panics
    ///
    /// Panics if the column is not indexed.
    pub fn index_range(&self, col: usize, lo: Bound<&Value>, hi: Bound<&Value>) -> Vec<RowId> {
        if self.schema.primary_key() == Some(col) {
            return self.pk_index.range((lo, hi)).map(|(_, r)| *r).collect();
        }
        let slot = self.secondary_slot(col);
        self.sec[slot].range((lo, hi)).flat_map(|(_, rids)| rids.iter().copied()).collect()
    }

    /// Iterates the distinct keys of the index on `col` with their row ids,
    /// in key order. Primary-key entries yield one-element slices; secondary
    /// entries yield ids in insertion order, exactly as
    /// [`index_lookup`](Self::index_lookup) would return them. The hash-join
    /// build side uses this to snapshot an index in one pass instead of one
    /// B-tree probe per outer row.
    ///
    /// # Panics
    ///
    /// Panics if the column is not indexed.
    pub fn index_groups(&self, col: usize) -> Box<dyn Iterator<Item = (&Value, &[RowId])> + '_> {
        if self.schema.primary_key() == Some(col) {
            Box::new(self.pk_index.iter().map(|(k, rid)| (k, std::slice::from_ref(rid))))
        } else {
            let slot = self.secondary_slot(col);
            Box::new(self.sec[slot].iter().map(|(k, rids)| (k, rids.as_slice())))
        }
    }

    /// Number of distinct keys in the index on `col` (diagnostics).
    pub fn index_cardinality(&self, col: usize) -> usize {
        if self.schema.primary_key() == Some(col) {
            self.pk_index.len()
        } else {
            self.sec[self.secondary_slot(col)].len()
        }
    }

    /// Current auto-increment counter (undo-log bookkeeping).
    pub(crate) fn next_auto(&self) -> i64 {
        self.next_auto
    }

    /// Number of row slots, live or tombstoned (undo-log bookkeeping).
    pub(crate) fn slot_count(&self) -> usize {
        self.rows.len()
    }

    /// Position of `rid` within each secondary-index entry, parallel to
    /// `schema.indexes()`. Captured before an update/delete so undo can
    /// re-insert the id at the same position instead of appending.
    pub(crate) fn sec_positions(&self, rid: RowId) -> Vec<usize> {
        let row = self.rows[rid].as_ref().expect("live row");
        self.schema
            .indexes()
            .iter()
            .enumerate()
            .map(|(slot, col)| {
                self.sec[slot]
                    .get(&row[*col])
                    .and_then(|rids| rids.iter().position(|r| *r == rid))
                    .expect("indexed live row")
            })
            .collect()
    }

    /// Reverses an insert: removes the row and restores the slot vector,
    /// free list, and (if no later insert advanced it) the auto-increment
    /// counter to their pre-insert state.
    pub(crate) fn undo_insert(
        &mut self,
        rid: RowId,
        new_slot: bool,
        prev_next_auto: i64,
        post_next_auto: i64,
    ) {
        if self.rows.get(rid).is_some_and(Option::is_some) {
            self.index_remove(rid);
            self.rows[rid] = None;
            self.live -= 1;
            if new_slot && rid + 1 == self.rows.len() {
                self.rows.pop();
            } else {
                // The slot came off the top of the free stack; put it back.
                self.free.push(rid);
            }
        }
        // Never reuse ids another (committed) insert may have observed:
        // only rewind when the counter is exactly where this insert left it.
        if self.next_auto == post_next_auto {
            self.next_auto = prev_next_auto;
        }
    }

    /// Reverses an update: restores the pre-image row and re-inserts its
    /// index entries at their original positions.
    ///
    /// Integer columns are compensated (`current + (old - new)`) instead of
    /// restored, so counter-style writes from transactions that committed
    /// after this one (`stock = stock - ?`) survive the unwind; with no
    /// interleaving `current == new` and the result is the exact pre-image.
    ///
    /// Concurrent in-flight transactions also unwind in abort order, not
    /// reverse begin order, so the slot may meanwhile have been tombstoned
    /// (or even popped) by another transaction's insert-undo; restoring the
    /// pre-image then resurrects it as a live row.
    pub(crate) fn undo_update(
        &mut self,
        rid: RowId,
        old_row: Vec<Value>,
        new_row: Vec<Value>,
        sec_pos: &[usize],
    ) {
        if rid >= self.rows.len() {
            self.rows.resize_with(rid + 1, || None);
        }
        let restored = match &self.rows[rid] {
            Some(current) => old_row
                .into_iter()
                .zip(new_row)
                .zip(current.iter())
                .map(|((old, new), cur)| match (&old, &new, cur) {
                    (Value::Int(o), Value::Int(n), Value::Int(c)) => {
                        Value::Int(c.wrapping_add(o.wrapping_sub(*n)))
                    }
                    _ => old,
                })
                .collect(),
            None => old_row,
        };
        if self.rows[rid].is_some() {
            self.index_remove(rid);
        } else {
            if let Some(pos) = self.free.iter().rposition(|r| *r == rid) {
                self.free.remove(pos);
            }
            self.live += 1;
        }
        self.rows[rid] = Some(restored);
        self.index_insert_at(rid, sec_pos);
    }

    /// Reverses a delete: un-tombstones the slot, removes it from the free
    /// list, and re-inserts its index entries at their original positions.
    /// Tolerates a slot already restored or popped by an interleaved
    /// rollback (see [`undo_update`](Self::undo_update)).
    pub(crate) fn undo_delete(&mut self, rid: RowId, old_row: Vec<Value>, sec_pos: &[usize]) {
        if rid >= self.rows.len() {
            self.rows.resize_with(rid + 1, || None);
        }
        if let Some(pos) = self.free.iter().rposition(|r| *r == rid) {
            self.free.remove(pos);
        }
        if self.rows[rid].is_some() {
            self.index_remove(rid);
        } else {
            self.live += 1;
        }
        self.rows[rid] = Some(old_row);
        self.index_insert_at(rid, sec_pos);
    }

    /// Like `index_insert`, but places the row id at a recorded position
    /// within each secondary-index entry instead of appending, so undo
    /// restores the exact pre-mutation index layout.
    fn index_insert_at(&mut self, rid: RowId, sec_pos: &[usize]) {
        let row = self.rows[rid].as_ref().expect("live row");
        if let Some(pk) = self.schema.primary_key() {
            self.pk_index.insert(row[pk].clone(), rid);
        }
        for (slot, col) in self.schema.indexes().to_vec().into_iter().enumerate() {
            let key = self.rows[rid].as_ref().expect("live row")[col].clone();
            let rids = self.sec[slot].entry(key).or_default();
            let pos = sec_pos.get(slot).copied().unwrap_or(rids.len()).min(rids.len());
            rids.insert(pos, rid);
        }
    }

    fn secondary_slot(&self, col: usize) -> usize {
        self.schema
            .indexes()
            .iter()
            .position(|c| *c == col)
            .unwrap_or_else(|| panic!("column {col} is not indexed"))
    }

    fn index_insert(&mut self, rid: RowId) {
        let row = self.rows[rid].as_ref().expect("live row");
        if let Some(pk) = self.schema.primary_key() {
            self.pk_index.insert(row[pk].clone(), rid);
        }
        for (slot, col) in self.schema.indexes().to_vec().into_iter().enumerate() {
            let key = row[col].clone();
            self.sec[slot].entry(key).or_default().push(rid);
        }
    }

    fn index_remove(&mut self, rid: RowId) {
        let row = self.rows[rid].as_ref().expect("live row").clone();
        if let Some(pk) = self.schema.primary_key() {
            self.pk_index.remove(&row[pk]);
        }
        for (slot, col) in self.schema.indexes().to_vec().into_iter().enumerate() {
            if let Some(rids) = self.sec[slot].get_mut(&row[col]) {
                rids.retain(|r| *r != rid);
                if rids.is_empty() {
                    self.sec[slot].remove(&row[col]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;

    fn users() -> Table {
        let schema = TableSchema::builder("users")
            .column("id", ColumnType::Int)
            .column("nickname", ColumnType::Str)
            .column("region", ColumnType::Int)
            .primary_key("id")
            .auto_increment()
            .index("nickname")
            .index("region")
            .build()
            .unwrap();
        Table::new(schema)
    }

    fn row(nick: &str, region: i64) -> Vec<Value> {
        vec![Value::Null, Value::str(nick), Value::Int(region)]
    }

    #[test]
    fn auto_increment_assigns_sequential_keys() {
        let mut t = users();
        let (_, a) = t.insert(row("ann", 1)).unwrap();
        let (_, b) = t.insert(row("bob", 2)).unwrap();
        assert_eq!((a, b), (Some(1), Some(2)));
        // Explicit key advances the counter.
        t.insert(vec![Value::Int(10), Value::str("cat"), Value::Int(1)]).unwrap();
        let (_, c) = t.insert(row("dee", 3)).unwrap();
        assert_eq!(c, Some(11));
        assert_eq!(t.row_count(), 4);
    }

    #[test]
    fn duplicate_pk_rejected() {
        let mut t = users();
        t.insert(vec![Value::Int(5), Value::str("a"), Value::Int(1)]).unwrap();
        let err = t.insert(vec![Value::Int(5), Value::str("b"), Value::Int(1)]).unwrap_err();
        assert!(matches!(err, SqlError::DuplicateKey(_)));
    }

    #[test]
    fn pk_and_secondary_lookup() {
        let mut t = users();
        let (r1, _) = t.insert(row("ann", 1)).unwrap();
        let (r2, _) = t.insert(row("bob", 1)).unwrap();
        let (r3, _) = t.insert(row("bob", 2)).unwrap();
        assert_eq!(t.pk_lookup(&Value::Int(1)), Some(r1));
        assert_eq!(t.pk_lookup(&Value::Int(99)), None);
        let mut bobs = t.index_lookup(1, &Value::str("bob"));
        bobs.sort_unstable();
        assert_eq!(bobs, vec![r2, r3]);
        assert_eq!(t.index_lookup(2, &Value::Int(1)).len(), 2);
        assert!(t.has_index_on(0));
        assert!(t.has_index_on(1));
        assert!(!t.has_index_on(999));
    }

    #[test]
    fn index_range_on_pk_and_secondary() {
        let mut t = users();
        for (n, r) in [("a", 1), ("b", 2), ("c", 3), ("d", 4)] {
            t.insert(row(n, r)).unwrap();
        }
        let ids =
            t.index_range(0, Bound::Included(&Value::Int(2)), Bound::Excluded(&Value::Int(4)));
        assert_eq!(ids.len(), 2);
        let regs = t.index_range(2, Bound::Excluded(&Value::Int(2)), Bound::Unbounded);
        assert_eq!(regs.len(), 2);
    }

    #[test]
    fn update_maintains_indexes() {
        let mut t = users();
        let (rid, _) = t.insert(row("ann", 1)).unwrap();
        t.update(rid, vec![Value::Int(1), Value::str("anna"), Value::Int(7)]).unwrap();
        assert!(t.index_lookup(1, &Value::str("ann")).is_empty());
        assert_eq!(t.index_lookup(1, &Value::str("anna")), vec![rid]);
        assert_eq!(t.index_lookup(2, &Value::Int(7)), vec![rid]);
        assert_eq!(t.get(rid).unwrap()[1], Value::str("anna"));
    }

    #[test]
    fn update_pk_change_checked_for_duplicates() {
        let mut t = users();
        let (r1, _) = t.insert(row("a", 1)).unwrap();
        t.insert(row("b", 2)).unwrap();
        let err = t.update(r1, vec![Value::Int(2), Value::str("a"), Value::Int(1)]).unwrap_err();
        assert!(matches!(err, SqlError::DuplicateKey(_)));
        // Changing to a fresh key works and remaps the pk index.
        t.update(r1, vec![Value::Int(9), Value::str("a"), Value::Int(1)]).unwrap();
        assert_eq!(t.pk_lookup(&Value::Int(9)), Some(r1));
        assert_eq!(t.pk_lookup(&Value::Int(1)), None);
    }

    #[test]
    fn delete_frees_slot_and_cleans_indexes() {
        let mut t = users();
        let (r1, _) = t.insert(row("ann", 1)).unwrap();
        let deleted = t.delete(r1).unwrap();
        assert_eq!(deleted[1], Value::str("ann"));
        assert_eq!(t.row_count(), 0);
        assert!(t.get(r1).is_none());
        assert!(t.pk_lookup(&Value::Int(1)).is_none());
        assert!(t.index_lookup(1, &Value::str("ann")).is_empty());
        assert!(t.delete(r1).is_err());
        // Slot reuse.
        let (r2, _) = t.insert(row("bob", 2)).unwrap();
        assert_eq!(r2, r1);
    }

    #[test]
    fn scan_skips_tombstones() {
        let mut t = users();
        let (r1, _) = t.insert(row("a", 1)).unwrap();
        t.insert(row("b", 2)).unwrap();
        t.delete(r1).unwrap();
        let names: Vec<&str> = t.scan().map(|(_, row)| row[1].as_str().unwrap()).collect();
        assert_eq!(names, vec!["b"]);
    }

    #[test]
    fn index_groups_matches_index_lookup() {
        let mut t = users();
        t.insert(row("x", 1)).unwrap();
        t.insert(row("x", 2)).unwrap();
        t.insert(row("y", 2)).unwrap();
        for col in [0, 1, 2] {
            for (key, rids) in t.index_groups(col) {
                assert_eq!(rids, t.index_lookup(col, key).as_slice());
            }
            assert_eq!(t.index_groups(col).count(), t.index_cardinality(col));
        }
    }

    #[test]
    fn cardinality_reporting() {
        let mut t = users();
        t.insert(row("x", 1)).unwrap();
        t.insert(row("x", 2)).unwrap();
        t.insert(row("y", 2)).unwrap();
        assert_eq!(t.index_cardinality(0), 3);
        assert_eq!(t.index_cardinality(1), 2);
        assert_eq!(t.index_cardinality(2), 2);
    }
}
