//! Analytic cost model: execution counters → CPU microseconds.
//!
//! The simulator charges the database machine's CPU for each statement. The
//! charge derives from what the executor *actually did* — rows examined,
//! index probes, rows sorted, bytes marshalled — so a `BestSellers` scan
//! over 10,000 items is organically ~three orders of magnitude more
//! expensive than a primary-key point read, exactly the asymmetry that makes
//! the bookstore benchmark database-bound in the paper.
//!
//! Constants are calibrated against MySQL 3.23 on the paper's 1.33 GHz
//! Athlon hardware (see EXPERIMENTS.md for the calibration procedure).

/// Counters accumulated while executing one statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryCounters {
    /// Rows visited (scans, index probes, join lookups).
    pub rows_examined: u64,
    /// Rows in the result set.
    pub rows_returned: u64,
    /// Rows inserted, updated, or deleted.
    pub rows_written: u64,
    /// Index probes performed.
    pub index_lookups: u64,
    /// Rows that went through a sort.
    pub sort_rows: u64,
    /// Result-set payload bytes.
    pub bytes_returned: u64,
}

impl QueryCounters {
    /// Merges another statement's counters into this one (for per-request
    /// accounting in the middleware layer).
    pub fn absorb(&mut self, other: &QueryCounters) {
        self.rows_examined += other.rows_examined;
        self.rows_returned += other.rows_returned;
        self.rows_written += other.rows_written;
        self.index_lookups += other.index_lookups;
        self.sort_rows += other.sort_rows;
        self.bytes_returned += other.bytes_returned;
    }
}

/// Per-operation CPU charges, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DbCostModel {
    /// Fixed cost per statement (parse, dispatch, plan).
    pub per_statement: f64,
    /// Per row visited.
    pub per_row_examined: f64,
    /// Per row placed in the result set.
    pub per_row_returned: f64,
    /// Per result byte marshalled.
    pub per_byte_returned: f64,
    /// Per index probe.
    pub per_index_lookup: f64,
    /// Per row written (includes index maintenance).
    pub per_row_written: f64,
    /// Multiplier for `n * log2(n)` sorting work.
    pub sort_factor: f64,
    /// Flat charge for a read answered from the result cache: key hash and
    /// lookup only — no parse, no lock manager, no row access. Modeled on
    /// the MySQL query cache, which answers before the lock manager is
    /// consulted.
    pub result_cache_hit_micros: f64,
}

impl Default for DbCostModel {
    /// Values calibrated for a ~1.33 GHz single-core database server running
    /// an early-2000s MySQL/MyISAM: point reads land around 200–300 µs,
    /// full scans cost ~1.5 µs per row, writes ~500 µs.
    fn default() -> Self {
        DbCostModel {
            per_statement: 250.0,
            per_row_examined: 2.0,
            per_row_returned: 5.0,
            per_byte_returned: 0.02,
            per_index_lookup: 6.0,
            per_row_written: 300.0,
            sort_factor: 0.4,
            result_cache_hit_micros: 20.0,
        }
    }
}

impl DbCostModel {
    /// CPU microseconds for a statement with the given counters.
    pub fn cost_micros(&self, c: &QueryCounters) -> u64 {
        let sort = if c.sort_rows > 1 {
            self.sort_factor * c.sort_rows as f64 * (c.sort_rows as f64).log2()
        } else {
            0.0
        };
        let total = self.per_statement
            + self.per_row_examined * c.rows_examined as f64
            + self.per_row_returned * c.rows_returned as f64
            + self.per_byte_returned * c.bytes_returned as f64
            + self.per_index_lookup * c.index_lookups as f64
            + self.per_row_written * c.rows_written as f64
            + sort;
        total.max(1.0).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_read_is_cheap_scan_is_expensive() {
        let m = DbCostModel::default();
        let point = QueryCounters {
            rows_examined: 1,
            rows_returned: 1,
            index_lookups: 1,
            bytes_returned: 100,
            ..Default::default()
        };
        let scan = QueryCounters {
            rows_examined: 10_000,
            rows_returned: 50,
            sort_rows: 10_000,
            bytes_returned: 5_000,
            ..Default::default()
        };
        let cp = m.cost_micros(&point);
        let cs = m.cost_micros(&scan);
        assert!(cp < 500, "point read too dear: {cp}");
        assert!(cs > 20 * cp, "scan not dear enough: {cs} vs {cp}");
    }

    #[test]
    fn write_costs_more_than_point_read() {
        let m = DbCostModel::default();
        let read = QueryCounters {
            rows_examined: 1,
            rows_returned: 1,
            index_lookups: 1,
            ..Default::default()
        };
        let write = QueryCounters {
            rows_examined: 1,
            rows_written: 1,
            index_lookups: 1,
            ..Default::default()
        };
        assert!(m.cost_micros(&write) > m.cost_micros(&read));
    }

    #[test]
    fn cost_is_at_least_one_microsecond() {
        let m = DbCostModel {
            per_statement: 0.0,
            per_row_examined: 0.0,
            per_row_returned: 0.0,
            per_byte_returned: 0.0,
            per_index_lookup: 0.0,
            per_row_written: 0.0,
            sort_factor: 0.0,
            result_cache_hit_micros: 0.0,
        };
        assert_eq!(m.cost_micros(&QueryCounters::default()), 1);
    }

    #[test]
    fn absorb_sums_fields() {
        let mut a = QueryCounters {
            rows_examined: 1,
            rows_returned: 2,
            rows_written: 3,
            index_lookups: 4,
            sort_rows: 5,
            bytes_returned: 6,
        };
        a.absorb(&a.clone());
        assert_eq!(a.rows_examined, 2);
        assert_eq!(a.bytes_returned, 12);
    }

    #[test]
    fn single_sort_row_is_free() {
        let m = DbCostModel::default();
        let one = QueryCounters { sort_rows: 1, ..Default::default() };
        let none = QueryCounters::default();
        assert_eq!(m.cost_micros(&one), m.cost_micros(&none));
    }
}
