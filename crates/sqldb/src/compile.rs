//! Compile-once query plans.
//!
//! Parsing a statement once and re-running its AST still pays name
//! resolution, access-path selection, and projection planning on *every*
//! call — and the benchmark applications execute the same handful of
//! parameterized statements millions of times per simulated run. This
//! module moves all of that to a one-time compilation step:
//!
//! * column references are resolved to positions in the concatenated
//!   FROM + JOIN row ([`CExpr::Col`] holds a `usize`, not a name);
//! * the access-path *shape* (primary-key equality, secondary-index
//!   equality, index range, or full scan) is chosen from the WHERE
//!   conjuncts with the parameter slots left open ([`CPath`]); binding a
//!   concrete [`AccessPath`] at execute time is a constant-expression
//!   evaluation;
//! * the projection list, GROUP BY column, ORDER BY keys, join columns
//!   (and whether the inner side is indexed), output column names, and the
//!   read/write table sets are all precomputed;
//! * execution is **late-materializing**: the working set is a stream of
//!   [`RowId`] tuples (one id per FROM/JOIN table), values are fetched from
//!   the base tables through a [`RowView`], and rows are cloned only at
//!   projection time. Equality joins run as hash joins when the probe side
//!   is large enough to amortize the build, `ORDER BY … LIMIT` keeps a
//!   bounded top-K heap instead of sorting everything, and GROUP BY folds
//!   aggregate accumulators in a single hash pass.
//!
//! [`Database::execute`](crate::Database::execute) caches one
//! [`CompiledStmt`] per SQL text; a plan records the schema version it was
//! compiled against and is invalidated (recompiled) when DDL bumps the
//! version. The executor here mirrors the AST interpreter in `exec`
//! operation for operation, so [`QueryCounters`] — and therefore the cost
//! model — are byte-identical between the two paths: counters keep the
//! paper's MyISAM nested-index-loop charging no matter which physical
//! strategy runs, so only host wall-clock changes. The unit tests below
//! and `tests/proptests.rs` enforce that equivalence.

use crate::ast::{
    BinOp, ColRef, Expr, InsertStmt, Join, SelectItem, SelectStmt, Stmt, TableLockKind, UpdateStmt,
};
use crate::cost::QueryCounters;
use crate::db::Database;
use crate::error::{SqlError, SqlResult};
use crate::exec::{apply_limit, candidate_rows, compare, expr_name, QueryResult, StatementKind};
use crate::plan::{col_on_table, conjuncts, flip, is_const, AccessPath, OwnedBound};
use crate::table::{RowId, Table};
use crate::value::Value;
use std::cmp::Ordering;
use std::collections::HashMap;

/// A statement compiled against one schema version: names resolved,
/// access-path shape selected, projection planned. Produced and cached by
/// [`Database::execute`](crate::Database::execute); parameter slots stay
/// open, so one plan serves every binding of a parameterized statement.
#[derive(Debug)]
pub struct CompiledStmt {
    /// Schema version the plan was compiled against; a mismatch with the
    /// database's current version invalidates the plan.
    pub(crate) version: u64,
    /// Unique id minted by the database when the plan enters the plan
    /// cache; `(id, parameter values)` keys the result cache. `compile`
    /// leaves it 0 (uncached plans never reach the result cache).
    pub(crate) id: u64,
    kind: CStmt,
}

impl CompiledStmt {
    /// Catalog ids of every table a SELECT plan reads (base first, then
    /// joins, deduplicated); `None` for non-SELECT statements.
    pub(crate) fn read_table_ids(&self) -> Option<Vec<usize>> {
        let CStmt::Select(s) = &self.kind else { return None };
        let mut ids = vec![s.base];
        for j in &s.joins {
            if !ids.contains(&j.table) {
                ids.push(j.table);
            }
        }
        Some(ids)
    }

    /// `Some((table, key))` when the plan is a join-free SELECT whose access
    /// path is an index-equality probe on the base table's primary key —
    /// the shape the result cache invalidates per row instead of per table.
    pub(crate) fn pk_point(&self, db: &Database, params: &[Value]) -> Option<(usize, Value)> {
        let CStmt::Select(s) = &self.kind else { return None };
        if !s.joins.is_empty() {
            return None;
        }
        let CPath::IndexEq { col, key } = &s.path else { return None };
        if db.table_at(s.base).schema().primary_key() != Some(*col) {
            return None;
        }
        ceval(key, None, params).ok().map(|v| (s.base, v))
    }
}

#[derive(Debug)]
enum CStmt {
    Select(CSelect),
    Insert(CInsert),
    Update(CUpdate),
    Delete(CDelete),
    LockTables(Vec<(String, TableLockKind)>),
    UnlockTables,
    Begin,
    Commit,
    Rollback,
}

/// An expression with column references resolved to positions in the
/// concatenated FROM + JOIN row.
#[derive(Debug)]
enum CExpr {
    Col(usize),
    Lit(Value),
    Param(usize),
    Neg(Box<CExpr>),
    Not(Box<CExpr>),
    Binary { op: BinOp, lhs: Box<CExpr>, rhs: Box<CExpr> },
    Like { expr: Box<CExpr>, pattern: Box<CExpr>, negated: bool },
    Between { expr: Box<CExpr>, lo: Box<CExpr>, hi: Box<CExpr> },
    InList { expr: Box<CExpr>, list: Vec<CExpr> },
    IsNull { expr: Box<CExpr>, negated: bool },
}

/// An access-path shape with its key expressions left unbound (they may
/// contain parameters); [`CPath::bind`] produces the concrete
/// [`AccessPath`] for one parameter set.
#[derive(Debug)]
enum CPath {
    FullScan,
    IndexEq { col: usize, key: CExpr },
    IndexRange { col: usize, lo: CBound, hi: CBound },
}

#[derive(Debug)]
enum CBound {
    Included(CExpr),
    Excluded(CExpr),
    Unbounded,
}

impl CBound {
    fn bind(&self, params: &[Value]) -> SqlResult<OwnedBound> {
        Ok(match self {
            CBound::Included(e) => OwnedBound::Included(ceval(e, None, params)?),
            CBound::Excluded(e) => OwnedBound::Excluded(ceval(e, None, params)?),
            CBound::Unbounded => OwnedBound::Unbounded,
        })
    }
}

impl CPath {
    fn bind(&self, params: &[Value]) -> SqlResult<AccessPath> {
        Ok(match self {
            CPath::FullScan => AccessPath::FullScan,
            CPath::IndexEq { col, key } => {
                AccessPath::IndexEq { col: *col, key: ceval(key, None, params)? }
            }
            CPath::IndexRange { col, lo, hi } => {
                AccessPath::IndexRange { col: *col, lo: lo.bind(params)?, hi: hi.bind(params)? }
            }
        })
    }
}

#[derive(Debug)]
struct CJoin {
    /// Catalog id of the joined table.
    table: usize,
    /// Join-key position in the combined row built so far.
    outer_col: usize,
    /// Join-key position within the joined table.
    inner_col: usize,
    /// Whether the inner column has an index. This decides the *modeled*
    /// counter charging (an index probe per outer row vs a scan); the
    /// physical executor is free to build a hash table either way.
    inner_indexed: bool,
}

#[derive(Debug)]
enum CProj {
    /// Copy these combined-row positions (a `*` or `table.*` expansion).
    Cols(Vec<usize>),
    /// Evaluate an expression.
    Expr(CExpr),
}

#[derive(Debug)]
enum CAggItem {
    Agg { func: crate::ast::AggFunc, col: Option<usize> },
    Scalar(CExpr),
}

#[derive(Debug)]
enum CProjKind {
    Plain(Vec<CProj>),
    Agg { items: Vec<CAggItem>, group_by: Option<usize> },
}

#[derive(Debug)]
struct CSelect {
    base: usize,
    path: CPath,
    joins: Vec<CJoin>,
    filter: Option<CExpr>,
    proj: CProjKind,
    /// Pre-projection sort keys (non-aggregate SELECTs).
    order_source: Vec<(CExpr, bool)>,
    /// Output-column sort keys (aggregate SELECTs).
    order_output: Vec<(usize, bool)>,
    limit: Option<(u64, u64)>,
    read_tables: Vec<String>,
    columns: Vec<String>,
    /// Combined-row position → (table slot, column within that table), so
    /// the executor can resolve any column from a tuple of row ids without
    /// materializing the concatenated row.
    col_map: Vec<(u32, u32)>,
}

#[derive(Debug)]
enum CInsertShape {
    /// Values for every column, in schema order.
    Full(Vec<CExpr>),
    /// `(column position, value)` pairs; unlisted columns get NULL.
    Sparse(Vec<(usize, CExpr)>),
}

#[derive(Debug)]
struct CInsert {
    table: usize,
    table_name: String,
    n_columns: usize,
    shape: CInsertShape,
}

#[derive(Debug)]
struct CUpdate {
    table: usize,
    table_name: String,
    path: CPath,
    filter: Option<CExpr>,
    sets: Vec<(usize, CExpr)>,
}

#[derive(Debug)]
struct CDelete {
    table: usize,
    table_name: String,
    path: CPath,
    filter: Option<CExpr>,
}

/// Name resolution at compile time: aliases to (table, offset) over the
/// concatenated row, mirroring the interpreter's `Scope`.
struct CScope<'a> {
    entries: Vec<(String, &'a Table, usize)>,
    width: usize,
}

impl<'a> CScope<'a> {
    fn new() -> Self {
        CScope { entries: Vec::new(), width: 0 }
    }

    fn add(&mut self, alias: &str, table: &'a Table) {
        let offset = self.width;
        self.width += table.schema().columns().len();
        self.entries.push((alias.to_string(), table, offset));
    }

    fn resolve(&self, col: &ColRef) -> SqlResult<usize> {
        match &col.table {
            Some(t) => {
                let (_, table, offset) = self
                    .entries
                    .iter()
                    .find(|(a, _, _)| a == t)
                    .ok_or_else(|| SqlError::UnknownTable(t.clone()))?;
                let idx = table
                    .schema()
                    .column_index(&col.column)
                    .ok_or_else(|| SqlError::UnknownColumn(format!("{t}.{}", col.column)))?;
                Ok(offset + idx)
            }
            None => {
                let mut found = None;
                for (_, table, offset) in &self.entries {
                    if let Some(idx) = table.schema().column_index(&col.column) {
                        if found.is_some() {
                            return Err(SqlError::AmbiguousColumn(col.column.clone()));
                        }
                        found = Some(offset + idx);
                    }
                }
                found.ok_or_else(|| SqlError::UnknownColumn(col.column.clone()))
            }
        }
    }

    fn star_columns(&self, alias: Option<&str>) -> SqlResult<(Vec<usize>, Vec<String>)> {
        let mut idxs = Vec::new();
        let mut names = Vec::new();
        let mut matched = false;
        for (a, table, offset) in &self.entries {
            if alias.is_none() || alias == Some(a.as_str()) {
                matched = true;
                for (i, c) in table.schema().columns().iter().enumerate() {
                    idxs.push(offset + i);
                    names.push(c.name().to_string());
                }
            }
        }
        if !matched {
            return Err(SqlError::UnknownTable(alias.unwrap_or("*").to_string()));
        }
        Ok((idxs, names))
    }
}

fn compile_expr(e: &Expr, scope: Option<&CScope<'_>>) -> SqlResult<CExpr> {
    Ok(match e {
        Expr::Lit(v) => CExpr::Lit(v.clone()),
        Expr::Param(i) => CExpr::Param(*i),
        Expr::Col(c) => {
            let scope = scope.ok_or_else(|| {
                SqlError::Unsupported(format!("column '{}' in row-free context", c.column))
            })?;
            CExpr::Col(scope.resolve(c)?)
        }
        Expr::Neg(e) => CExpr::Neg(Box::new(compile_expr(e, scope)?)),
        Expr::Not(e) => CExpr::Not(Box::new(compile_expr(e, scope)?)),
        Expr::Binary { op, lhs, rhs } => CExpr::Binary {
            op: *op,
            lhs: Box::new(compile_expr(lhs, scope)?),
            rhs: Box::new(compile_expr(rhs, scope)?),
        },
        Expr::Like { expr, pattern, negated } => CExpr::Like {
            expr: Box::new(compile_expr(expr, scope)?),
            pattern: Box::new(compile_expr(pattern, scope)?),
            negated: *negated,
        },
        Expr::Between { expr, lo, hi } => CExpr::Between {
            expr: Box::new(compile_expr(expr, scope)?),
            lo: Box::new(compile_expr(lo, scope)?),
            hi: Box::new(compile_expr(hi, scope)?),
        },
        Expr::InList { expr, list } => CExpr::InList {
            expr: Box::new(compile_expr(expr, scope)?),
            list: list.iter().map(|i| compile_expr(i, scope)).collect::<SqlResult<_>>()?,
        },
        Expr::IsNull { expr, negated } => {
            CExpr::IsNull { expr: Box::new(compile_expr(expr, scope)?), negated: *negated }
        }
        Expr::Agg { .. } => {
            return Err(SqlError::Unsupported("aggregate outside of SELECT output".into()))
        }
    })
}

/// A combined row the executor can read without materializing it: either a
/// contiguous slice (single-table paths, UPDATE/DELETE) or a tuple of row
/// ids resolved through the plan's column map (join paths). Copyable, so
/// expression evaluation passes it around like the old `&[Value]`.
#[derive(Clone, Copy)]
enum RowView<'a> {
    /// One table's row, columns addressed directly.
    Slice(&'a [Value]),
    /// A join tuple: one live row id per table slot; column `i` resolves
    /// via `col_map[i]` to (slot, column-in-table).
    Tuple { tables: &'a [&'a Table], col_map: &'a [(u32, u32)], rids: &'a [RowId] },
}

impl RowView<'_> {
    fn get(&self, i: usize) -> &Value {
        match self {
            RowView::Slice(row) => &row[i],
            RowView::Tuple { tables, col_map, rids } => {
                let (slot, col) = col_map[i];
                let slot = slot as usize;
                &tables[slot].get(rids[slot]).expect("live row")[col as usize]
            }
        }
    }
}

/// Evaluates a compiled expression; mirrors the interpreter's `eval`
/// (including SQL NULL short-circuit semantics) with column access reduced
/// to an index into the combined row view.
fn ceval(expr: &CExpr, row: Option<RowView<'_>>, params: &[Value]) -> SqlResult<Value> {
    match expr {
        CExpr::Lit(v) => Ok(v.clone()),
        CExpr::Param(i) => params.get(*i).cloned().ok_or(SqlError::MissingParam(*i)),
        CExpr::Col(i) => {
            let row = row
                .ok_or_else(|| SqlError::Unsupported(format!("column #{i} in row-free context")))?;
            Ok(row.get(*i).clone())
        }
        CExpr::Neg(e) => {
            let v = ceval(e, row, params)?;
            match v {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(-i)),
                Value::Float(f) => Ok(Value::Float(-f)),
                other => Err(SqlError::TypeMismatch {
                    expected: "number",
                    found: other.type_name().to_string(),
                }),
            }
        }
        CExpr::Not(e) => {
            let v = ceval(e, row, params)?;
            if v.is_null() {
                Ok(Value::Null)
            } else {
                Ok(Value::Int(!v.is_truthy() as i64))
            }
        }
        CExpr::Binary { op, lhs, rhs } => match op {
            BinOp::And => {
                let l = ceval(lhs, row, params)?;
                if !l.is_null() && !l.is_truthy() {
                    return Ok(Value::Int(0));
                }
                let r = ceval(rhs, row, params)?;
                if !r.is_null() && !r.is_truthy() {
                    return Ok(Value::Int(0));
                }
                if l.is_null() || r.is_null() {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Int(1))
                }
            }
            BinOp::Or => {
                let l = ceval(lhs, row, params)?;
                if l.is_truthy() {
                    return Ok(Value::Int(1));
                }
                let r = ceval(rhs, row, params)?;
                if r.is_truthy() {
                    return Ok(Value::Int(1));
                }
                if l.is_null() || r.is_null() {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Int(0))
                }
            }
            BinOp::Add => ceval(lhs, row, params)?.add(&ceval(rhs, row, params)?),
            BinOp::Sub => ceval(lhs, row, params)?.sub(&ceval(rhs, row, params)?),
            BinOp::Mul => ceval(lhs, row, params)?.mul(&ceval(rhs, row, params)?),
            BinOp::Div => ceval(lhs, row, params)?.div(&ceval(rhs, row, params)?),
            cmp => {
                let l = ceval(lhs, row, params)?;
                let r = ceval(rhs, row, params)?;
                Ok(compare(*cmp, &l, &r))
            }
        },
        CExpr::Like { expr, pattern, negated } => {
            let v = ceval(expr, row, params)?;
            let p = ceval(pattern, row, params)?;
            if v.is_null() || p.is_null() {
                return Ok(Value::Null);
            }
            let m = v.like(&p)?;
            Ok(Value::Int((m != *negated) as i64))
        }
        CExpr::Between { expr, lo, hi } => {
            let v = ceval(expr, row, params)?;
            let l = ceval(lo, row, params)?;
            let h = ceval(hi, row, params)?;
            if v.is_null() || l.is_null() || h.is_null() {
                return Ok(Value::Null);
            }
            Ok(Value::Int((v >= l && v <= h) as i64))
        }
        CExpr::InList { expr, list } => {
            let v = ceval(expr, row, params)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            for item in list {
                let c = ceval(item, row, params)?;
                if !c.is_null() && c == v {
                    return Ok(Value::Int(1));
                }
            }
            Ok(Value::Int(0))
        }
        CExpr::IsNull { expr, negated } => {
            let v = ceval(expr, row, params)?;
            Ok(Value::Int((v.is_null() != *negated) as i64))
        }
    }
}

/// Chooses the access-path shape from WHERE conjuncts; same preference
/// order as the interpreter's `choose_path` (primary-key equality,
/// secondary equality, indexed range, full scan), but key expressions stay
/// unevaluated so parameters bind at execute time. The shape depends only
/// on column positions and the schema, never on parameter values, so
/// choosing it once is exact.
fn compile_path(table: &Table, alias: &str, conj: &[&Expr]) -> SqlResult<CPath> {
    let pk = table.schema().primary_key();
    let mut best_eq: Option<(usize, CExpr)> = None;
    let mut best_range: Option<(usize, CBound, CBound)> = None;

    for e in conj {
        match e {
            Expr::Binary { op, lhs, rhs } if op.is_comparison() => {
                let (col, op, konst) = match (&**lhs, &**rhs) {
                    (Expr::Col(c), k) if is_const(k) => (c, *op, k),
                    (k, Expr::Col(c)) if is_const(k) => (c, flip(*op), k),
                    _ => continue,
                };
                let Some(pos) = col_on_table(col, alias, table) else {
                    continue;
                };
                if !table.has_index_on(pos) {
                    continue;
                }
                let key = compile_expr(konst, None)?;
                match op {
                    BinOp::Eq => {
                        let better = match &best_eq {
                            None => true,
                            Some((cur, _)) => pk == Some(pos) && pk != Some(*cur),
                        };
                        if better {
                            best_eq = Some((pos, key));
                        }
                    }
                    BinOp::Lt => {
                        merge_range(&mut best_range, pos, CBound::Unbounded, CBound::Excluded(key));
                    }
                    BinOp::Le => {
                        merge_range(&mut best_range, pos, CBound::Unbounded, CBound::Included(key));
                    }
                    BinOp::Gt => {
                        merge_range(&mut best_range, pos, CBound::Excluded(key), CBound::Unbounded);
                    }
                    BinOp::Ge => {
                        merge_range(&mut best_range, pos, CBound::Included(key), CBound::Unbounded);
                    }
                    _ => {}
                }
            }
            Expr::Between { expr, lo, hi } => {
                let Expr::Col(col) = &**expr else { continue };
                if !is_const(lo) || !is_const(hi) {
                    continue;
                }
                let Some(pos) = col_on_table(col, alias, table) else {
                    continue;
                };
                if !table.has_index_on(pos) {
                    continue;
                }
                let lov = compile_expr(lo, None)?;
                let hiv = compile_expr(hi, None)?;
                merge_range(&mut best_range, pos, CBound::Included(lov), CBound::Included(hiv));
            }
            _ => {}
        }
    }

    if let Some((col, key)) = best_eq {
        return Ok(CPath::IndexEq { col, key });
    }
    if let Some((col, lo, hi)) = best_range {
        return Ok(CPath::IndexRange { col, lo, hi });
    }
    Ok(CPath::FullScan)
}

fn merge_range(best: &mut Option<(usize, CBound, CBound)>, col: usize, lo: CBound, hi: CBound) {
    match best {
        Some((cur, cur_lo, cur_hi)) if *cur == col => {
            if !matches!(lo, CBound::Unbounded) {
                *cur_lo = lo;
            }
            if !matches!(hi, CBound::Unbounded) {
                *cur_hi = hi;
            }
        }
        Some(_) => {} // keep the first ranged column
        None => *best = Some((col, lo, hi)),
    }
}

/// Compiles a parsed statement against the current catalog.
pub(crate) fn compile(db: &Database, stmt: &Stmt) -> SqlResult<CompiledStmt> {
    let kind = match stmt {
        Stmt::Select(s) => CStmt::Select(compile_select(db, s)?),
        Stmt::Insert(i) => CStmt::Insert(compile_insert(db, i)?),
        Stmt::Update(u) => CStmt::Update(compile_update(db, u)?),
        Stmt::Delete(d) => CStmt::Delete(CDelete {
            table: db.table_id(&d.table)?,
            table_name: d.table.clone(),
            path: {
                let t = db.table(&d.table)?;
                let conj: Vec<&Expr> =
                    d.where_clause.as_ref().map(|w| conjuncts(w)).unwrap_or_default();
                compile_path(t, &d.table, &conj)?
            },
            filter: {
                let t = db.table(&d.table)?;
                let mut scope = CScope::new();
                scope.add(&d.table, t);
                d.where_clause.as_ref().map(|w| compile_expr(w, Some(&scope))).transpose()?
            },
        }),
        Stmt::LockTables(locks) => {
            for (t, _) in locks {
                db.table(t)?; // validate the tables exist
            }
            CStmt::LockTables(locks.clone())
        }
        Stmt::UnlockTables => CStmt::UnlockTables,
        Stmt::Begin => CStmt::Begin,
        Stmt::Commit => CStmt::Commit,
        Stmt::Rollback => CStmt::Rollback,
    };
    Ok(CompiledStmt { version: db.schema_version(), id: 0, kind })
}

fn compile_select(db: &Database, s: &SelectStmt) -> SqlResult<CSelect> {
    let mut read_tables = vec![s.from.name.clone()];
    for j in &s.joins {
        if !read_tables.contains(&j.table.name) {
            read_tables.push(j.table.name.clone());
        }
    }

    let base = db.table_id(&s.from.name)?;
    let base_table = db.table_at(base);
    let mut scope = CScope::new();
    scope.add(s.from.effective_alias(), base_table);
    let join_ids: Vec<usize> =
        s.joins.iter().map(|j| db.table_id(&j.table.name)).collect::<SqlResult<_>>()?;
    for (j, id) in s.joins.iter().zip(&join_ids) {
        scope.add(j.table.effective_alias(), db.table_at(*id));
    }

    let mut joins = Vec::new();
    for (jidx, (j, id)) in s.joins.iter().zip(&join_ids).enumerate() {
        let jt = db.table_at(*id);
        let mut partial = CScope::new();
        partial.add(s.from.effective_alias(), base_table);
        for (k, kid) in s.joins.iter().zip(&join_ids).take(jidx) {
            partial.add(k.table.effective_alias(), db.table_at(*kid));
        }
        let j_alias = j.table.effective_alias();
        let (outer_col, inner_col) = classify_join_cols(j, j_alias, jt, &partial)?;
        joins.push(CJoin {
            table: *id,
            outer_col,
            inner_col,
            inner_indexed: jt.has_index_on(inner_col),
        });
    }

    let conj: Vec<&Expr> = s.where_clause.as_ref().map(|w| conjuncts(w)).unwrap_or_default();
    let path = compile_path(base_table, s.from.effective_alias(), &conj)?;
    let filter = s.where_clause.as_ref().map(|w| compile_expr(w, Some(&scope))).transpose()?;

    let has_agg = s.group_by.is_some()
        || s.items.iter().any(|i| match i {
            SelectItem::Expr { expr, .. } => expr.contains_agg(),
            _ => false,
        });

    let mut columns = Vec::new();
    let proj = if has_agg {
        let mut items = Vec::new();
        for item in &s.items {
            match item {
                SelectItem::Expr { expr, alias } => {
                    columns.push(alias.clone().unwrap_or_else(|| expr_name(expr)));
                    items.push(match expr {
                        Expr::Agg { func, col } => CAggItem::Agg {
                            func: *func,
                            col: col.as_ref().map(|c| scope.resolve(c)).transpose()?,
                        },
                        other => CAggItem::Scalar(compile_expr(other, Some(&scope))?),
                    });
                }
                _ => return Err(SqlError::Unsupported("'*' in an aggregate SELECT".into())),
            }
        }
        let group_by = match &s.group_by {
            Some(c) => Some(scope.resolve(c)?),
            None => None,
        };
        CProjKind::Agg { items, group_by }
    } else {
        let mut plan = Vec::new();
        for item in &s.items {
            match item {
                SelectItem::Star => {
                    let (idxs, names) = scope.star_columns(None)?;
                    columns.extend(names);
                    plan.push(CProj::Cols(idxs));
                }
                SelectItem::TableStar(t) => {
                    let (idxs, names) = scope.star_columns(Some(t))?;
                    columns.extend(names);
                    plan.push(CProj::Cols(idxs));
                }
                SelectItem::Expr { expr, alias } => {
                    columns.push(alias.clone().unwrap_or_else(|| expr_name(expr)));
                    plan.push(CProj::Expr(compile_expr(expr, Some(&scope))?));
                }
            }
        }
        CProjKind::Plain(plan)
    };

    // ORDER BY: over source rows for plain SELECTs (keys may reference
    // non-projected columns and select aliases), over output columns for
    // aggregates.
    let mut order_source = Vec::new();
    let mut order_output = Vec::new();
    if has_agg {
        for k in &s.order_by {
            let idx = match &k.expr {
                Expr::Col(c) if c.table.is_none() => columns.iter().position(|n| *n == c.column),
                Expr::Agg { .. } => s.items.iter().enumerate().find_map(|(i, item)| match item {
                    SelectItem::Expr { expr, .. } if *expr == k.expr => Some(i),
                    _ => None,
                }),
                _ => None,
            };
            let idx = idx.ok_or_else(|| {
                SqlError::Unsupported(
                    "ORDER BY in aggregate SELECT must name an output column".into(),
                )
            })?;
            order_output.push((idx, k.desc));
        }
    } else {
        for k in &s.order_by {
            let expr = match &k.expr {
                Expr::Col(c) if c.table.is_none() => {
                    let aliased = s.items.iter().find_map(|i| match i {
                        SelectItem::Expr { expr, alias: Some(a) } if *a == c.column => {
                            Some(expr.clone())
                        }
                        _ => None,
                    });
                    aliased.unwrap_or_else(|| k.expr.clone())
                }
                _ => k.expr.clone(),
            };
            order_source.push((compile_expr(&expr, Some(&scope))?, k.desc));
        }
    }

    let mut col_map = Vec::with_capacity(scope.width);
    for (slot, (_, table, _)) in scope.entries.iter().enumerate() {
        for ci in 0..table.schema().columns().len() {
            col_map.push((slot as u32, ci as u32));
        }
    }

    Ok(CSelect {
        base,
        path,
        joins,
        filter,
        proj,
        order_source,
        order_output,
        limit: s.limit,
        read_tables,
        columns,
        col_map,
    })
}

/// Resolves the ON clause exactly as the interpreter does: returns (column
/// position in the combined row so far, column position in the joined
/// table).
fn classify_join_cols(
    j: &Join,
    j_alias: &str,
    jt: &Table,
    outer_scope: &CScope<'_>,
) -> SqlResult<(usize, usize)> {
    let on_joined = |c: &ColRef| -> Option<usize> {
        match &c.table {
            Some(t) if t == j_alias => jt.schema().column_index(&c.column),
            Some(_) => None,
            None => jt.schema().column_index(&c.column),
        }
    };
    if let Some(inner) = on_joined(&j.right) {
        if let Ok(outer) = outer_scope.resolve(&j.left) {
            return Ok((outer, inner));
        }
    }
    if let Some(inner) = on_joined(&j.left) {
        if let Ok(outer) = outer_scope.resolve(&j.right) {
            return Ok((outer, inner));
        }
    }
    Err(SqlError::Unsupported(format!(
        "JOIN ON must equate an earlier table's column with {j_alias}'s column"
    )))
}

fn compile_insert(db: &Database, i: &InsertStmt) -> SqlResult<CInsert> {
    let table_id = db.table_id(&i.table)?;
    let table = db.table_at(table_id);
    let n_columns = table.schema().columns().len();
    let values: Vec<CExpr> =
        i.values.iter().map(|e| compile_expr(e, None)).collect::<SqlResult<_>>()?;
    let shape = match &i.columns {
        None => {
            if values.len() != n_columns {
                return Err(SqlError::Constraint(format!(
                    "INSERT supplies {} values for {} columns",
                    values.len(),
                    n_columns
                )));
            }
            CInsertShape::Full(values)
        }
        Some(cols) => {
            if cols.len() != values.len() {
                return Err(SqlError::Constraint("INSERT column/value count mismatch".into()));
            }
            let mut pairs = Vec::with_capacity(cols.len());
            for (c, v) in cols.iter().zip(values) {
                let idx = table
                    .schema()
                    .column_index(c)
                    .ok_or_else(|| SqlError::UnknownColumn(c.clone()))?;
                pairs.push((idx, v));
            }
            CInsertShape::Sparse(pairs)
        }
    };
    Ok(CInsert { table: table_id, table_name: i.table.clone(), n_columns, shape })
}

fn compile_update(db: &Database, u: &UpdateStmt) -> SqlResult<CUpdate> {
    let table_id = db.table_id(&u.table)?;
    let table = db.table_at(table_id);
    let conj: Vec<&Expr> = u.where_clause.as_ref().map(|w| conjuncts(w)).unwrap_or_default();
    let path = compile_path(table, &u.table, &conj)?;
    let mut scope = CScope::new();
    scope.add(&u.table, table);
    let filter = u.where_clause.as_ref().map(|w| compile_expr(w, Some(&scope))).transpose()?;
    let sets = u
        .sets
        .iter()
        .map(|(c, e)| {
            let idx =
                table.schema().column_index(c).ok_or_else(|| SqlError::UnknownColumn(c.clone()))?;
            Ok((idx, compile_expr(e, Some(&scope))?))
        })
        .collect::<SqlResult<_>>()?;
    Ok(CUpdate { table: table_id, table_name: u.table.clone(), path, filter, sets })
}

/// Executes a compiled statement; the entry point `Database::execute` uses
/// after a plan-cache hit or a fresh compilation.
pub(crate) fn exec_compiled(
    db: &mut Database,
    c: &CompiledStmt,
    params: &[Value],
) -> SqlResult<QueryResult> {
    match &c.kind {
        CStmt::Select(s) => exec_cselect(db, s, params),
        CStmt::Insert(i) => exec_cinsert(db, i, params),
        CStmt::Update(u) => exec_cupdate(db, u, params),
        CStmt::Delete(d) => exec_cdelete(db, d, params),
        CStmt::LockTables(locks) => {
            Ok(QueryResult::empty(StatementKind::LockTables(locks.clone())))
        }
        CStmt::UnlockTables => Ok(QueryResult::empty(StatementKind::UnlockTables)),
        CStmt::Begin => db.exec_txn_control(StatementKind::Begin),
        CStmt::Commit => db.exec_txn_control(StatementKind::Commit),
        CStmt::Rollback => db.exec_txn_control(StatementKind::Rollback),
    }
}

/// The executor's late-materialized working set: row ids only, values stay
/// in the base tables until projection. Join results are flat tuples of one
/// `RowId` per table (`stride` ids per logical row), so filtering, sorting,
/// and limiting shuffle machine words instead of cloned `Value` rows.
enum RowSet<'a> {
    /// No-join fast path: a stream of row ids over one table.
    Single { table: &'a Table, ids: Vec<RowId> },
    /// Join result: `tuples.len() / stride` logical rows, each `stride`
    /// consecutive row ids (one per table slot, in scope order).
    Joined { tables: Vec<&'a Table>, col_map: &'a [(u32, u32)], stride: usize, tuples: Vec<RowId> },
}

impl RowSet<'_> {
    fn len(&self) -> usize {
        match self {
            RowSet::Single { ids, .. } => ids.len(),
            RowSet::Joined { stride, tuples, .. } => tuples.len() / stride,
        }
    }

    fn view(&self, i: usize) -> RowView<'_> {
        match self {
            RowSet::Single { table, ids } => RowView::Slice(table.get(ids[i]).expect("live row")),
            RowSet::Joined { tables, col_map, stride, tuples } => {
                RowView::Tuple { tables, col_map, rids: &tuples[i * stride..(i + 1) * stride] }
            }
        }
    }

    /// Keeps only the positions in `keep` (ascending).
    fn select(&mut self, keep: &[usize]) {
        match self {
            RowSet::Single { ids, .. } => {
                let mut i = 0;
                let mut k = 0;
                ids.retain(|_| {
                    let keep_this = k < keep.len() && keep[k] == i;
                    if keep_this {
                        k += 1;
                    }
                    i += 1;
                    keep_this
                });
            }
            RowSet::Joined { stride, tuples, .. } => {
                let mut out = Vec::with_capacity(keep.len() * *stride);
                for &i in keep {
                    out.extend_from_slice(&tuples[i * *stride..(i + 1) * *stride]);
                }
                *tuples = out;
            }
        }
    }

    /// Reorders to `order` (positions into the current set; may be a strict
    /// subset when a top-K sort already discarded rows past the window).
    fn reorder(&mut self, order: &[usize]) {
        match self {
            RowSet::Single { ids, .. } => {
                *ids = order.iter().map(|i| ids[*i]).collect();
            }
            RowSet::Joined { stride, tuples, .. } => {
                let mut out = Vec::with_capacity(order.len() * *stride);
                for &i in order {
                    out.extend_from_slice(&tuples[i * *stride..(i + 1) * *stride]);
                }
                *tuples = out;
            }
        }
    }

    fn limit(&mut self, limit: Option<(u64, u64)>) {
        match self {
            RowSet::Single { ids, .. } => apply_limit(ids, limit),
            RowSet::Joined { stride, tuples, .. } => {
                if let Some((offset, count)) = limit {
                    let n = tuples.len() / *stride;
                    let offset = usize::try_from(offset).unwrap_or(usize::MAX);
                    let count = usize::try_from(count).unwrap_or(usize::MAX);
                    if offset >= n {
                        tuples.clear();
                        return;
                    }
                    tuples.truncate(offset.saturating_add(count).min(n) * *stride);
                    if offset > 0 {
                        *tuples = tuples.split_off(offset * *stride);
                    }
                }
            }
        }
    }
}

/// The physical inner side of one equality join. All variants produce the
/// same matches in the same order, and the caller charges the modeled
/// counters identically for each — the variants differ only in host cost.
enum JoinProbe<'a> {
    /// B-tree probe per outer row; cheapest when the outer side is tiny.
    Index { jt: &'a Table, col: usize },
    /// Hash table snapshotted from the index in one pass (preserves the
    /// index's per-key row-id order, so results match `Index` exactly).
    HashIdx(HashMap<&'a Value, &'a [RowId]>),
    /// Hash table built from a scan of an unindexed inner (per-key ids in
    /// scan order, matching what a scan per outer row would find).
    HashScan(HashMap<&'a Value, Vec<RowId>>),
    /// Single scan of an unindexed inner; only worth it for one outer row.
    Scan { jt: &'a Table, col: usize },
}

impl<'a> JoinProbe<'a> {
    fn build(
        jt: &'a Table,
        inner_col: usize,
        inner_indexed: bool,
        n_outer: usize,
    ) -> JoinProbe<'a> {
        if inner_indexed {
            // Building costs one pass over the index's keys; probing the
            // B-tree costs O(log keys) per outer row. Build only when the
            // probe side is large enough to amortize it.
            if n_outer >= 32 && n_outer.saturating_mul(8) >= jt.index_cardinality(inner_col) {
                JoinProbe::HashIdx(jt.index_groups(inner_col).collect())
            } else {
                JoinProbe::Index { jt, col: inner_col }
            }
        } else if n_outer > 1 {
            let mut map: HashMap<&'a Value, Vec<RowId>> = HashMap::new();
            for (rid, row) in jt.scan() {
                map.entry(&row[inner_col]).or_default().push(rid);
            }
            JoinProbe::HashScan(map)
        } else {
            JoinProbe::Scan { jt, col: inner_col }
        }
    }
}

/// Pushes into a bounded binary max-heap (array form, `heap[0]` largest)
/// keeping the `k` smallest items under `cmp`, which must be a total order.
/// After feeding all n items and sorting the survivors, the result is
/// exactly the first `k` rows a full stable sort would produce, in
/// O(n log k) with only `k` decorated rows alive.
fn heap_push<T>(heap: &mut Vec<T>, item: T, k: usize, cmp: &impl Fn(&T, &T) -> Ordering) {
    if k == 0 {
        return;
    }
    if heap.len() < k {
        heap.push(item);
        let mut i = heap.len() - 1;
        while i > 0 {
            let parent = (i - 1) / 2;
            if cmp(&heap[i], &heap[parent]) == Ordering::Greater {
                heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    } else if cmp(&item, &heap[0]) == Ordering::Less {
        heap[0] = item;
        let mut i = 0;
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut m = i;
            if l < heap.len() && cmp(&heap[l], &heap[m]) == Ordering::Greater {
                m = l;
            }
            if r < heap.len() && cmp(&heap[r], &heap[m]) == Ordering::Greater {
                m = r;
            }
            if m == i {
                break;
            }
            heap.swap(i, m);
            i = m;
        }
    }
}

/// The number of leading sorted rows the LIMIT window can expose:
/// `offset + count` saturating, capped at `n`. `None` means all rows.
fn limit_window(limit: Option<(u64, u64)>, n: usize) -> usize {
    match limit {
        Some((offset, count)) => {
            let offset = usize::try_from(offset).unwrap_or(usize::MAX);
            let count = usize::try_from(count).unwrap_or(usize::MAX);
            offset.saturating_add(count).min(n)
        }
        None => n,
    }
}

fn exec_cselect(db: &Database, c: &CSelect, params: &[Value]) -> SqlResult<QueryResult> {
    let mut counters = QueryCounters::default();
    let base_table = db.table_at(c.base);
    let path = c.path.bind(params)?;
    let base_ids = candidate_rows(base_table, &path, &mut counters);

    let mut rows = if c.joins.is_empty() {
        RowSet::Single { table: base_table, ids: base_ids }
    } else {
        // Late-materialized joins: grow flat RowId tuples one table at a
        // time. The counters are charged per outer row with the modeled
        // nested-index-loop formula regardless of the probe strategy.
        let mut tables: Vec<&Table> = Vec::with_capacity(1 + c.joins.len());
        tables.push(base_table);
        let mut tuples: Vec<RowId> = base_ids;
        let mut stride = 1usize;
        for cj in &c.joins {
            let jt = db.table_at(cj.table);
            let (oslot, ocol) = c.col_map[cj.outer_col];
            let (oslot, ocol) = (oslot as usize, ocol as usize);
            let n_outer = tuples.len() / stride;
            let probe = JoinProbe::build(jt, cj.inner_col, cj.inner_indexed, n_outer);
            let mut next: Vec<RowId> = Vec::with_capacity(tuples.len() + n_outer);
            for tuple in tuples.chunks_exact(stride) {
                let key = &tables[oslot].get(tuple[oslot]).expect("live row")[ocol];
                let scratch: Vec<RowId>;
                let matches: &[RowId] = match &probe {
                    JoinProbe::Index { jt, col } => {
                        scratch = jt.index_lookup(*col, key);
                        &scratch
                    }
                    JoinProbe::HashIdx(map) => map.get(key).copied().unwrap_or(&[]),
                    JoinProbe::HashScan(map) => map.get(key).map(Vec::as_slice).unwrap_or(&[]),
                    JoinProbe::Scan { jt, col } => {
                        scratch = jt
                            .scan()
                            .filter(|(_, r)| &r[*col] == key)
                            .map(|(rid, _)| rid)
                            .collect();
                        &scratch
                    }
                };
                if cj.inner_indexed {
                    counters.index_lookups += 1;
                }
                counters.rows_examined += matches.len().max(1) as u64;
                for &rid in matches {
                    next.extend_from_slice(tuple);
                    next.push(rid);
                }
            }
            tables.push(jt);
            tuples = next;
            stride += 1;
        }
        RowSet::Joined { tables, col_map: &c.col_map, stride, tuples }
    };

    // Residual filter.
    if let Some(f) = &c.filter {
        let mut keep = Vec::with_capacity(rows.len());
        for i in 0..rows.len() {
            if ceval(f, Some(rows.view(i)), params)?.is_truthy() {
                keep.push(i);
            }
        }
        rows.select(&keep);
    }

    let out_rows = match &c.proj {
        CProjKind::Agg { items, group_by } => {
            // Single-pass hash aggregation: one walk over the source rows
            // folds every accumulator; groups are then emitted in ascending
            // key order, matching the interpreter's BTreeMap grouping.
            // Every source row lands in exactly one group, so the total
            // charged to rows_examined is unchanged.
            counters.rows_examined += rows.len() as u64;
            let mut out: Vec<Vec<Value>>;
            match group_by {
                Some(gc) => {
                    let mut groups: HashMap<Value, GroupAcc> = HashMap::new();
                    for i in 0..rows.len() {
                        let row = rows.view(i);
                        let key = row.get(*gc).clone();
                        groups
                            .entry(key)
                            .or_insert_with(|| GroupAcc::new(items, i))
                            .fold(items, row);
                    }
                    let mut entries: Vec<(Value, GroupAcc)> = groups.into_iter().collect();
                    // Keys are unique, so the unstable sort is deterministic.
                    entries.sort_unstable_by(|(a, _), (b, _)| a.cmp(b));
                    out = Vec::with_capacity(entries.len());
                    for (_, g) in &entries {
                        out.push(g.finalize(items, &rows, params)?);
                    }
                }
                None => {
                    // A global aggregate always yields one row, even over
                    // zero input rows (COUNT(*) = 0).
                    let mut g = GroupAcc::new(items, 0);
                    for i in 0..rows.len() {
                        g.fold(items, rows.view(i));
                    }
                    out = vec![g.finalize(items, &rows, params)?];
                }
            }
            if !c.order_output.is_empty() {
                counters.sort_rows += out.len() as u64;
                let n = out.len();
                let k = limit_window(c.limit, n);
                let cmp = |a: &(Vec<Value>, usize), b: &(Vec<Value>, usize)| {
                    for (idx, desc) in &c.order_output {
                        let ord = a.0[*idx].cmp(&b.0[*idx]);
                        let ord = if *desc { ord.reverse() } else { ord };
                        if ord != Ordering::Equal {
                            return ord;
                        }
                    }
                    // Position tie-break = the stable sort the interpreter
                    // runs, preserving ascending-group-key order among ties.
                    a.1.cmp(&b.1)
                };
                let mut decorated: Vec<(Vec<Value>, usize)> =
                    Vec::with_capacity(k.min(n).saturating_add(1));
                for (i, row) in out.into_iter().enumerate() {
                    if k >= n {
                        decorated.push((row, i));
                    } else {
                        heap_push(&mut decorated, (row, i), k, &cmp);
                    }
                }
                decorated.sort_by(|a, b| cmp(a, b));
                out = decorated.into_iter().map(|(row, _)| row).collect();
            }
            apply_limit(&mut out, c.limit);
            out
        }
        CProjKind::Plain(plan) => {
            if !c.order_source.is_empty() {
                // The full input is charged to the sort counter — the model
                // sorts everything — but physically only the LIMIT window's
                // rows are kept in the top-K heap.
                counters.sort_rows += rows.len() as u64;
                let n = rows.len();
                let k = limit_window(c.limit, n);
                let cmp = |a: &(Vec<Value>, usize), b: &(Vec<Value>, usize)| {
                    for ((av, bv), (_, desc)) in a.0.iter().zip(&b.0).zip(&c.order_source) {
                        let ord = av.cmp(bv);
                        let ord = if *desc { ord.reverse() } else { ord };
                        if ord != Ordering::Equal {
                            return ord;
                        }
                    }
                    a.1.cmp(&b.1) // stable tie-break on position
                };
                let mut decorated: Vec<(Vec<Value>, usize)> =
                    Vec::with_capacity(k.min(n).saturating_add(1));
                for i in 0..n {
                    let row = rows.view(i);
                    let kv: Vec<Value> = c
                        .order_source
                        .iter()
                        .map(|(e, _)| ceval(e, Some(row), params))
                        .collect::<SqlResult<_>>()?;
                    if k >= n {
                        decorated.push((kv, i));
                    } else {
                        heap_push(&mut decorated, (kv, i), k, &cmp);
                    }
                }
                decorated.sort_by(|a, b| cmp(a, b));
                let order: Vec<usize> = decorated.into_iter().map(|(_, i)| i).collect();
                rows.reorder(&order);
            }
            rows.limit(c.limit);
            // Projection: the only point values are cloned.
            let mut out = Vec::with_capacity(rows.len());
            for i in 0..rows.len() {
                let row = rows.view(i);
                let mut o = Vec::with_capacity(c.columns.len());
                for p in plan {
                    match p {
                        CProj::Cols(cols) => o.extend(cols.iter().map(|ci| row.get(*ci).clone())),
                        CProj::Expr(e) => o.push(ceval(e, Some(row), params)?),
                    }
                }
                out.push(o);
            }
            out
        }
    };

    counters.rows_returned += out_rows.len() as u64;
    counters.bytes_returned += out_rows
        .iter()
        .map(|r| r.iter().map(Value::wire_size).sum::<u64>() + 4 * r.len() as u64)
        .sum::<u64>();

    Ok(QueryResult {
        columns: c.columns.clone(),
        rows: out_rows,
        affected: 0,
        last_insert_id: None,
        counters,
        read_tables: c.read_tables.clone(),
        write_tables: Vec::new(),
        kind: StatementKind::Read,
    })
}

/// One aggregate accumulator, folded in a single pass over a group's rows.
/// Tie-breaking and overflow semantics replicate the interpreter's
/// collect-then-fold implementation exactly: MAX keeps the *last* of equal
/// maxima and MIN the *first* of equal minima (observable when an Int and a
/// Float compare equal), and SUM raises the integer-overflow error only
/// when every input value is an Int.
enum Acc {
    /// COUNT(*) — answered from the group's row count.
    CountStar,
    /// COUNT(col): non-null values seen.
    Count(i64),
    Max(Option<Value>),
    Min(Option<Value>),
    /// SUM/AVG: non-null count, all-int flag, checked integer total (None
    /// after overflow), and the float total over numeric values.
    Sum {
        n: u64,
        all_int: bool,
        int: Option<i64>,
        float: f64,
    },
    /// Non-aggregate item — evaluated on the group's first row at the end.
    Scalar,
}

impl Acc {
    fn new(item: &CAggItem) -> Acc {
        use crate::ast::AggFunc;
        match item {
            CAggItem::Scalar(_) => Acc::Scalar,
            // Any aggregate over `*` counts the group's rows.
            CAggItem::Agg { col: None, .. } => Acc::CountStar,
            CAggItem::Agg { func: AggFunc::Count, .. } => Acc::Count(0),
            CAggItem::Agg { func: AggFunc::Max, .. } => Acc::Max(None),
            CAggItem::Agg { func: AggFunc::Min, .. } => Acc::Min(None),
            CAggItem::Agg { func: AggFunc::Sum | AggFunc::Avg, .. } => {
                Acc::Sum { n: 0, all_int: true, int: Some(0), float: 0.0 }
            }
        }
    }
}

/// All accumulators for one group, plus the first row (for scalar items).
struct GroupAcc {
    first: usize,
    rows: u64,
    accs: Vec<Acc>,
}

impl GroupAcc {
    fn new(items: &[CAggItem], first: usize) -> GroupAcc {
        GroupAcc { first, rows: 0, accs: items.iter().map(Acc::new).collect() }
    }

    fn fold(&mut self, items: &[CAggItem], row: RowView<'_>) {
        self.rows += 1;
        for (acc, item) in self.accs.iter_mut().zip(items) {
            let CAggItem::Agg { col: Some(cidx), .. } = item else { continue };
            let v = row.get(*cidx);
            if v.is_null() {
                continue;
            }
            match acc {
                Acc::Count(n) => *n += 1,
                Acc::Max(cur) => {
                    let better = match cur {
                        None => true,
                        Some(c) => v >= c,
                    };
                    if better {
                        *cur = Some(v.clone());
                    }
                }
                Acc::Min(cur) => {
                    let better = match cur {
                        None => true,
                        Some(c) => v < c,
                    };
                    if better {
                        *cur = Some(v.clone());
                    }
                }
                Acc::Sum { n, all_int, int, float } => {
                    *n += 1;
                    if let Some(f) = v.as_float() {
                        *float += f;
                    }
                    match v {
                        Value::Int(i) => *int = int.and_then(|acc| acc.checked_add(*i)),
                        _ => *all_int = false,
                    }
                }
                Acc::CountStar | Acc::Scalar => {}
            }
        }
    }

    fn finalize(
        &self,
        items: &[CAggItem],
        rows: &RowSet<'_>,
        params: &[Value],
    ) -> SqlResult<Vec<Value>> {
        use crate::ast::AggFunc;
        let mut orow = Vec::with_capacity(items.len());
        for (acc, item) in self.accs.iter().zip(items) {
            orow.push(match acc {
                Acc::CountStar => Value::Int(self.rows as i64),
                Acc::Count(n) => Value::Int(*n),
                Acc::Max(cur) | Acc::Min(cur) => cur.clone().unwrap_or(Value::Null),
                Acc::Sum { n, all_int, int, float } => {
                    if *n == 0 {
                        Value::Null
                    } else {
                        let CAggItem::Agg { func, .. } = item else {
                            unreachable!("sum acc comes from an agg item")
                        };
                        if *all_int && *func == AggFunc::Sum {
                            match int {
                                Some(total) => Value::Int(*total),
                                None => {
                                    return Err(SqlError::Arithmetic("SUM overflow".into()));
                                }
                            }
                        } else if *func == AggFunc::Sum {
                            Value::Float(*float)
                        } else {
                            Value::Float(*float / *n as f64)
                        }
                    }
                }
                Acc::Scalar => {
                    let CAggItem::Scalar(e) = item else {
                        unreachable!("scalar acc comes from a scalar item")
                    };
                    if self.rows == 0 {
                        Value::Null
                    } else {
                        ceval(e, Some(rows.view(self.first)), params)?
                    }
                }
            });
        }
        Ok(orow)
    }
}

fn exec_cinsert(db: &mut Database, i: &CInsert, params: &[Value]) -> SqlResult<QueryResult> {
    let mut counters = QueryCounters::default();
    let row = match &i.shape {
        CInsertShape::Full(values) => {
            values.iter().map(|e| ceval(e, None, params)).collect::<SqlResult<Vec<Value>>>()?
        }
        CInsertShape::Sparse(pairs) => {
            let mut row = vec![Value::Null; i.n_columns];
            for (idx, e) in pairs {
                row[*idx] = ceval(e, None, params)?;
            }
            row
        }
    };
    let n_indexes = db.table_at(i.table).schema().indexes().len() as u64;
    let (_, assigned) = db.insert_into(i.table, row)?;
    counters.rows_written += 1;
    counters.index_lookups += 1 + n_indexes;
    Ok(QueryResult {
        columns: Vec::new(),
        rows: Vec::new(),
        affected: 1,
        last_insert_id: assigned,
        counters,
        read_tables: Vec::new(),
        write_tables: vec![i.table_name.clone()],
        kind: StatementKind::Write,
    })
}

fn exec_cupdate(db: &mut Database, u: &CUpdate, params: &[Value]) -> SqlResult<QueryResult> {
    let mut counters = QueryCounters::default();
    let table = db.table_at(u.table);
    let path = u.path.bind(params)?;
    let candidates = candidate_rows(table, &path, &mut counters);

    // Filter and compute new rows immutably, then apply; SET expressions
    // see the old row.
    let mut updates: Vec<(RowId, Vec<Value>)> = Vec::new();
    for rid in candidates {
        let Some(row) = table.get(rid) else { continue };
        if let Some(f) = &u.filter {
            if !ceval(f, Some(RowView::Slice(row)), params)?.is_truthy() {
                continue;
            }
        }
        let mut new_row = row.to_vec();
        for (idx, e) in &u.sets {
            new_row[*idx] = ceval(e, Some(RowView::Slice(row)), params)?;
        }
        updates.push((rid, new_row));
    }
    let affected = updates.len() as u64;
    for (rid, new_row) in updates {
        db.update_row(u.table, rid, new_row)?;
        counters.rows_written += 1;
    }
    Ok(QueryResult {
        columns: Vec::new(),
        rows: Vec::new(),
        affected,
        last_insert_id: None,
        counters,
        read_tables: Vec::new(),
        write_tables: vec![u.table_name.clone()],
        kind: StatementKind::Write,
    })
}

fn exec_cdelete(db: &mut Database, d: &CDelete, params: &[Value]) -> SqlResult<QueryResult> {
    let mut counters = QueryCounters::default();
    let table = db.table_at(d.table);
    let path = d.path.bind(params)?;
    let candidates = candidate_rows(table, &path, &mut counters);

    let mut doomed: Vec<RowId> = Vec::new();
    for rid in candidates {
        let Some(row) = table.get(rid) else { continue };
        if let Some(f) = &d.filter {
            if !ceval(f, Some(RowView::Slice(row)), params)?.is_truthy() {
                continue;
            }
        }
        doomed.push(rid);
    }
    let affected = doomed.len() as u64;
    for rid in doomed {
        db.delete_row(d.table, rid)?;
        counters.rows_written += 1;
    }
    Ok(QueryResult {
        columns: Vec::new(),
        rows: Vec::new(),
        affected,
        last_insert_id: None,
        counters,
        read_tables: Vec::new(),
        write_tables: vec![d.table_name.clone()],
        kind: StatementKind::Write,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute_stmt;
    use crate::parser::parse;
    use crate::schema::{ColumnType, TableSchema};

    /// A small auction-shaped catalog matching the executor fixtures.
    fn auction_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("users")
                .column("id", ColumnType::Int)
                .column("nickname", ColumnType::Str)
                .column("region", ColumnType::Int)
                .primary_key("id")
                .auto_increment()
                .index("region")
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_table(
            TableSchema::builder("items")
                .column("id", ColumnType::Int)
                .column("name", ColumnType::Str)
                .column("seller", ColumnType::Int)
                .column("category", ColumnType::Int)
                .column("max_bid", ColumnType::Float)
                .column("nb_of_bids", ColumnType::Int)
                .primary_key("id")
                .auto_increment()
                .index("seller")
                .index("category")
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_table(
            TableSchema::builder("bids")
                .column("id", ColumnType::Int)
                .column("item_id", ColumnType::Int)
                .column("user_id", ColumnType::Int)
                .column("bid", ColumnType::Float)
                .column("qty", ColumnType::Int)
                .primary_key("id")
                .auto_increment()
                .index("item_id")
                .index("user_id")
                .build()
                .unwrap(),
        )
        .unwrap();
        for (nick, region) in [("ann", 1), ("bob", 1), ("cat", 2)] {
            db.execute(
                "INSERT INTO users (id, nickname, region) VALUES (NULL, ?, ?)",
                &[Value::str(nick), Value::Int(region)],
            )
            .unwrap();
        }
        for (name, seller, cat, max_bid, nb) in [
            ("lamp", 1, 10, 25.0, 3),
            ("desk", 1, 20, 80.0, 1),
            ("book", 2, 10, 5.0, 0),
            ("vase", 3, 10, 12.0, 2),
        ] {
            db.execute(
                "INSERT INTO items (id, name, seller, category, max_bid, nb_of_bids) \
                 VALUES (NULL, ?, ?, ?, ?, ?)",
                &[
                    Value::str(name),
                    Value::Int(seller),
                    Value::Int(cat),
                    Value::Float(max_bid),
                    Value::Int(nb),
                ],
            )
            .unwrap();
        }
        for (item, user, bid, qty) in [
            (1, 2, 20.0, 1),
            (1, 3, 22.5, 1),
            (1, 2, 25.0, 2),
            (2, 3, 80.0, 1),
            (4, 1, 12.0, 1),
            (4, 2, 11.0, 3),
        ] {
            db.execute(
                "INSERT INTO bids (id, item_id, user_id, bid, qty) VALUES (NULL, ?, ?, ?, ?)",
                &[Value::Int(item), Value::Int(user), Value::Float(bid), Value::Int(qty)],
            )
            .unwrap();
        }
        db
    }

    /// Queries covering every plan shape: point/secondary/range access,
    /// joins, aggregates, sorting, limits, expressions, writes.
    fn battery() -> Vec<(&'static str, Vec<Value>)> {
        vec![
            ("SELECT * FROM items WHERE id = ?", vec![Value::Int(2)]),
            ("SELECT * FROM items WHERE category = 10 ORDER BY id", vec![]),
            ("SELECT name FROM items WHERE id > 1 AND id <= 3", vec![]),
            ("SELECT name FROM items WHERE id BETWEEN ? AND ?", vec![Value::Int(1), Value::Int(3)]),
            ("SELECT * FROM items WHERE name = 'desk'", vec![]),
            (
                "SELECT i.name, u.nickname FROM items i \
                 INNER JOIN users u ON i.seller = u.id WHERE i.category = 10",
                vec![],
            ),
            (
                "SELECT u.nickname, i.name, b.bid FROM bids b \
                 JOIN items i ON b.item_id = i.id \
                 JOIN users u ON b.user_id = u.id \
                 WHERE b.qty > 0 ORDER BY b.bid DESC LIMIT 2",
                vec![],
            ),
            (
                "SELECT item_id, SUM(qty) AS total, COUNT(*) AS n, MAX(bid) AS top \
                 FROM bids GROUP BY item_id ORDER BY total DESC",
                vec![],
            ),
            ("SELECT COUNT(*), MAX(bid), SUM(qty) FROM bids WHERE bid > 1000", vec![]),
            ("SELECT AVG(qty), MIN(bid) FROM bids WHERE item_id = 1", vec![]),
            ("SELECT name, category AS cat FROM items ORDER BY cat, name DESC", vec![]),
            ("SELECT id FROM items ORDER BY id LIMIT 1, 2", vec![]),
            ("SELECT u.* FROM items i JOIN users u ON i.seller = u.id WHERE i.id = 1", vec![]),
            (
                "SELECT name, max_bid * 2 AS doubled FROM items \
                 WHERE max_bid + 1 > 13 ORDER BY doubled",
                vec![],
            ),
            ("SELECT name FROM items WHERE name LIKE '%a%' ORDER BY name", vec![]),
            ("SELECT name FROM items WHERE category IN (20, 30)", vec![]),
            ("SELECT name FROM items WHERE NULL = NULL", vec![]),
            (
                "SELECT i.name, b.bid FROM items i JOIN bids b ON i.id = b.item_id \
                 ORDER BY b.bid LIMIT 2, 3",
                vec![],
            ),
            ("SELECT id FROM items ORDER BY id LIMIT 2, 0", vec![]),
            ("SELECT id FROM items ORDER BY id LIMIT 9, 4", vec![]),
            (
                "SELECT item_id, COUNT(*) AS n FROM bids GROUP BY item_id \
                 ORDER BY n DESC LIMIT 1, 1",
                vec![],
            ),
            (
                "SELECT user_id, MIN(bid), AVG(qty) FROM bids GROUP BY user_id \
                 ORDER BY user_id LIMIT 2",
                vec![],
            ),
            (
                "SELECT i.name, b.qty FROM items i JOIN bids b ON i.nb_of_bids = b.qty \
                 ORDER BY i.id, b.id",
                vec![],
            ),
            (
                "SELECT i.name, b.qty FROM items i JOIN bids b ON i.nb_of_bids = b.qty \
                 WHERE i.id = 1",
                vec![],
            ),
            (
                "UPDATE items SET nb_of_bids = nb_of_bids + 1, max_bid = ? WHERE id = ?",
                vec![Value::Float(30.0), Value::Int(1)],
            ),
            ("DELETE FROM bids WHERE item_id = ?", vec![Value::Int(4)]),
            ("INSERT INTO users (id, nickname, region) VALUES (NULL, 'zed', 7)", vec![]),
            ("INSERT INTO users VALUES (99, 'yak', 8)", vec![]),
            ("SELECT COUNT(*) FROM bids", vec![]),
            ("LOCK TABLES users WRITE, items READ", vec![]),
            ("UNLOCK TABLES", vec![]),
        ]
    }

    /// The compiled path must produce byte-identical results — rows,
    /// columns, lock sets, and every counter — to the AST interpreter, on
    /// reads and writes alike.
    #[test]
    fn compiled_matches_interpreter_on_battery() {
        let mut compiled_db = auction_db();
        let mut interp_db = auction_db();
        for (sql, params) in battery() {
            let got = compiled_db.execute(sql, &params).expect(sql);
            let stmt = parse(sql).unwrap();
            let want = execute_stmt(&mut interp_db, &stmt, &params).expect(sql);
            assert_eq!(got, want, "divergence on {sql}");
        }
    }

    /// Warm plan-cache executions are identical to cold ones.
    #[test]
    fn warm_plan_equals_cold_plan() {
        let mut warm = auction_db();
        for (sql, params) in battery() {
            // Prime the cache (skip writes: they mutate state).
            if sql.starts_with("SELECT") {
                warm.execute(sql, &params).unwrap();
            }
        }
        let mut cold = warm.clone();
        cold.clear_caches();
        for (sql, params) in battery() {
            if !sql.starts_with("SELECT") {
                continue;
            }
            let w = warm.execute(sql, &params).unwrap();
            let c = cold.execute(sql, &params).unwrap();
            assert_eq!(w, c, "warm/cold divergence on {sql}");
        }
    }

    /// DDL bumps the schema version and invalidates cached plans; the
    /// recompiled plan still answers correctly and the stats record the
    /// invalidation.
    #[test]
    fn ddl_invalidates_plans() {
        let mut db = auction_db();
        let sql = "SELECT nickname FROM users WHERE id = ?";
        db.execute(sql, &[Value::Int(1)]).unwrap();
        db.execute(sql, &[Value::Int(2)]).unwrap();
        let before = db.stats();
        assert!(before.plan_cache_hits >= 1);

        db.create_table(
            TableSchema::builder("regions")
                .column("id", ColumnType::Int)
                .primary_key("id")
                .build()
                .unwrap(),
        )
        .unwrap();

        let r = db.execute(sql, &[Value::Int(1)]).unwrap();
        assert_eq!(r.rows[0][0], Value::str("ann"));
        let after = db.stats();
        assert_eq!(after.plan_invalidations - before.plan_invalidations, 1);
        // And the freshly compiled plan is hit again afterwards.
        db.execute(sql, &[Value::Int(3)]).unwrap();
        assert_eq!(db.stats().plan_cache_hits, after.plan_cache_hits + 1);
    }

    /// One plan serves all parameter bindings.
    #[test]
    fn parameters_bind_into_cached_plan() {
        let mut db = auction_db();
        let before = db.stats().plan_cache_hits;
        let sql = "SELECT name FROM items WHERE id = ?";
        let names: Vec<String> = (1..=4)
            .map(|i| {
                db.execute(sql, &[Value::Int(i)]).unwrap().rows[0][0].as_str().unwrap().to_string()
            })
            .collect();
        assert_eq!(names, vec!["lamp", "desk", "book", "vase"]);
        // 3 of the 4 executions reused the plan.
        assert_eq!(db.stats().plan_cache_hits - before, 3);
    }

    /// Compile errors are not cached: each call recompiles and reports.
    #[test]
    fn compile_errors_surface_every_call() {
        let mut db = auction_db();
        let before = db.stats().errors;
        assert!(db.execute("SELECT zz FROM users", &[]).is_err());
        assert!(db.execute("SELECT zz FROM users", &[]).is_err());
        assert_eq!(db.stats().errors, before + 2);
        // A bind-time error on a cached plan also reports per call.
        db.execute("SELECT * FROM users WHERE id = ?", &[Value::Int(1)]).unwrap();
        assert!(db.execute("SELECT * FROM users WHERE id = ?", &[]).is_err());
        assert!(matches!(
            db.execute("SELECT * FROM users WHERE id = ?", &[]).unwrap_err(),
            SqlError::MissingParam(0)
        ));
    }
}
