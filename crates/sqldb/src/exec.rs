//! Statement execution: scans, joins, filters, aggregation, ordering,
//! projection, and data modification.

use crate::ast::*;
use crate::cost::QueryCounters;
use crate::db::Database;
use crate::error::{SqlError, SqlResult};
use crate::plan::{choose_path, conjuncts, AccessPath};
use crate::table::{RowId, Table};
use crate::value::Value;
use std::cmp::Ordering;
use std::collections::BTreeMap;

/// What kind of statement a [`QueryResult`] came from; the middleware layer
/// uses this to drive implicit table locking.
#[derive(Debug, Clone, PartialEq)]
pub enum StatementKind {
    /// A SELECT.
    Read,
    /// An INSERT/UPDATE/DELETE.
    Write,
    /// `LOCK TABLES` — no data effect; the listed locks must be taken.
    LockTables(Vec<(String, TableLockKind)>),
    /// `UNLOCK TABLES` — no data effect; session locks must be dropped.
    UnlockTables,
    /// `BEGIN` / `START TRANSACTION` — no data effect; opens a transaction.
    Begin,
    /// `COMMIT` — no data effect; keeps the open transaction's writes.
    Commit,
    /// `ROLLBACK` — undoes the open transaction's writes.
    Rollback,
}

/// The outcome of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Output column names (empty for writes).
    pub columns: Vec<String>,
    /// Result rows (empty for writes).
    pub rows: Vec<Vec<Value>>,
    /// Rows inserted/updated/deleted.
    pub affected: u64,
    /// Key assigned by the last auto-increment insert.
    pub last_insert_id: Option<i64>,
    /// Execution counters (drives the cost model).
    pub counters: QueryCounters,
    /// Tables read (shared locks under MyISAM statement locking).
    pub read_tables: Vec<String>,
    /// Tables written (exclusive locks).
    pub write_tables: Vec<String>,
    /// Statement classification.
    pub kind: StatementKind,
}

impl QueryResult {
    pub(crate) fn empty(kind: StatementKind) -> Self {
        QueryResult {
            columns: Vec::new(),
            rows: Vec::new(),
            affected: 0,
            last_insert_id: None,
            counters: QueryCounters::default(),
            read_tables: Vec::new(),
            write_tables: Vec::new(),
            kind,
        }
    }

    /// Position of an output column by name.
    pub fn col_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// Value at `(row, column-name)`, if present.
    pub fn get(&self, row: usize, column: &str) -> Option<&Value> {
        let c = self.col_index(column)?;
        self.rows.get(row)?.get(c)
    }

    /// The single value of a one-row, one-column result (aggregates).
    pub fn scalar(&self) -> Option<&Value> {
        match (self.rows.len(), self.columns.len()) {
            (1, 1) => Some(&self.rows[0][0]),
            _ => self.rows.first()?.first(),
        }
    }

    /// `true` if the result has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of result rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }
}

/// Evaluates an expression that must not reference any column (used by the
/// planner for predicate constants and by INSERT values).
///
/// # Errors
///
/// Fails on column references, aggregates, or missing parameters.
pub fn eval_row_free(expr: &Expr, params: &[Value]) -> SqlResult<Value> {
    eval(expr, None, params)
}

struct ScopeEntry<'a> {
    alias: String,
    table: &'a Table,
    offset: usize,
}

/// Column-name resolution over the concatenated row of FROM + JOIN tables.
struct Scope<'a> {
    entries: Vec<ScopeEntry<'a>>,
    width: usize,
}

impl<'a> Scope<'a> {
    fn new() -> Self {
        Scope { entries: Vec::new(), width: 0 }
    }

    fn add(&mut self, alias: &str, table: &'a Table) {
        let offset = self.width;
        self.width += table.schema().columns().len();
        self.entries.push(ScopeEntry { alias: alias.to_string(), table, offset });
    }

    fn resolve(&self, col: &ColRef) -> SqlResult<usize> {
        match &col.table {
            Some(t) => {
                let e = self
                    .entries
                    .iter()
                    .find(|e| e.alias == *t)
                    .ok_or_else(|| SqlError::UnknownTable(t.clone()))?;
                let idx = e
                    .table
                    .schema()
                    .column_index(&col.column)
                    .ok_or_else(|| SqlError::UnknownColumn(format!("{t}.{}", col.column)))?;
                Ok(e.offset + idx)
            }
            None => {
                let mut found = None;
                for e in &self.entries {
                    if let Some(idx) = e.table.schema().column_index(&col.column) {
                        if found.is_some() {
                            return Err(SqlError::AmbiguousColumn(col.column.clone()));
                        }
                        found = Some(e.offset + idx);
                    }
                }
                found.ok_or_else(|| SqlError::UnknownColumn(col.column.clone()))
            }
        }
    }

    /// Output column names for `alias.*` (or all tables when `None`).
    fn star_columns(&self, alias: Option<&str>) -> SqlResult<Vec<(usize, String)>> {
        let mut out = Vec::new();
        let mut matched = false;
        for e in &self.entries {
            if alias.is_none() || alias == Some(e.alias.as_str()) {
                matched = true;
                for (i, c) in e.table.schema().columns().iter().enumerate() {
                    out.push((e.offset + i, c.name().to_string()));
                }
            }
        }
        if !matched {
            return Err(SqlError::UnknownTable(alias.unwrap_or("*").to_string()));
        }
        Ok(out)
    }
}

struct RowEnv<'a> {
    scope: &'a Scope<'a>,
    row: &'a [Value],
}

/// SQL comparison: NULL operands yield NULL (filtered as false).
pub(crate) fn compare(op: BinOp, l: &Value, r: &Value) -> Value {
    if l.is_null() || r.is_null() {
        return Value::Null;
    }
    let ord = l.cmp(r);
    let b = match op {
        BinOp::Eq => ord == Ordering::Equal,
        BinOp::Ne => ord != Ordering::Equal,
        BinOp::Lt => ord == Ordering::Less,
        BinOp::Le => ord != Ordering::Greater,
        BinOp::Gt => ord == Ordering::Greater,
        BinOp::Ge => ord != Ordering::Less,
        _ => unreachable!("not a comparison"),
    };
    Value::Int(b as i64)
}

fn eval(expr: &Expr, env: Option<&RowEnv<'_>>, params: &[Value]) -> SqlResult<Value> {
    match expr {
        Expr::Lit(v) => Ok(v.clone()),
        Expr::Param(i) => params.get(*i).cloned().ok_or(SqlError::MissingParam(*i)),
        Expr::Col(c) => {
            let env = env.ok_or_else(|| {
                SqlError::Unsupported(format!("column '{}' in row-free context", c.column))
            })?;
            let idx = env.scope.resolve(c)?;
            Ok(env.row[idx].clone())
        }
        Expr::Neg(e) => {
            let v = eval(e, env, params)?;
            match v {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(-i)),
                Value::Float(f) => Ok(Value::Float(-f)),
                other => Err(SqlError::TypeMismatch {
                    expected: "number",
                    found: other.type_name().to_string(),
                }),
            }
        }
        Expr::Not(e) => {
            let v = eval(e, env, params)?;
            if v.is_null() {
                Ok(Value::Null)
            } else {
                Ok(Value::Int(!v.is_truthy() as i64))
            }
        }
        Expr::Binary { op, lhs, rhs } => match op {
            BinOp::And => {
                let l = eval(lhs, env, params)?;
                if !l.is_null() && !l.is_truthy() {
                    return Ok(Value::Int(0));
                }
                let r = eval(rhs, env, params)?;
                if !r.is_null() && !r.is_truthy() {
                    return Ok(Value::Int(0));
                }
                if l.is_null() || r.is_null() {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Int(1))
                }
            }
            BinOp::Or => {
                let l = eval(lhs, env, params)?;
                if l.is_truthy() {
                    return Ok(Value::Int(1));
                }
                let r = eval(rhs, env, params)?;
                if r.is_truthy() {
                    return Ok(Value::Int(1));
                }
                if l.is_null() || r.is_null() {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Int(0))
                }
            }
            BinOp::Add => eval(lhs, env, params)?.add(&eval(rhs, env, params)?),
            BinOp::Sub => eval(lhs, env, params)?.sub(&eval(rhs, env, params)?),
            BinOp::Mul => eval(lhs, env, params)?.mul(&eval(rhs, env, params)?),
            BinOp::Div => eval(lhs, env, params)?.div(&eval(rhs, env, params)?),
            cmp => {
                let l = eval(lhs, env, params)?;
                let r = eval(rhs, env, params)?;
                Ok(compare(*cmp, &l, &r))
            }
        },
        Expr::Like { expr, pattern, negated } => {
            let v = eval(expr, env, params)?;
            let p = eval(pattern, env, params)?;
            if v.is_null() || p.is_null() {
                return Ok(Value::Null);
            }
            let m = v.like(&p)?;
            Ok(Value::Int((m != *negated) as i64))
        }
        Expr::Between { expr, lo, hi } => {
            let v = eval(expr, env, params)?;
            let l = eval(lo, env, params)?;
            let h = eval(hi, env, params)?;
            if v.is_null() || l.is_null() || h.is_null() {
                return Ok(Value::Null);
            }
            Ok(Value::Int((v >= l && v <= h) as i64))
        }
        Expr::InList { expr, list } => {
            let v = eval(expr, env, params)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            for item in list {
                let c = eval(item, env, params)?;
                if !c.is_null() && c == v {
                    return Ok(Value::Int(1));
                }
            }
            Ok(Value::Int(0))
        }
        Expr::IsNull { expr, negated } => {
            let v = eval(expr, env, params)?;
            Ok(Value::Int((v.is_null() != *negated) as i64))
        }
        Expr::Agg { .. } => Err(SqlError::Unsupported("aggregate outside of SELECT output".into())),
    }
}

/// Executes a parsed statement by walking the AST directly.
///
/// `Database::execute` runs statements through the compiled-plan path in
/// [`crate::compile`]; this interpreter is kept as the reference
/// implementation the parity tests compare against (results and counters
/// must be byte-identical between the two). Exposed to callers through
/// `Database::execute_interpreted`.
pub(crate) fn execute_stmt(
    db: &mut Database,
    stmt: &Stmt,
    params: &[Value],
) -> SqlResult<QueryResult> {
    match stmt {
        Stmt::Select(s) => exec_select(db, s, params),
        Stmt::Insert(i) => exec_insert(db, i, params),
        Stmt::Update(u) => exec_update(db, u, params),
        Stmt::Delete(d) => exec_delete(db, d, params),
        Stmt::LockTables(locks) => {
            for (t, _) in locks {
                db.table(t)?; // validate the tables exist
            }
            Ok(QueryResult::empty(StatementKind::LockTables(locks.clone())))
        }
        Stmt::UnlockTables => Ok(QueryResult::empty(StatementKind::UnlockTables)),
        Stmt::Begin => db.exec_txn_control(StatementKind::Begin),
        Stmt::Commit => db.exec_txn_control(StatementKind::Commit),
        Stmt::Rollback => db.exec_txn_control(StatementKind::Rollback),
    }
}

/// Collects candidate row ids for one table according to an access path.
pub(crate) fn candidate_rows(
    table: &Table,
    path: &AccessPath,
    counters: &mut QueryCounters,
) -> Vec<RowId> {
    match path {
        AccessPath::FullScan => {
            let ids: Vec<RowId> = table.scan().map(|(rid, _)| rid).collect();
            counters.rows_examined += ids.len() as u64;
            ids
        }
        AccessPath::IndexEq { col, key } => {
            counters.index_lookups += 1;
            let ids = table.index_lookup(*col, key);
            counters.rows_examined += ids.len() as u64;
            ids
        }
        AccessPath::IndexRange { col, lo, hi } => {
            counters.index_lookups += 1;
            let ids = table.index_range(*col, lo.as_bound(), hi.as_bound());
            counters.rows_examined += ids.len() as u64;
            ids
        }
    }
}

fn exec_select(db: &Database, s: &SelectStmt, params: &[Value]) -> SqlResult<QueryResult> {
    let mut counters = QueryCounters::default();
    let mut read_tables = vec![s.from.name.clone()];
    for j in &s.joins {
        if !read_tables.contains(&j.table.name) {
            read_tables.push(j.table.name.clone());
        }
    }

    // Build the scope in FROM, JOIN order.
    let base_table = db.table(&s.from.name)?;
    let mut scope = Scope::new();
    scope.add(s.from.effective_alias(), base_table);
    let join_tables: Vec<&Table> =
        s.joins.iter().map(|j| db.table(&j.table.name)).collect::<SqlResult<_>>()?;
    for (j, t) in s.joins.iter().zip(&join_tables) {
        scope.add(j.table.effective_alias(), t);
    }

    // Base access path from WHERE conjuncts.
    let conj: Vec<&Expr> = s.where_clause.as_ref().map(|w| conjuncts(w)).unwrap_or_default();
    let path = choose_path(base_table, s.from.effective_alias(), &conj, params)?;
    let base_ids = candidate_rows(base_table, &path, &mut counters);

    // Materialize combined rows, joining left to right.
    let mut combined: Vec<Vec<Value>> =
        base_ids.iter().filter_map(|rid| base_table.get(*rid)).map(|r| r.to_vec()).collect();

    for (jidx, (j, jt)) in s.joins.iter().zip(&join_tables).enumerate() {
        // Determine which side of ON references the joined table.
        let mut partial = Scope::new();
        partial.add(s.from.effective_alias(), base_table);
        for (k, t) in s.joins.iter().zip(&join_tables).take(jidx) {
            partial.add(k.table.effective_alias(), t);
        }
        let j_alias = j.table.effective_alias();
        let (outer_col, inner_col) = classify_join_cols(j, j_alias, jt, &partial)?;

        let mut next: Vec<Vec<Value>> = Vec::new();
        for row in &combined {
            let key = &row[outer_col];
            let matches: Vec<RowId> = if jt.has_index_on(inner_col) {
                counters.index_lookups += 1;
                jt.index_lookup(inner_col, key)
            } else {
                jt.scan().filter(|(_, r)| &r[inner_col] == key).map(|(rid, _)| rid).collect()
            };
            counters.rows_examined += matches.len().max(1) as u64;
            for rid in matches {
                if let Some(jrow) = jt.get(rid) {
                    let mut out = row.clone();
                    out.extend_from_slice(jrow);
                    next.push(out);
                }
            }
        }
        combined = next;
    }

    // Residual filter.
    if let Some(w) = &s.where_clause {
        let mut kept = Vec::with_capacity(combined.len());
        for row in combined {
            let env = RowEnv { scope: &scope, row: &row };
            if eval(w, Some(&env), params)?.is_truthy() {
                kept.push(row);
            }
        }
        combined = kept;
    }

    // Aggregation?
    let has_agg = s.group_by.is_some()
        || s.items.iter().any(|i| match i {
            SelectItem::Expr { expr, .. } => expr.contains_agg(),
            _ => false,
        });

    let (columns, mut out_rows) = if has_agg {
        aggregate(s, &scope, combined, params, &mut counters)?
    } else {
        // ORDER BY over source rows (can use non-projected columns).
        if !s.order_by.is_empty() {
            counters.sort_rows += combined.len() as u64;
            sort_source_rows(s, &scope, &mut combined, params)?;
        }
        apply_limit(&mut combined, s.limit);
        project(s, &scope, combined, params)?
    };

    if has_agg {
        // ORDER BY over the aggregated output.
        if !s.order_by.is_empty() {
            counters.sort_rows += out_rows.len() as u64;
            sort_output_rows(s, &columns, &mut out_rows, params)?;
        }
        apply_limit(&mut out_rows, s.limit);
    }

    counters.rows_returned += out_rows.len() as u64;
    counters.bytes_returned += out_rows
        .iter()
        .map(|r| r.iter().map(Value::wire_size).sum::<u64>() + 4 * r.len() as u64)
        .sum::<u64>();

    Ok(QueryResult {
        columns,
        rows: out_rows,
        affected: 0,
        last_insert_id: None,
        counters,
        read_tables,
        write_tables: Vec::new(),
        kind: StatementKind::Read,
    })
}

/// Resolves the ON clause: returns (column position in the combined row so
/// far, column position within the joined table).
fn classify_join_cols(
    j: &Join,
    j_alias: &str,
    jt: &Table,
    outer_scope: &Scope<'_>,
) -> SqlResult<(usize, usize)> {
    let on_joined = |c: &ColRef| -> Option<usize> {
        match &c.table {
            Some(t) if t == j_alias => jt.schema().column_index(&c.column),
            Some(_) => None,
            None => jt.schema().column_index(&c.column),
        }
    };
    // Prefer interpreting `right` as the joined-table side (the common
    // `JOIN t ON outer.x = t.y` shape), then try the reverse.
    if let Some(inner) = on_joined(&j.right) {
        if let Ok(outer) = outer_scope.resolve(&j.left) {
            return Ok((outer, inner));
        }
    }
    if let Some(inner) = on_joined(&j.left) {
        if let Ok(outer) = outer_scope.resolve(&j.right) {
            return Ok((outer, inner));
        }
    }
    Err(SqlError::Unsupported(format!(
        "JOIN ON must equate an earlier table's column with {j_alias}'s column"
    )))
}

/// Output name for an expression select item without an alias.
pub(crate) fn expr_name(expr: &Expr) -> String {
    match expr {
        Expr::Col(c) => c.column.clone(),
        Expr::Agg { func, col } => {
            let f = match func {
                AggFunc::Count => "count",
                AggFunc::Sum => "sum",
                AggFunc::Max => "max",
                AggFunc::Min => "min",
                AggFunc::Avg => "avg",
            };
            match col {
                Some(c) => format!("{f}({})", c.column),
                None => format!("{f}(*)"),
            }
        }
        _ => "expr".to_string(),
    }
}

fn project(
    s: &SelectStmt,
    scope: &Scope<'_>,
    rows: Vec<Vec<Value>>,
    params: &[Value],
) -> SqlResult<(Vec<String>, Vec<Vec<Value>>)> {
    // Pre-resolve the projection plan.
    enum Proj {
        Cols(Vec<(usize, String)>),
        Expr(Expr, String),
    }
    let mut plan = Vec::new();
    for item in &s.items {
        match item {
            SelectItem::Star => plan.push(Proj::Cols(scope.star_columns(None)?)),
            SelectItem::TableStar(t) => plan.push(Proj::Cols(scope.star_columns(Some(t))?)),
            SelectItem::Expr { expr, alias } => {
                let name = alias.clone().unwrap_or_else(|| expr_name(expr));
                plan.push(Proj::Expr(expr.clone(), name));
            }
        }
    }
    let mut columns = Vec::new();
    for p in &plan {
        match p {
            Proj::Cols(cols) => columns.extend(cols.iter().map(|(_, n)| n.clone())),
            Proj::Expr(_, name) => columns.push(name.clone()),
        }
    }
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        let mut o = Vec::with_capacity(columns.len());
        for p in &plan {
            match p {
                Proj::Cols(cols) => o.extend(cols.iter().map(|(i, _)| row[*i].clone())),
                Proj::Expr(e, _) => {
                    let env = RowEnv { scope, row: &row };
                    o.push(eval(e, Some(&env), params)?);
                }
            }
        }
        out.push(o);
    }
    Ok((columns, out))
}

/// GROUP BY / aggregate evaluation. Non-aggregate select items take their
/// value from the first row of each group (MySQL 3.23 semantics).
fn aggregate(
    s: &SelectStmt,
    scope: &Scope<'_>,
    rows: Vec<Vec<Value>>,
    params: &[Value],
    counters: &mut QueryCounters,
) -> SqlResult<(Vec<String>, Vec<Vec<Value>>)> {
    let group_col = match &s.group_by {
        Some(c) => Some(scope.resolve(c)?),
        None => None,
    };
    // Group rows (BTreeMap gives deterministic group order).
    let mut groups: BTreeMap<Value, Vec<Vec<Value>>> = BTreeMap::new();
    match group_col {
        Some(gc) => {
            for row in rows {
                groups.entry(row[gc].clone()).or_default().push(row);
            }
        }
        None => {
            groups.insert(Value::Int(0), rows);
        }
    }

    let mut columns = Vec::new();
    for item in &s.items {
        match item {
            SelectItem::Expr { expr, alias } => {
                columns.push(alias.clone().unwrap_or_else(|| expr_name(expr)));
            }
            _ => return Err(SqlError::Unsupported("'*' in an aggregate SELECT".into())),
        }
    }

    let mut out = Vec::with_capacity(groups.len());
    for (_, grows) in groups {
        counters.rows_examined += grows.len() as u64;
        let mut orow = Vec::with_capacity(columns.len());
        for item in &s.items {
            let SelectItem::Expr { expr, .. } = item else { unreachable!("checked above") };
            orow.push(eval_agg_item(expr, scope, &grows, params)?);
        }
        // A global aggregate over zero rows still yields one output row
        // (COUNT(*) = 0); a GROUP BY over zero rows yields none, which the
        // empty `groups` map already handles.
        out.push(orow);
    }
    if out.is_empty() && group_col.is_none() {
        let mut orow = Vec::with_capacity(columns.len());
        for item in &s.items {
            let SelectItem::Expr { expr, .. } = item else { unreachable!() };
            orow.push(eval_agg_item(expr, scope, &[], params)?);
        }
        out.push(orow);
    }
    Ok((columns, out))
}

/// Evaluates one select item over a group of rows.
fn eval_agg_item(
    expr: &Expr,
    scope: &Scope<'_>,
    rows: &[Vec<Value>],
    params: &[Value],
) -> SqlResult<Value> {
    match expr {
        Expr::Agg { func, col } => {
            let values: Vec<Value> = match col {
                None => return Ok(Value::Int(rows.len() as i64)),
                Some(c) => {
                    let idx = scope.resolve(c)?;
                    rows.iter().map(|r| r[idx].clone()).filter(|v| !v.is_null()).collect()
                }
            };
            match func {
                AggFunc::Count => Ok(Value::Int(values.len() as i64)),
                AggFunc::Max => Ok(values.into_iter().max().unwrap_or(Value::Null)),
                AggFunc::Min => Ok(values.into_iter().min().unwrap_or(Value::Null)),
                AggFunc::Sum | AggFunc::Avg => {
                    if values.is_empty() {
                        return Ok(Value::Null);
                    }
                    let n = values.len();
                    let all_int = values.iter().all(|v| matches!(v, Value::Int(_)));
                    if all_int && *func == AggFunc::Sum {
                        let mut acc: i64 = 0;
                        for v in &values {
                            acc = acc
                                .checked_add(v.as_int().expect("int"))
                                .ok_or_else(|| SqlError::Arithmetic("SUM overflow".into()))?;
                        }
                        Ok(Value::Int(acc))
                    } else {
                        let total: f64 = values.iter().filter_map(Value::as_float).sum();
                        if *func == AggFunc::Sum {
                            Ok(Value::Float(total))
                        } else {
                            Ok(Value::Float(total / n as f64))
                        }
                    }
                }
            }
        }
        // Non-aggregate item: value from the group's first row.
        other => match rows.first() {
            Some(row) => {
                let env = RowEnv { scope, row };
                eval(other, Some(&env), params)
            }
            None => Ok(Value::Null),
        },
    }
}

/// Sorts pre-projection rows by ORDER BY keys (columns or select aliases).
fn sort_source_rows(
    s: &SelectStmt,
    scope: &Scope<'_>,
    rows: &mut [Vec<Value>],
    params: &[Value],
) -> SqlResult<()> {
    // Resolve each key to an expression evaluable in row scope.
    let mut keys: Vec<(Expr, bool)> = Vec::new();
    for k in &s.order_by {
        let expr = match &k.expr {
            Expr::Col(c) if c.table.is_none() => {
                // Try select-item alias first.
                let aliased = s.items.iter().find_map(|i| match i {
                    SelectItem::Expr { expr, alias: Some(a) } if *a == c.column => {
                        Some(expr.clone())
                    }
                    _ => None,
                });
                aliased.unwrap_or_else(|| k.expr.clone())
            }
            _ => k.expr.clone(),
        };
        keys.push((expr, k.desc));
    }
    // Precompute sort keys to avoid re-evaluating during comparisons.
    let mut decorated: Vec<(Vec<Value>, usize)> = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let env = RowEnv { scope, row };
        let kv: Vec<Value> =
            keys.iter().map(|(e, _)| eval(e, Some(&env), params)).collect::<SqlResult<_>>()?;
        decorated.push((kv, i));
    }
    decorated.sort_by(|(a, ai), (b, bi)| {
        for ((av, bv), (_, desc)) in a.iter().zip(b).zip(&keys) {
            let ord = av.cmp(bv);
            let ord = if *desc { ord.reverse() } else { ord };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        ai.cmp(bi) // stable tie-break
    });
    let order: Vec<usize> = decorated.into_iter().map(|(_, i)| i).collect();
    apply_permutation(rows, &order);
    Ok(())
}

/// Sorts aggregated output rows by ORDER BY keys (aliases, output columns,
/// or structurally matching aggregate expressions).
fn sort_output_rows(
    s: &SelectStmt,
    columns: &[String],
    rows: &mut [Vec<Value>],
    params: &[Value],
) -> SqlResult<()> {
    let mut keys: Vec<(usize, bool)> = Vec::new();
    for k in &s.order_by {
        let idx = match &k.expr {
            Expr::Col(c) if c.table.is_none() => columns.iter().position(|n| *n == c.column),
            Expr::Agg { .. } => {
                // Find a select item with the same expression.
                s.items.iter().enumerate().find_map(|(i, item)| match item {
                    SelectItem::Expr { expr, .. } if *expr == k.expr => Some(i),
                    _ => None,
                })
            }
            _ => None,
        };
        let idx = idx.ok_or_else(|| {
            SqlError::Unsupported("ORDER BY in aggregate SELECT must name an output column".into())
        })?;
        keys.push((idx, k.desc));
    }
    let _ = params;
    rows.sort_by(|a, b| {
        for (idx, desc) in &keys {
            let ord = a[*idx].cmp(&b[*idx]);
            let ord = if *desc { ord.reverse() } else { ord };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    });
    Ok(())
}

fn apply_permutation(rows: &mut [Vec<Value>], order: &[usize]) {
    let snapshot: Vec<Vec<Value>> = order.iter().map(|i| rows[*i].clone()).collect();
    for (dst, row) in rows.iter_mut().zip(snapshot) {
        *dst = row;
    }
}

/// Applies `LIMIT offset, count` in place. Truncating to the window's end
/// first means `split_off` moves only the kept rows (at most `count`),
/// instead of `drain(..offset)` shifting the entire tail across the gap.
/// Offsets past the end clear the vector; `offset + count` saturates rather
/// than overflowing.
pub(crate) fn apply_limit<T>(rows: &mut Vec<T>, limit: Option<(u64, u64)>) {
    if let Some((offset, count)) = limit {
        let offset = usize::try_from(offset).unwrap_or(usize::MAX);
        let count = usize::try_from(count).unwrap_or(usize::MAX);
        if offset >= rows.len() {
            rows.clear();
            return;
        }
        rows.truncate(offset.saturating_add(count).min(rows.len()));
        if offset > 0 {
            *rows = rows.split_off(offset);
        }
    }
}

fn exec_insert(db: &mut Database, i: &InsertStmt, params: &[Value]) -> SqlResult<QueryResult> {
    let mut counters = QueryCounters::default();
    let values: Vec<Value> =
        i.values.iter().map(|e| eval_row_free(e, params)).collect::<SqlResult<_>>()?;
    let tid = db.table_id(&i.table)?;
    let table = db.table_at(tid);
    let row = match &i.columns {
        None => {
            if values.len() != table.schema().columns().len() {
                return Err(SqlError::Constraint(format!(
                    "INSERT supplies {} values for {} columns",
                    values.len(),
                    table.schema().columns().len()
                )));
            }
            values
        }
        Some(cols) => {
            if cols.len() != values.len() {
                return Err(SqlError::Constraint("INSERT column/value count mismatch".into()));
            }
            let mut row = vec![Value::Null; table.schema().columns().len()];
            for (c, v) in cols.iter().zip(values) {
                let idx = table
                    .schema()
                    .column_index(c)
                    .ok_or_else(|| SqlError::UnknownColumn(c.clone()))?;
                row[idx] = v;
            }
            row
        }
    };
    let n_indexes = table.schema().indexes().len() as u64;
    let (_, assigned) = db.insert_into(tid, row)?;
    counters.rows_written += 1;
    counters.index_lookups += 1 + n_indexes;
    Ok(QueryResult {
        columns: Vec::new(),
        rows: Vec::new(),
        affected: 1,
        last_insert_id: assigned,
        counters,
        read_tables: Vec::new(),
        write_tables: vec![i.table.clone()],
        kind: StatementKind::Write,
    })
}

fn exec_update(db: &mut Database, u: &UpdateStmt, params: &[Value]) -> SqlResult<QueryResult> {
    let mut counters = QueryCounters::default();
    let tid = db.table_id(&u.table)?;
    let table = db.table_at(tid);
    let conj: Vec<&Expr> = u.where_clause.as_ref().map(|w| conjuncts(w)).unwrap_or_default();
    let path = choose_path(table, &u.table, &conj, params)?;
    let candidates = candidate_rows(table, &path, &mut counters);

    // Filter and compute new rows immutably, then apply.
    let mut scope = Scope::new();
    scope.add(&u.table, table);
    let set_indices: Vec<usize> = u
        .sets
        .iter()
        .map(|(c, _)| {
            table.schema().column_index(c).ok_or_else(|| SqlError::UnknownColumn(c.clone()))
        })
        .collect::<SqlResult<_>>()?;
    let mut updates: Vec<(RowId, Vec<Value>)> = Vec::new();
    for rid in candidates {
        let Some(row) = table.get(rid) else { continue };
        if let Some(w) = &u.where_clause {
            let env = RowEnv { scope: &scope, row };
            if !eval(w, Some(&env), params)?.is_truthy() {
                continue;
            }
        }
        let mut new_row = row.to_vec();
        for ((_, e), idx) in u.sets.iter().zip(&set_indices) {
            let env = RowEnv { scope: &scope, row };
            new_row[*idx] = eval(e, Some(&env), params)?;
        }
        updates.push((rid, new_row));
    }
    drop(scope);
    let affected = updates.len() as u64;
    for (rid, new_row) in updates {
        db.update_row(tid, rid, new_row)?;
        counters.rows_written += 1;
    }
    Ok(QueryResult {
        columns: Vec::new(),
        rows: Vec::new(),
        affected,
        last_insert_id: None,
        counters,
        read_tables: Vec::new(),
        write_tables: vec![u.table.clone()],
        kind: StatementKind::Write,
    })
}

fn exec_delete(db: &mut Database, d: &DeleteStmt, params: &[Value]) -> SqlResult<QueryResult> {
    let mut counters = QueryCounters::default();
    let tid = db.table_id(&d.table)?;
    let table = db.table_at(tid);
    let conj: Vec<&Expr> = d.where_clause.as_ref().map(|w| conjuncts(w)).unwrap_or_default();
    let path = choose_path(table, &d.table, &conj, params)?;
    let candidates = candidate_rows(table, &path, &mut counters);

    let mut scope = Scope::new();
    scope.add(&d.table, table);
    let mut doomed: Vec<RowId> = Vec::new();
    for rid in candidates {
        let Some(row) = table.get(rid) else { continue };
        if let Some(w) = &d.where_clause {
            let env = RowEnv { scope: &scope, row };
            if !eval(w, Some(&env), params)?.is_truthy() {
                continue;
            }
        }
        doomed.push(rid);
    }
    drop(scope);
    let affected = doomed.len() as u64;
    for rid in doomed {
        db.delete_row(tid, rid)?;
        counters.rows_written += 1;
    }
    Ok(QueryResult {
        columns: Vec::new(),
        rows: Vec::new(),
        affected,
        last_insert_id: None,
        counters,
        read_tables: Vec::new(),
        write_tables: vec![d.table.clone()],
        kind: StatementKind::Write,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::Database;
    use crate::schema::{ColumnType, TableSchema};

    /// A small auction-shaped catalog: users, items, bids.
    fn auction_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("users")
                .column("id", ColumnType::Int)
                .column("nickname", ColumnType::Str)
                .column("region", ColumnType::Int)
                .primary_key("id")
                .auto_increment()
                .index("region")
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_table(
            TableSchema::builder("items")
                .column("id", ColumnType::Int)
                .column("name", ColumnType::Str)
                .column("seller", ColumnType::Int)
                .column("category", ColumnType::Int)
                .column("max_bid", ColumnType::Float)
                .column("nb_of_bids", ColumnType::Int)
                .primary_key("id")
                .auto_increment()
                .index("seller")
                .index("category")
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_table(
            TableSchema::builder("bids")
                .column("id", ColumnType::Int)
                .column("item_id", ColumnType::Int)
                .column("user_id", ColumnType::Int)
                .column("bid", ColumnType::Float)
                .column("qty", ColumnType::Int)
                .primary_key("id")
                .auto_increment()
                .index("item_id")
                .index("user_id")
                .build()
                .unwrap(),
        )
        .unwrap();
        for (nick, region) in [("ann", 1), ("bob", 1), ("cat", 2)] {
            db.execute(
                "INSERT INTO users (id, nickname, region) VALUES (NULL, ?, ?)",
                &[Value::str(nick), Value::Int(region)],
            )
            .unwrap();
        }
        for (name, seller, cat, max_bid, nb) in [
            ("lamp", 1, 10, 25.0, 3),
            ("desk", 1, 20, 80.0, 1),
            ("book", 2, 10, 5.0, 0),
            ("vase", 3, 10, 12.0, 2),
        ] {
            db.execute(
                "INSERT INTO items (id, name, seller, category, max_bid, nb_of_bids) \
                 VALUES (NULL, ?, ?, ?, ?, ?)",
                &[
                    Value::str(name),
                    Value::Int(seller),
                    Value::Int(cat),
                    Value::Float(max_bid),
                    Value::Int(nb),
                ],
            )
            .unwrap();
        }
        for (item, user, bid, qty) in [
            (1, 2, 20.0, 1),
            (1, 3, 22.5, 1),
            (1, 2, 25.0, 2),
            (2, 3, 80.0, 1),
            (4, 1, 12.0, 1),
            (4, 2, 11.0, 3),
        ] {
            db.execute(
                "INSERT INTO bids (id, item_id, user_id, bid, qty) VALUES (NULL, ?, ?, ?, ?)",
                &[Value::Int(item), Value::Int(user), Value::Float(bid), Value::Int(qty)],
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn join_with_index_lookup() {
        let mut db = auction_db();
        let r = db
            .execute(
                "SELECT i.name, u.nickname FROM items i \
                 INNER JOIN users u ON i.seller = u.id WHERE i.category = 10",
                &[],
            )
            .unwrap();
        let mut pairs: Vec<(String, String)> = r
            .rows
            .iter()
            .map(|row| (row[0].as_str().unwrap().to_string(), row[1].as_str().unwrap().to_string()))
            .collect();
        pairs.sort();
        assert_eq!(
            pairs,
            vec![
                ("book".into(), "bob".into()),
                ("lamp".into(), "ann".into()),
                ("vase".into(), "cat".into()),
            ]
        );
        assert_eq!(r.columns, vec!["name", "nickname"]);
        // Both tables appear in the lock set.
        assert_eq!(r.read_tables, vec!["items", "users"]);
    }

    #[test]
    fn join_reversed_on_clause() {
        let mut db = auction_db();
        let r = db
            .execute(
                "SELECT b.bid FROM items i JOIN bids b ON i.id = b.item_id WHERE i.id = 1",
                &[],
            )
            .unwrap();
        assert_eq!(r.rows.len(), 3);
    }

    #[test]
    fn two_joins_chain() {
        let mut db = auction_db();
        let r = db
            .execute(
                "SELECT u.nickname, i.name, b.bid FROM bids b \
                 JOIN items i ON b.item_id = i.id \
                 JOIN users u ON b.user_id = u.id \
                 WHERE b.qty > 0 ORDER BY b.bid DESC LIMIT 2",
                &[],
            )
            .unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0][2], Value::Float(80.0));
        assert_eq!(r.rows[1][2], Value::Float(25.0));
    }

    #[test]
    fn group_by_with_aggregates_and_order() {
        let mut db = auction_db();
        // Total quantity bid per item, best sellers style.
        let r = db
            .execute(
                "SELECT item_id, SUM(qty) AS total, COUNT(*) AS n, MAX(bid) AS top \
                 FROM bids GROUP BY item_id ORDER BY total DESC",
                &[],
            )
            .unwrap();
        assert_eq!(r.columns, vec!["item_id", "total", "n", "top"]);
        assert_eq!(r.rows.len(), 3);
        // item 1 and item 4 both have qty total 4; BTreeMap order then sort
        // by total desc with stable ordering keeps item 1 first.
        assert_eq!(r.rows[0][1], Value::Int(4));
        assert_eq!(r.rows[2][1], Value::Int(1));
        let top_of_first = r.rows[0][3].as_float().unwrap();
        assert!(top_of_first > 0.0);
    }

    #[test]
    fn global_aggregates_over_empty_set() {
        let mut db = auction_db();
        let r = db
            .execute("SELECT COUNT(*), MAX(bid), SUM(qty) FROM bids WHERE bid > 1000", &[])
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Value::Int(0));
        assert_eq!(r.rows[0][1], Value::Null);
        assert_eq!(r.rows[0][2], Value::Null);
    }

    #[test]
    fn group_by_over_empty_set_returns_no_rows() {
        let mut db = auction_db();
        let r = db
            .execute("SELECT item_id, COUNT(*) FROM bids WHERE bid > 1000 GROUP BY item_id", &[])
            .unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn avg_and_min() {
        let mut db = auction_db();
        let r = db.execute("SELECT AVG(qty), MIN(bid) FROM bids WHERE item_id = 1", &[]).unwrap();
        let avg = r.rows[0][0].as_float().unwrap();
        assert!((avg - 4.0 / 3.0).abs() < 1e-9);
        assert_eq!(r.rows[0][1], Value::Float(20.0));
    }

    #[test]
    fn order_by_alias_and_multiple_keys() {
        let mut db = auction_db();
        let r = db
            .execute("SELECT name, category AS cat FROM items ORDER BY cat, name DESC", &[])
            .unwrap();
        let names: Vec<&str> = r.rows.iter().map(|r| r[0].as_str().unwrap()).collect();
        assert_eq!(names, vec!["vase", "lamp", "book", "desk"]);
    }

    #[test]
    fn limit_and_offset() {
        let mut db = auction_db();
        let all = db.execute("SELECT id FROM items ORDER BY id", &[]).unwrap();
        assert_eq!(all.rows.len(), 4);
        let page = db.execute("SELECT id FROM items ORDER BY id LIMIT 1, 2", &[]).unwrap();
        assert_eq!(page.rows, vec![vec![Value::Int(2)], vec![Value::Int(3)]]);
        let beyond = db.execute("SELECT id FROM items ORDER BY id LIMIT 100, 5", &[]).unwrap();
        assert!(beyond.is_empty());
    }

    #[test]
    fn apply_limit_window_edges() {
        // Offset past the end clears.
        let mut v: Vec<i32> = (0..5).collect();
        apply_limit(&mut v, Some((5, 3)));
        assert!(v.is_empty());
        let mut v: Vec<i32> = (0..5).collect();
        apply_limit(&mut v, Some((100, 3)));
        assert!(v.is_empty());
        // offset + count saturates instead of overflowing.
        let mut v: Vec<i32> = (0..5).collect();
        apply_limit(&mut v, Some((2, u64::MAX)));
        assert_eq!(v, vec![2, 3, 4]);
        let mut v: Vec<i32> = (0..5).collect();
        apply_limit(&mut v, Some((u64::MAX, u64::MAX)));
        assert!(v.is_empty());
        // Zero-count window is empty even with a valid offset.
        let mut v: Vec<i32> = (0..5).collect();
        apply_limit(&mut v, Some((2, 0)));
        assert!(v.is_empty());
        // Interior window.
        let mut v: Vec<i32> = (0..10).collect();
        apply_limit(&mut v, Some((3, 4)));
        assert_eq!(v, vec![3, 4, 5, 6]);
        // No limit leaves rows alone.
        let mut v: Vec<i32> = (0..3).collect();
        apply_limit(&mut v, None);
        assert_eq!(v, vec![0, 1, 2]);
    }

    #[test]
    fn select_star_and_table_star() {
        let mut db = auction_db();
        let r = db.execute("SELECT * FROM users WHERE id = 1", &[]).unwrap();
        assert_eq!(r.columns, vec!["id", "nickname", "region"]);
        let r = db
            .execute("SELECT u.* FROM items i JOIN users u ON i.seller = u.id WHERE i.id = 1", &[])
            .unwrap();
        assert_eq!(r.columns, vec!["id", "nickname", "region"]);
        assert_eq!(r.rows[0][1], Value::str("ann"));
    }

    #[test]
    fn expression_projection_and_where_arithmetic() {
        let mut db = auction_db();
        let r = db
            .execute(
                "SELECT name, max_bid * 2 AS doubled FROM items WHERE max_bid + 1 > 13 ORDER BY doubled",
                &[],
            )
            .unwrap();
        let names: Vec<&str> = r.rows.iter().map(|r| r[0].as_str().unwrap()).collect();
        assert_eq!(names, vec!["lamp", "desk"]);
        assert_eq!(r.rows[0][1], Value::Float(50.0));
    }

    #[test]
    fn like_and_in_and_null_semantics() {
        let mut db = auction_db();
        let r =
            db.execute("SELECT name FROM items WHERE name LIKE '%a%' ORDER BY name", &[]).unwrap();
        let names: Vec<&str> = r.rows.iter().map(|r| r[0].as_str().unwrap()).collect();
        assert_eq!(names, vec!["lamp", "vase"]);
        let r = db.execute("SELECT name FROM items WHERE category IN (20, 30)", &[]).unwrap();
        assert_eq!(r.rows.len(), 1);
        // NULL never matches a comparison.
        let r = db.execute("SELECT name FROM items WHERE NULL = NULL", &[]).unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn ambiguous_column_is_an_error() {
        let mut db = auction_db();
        let err =
            db.execute("SELECT id FROM items i JOIN users u ON i.seller = u.id", &[]).unwrap_err();
        assert!(matches!(err, SqlError::AmbiguousColumn(_)));
    }

    #[test]
    fn unknown_references_error() {
        let mut db = auction_db();
        assert!(matches!(
            db.execute("SELECT zz FROM users", &[]).unwrap_err(),
            SqlError::UnknownColumn(_)
        ));
        assert!(matches!(
            db.execute("SELECT u.id FROM users x", &[]).unwrap_err(),
            SqlError::UnknownTable(_)
        ));
    }

    #[test]
    fn update_with_expression_and_index_path() {
        let mut db = auction_db();
        let r = db
            .execute(
                "UPDATE items SET nb_of_bids = nb_of_bids + 1, max_bid = ? WHERE id = ?",
                &[Value::Float(30.0), Value::Int(1)],
            )
            .unwrap();
        assert_eq!(r.affected, 1);
        // Point update examined only the one row.
        assert_eq!(r.counters.rows_examined, 1);
        let r = db.execute("SELECT nb_of_bids, max_bid FROM items WHERE id = 1", &[]).unwrap();
        assert_eq!(r.rows[0], vec![Value::Int(4), Value::Float(30.0)]);
    }

    #[test]
    fn delete_via_secondary_index() {
        let mut db = auction_db();
        let r = db.execute("DELETE FROM bids WHERE item_id = ?", &[Value::Int(1)]).unwrap();
        assert_eq!(r.affected, 3);
        let left = db.execute("SELECT COUNT(*) FROM bids", &[]).unwrap();
        assert_eq!(left.scalar(), Some(&Value::Int(3)));
    }

    #[test]
    fn insert_without_column_list() {
        let mut db = auction_db();
        db.execute("INSERT INTO users VALUES (99, 'zed', 7)", &[]).unwrap();
        let r = db.execute("SELECT nickname FROM users WHERE id = 99", &[]).unwrap();
        assert_eq!(r.rows[0][0], Value::str("zed"));
        // Arity mismatch is caught.
        assert!(db.execute("INSERT INTO users VALUES (1, 'x')", &[]).is_err());
    }

    #[test]
    fn insert_missing_not_null_column_fails() {
        let mut db = auction_db();
        let err = db.execute("INSERT INTO users (id) VALUES (NULL)", &[]).unwrap_err();
        assert!(matches!(err, SqlError::Constraint(_)));
    }

    #[test]
    fn counters_distinguish_scan_from_lookup() {
        let mut db = auction_db();
        let by_pk = db.execute("SELECT * FROM items WHERE id = 2", &[]).unwrap();
        assert_eq!(by_pk.counters.rows_examined, 1);
        let scan = db.execute("SELECT * FROM items WHERE name = 'desk'", &[]).unwrap();
        assert_eq!(scan.counters.rows_examined, 4);
        assert!(scan.counters.bytes_returned > 0);
    }

    #[test]
    fn sort_counters_accumulate() {
        let mut db = auction_db();
        let r = db.execute("SELECT * FROM items ORDER BY max_bid DESC", &[]).unwrap();
        assert_eq!(r.counters.sort_rows, 4);
    }

    #[test]
    fn row_free_eval() {
        assert_eq!(
            eval_row_free(
                &Expr::binary(BinOp::Add, Expr::Lit(Value::Int(2)), Expr::Param(0)),
                &[Value::Int(5)]
            )
            .unwrap(),
            Value::Int(7)
        );
        assert!(eval_row_free(&Expr::Col(ColRef::new("x")), &[]).is_err());
    }

    #[test]
    fn query_result_helpers() {
        let mut db = auction_db();
        let r = db.execute("SELECT nickname, region FROM users WHERE id = 1", &[]).unwrap();
        assert_eq!(r.col_index("region"), Some(1));
        assert_eq!(r.get(0, "nickname"), Some(&Value::str("ann")));
        assert_eq!(r.get(0, "missing"), None);
        assert_eq!(r.len(), 1);
        assert!(!r.is_empty());
    }
}
