//! The database facade: catalog, statement cache, execution entry point.

use crate::ast::Stmt;
use crate::cache::{CacheKey, ResultCache, ResultCacheConfig, TableWrites};
use crate::compile::{compile, exec_compiled, CompiledStmt};
use crate::cost::{DbCostModel, QueryCounters};
use crate::error::{SqlError, SqlResult};
use crate::exec::{QueryResult, StatementKind};
use crate::parser::parse;
use crate::schema::TableSchema;
use crate::table::{RowId, Table};
use crate::txn::{TxnLog, UndoOp};
use crate::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// Cumulative engine statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DbStats {
    /// Statements executed.
    pub statements: u64,
    /// Statement-cache hits.
    pub cache_hits: u64,
    /// Statements that returned an error.
    pub errors: u64,
    /// Executions served by a cached compiled plan.
    pub plan_cache_hits: u64,
    /// Executions that had to compile (or recompile) a plan.
    pub plan_cache_misses: u64,
    /// Cached plans discarded because DDL changed the schema version.
    pub plan_invalidations: u64,
    /// Read statements answered from the result cache without executing.
    pub result_cache_hits: u64,
    /// Cacheable read statements that missed the result cache.
    pub result_cache_misses: u64,
    /// Result-cache entries dropped by commit-driven invalidation.
    pub result_cache_invalidations: u64,
    /// Cacheable reads that skipped the result cache because the open
    /// transaction had written one of their tables.
    pub result_cache_bypasses: u64,
}

impl DbStats {
    /// Classifies the plan-cache outcome of the statements executed between
    /// the `before` snapshot and this one: `Some(true)` when every execution
    /// hit a cached plan, `Some(false)` when at least one compiled, and
    /// `None` when nothing touched the plan cache (e.g. transaction-control
    /// statements, which bypass it).
    pub fn plan_outcome_since(&self, before: &DbStats) -> Option<bool> {
        let hits = self.plan_cache_hits - before.plan_cache_hits;
        let misses = self.plan_cache_misses - before.plan_cache_misses;
        if misses > 0 {
            Some(false)
        } else if hits > 0 {
            Some(true)
        } else {
            None
        }
    }
}

/// An in-memory relational database: tables, a parsed-statement cache, and
/// a cost model.
///
/// Modeled on MySQL 3.23 with MyISAM tables, as used in the paper:
/// table-level locking (enforced by the middleware layer via the lock
/// metadata each [`QueryResult`] carries), `LOCK TABLES` / `UNLOCK TABLES`
/// statements, and auto-increment keys. On top of that base the engine
/// supports undo-logged transactions (`BEGIN` / `COMMIT` / `ROLLBACK`, or
/// the host-side [`begin_txn`](Self::begin_txn) family): bare statements
/// auto-commit exactly as before, while statements inside a transaction
/// record per-row undo entries so rollback restores the pre-transaction
/// state byte-for-byte.
///
/// ```
/// use dynamid_sqldb::{Database, TableSchema, ColumnType, Value};
/// let mut db = Database::new();
/// db.create_table(
///     TableSchema::builder("users")
///         .column("id", ColumnType::Int)
///         .column("name", ColumnType::Str)
///         .primary_key("id")
///         .auto_increment()
///         .build()?,
/// )?;
/// db.execute("INSERT INTO users (id, name) VALUES (NULL, ?)", &[Value::str("ann")])?;
/// let r = db.execute("SELECT name FROM users WHERE id = ?", &[Value::Int(1)])?;
/// assert_eq!(r.rows[0][0], Value::str("ann"));
/// # Ok::<(), dynamid_sqldb::SqlError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Database {
    /// Tables are `Arc`-shared between clones: `Database::clone` is an
    /// O(tables) copy-on-write snapshot fork, and the first write to a table
    /// in either copy un-shares just that table (`Arc::make_mut`). The
    /// harness leans on this to fork a populated database per sweep point.
    tables: Vec<Arc<Table>>,
    by_name: HashMap<String, usize>,
    cost: DbCostModel,
    stmt_cache: HashMap<String, Arc<Stmt>>,
    plan_cache: HashMap<String, Arc<CompiledStmt>>,
    schema_version: u64,
    stats: DbStats,
    /// Undo log of the open transaction, if any. `None` = auto-commit mode.
    txn: Option<TxnLog>,
    /// Rewind journal: when armed (see [`begin_rewind`](Self::begin_rewind)),
    /// every surviving row mutation — auto-commit writes directly, committed
    /// transactions at commit — is appended in host execution order, so
    /// [`rewind`](Self::rewind) can restore the armed-at state byte-exactly
    /// by applying the journal in reverse.
    journal: Option<TxnLog>,
    /// Set when a mutation the journal cannot exactly reverse happened (an
    /// [`apply_rollback`](Self::apply_rollback) of an already-journaled
    /// receipt). `rewind` then refuses and the caller must re-fork.
    journal_dirty: bool,
    /// Opt-in transactional read-query result cache (see [`crate::cache`]).
    result_cache: Option<ResultCache>,
    /// Id source for plans entering the plan cache; `(plan id, parameters)`
    /// keys the result cache.
    next_plan_id: u64,
}

impl Database {
    /// Creates an empty database with the default cost model.
    pub fn new() -> Self {
        Self::with_cost_model(DbCostModel::default())
    }

    /// Creates an empty database with an explicit cost model.
    pub fn with_cost_model(cost: DbCostModel) -> Self {
        Database {
            tables: Vec::new(),
            by_name: HashMap::new(),
            cost,
            stmt_cache: HashMap::new(),
            plan_cache: HashMap::new(),
            schema_version: 0,
            stats: DbStats::default(),
            txn: None,
            journal: None,
            journal_dirty: false,
            result_cache: None,
            next_plan_id: 0,
        }
    }

    /// The cost model used by [`statement_cost`](Self::statement_cost).
    pub fn cost_model(&self) -> &DbCostModel {
        &self.cost
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> DbStats {
        self.stats
    }

    /// Registers a new table.
    ///
    /// # Errors
    ///
    /// Fails if a table with the same name exists.
    pub fn create_table(&mut self, schema: TableSchema) -> SqlResult<()> {
        let name = schema.name().to_string();
        if self.by_name.contains_key(&name) {
            return Err(SqlError::TableExists(name));
        }
        self.by_name.insert(name, self.tables.len());
        self.tables.push(Arc::new(Table::new(schema)));
        // DDL invalidates every compiled plan: column positions, table
        // ids, and name resolution may all have changed.
        self.schema_version += 1;
        Ok(())
    }

    /// Drops both the parsed-statement cache and the compiled-plan cache.
    ///
    /// Every subsequent statement pays the full parse + compile cost once
    /// again; useful for cold-cache benchmarking and cache-equivalence
    /// tests. Table data and cumulative statistics are untouched.
    pub fn clear_caches(&mut self) {
        self.stmt_cache.clear();
        self.plan_cache.clear();
        if let Some(cache) = self.result_cache.as_mut() {
            cache.clear();
        }
    }

    /// Enables the read-query result cache with the given configuration,
    /// replacing (and emptying) any previous one. See [`crate::cache`] for
    /// the coherence protocol.
    pub fn enable_result_cache(&mut self, cfg: ResultCacheConfig) {
        self.result_cache = Some(ResultCache::new(cfg));
    }

    /// Disables and drops the result cache. Cumulative statistics remain.
    pub fn disable_result_cache(&mut self) {
        self.result_cache = None;
    }

    /// `true` while the result cache is enabled.
    pub fn result_cache_enabled(&self) -> bool {
        self.result_cache.is_some()
    }

    /// Number of result sets currently cached (diagnostics).
    pub fn result_cache_len(&self) -> usize {
        self.result_cache.as_ref().map_or(0, ResultCache::len)
    }

    /// Feeds the simulated-time clock used by TTL invalidation. A no-op
    /// while the cache is disabled or under transactional invalidation.
    pub fn set_cache_clock(&mut self, micros: u64) {
        if let Some(cache) = self.result_cache.as_mut() {
            cache.set_clock(micros);
        }
    }

    /// Current schema version (bumped by every DDL statement).
    pub(crate) fn schema_version(&self) -> u64 {
        self.schema_version
    }

    /// Catalog id of a table, for compiled plans.
    pub(crate) fn table_id(&self, name: &str) -> SqlResult<usize> {
        self.by_name.get(name).copied().ok_or_else(|| SqlError::UnknownTable(name.to_string()))
    }

    /// Table by catalog id (ids come from [`table_id`](Self::table_id) and
    /// stay valid for one schema version).
    pub(crate) fn table_at(&self, id: usize) -> &Table {
        &self.tables[id]
    }

    /// Catalog id of a table by name, if it exists. Ids stay valid for one
    /// schema version; the middleware method cache uses them as dependency
    /// keys.
    pub fn table_index(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    /// `true` when a transaction is open and has written any of the given
    /// tables (by catalog id) — the bypass predicate shared by the result
    /// cache and the middleware method cache.
    pub fn txn_touches(&self, tables: &[usize]) -> bool {
        self.txn.as_ref().is_some_and(|t| t.touches(tables))
    }

    /// Extracts the per-table invalidation write-set from a transaction's
    /// undo log, against the *current* (post-commit) table state.
    ///
    /// Each written table maps to the primary-key values of its touched
    /// rows when they are attributable — update and delete ops carry their
    /// pre-image (and post-image), and an insert's key is read from the
    /// live row, with any later same-transaction mutation of that row
    /// contributing the key through its own op. A table without a primary
    /// key yields a wildcard (`rows: None`) that invalidates every
    /// dependent entry.
    pub fn write_set(&self, log: &TxnLog) -> Vec<TableWrites> {
        let mut per: std::collections::BTreeMap<usize, Option<Vec<Value>>> =
            std::collections::BTreeMap::new();
        let mut add = |table: usize, keys: &mut dyn Iterator<Item = Value>| {
            let entry = per.entry(table).or_insert_with(|| Some(Vec::new()));
            match (self.tables[table].schema().primary_key(), entry.as_mut()) {
                (Some(_), Some(rows)) => rows.extend(keys),
                (None, _) => *entry = None,
                (Some(_), None) => {}
            }
        };
        for op in log.ops() {
            match op {
                UndoOp::Insert { table, rid, .. } => {
                    let pk = self.tables[*table].schema().primary_key();
                    let key =
                        pk.and_then(|pk| self.tables[*table].get(*rid).map(|row| row[pk].clone()));
                    add(*table, &mut key.into_iter());
                }
                UndoOp::Update { table, old_row, new_row, .. } => {
                    let pk = self.tables[*table].schema().primary_key();
                    let keys = pk.map(|pk| {
                        let old = old_row[pk].clone();
                        let renamed = (old_row[pk] != new_row[pk]).then(|| new_row[pk].clone());
                        (old, renamed)
                    });
                    match keys {
                        Some((old, renamed)) => {
                            add(*table, &mut std::iter::once(old).chain(renamed))
                        }
                        None => add(*table, &mut std::iter::empty()),
                    }
                }
                UndoOp::Delete { table, old_row, .. } => {
                    let pk = self.tables[*table].schema().primary_key();
                    let key = pk.map(|pk| old_row[pk].clone());
                    add(*table, &mut key.into_iter());
                }
            }
        }
        per.into_iter().map(|(table, rows)| TableWrites { table, rows }).collect()
    }

    /// Names of all tables, in creation order.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.iter().map(|t| t.schema().name()).collect()
    }

    /// Immutable access to a table.
    ///
    /// # Errors
    ///
    /// Fails when the table does not exist.
    pub fn table(&self, name: &str) -> SqlResult<&Table> {
        self.by_name
            .get(name)
            .map(|i| self.tables[*i].as_ref())
            .ok_or_else(|| SqlError::UnknownTable(name.to_string()))
    }

    /// Mutable access to a table (used by the executor and by bulk loaders).
    ///
    /// # Errors
    ///
    /// Fails when the table does not exist.
    pub fn table_mut(&mut self, name: &str) -> SqlResult<&mut Table> {
        match self.by_name.get(name) {
            Some(i) => Ok(Arc::make_mut(&mut self.tables[*i])),
            None => Err(SqlError::UnknownTable(name.to_string())),
        }
    }

    /// Opens a transaction. Subsequent statements record undo entries until
    /// [`commit_txn`](Self::commit_txn) or [`rollback_txn`](Self::rollback_txn).
    ///
    /// # Errors
    ///
    /// Fails with [`SqlError::Transaction`] when a transaction is already
    /// open — the engine does not nest transactions.
    pub fn begin_txn(&mut self) -> SqlResult<()> {
        if self.txn.is_some() {
            return Err(SqlError::Transaction("BEGIN while a transaction is open".into()));
        }
        self.txn = Some(TxnLog::default());
        Ok(())
    }

    /// `true` while a transaction is open.
    pub fn in_txn(&self) -> bool {
        self.txn.is_some()
    }

    /// Commits the open transaction, keeping its writes, and returns the
    /// undo log as the transaction's write receipt (`None` when no
    /// transaction was open — a bare `COMMIT` is a no-op, as in MySQL).
    ///
    /// With the rewind journal armed, the committed ops are also absorbed
    /// into the journal. Host-side mutation is strictly sequential (one
    /// transaction open at a time, executed eagerly), so absorbing at
    /// commit keeps the journal in exact execution order.
    pub fn commit_txn(&mut self) -> Option<TxnLog> {
        let log = self.txn.take()?;
        if let Some(journal) = self.journal.as_mut() {
            journal.extend_cloned(&log);
        }
        // The commit publishes the transaction's writes: drop every result
        // cache entry its write-set invalidates.
        if self.result_cache.is_some() && !log.is_empty() {
            let writes = self.write_set(&log);
            let mut removed = 0;
            if let Some(cache) = self.result_cache.as_mut() {
                removed = cache.invalidate_commit(&writes);
            }
            self.stats.result_cache_invalidations += removed;
        }
        Some(log)
    }

    /// Rolls back the open transaction, restoring the exact pre-`BEGIN`
    /// state. A bare `ROLLBACK` with no open transaction is a no-op.
    ///
    /// Journal-neutral: an open transaction's ops were never absorbed into
    /// the rewind journal, so undoing them here nets out to zero.
    pub fn rollback_txn(&mut self) {
        if let Some(log) = self.txn.take() {
            self.apply_undo_log(log);
        }
    }

    /// Applies an undo log in reverse against the current tables. Used by
    /// [`rollback_txn`](Self::rollback_txn) and by hosts that unwind a
    /// transaction whose log was already taken (e.g. an aborted in-flight
    /// request whose receipt travelled with the request).
    ///
    /// When the rewind journal is armed, the receipt being unwound here was
    /// already absorbed at commit, and undo application is not exactly
    /// invertible out of order (free-list and slot-vector layout can
    /// diverge), so this poisons the journal: the next
    /// [`rewind`](Self::rewind) reports the database unrecoverable and the
    /// caller re-forks.
    pub fn apply_rollback(&mut self, log: TxnLog) {
        if self.journal.is_some() {
            self.journal_dirty = true;
        }
        // Unwinding reverts the data the dependent cache entries were
        // computed from: purge them. A coherence flush, not an
        // invalidation — aborts are deliberately not counted (and, unlike
        // commits, flush even under TTL invalidation: the receipt's writes
        // are disappearing, not being published).
        if let Some(cache) = self.result_cache.as_mut() {
            if !log.is_empty() {
                let mut tables: Vec<usize> = log.ops().iter().map(UndoOp::table).collect();
                tables.sort_unstable();
                tables.dedup();
                let writes: Vec<TableWrites> =
                    tables.into_iter().map(|table| TableWrites { table, rows: None }).collect();
                cache.purge(&writes);
            }
        }
        self.apply_undo_log(log);
    }

    /// Arms the rewind journal: from this point on, every surviving row
    /// mutation is recorded so [`rewind`](Self::rewind) can restore the
    /// current table state byte-exactly. Re-arming resets the journal.
    ///
    /// The harness uses this to reuse one database fork across many sweep
    /// points instead of paying a full copy-on-write table clone (and drop)
    /// per point.
    pub fn begin_rewind(&mut self) {
        self.journal = Some(TxnLog::default());
        self.journal_dirty = false;
    }

    /// Disarms the rewind journal without restoring anything.
    pub fn end_rewind(&mut self) {
        self.journal = None;
        self.journal_dirty = false;
    }

    /// Restores the table state captured by the last
    /// [`begin_rewind`](Self::begin_rewind) by applying the journal in
    /// reverse, then re-arms the journal. Returns `false` (leaving the
    /// database untouched) when an un-journalable mutation poisoned the
    /// journal — the caller must discard this instance and re-fork.
    ///
    /// Caches and statistics are deliberately left alone: statement cost is
    /// a pure function of per-query counters, never of cache warmth, so a
    /// rewound database drives byte-identical experiments while keeping its
    /// warm plan cache.
    ///
    /// # Panics
    ///
    /// Panics if a transaction is still open.
    pub fn rewind(&mut self) -> bool {
        assert!(self.txn.is_none(), "rewind with a transaction open");
        if self.journal_dirty {
            return false;
        }
        if let Some(log) = self.journal.take() {
            self.apply_undo_log(log);
            self.journal = Some(TxnLog::default());
        }
        // Rewinding reverts the data wholesale; cached result sets computed
        // since the journal was armed would be stale against it.
        if let Some(cache) = self.result_cache.as_mut() {
            cache.clear();
        }
        true
    }

    /// Number of row mutations currently recorded in the rewind journal
    /// (diagnostics).
    pub fn rewind_journal_len(&self) -> usize {
        self.journal.as_ref().map_or(0, TxnLog::len)
    }

    fn apply_undo_log(&mut self, log: TxnLog) {
        for op in log.into_ops().into_iter().rev() {
            match op {
                UndoOp::Insert { table, rid, new_slot, prev_next_auto, post_next_auto } => {
                    Arc::make_mut(&mut self.tables[table]).undo_insert(
                        rid,
                        new_slot,
                        prev_next_auto,
                        post_next_auto,
                    );
                }
                UndoOp::Update { table, rid, old_row, new_row, sec_pos } => {
                    Arc::make_mut(&mut self.tables[table])
                        .undo_update(rid, old_row, new_row, &sec_pos);
                }
                UndoOp::Delete { table, rid, old_row, sec_pos } => {
                    Arc::make_mut(&mut self.tables[table]).undo_delete(rid, old_row, &sec_pos);
                }
            }
        }
    }

    /// `true` when both databases hold byte-identical table data (schemas,
    /// rows, slot layout, free lists, indexes, and auto-increment counters).
    /// Caches and statistics are ignored — this is the rollback oracle:
    /// after `BEGIN … ROLLBACK` the database must compare equal to a
    /// [`deep_clone`](Self::deep_clone) taken at `BEGIN`.
    pub fn same_data(&self, other: &Database) -> bool {
        self.by_name == other.by_name
            && self.tables.len() == other.tables.len()
            && self.tables.iter().zip(&other.tables).all(|(a, b)| **a == **b)
    }

    /// Inserts a row into table `id`, recording undo information when a
    /// transaction is open. All executor insert paths go through here.
    pub(crate) fn insert_into(
        &mut self,
        id: usize,
        row: Vec<Value>,
    ) -> SqlResult<(RowId, Option<i64>)> {
        let recording = self.txn.is_some() || self.journal.is_some();
        let table = Arc::make_mut(&mut self.tables[id]);
        if !recording {
            return table.insert(row);
        }
        let prev_next_auto = table.next_auto();
        let len_before = table.slot_count();
        let (rid, assigned) = table.insert(row)?;
        let post_next_auto = table.next_auto();
        self.record_undo(UndoOp::Insert {
            table: id,
            rid,
            new_slot: rid == len_before,
            prev_next_auto,
            post_next_auto,
        });
        Ok((rid, assigned))
    }

    /// Routes one undo record to the open transaction's log, or — for
    /// auto-commit writes — straight into the armed rewind journal.
    fn record_undo(&mut self, op: UndoOp) {
        match self.txn.as_mut() {
            Some(txn) => txn.record(op),
            None => {
                if let Some(journal) = self.journal.as_mut() {
                    journal.record(op);
                }
            }
        }
    }

    /// Replaces the row at `rid` in table `id`, recording the pre-image
    /// when a transaction is open. All executor update paths go through
    /// here.
    pub(crate) fn update_row(
        &mut self,
        id: usize,
        rid: RowId,
        new_row: Vec<Value>,
    ) -> SqlResult<()> {
        let recording = self.txn.is_some() || self.journal.is_some();
        let table = Arc::make_mut(&mut self.tables[id]);
        if !recording {
            return table.update(rid, new_row);
        }
        let old_row = table.get(rid).map(<[Value]>::to_vec);
        let sec_pos = if old_row.is_some() { table.sec_positions(rid) } else { Vec::new() };
        let post_image = new_row.clone();
        table.update(rid, new_row)?;
        if let Some(old_row) = old_row {
            self.record_undo(UndoOp::Update {
                table: id,
                rid,
                old_row,
                new_row: post_image,
                sec_pos,
            });
        }
        Ok(())
    }

    /// Deletes the row at `rid` in table `id`, recording the pre-image when
    /// a transaction is open. All executor delete paths go through here.
    pub(crate) fn delete_row(&mut self, id: usize, rid: RowId) -> SqlResult<Vec<Value>> {
        let recording = self.txn.is_some() || self.journal.is_some();
        let table = Arc::make_mut(&mut self.tables[id]);
        if !recording {
            return table.delete(rid);
        }
        let sec_pos = if table.get(rid).is_some() { table.sec_positions(rid) } else { Vec::new() };
        let old_row = table.delete(rid)?;
        self.record_undo(UndoOp::Delete { table: id, rid, old_row: old_row.clone(), sec_pos });
        Ok(old_row)
    }

    /// A fully materialized copy: every table's rows and indexes are
    /// duplicated up front instead of shared copy-on-write. Only useful as
    /// the baseline in snapshot benchmarks; `Database::clone` is the cheap
    /// O(tables) fork every caller should prefer.
    pub fn deep_clone(&self) -> Database {
        let mut copy = self.clone();
        for t in &mut copy.tables {
            *t = Arc::new((**t).clone());
        }
        copy
    }

    /// Executes a statement through the retained AST interpreter instead of
    /// the compiled-plan path.
    ///
    /// The interpreter is the reference implementation the executor-parity
    /// tests compare against: results and counters must be byte-identical
    /// to [`execute`](Self::execute). It re-parses on every call and
    /// bypasses both caches and the [`DbStats`] accounting, so it is slow
    /// on purpose — use it only as an oracle.
    ///
    /// # Errors
    ///
    /// Same error surface as [`execute`](Self::execute).
    pub fn execute_interpreted(&mut self, sql: &str, params: &[Value]) -> SqlResult<QueryResult> {
        let stmt = parse(sql)?;
        crate::exec::execute_stmt(self, &stmt, params)
    }

    /// Executes one SQL statement with positional `?` parameters.
    ///
    /// Statements are compiled once per SQL text and schema version: the
    /// first execution parses, resolves names, and selects an access-path
    /// shape; repeat executions bind parameters into the cached
    /// [`CompiledStmt`] and run directly. DDL bumps the schema version,
    /// which lazily invalidates stale plans. The parsed-statement (AST)
    /// cache survives plan invalidation, so recompilation after DDL skips
    /// the parser.
    ///
    /// # Errors
    ///
    /// Any parse, resolution, type, or constraint error. Failed parses and
    /// failed compilations are never cached.
    pub fn execute(&mut self, sql: &str, params: &[Value]) -> SqlResult<QueryResult> {
        // Transaction control is free: it neither touches the caches nor
        // counts against any [`DbStats`] counter, so wrapping a statement
        // sequence in BEGIN/COMMIT leaves the statistics byte-identical to
        // running it in auto-commit mode.
        if let Some(kind) = txn_control(sql) {
            return self.exec_txn_control(kind);
        }
        self.stats.statements += 1;

        match self.plan_cache.get(sql) {
            Some(plan) if plan.version == self.schema_version => {
                self.stats.cache_hits += 1;
                self.stats.plan_cache_hits += 1;
                let plan = Arc::clone(plan);
                return self.run_plan(&plan, params);
            }
            Some(_) => {
                self.plan_cache.remove(sql);
                self.stats.plan_invalidations += 1;
            }
            None => {}
        }
        self.stats.plan_cache_misses += 1;

        let stmt = match self.stmt_cache.get(sql) {
            Some(s) => {
                self.stats.cache_hits += 1;
                Arc::clone(s)
            }
            None => {
                let parsed = match parse(sql) {
                    Ok(p) => Arc::new(p),
                    Err(e) => {
                        self.stats.errors += 1;
                        return Err(e);
                    }
                };
                self.stmt_cache.insert(sql.to_string(), Arc::clone(&parsed));
                parsed
            }
        };
        let mut plan = match compile(self, &stmt) {
            Ok(p) => p,
            Err(e) => {
                self.stats.errors += 1;
                return Err(e);
            }
        };
        // Mint the plan's result-cache id as it enters the plan cache; a
        // recompiled (DDL-invalidated) plan gets a fresh id, orphaning any
        // entries of the old one until LRU ages them out.
        self.next_plan_id += 1;
        plan.id = self.next_plan_id;
        let plan = Arc::new(plan);
        self.plan_cache.insert(sql.to_string(), Arc::clone(&plan));
        self.run_plan(&plan, params)
    }

    /// Executes a cached plan, consulting the result cache for SELECTs.
    ///
    /// The cache sits *after* all statement/plan-cache bookkeeping and
    /// stores the complete [`QueryResult`] (rows and modeled
    /// [`QueryCounters`] alike), so with transactional invalidation every
    /// counter visible to the cost model and the legacy [`DbStats`] fields
    /// stays byte-identical to running with the cache off.
    fn run_plan(&mut self, plan: &Arc<CompiledStmt>, params: &[Value]) -> SqlResult<QueryResult> {
        let mut store: Option<(CacheKey, Vec<usize>)> = None;
        if self.result_cache.is_some() && plan.id != 0 {
            if let Some(ids) = plan.read_table_ids() {
                if self.txn.as_ref().is_some_and(|t| t.touches(&ids)) {
                    // The open transaction wrote one of the read tables: a
                    // cached (committed-state) result would hide its own
                    // uncommitted writes. Skip both lookup and store.
                    self.stats.result_cache_bypasses += 1;
                } else {
                    let key = CacheKey::from_values(params);
                    let hit =
                        self.result_cache.as_mut().and_then(|cache| cache.lookup(plan.id, &key));
                    if let Some(hit) = hit {
                        self.stats.result_cache_hits += 1;
                        return Ok(hit);
                    }
                    self.stats.result_cache_misses += 1;
                    store = Some((key, ids));
                }
            }
        }
        let result = match exec_compiled(self, plan, params) {
            Ok(r) => r,
            Err(e) => {
                self.stats.errors += 1;
                return Err(e);
            }
        };
        if let Some((key, ids)) = store {
            let pk = plan.pk_point(self, params);
            if let Some(cache) = self.result_cache.as_mut() {
                cache.store(plan.id, key, result.clone(), ids, pk);
            }
        } else if result.kind == StatementKind::Write && self.txn.is_none() {
            // An auto-commit write is an immediate commit. There is no undo
            // log to attribute rows from, so invalidate coarsely by table.
            self.autocommit_invalidate(&result.write_tables);
        }
        Ok(result)
    }

    /// Commit-time invalidation for auto-commit writes: wildcard per
    /// written table name.
    fn autocommit_invalidate(&mut self, write_tables: &[String]) {
        if self.result_cache.is_none() || write_tables.is_empty() {
            return;
        }
        let writes: Vec<TableWrites> = write_tables
            .iter()
            .filter_map(|n| self.by_name.get(n).copied())
            .map(|table| TableWrites { table, rows: None })
            .collect();
        let mut removed = 0;
        if let Some(cache) = self.result_cache.as_mut() {
            removed = cache.invalidate_commit(&writes);
        }
        self.stats.result_cache_invalidations += removed;
    }

    /// CPU microseconds the database machine should be charged for a
    /// statement with the given counters.
    pub fn statement_cost(&self, counters: &QueryCounters) -> u64 {
        self.cost.cost_micros(counters)
    }

    pub(crate) fn exec_txn_control(&mut self, kind: StatementKind) -> SqlResult<QueryResult> {
        match kind {
            StatementKind::Begin => self.begin_txn()?,
            StatementKind::Commit => {
                self.commit_txn();
            }
            StatementKind::Rollback => self.rollback_txn(),
            _ => unreachable!("not a transaction-control kind"),
        }
        Ok(QueryResult::empty(kind))
    }
}

/// Recognizes `BEGIN` / `START TRANSACTION` / `COMMIT` / `ROLLBACK` without
/// going through the parser, so `execute` can dispatch transaction control
/// before any statistics or cache accounting.
fn txn_control(sql: &str) -> Option<StatementKind> {
    let t = sql.trim().trim_end_matches(';').trim_end();
    if t.eq_ignore_ascii_case("begin") {
        return Some(StatementKind::Begin);
    }
    if t.eq_ignore_ascii_case("commit") {
        return Some(StatementKind::Commit);
    }
    if t.eq_ignore_ascii_case("rollback") {
        return Some(StatementKind::Rollback);
    }
    let mut words = t.split_whitespace();
    if words.next().is_some_and(|w| w.eq_ignore_ascii_case("start"))
        && words.next().is_some_and(|w| w.eq_ignore_ascii_case("transaction"))
        && words.next().is_none()
    {
        return Some(StatementKind::Begin);
    }
    None
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::StatementKind;
    use crate::schema::ColumnType;

    fn db_with_users() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("users")
                .column("id", ColumnType::Int)
                .column("nickname", ColumnType::Str)
                .column("region", ColumnType::Int)
                .column("rating", ColumnType::Int)
                .primary_key("id")
                .auto_increment()
                .index("region")
                .build()
                .unwrap(),
        )
        .unwrap();
        for (nick, region, rating) in [("ann", 1, 5), ("bob", 1, 3), ("cat", 2, 9), ("dee", 3, 1)] {
            db.execute(
                "INSERT INTO users (id, nickname, region, rating) VALUES (NULL, ?, ?, ?)",
                &[Value::str(nick), Value::Int(region), Value::Int(rating)],
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn create_insert_select_roundtrip() {
        let mut db = db_with_users();
        let r =
            db.execute("SELECT nickname FROM users WHERE region = ?", &[Value::Int(1)]).unwrap();
        let mut names: Vec<&str> = r.rows.iter().map(|r| r[0].as_str().unwrap()).collect();
        names.sort_unstable();
        assert_eq!(names, vec!["ann", "bob"]);
        assert_eq!(r.kind, StatementKind::Read);
        assert_eq!(r.read_tables, vec!["users"]);
        // Used the secondary index: 2 rows examined, not 4.
        assert_eq!(r.counters.rows_examined, 2);
        assert_eq!(r.counters.index_lookups, 1);
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = db_with_users();
        let err = db
            .create_table(
                TableSchema::builder("users").column("id", ColumnType::Int).build().unwrap(),
            )
            .unwrap_err();
        assert!(matches!(err, SqlError::TableExists(_)));
    }

    #[test]
    fn update_and_delete_affect_counts() {
        let mut db = db_with_users();
        let r = db.execute("UPDATE users SET rating = rating + 1 WHERE region = 1", &[]).unwrap();
        assert_eq!(r.affected, 2);
        assert_eq!(r.write_tables, vec!["users"]);
        let r = db.execute("SELECT rating FROM users WHERE nickname = 'ann'", &[]).unwrap();
        assert_eq!(r.rows[0][0], Value::Int(6));
        // Ratings now: ann=6, bob=4, cat=9, dee=1.
        let r = db.execute("DELETE FROM users WHERE rating < 4", &[]).unwrap();
        assert_eq!(r.affected, 1);
        let r = db.execute("SELECT COUNT(*) FROM users", &[]).unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(3)));
    }

    #[test]
    fn last_insert_id_flows_through() {
        let mut db = db_with_users();
        let r = db
            .execute(
                "INSERT INTO users (id, nickname, region, rating) VALUES (NULL, 'eve', 2, 2)",
                &[],
            )
            .unwrap();
        assert_eq!(r.last_insert_id, Some(5));
    }

    #[test]
    fn statement_cache_hits() {
        let mut db = db_with_users();
        let before = db.stats();
        for i in 0..5 {
            db.execute("SELECT * FROM users WHERE id = ?", &[Value::Int(i + 1)]).unwrap();
        }
        let after = db.stats();
        assert_eq!(after.statements - before.statements, 5);
        assert_eq!(after.cache_hits - before.cache_hits, 4);
    }

    #[test]
    fn lock_statements_classified() {
        let mut db = db_with_users();
        let r = db.execute("LOCK TABLES users WRITE", &[]).unwrap();
        match r.kind {
            StatementKind::LockTables(l) => {
                assert_eq!(l, vec![("users".to_string(), crate::ast::TableLockKind::Write)]);
            }
            other => panic!("wrong kind: {other:?}"),
        }
        let r = db.execute("UNLOCK TABLES", &[]).unwrap();
        assert_eq!(r.kind, StatementKind::UnlockTables);
        // Locking a missing table errors.
        assert!(db.execute("LOCK TABLES nope WRITE", &[]).is_err());
    }

    #[test]
    fn errors_are_counted_and_reported() {
        let mut db = db_with_users();
        assert!(db.execute("SELEKT * FROM users", &[]).is_err());
        assert!(db.execute("SELECT * FROM missing", &[]).is_err());
        assert!(db.execute("SELECT * FROM users WHERE id = ?", &[]).is_err());
        assert_eq!(db.stats().errors, 3);
    }

    #[test]
    fn table_names_in_order() {
        let db = db_with_users();
        assert_eq!(db.table_names(), vec!["users"]);
    }

    #[test]
    fn cow_snapshots_isolate_writes() {
        let base = db_with_users();
        let mut fork_a = base.clone();
        let mut fork_b = base.clone();
        fork_a.execute("UPDATE users SET rating = 100 WHERE nickname = 'ann'", &[]).unwrap();
        fork_b.execute("DELETE FROM users WHERE nickname = 'bob'", &[]).unwrap();
        // Each fork sees only its own write; the shared base sees neither.
        let rating = |db: &mut Database| {
            db.execute("SELECT rating FROM users WHERE nickname = 'ann'", &[])
                .unwrap()
                .scalar()
                .cloned()
        };
        assert_eq!(rating(&mut fork_a), Some(Value::Int(100)));
        assert_eq!(rating(&mut fork_b), Some(Value::Int(5)));
        assert_eq!(rating(&mut base.clone()), Some(Value::Int(5)));
        assert_eq!(fork_a.table("users").unwrap().row_count(), 4);
        assert_eq!(fork_b.table("users").unwrap().row_count(), 3);
        assert_eq!(base.table("users").unwrap().row_count(), 4);
    }

    #[test]
    fn deep_clone_matches_cow_fork() {
        let base = db_with_users();
        let mut deep = base.deep_clone();
        let mut cow = base.clone();
        let q = "SELECT id, nickname, region, rating FROM users ORDER BY id";
        assert_eq!(deep.execute(q, &[]).unwrap(), cow.execute(q, &[]).unwrap());
    }

    #[test]
    fn interpreter_oracle_agrees_with_compiled_path() {
        let mut db = db_with_users();
        let q = "SELECT region, COUNT(*) AS n FROM users GROUP BY region ORDER BY n DESC";
        let compiled = db.execute(q, &[]).unwrap();
        let interpreted = db.execute_interpreted(q, &[]).unwrap();
        assert_eq!(compiled, interpreted);
    }

    #[test]
    fn rollback_restores_exact_pre_begin_state() {
        let mut db = db_with_users();
        let baseline = db.deep_clone();
        db.execute("BEGIN", &[]).unwrap();
        assert!(db.in_txn());
        db.execute(
            "INSERT INTO users (id, nickname, region, rating) VALUES (NULL, 'eve', 2, 2)",
            &[],
        )
        .unwrap();
        db.execute("UPDATE users SET rating = rating + 10 WHERE region = 1", &[]).unwrap();
        db.execute("DELETE FROM users WHERE nickname = 'cat'", &[]).unwrap();
        assert!(!db.same_data(&baseline));
        db.execute("ROLLBACK", &[]).unwrap();
        assert!(!db.in_txn());
        assert!(db.same_data(&baseline));
        // The next auto-increment id is also restored.
        let r = db
            .execute(
                "INSERT INTO users (id, nickname, region, rating) VALUES (NULL, 'fay', 3, 1)",
                &[],
            )
            .unwrap();
        assert_eq!(r.last_insert_id, Some(5));
    }

    #[test]
    fn txn_control_is_stats_and_cache_neutral() {
        let mut db = db_with_users();
        let before = db.stats();
        db.execute("BEGIN", &[]).unwrap();
        db.execute("COMMIT", &[]).unwrap();
        db.execute("start transaction", &[]).unwrap();
        db.execute("ROLLBACK;", &[]).unwrap();
        db.execute("rollback", &[]).unwrap(); // bare ROLLBACK is a no-op
        db.execute("commit", &[]).unwrap(); // bare COMMIT too
        assert_eq!(db.stats(), before);
    }

    #[test]
    fn nested_begin_is_rejected() {
        let mut db = db_with_users();
        db.execute("BEGIN", &[]).unwrap();
        let err = db.execute("BEGIN", &[]).unwrap_err();
        assert!(matches!(err, SqlError::Transaction(_)));
        db.execute("ROLLBACK", &[]).unwrap();
    }

    #[test]
    fn commit_keeps_writes_and_returns_receipt() {
        let mut db = db_with_users();
        db.begin_txn().unwrap();
        db.execute(
            "INSERT INTO users (id, nickname, region, rating) VALUES (NULL, 'eve', 2, 2)",
            &[],
        )
        .unwrap();
        let log = db.commit_txn().expect("open transaction");
        assert_eq!(log.len(), 1);
        let users = db.table_id("users").unwrap();
        assert_eq!(log.row_deltas(), vec![(users, 1)]);
        let r = db.execute("SELECT COUNT(*) FROM users", &[]).unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(5)));
    }

    #[test]
    fn deferred_rollback_never_reuses_observed_auto_ids() {
        let mut db = db_with_users();
        db.begin_txn().unwrap();
        db.execute(
            "INSERT INTO users (id, nickname, region, rating) VALUES (NULL, 'eve', 2, 2)",
            &[],
        )
        .unwrap();
        let log = db.commit_txn().expect("open transaction");
        // Another client inserts (auto-commit) before the first transaction
        // is unwound — its id must not be reissued after the rollback.
        let r = db
            .execute(
                "INSERT INTO users (id, nickname, region, rating) VALUES (NULL, 'fay', 3, 1)",
                &[],
            )
            .unwrap();
        assert_eq!(r.last_insert_id, Some(6));
        db.apply_rollback(log);
        assert_eq!(db.table("users").unwrap().row_count(), 5);
        let r = db
            .execute(
                "INSERT INTO users (id, nickname, region, rating) VALUES (NULL, 'gil', 1, 4)",
                &[],
            )
            .unwrap();
        assert_eq!(r.last_insert_id, Some(7));
    }

    #[test]
    fn interpreter_handles_txn_control_like_execute() {
        let mut db = db_with_users();
        let baseline = db.deep_clone();
        db.execute_interpreted("BEGIN", &[]).unwrap();
        db.execute_interpreted("DELETE FROM users WHERE region = 1", &[]).unwrap();
        db.execute_interpreted("ROLLBACK", &[]).unwrap();
        assert!(db.same_data(&baseline));
        let r = db.execute_interpreted("COMMIT", &[]).unwrap();
        assert_eq!(r.kind, StatementKind::Commit);
    }

    fn txn_cache() -> crate::cache::ResultCacheConfig {
        crate::cache::ResultCacheConfig {
            capacity: 64,
            invalidation: crate::cache::CacheInvalidation::Transactional,
        }
    }

    /// Two-table fixture: `users` (as in [`db_with_users`]) plus a `tags`
    /// table, both populated before any plan is compiled so DDL does not
    /// invalidate cached plans mid-test.
    fn db_with_users_and_tags() -> Database {
        let mut db = db_with_users();
        db.create_table(
            TableSchema::builder("tags")
                .column("id", ColumnType::Int)
                .column("label", ColumnType::Str)
                .primary_key("id")
                .auto_increment()
                .build()
                .unwrap(),
        )
        .unwrap();
        for label in ["new", "used"] {
            db.execute("INSERT INTO tags (id, label) VALUES (NULL, ?)", &[Value::str(label)])
                .unwrap();
        }
        db
    }

    #[test]
    fn result_cache_hit_returns_identical_result() {
        let mut db = db_with_users();
        db.enable_result_cache(txn_cache());
        let sql = "SELECT nickname FROM users WHERE region = ?";
        let first = db.execute(sql, &[Value::Int(1)]).unwrap();
        let second = db.execute(sql, &[Value::Int(1)]).unwrap();
        // The hit is the complete stored result — rows AND counters.
        assert_eq!(first, second);
        let s = db.stats();
        assert_eq!((s.result_cache_hits, s.result_cache_misses), (1, 1));
        assert_eq!(db.result_cache_len(), 1);
        // Different parameters are a different key.
        let other = db.execute(sql, &[Value::Int(2)]).unwrap();
        assert_eq!(other.rows.len(), 1);
        assert_eq!(db.stats().result_cache_misses, 2);
    }

    #[test]
    fn result_cache_bypassed_only_for_touched_tables() {
        let mut db = db_with_users_and_tags();
        db.enable_result_cache(txn_cache());
        db.begin_txn().unwrap();
        db.execute("UPDATE users SET rating = 0 WHERE id = 1", &[]).unwrap();
        // Read of the table this transaction wrote: bypassed, not cached.
        db.execute("SELECT rating FROM users WHERE id = 1", &[]).unwrap();
        assert_eq!(db.stats().result_cache_bypasses, 1);
        assert_eq!(db.result_cache_len(), 0);
        // Read of an untouched table: served from / stored into the cache.
        db.execute("SELECT label FROM tags WHERE id = 1", &[]).unwrap();
        db.execute("SELECT label FROM tags WHERE id = 1", &[]).unwrap();
        let s = db.stats();
        assert_eq!((s.result_cache_hits, s.result_cache_misses), (1, 1));
        db.commit_txn();
    }

    #[test]
    fn commit_invalidates_dependent_entries() {
        let mut db = db_with_users();
        db.enable_result_cache(txn_cache());
        let sql = "SELECT rating FROM users WHERE region = ?";
        db.execute(sql, &[Value::Int(1)]).unwrap();
        assert_eq!(db.result_cache_len(), 1);
        db.begin_txn().unwrap();
        db.execute("UPDATE users SET rating = 99 WHERE id = 1", &[]).unwrap();
        // Uncommitted writes invalidate nothing.
        assert_eq!(db.stats().result_cache_invalidations, 0);
        db.commit_txn().unwrap();
        assert_eq!(db.stats().result_cache_invalidations, 1);
        let fresh = db.execute(sql, &[Value::Int(1)]).unwrap();
        assert!(fresh.rows.iter().any(|r| r[0] == Value::Int(99)));
        assert_eq!(db.stats().result_cache_hits, 0);
    }

    #[test]
    fn pk_point_entries_survive_writes_to_other_rows() {
        let mut db = db_with_users();
        db.enable_result_cache(txn_cache());
        let sql = "SELECT nickname FROM users WHERE id = ?";
        db.execute(sql, &[Value::Int(1)]).unwrap();
        db.execute(sql, &[Value::Int(2)]).unwrap();
        db.begin_txn().unwrap();
        db.execute("UPDATE users SET nickname = 'rob' WHERE id = 2", &[]).unwrap();
        db.commit_txn().unwrap();
        // Only the row-2 entry is invalidated; row 1 still hits.
        assert_eq!(db.stats().result_cache_invalidations, 1);
        db.execute(sql, &[Value::Int(1)]).unwrap();
        assert_eq!(db.stats().result_cache_hits, 1);
        let r = db.execute(sql, &[Value::Int(2)]).unwrap();
        assert_eq!(r.rows[0][0], Value::str("rob"));
        assert_eq!(db.stats().result_cache_hits, 1);
    }

    #[test]
    fn rollback_leaves_cache_coherent_and_uncounted() {
        let mut db = db_with_users();
        db.enable_result_cache(txn_cache());
        let sql = "SELECT rating FROM users WHERE id = ?";
        let before = db.execute(sql, &[Value::Int(1)]).unwrap();
        db.begin_txn().unwrap();
        db.execute("UPDATE users SET rating = 99 WHERE id = 1", &[]).unwrap();
        db.rollback_txn();
        // The write never committed: no invalidation, and the cached entry
        // still matches the (restored) table state.
        assert_eq!(db.stats().result_cache_invalidations, 0);
        let after = db.execute(sql, &[Value::Int(1)]).unwrap();
        assert_eq!(before, after);
        assert_eq!(db.stats().result_cache_hits, 1);
    }

    #[test]
    fn apply_rollback_purges_without_counting() {
        let mut db = db_with_users();
        db.enable_result_cache(txn_cache());
        let sql = "SELECT rating FROM users WHERE id = ?";
        db.begin_txn().unwrap();
        db.execute("UPDATE users SET rating = 99 WHERE id = 1", &[]).unwrap();
        let receipt = db.commit_txn().unwrap();
        // Cached against the committed (rating = 99) state.
        db.execute(sql, &[Value::Int(1)]).unwrap();
        assert_eq!(db.result_cache_len(), 1);
        let counted = db.stats().result_cache_invalidations;
        db.apply_rollback(receipt);
        // The entry is purged (its data reverted) but the abort is not an
        // invalidation event.
        assert_eq!(db.result_cache_len(), 0);
        assert_eq!(db.stats().result_cache_invalidations, counted);
        let r = db.execute(sql, &[Value::Int(1)]).unwrap();
        assert_eq!(r.rows[0][0], Value::Int(5));
    }

    #[test]
    fn ttl_expires_by_cache_clock_and_ignores_commits() {
        let mut db = db_with_users();
        db.enable_result_cache(crate::cache::ResultCacheConfig {
            capacity: 64,
            invalidation: crate::cache::CacheInvalidation::Ttl(1_000),
        });
        let sql = "SELECT rating FROM users WHERE id = ?";
        db.execute(sql, &[Value::Int(1)]).unwrap();
        // Within the TTL a commit does NOT invalidate: the hit is stale.
        db.begin_txn().unwrap();
        db.execute("UPDATE users SET rating = 99 WHERE id = 1", &[]).unwrap();
        db.commit_txn().unwrap();
        db.set_cache_clock(500);
        let stale = db.execute(sql, &[Value::Int(1)]).unwrap();
        assert_eq!(stale.rows[0][0], Value::Int(5));
        assert_eq!(db.stats().result_cache_invalidations, 0);
        // Past the TTL the entry expires and the fresh value is read.
        db.set_cache_clock(2_000);
        let fresh = db.execute(sql, &[Value::Int(1)]).unwrap();
        assert_eq!(fresh.rows[0][0], Value::Int(99));
    }

    #[test]
    fn ttl_zero_is_equivalent_to_cache_off() {
        let mut db = db_with_users();
        db.enable_result_cache(crate::cache::ResultCacheConfig {
            capacity: 64,
            invalidation: crate::cache::CacheInvalidation::Ttl(0),
        });
        let sql = "SELECT rating FROM users WHERE id = ?";
        db.execute(sql, &[Value::Int(1)]).unwrap();
        db.execute(sql, &[Value::Int(1)]).unwrap();
        assert_eq!(db.stats().result_cache_hits, 0);
        assert_eq!(db.stats().result_cache_misses, 2);
    }

    #[test]
    fn auto_commit_write_invalidates_immediately() {
        let mut db = db_with_users();
        db.enable_result_cache(txn_cache());
        let sql = "SELECT rating FROM users WHERE region = ?";
        db.execute(sql, &[Value::Int(1)]).unwrap();
        assert_eq!(db.result_cache_len(), 1);
        // A bare write is its own commit: coarse per-table invalidation.
        db.execute("UPDATE users SET rating = 7 WHERE id = 3", &[]).unwrap();
        assert_eq!(db.stats().result_cache_invalidations, 1);
        assert_eq!(db.result_cache_len(), 0);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut db = db_with_users();
        db.enable_result_cache(crate::cache::ResultCacheConfig {
            capacity: 2,
            invalidation: crate::cache::CacheInvalidation::Transactional,
        });
        let sql = "SELECT nickname FROM users WHERE id = ?";
        db.execute(sql, &[Value::Int(1)]).unwrap();
        db.execute(sql, &[Value::Int(2)]).unwrap();
        // Refresh entry 1, then insert a third: entry 2 is the LRU victim.
        db.execute(sql, &[Value::Int(1)]).unwrap();
        db.execute(sql, &[Value::Int(3)]).unwrap();
        assert_eq!(db.result_cache_len(), 2);
        db.execute(sql, &[Value::Int(1)]).unwrap();
        assert_eq!(db.stats().result_cache_hits, 2);
        db.execute(sql, &[Value::Int(2)]).unwrap();
        assert_eq!(db.stats().result_cache_hits, 2); // evicted → miss
    }

    #[test]
    fn rewind_clears_result_cache() {
        let mut db = db_with_users();
        db.enable_result_cache(txn_cache());
        db.begin_rewind();
        db.execute("SELECT nickname FROM users WHERE id = 1", &[]).unwrap();
        assert_eq!(db.result_cache_len(), 1);
        assert!(db.rewind());
        assert_eq!(db.result_cache_len(), 0);
    }

    #[test]
    fn statement_cost_scales_with_counters() {
        let db = db_with_users();
        let small = QueryCounters { rows_examined: 1, ..Default::default() };
        let big = QueryCounters { rows_examined: 100_000, ..Default::default() };
        assert!(db.statement_cost(&big) > db.statement_cost(&small) * 100);
    }
}
