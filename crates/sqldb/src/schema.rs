//! Table schemas: columns, types, keys, and secondary indexes.

use crate::error::{SqlError, SqlResult};
use crate::value::Value;

/// Static type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// 64-bit integer (ids, counts, epoch-second dates).
    Int,
    /// Double-precision float (prices, rates).
    Float,
    /// UTF-8 text.
    Str,
}

impl ColumnType {
    /// `true` when `value` may be stored in a column of this type
    /// (NULL is checked separately against nullability).
    pub fn admits(self, value: &Value) -> bool {
        matches!(
            (self, value),
            (_, Value::Null)
                | (ColumnType::Int, Value::Int(_))
                | (ColumnType::Float, Value::Float(_))
                | (ColumnType::Float, Value::Int(_))
                | (ColumnType::Str, Value::Str(_))
        )
    }
}

/// One column of a table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    name: String,
    ty: ColumnType,
    nullable: bool,
}

impl Column {
    /// The column name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The declared type.
    pub fn column_type(&self) -> ColumnType {
        self.ty
    }

    /// Whether NULL is storable.
    pub fn is_nullable(&self) -> bool {
        self.nullable
    }
}

/// A complete table definition.
///
/// Built with [`TableSchema::builder`]:
///
/// ```
/// use dynamid_sqldb::{TableSchema, ColumnType};
/// let schema = TableSchema::builder("items")
///     .column("id", ColumnType::Int)
///     .column("name", ColumnType::Str)
///     .column("category", ColumnType::Int)
///     .primary_key("id")
///     .auto_increment()
///     .index("category")
///     .build()
///     .unwrap();
/// assert_eq!(schema.name(), "items");
/// assert_eq!(schema.columns().len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    name: String,
    columns: Vec<Column>,
    primary_key: Option<usize>,
    auto_increment: bool,
    /// Secondary index columns (by position).
    indexes: Vec<usize>,
}

impl TableSchema {
    /// Starts building a schema for a table with the given name.
    pub fn builder(name: impl Into<String>) -> TableSchemaBuilder {
        TableSchemaBuilder {
            name: name.into(),
            columns: Vec::new(),
            primary_key: None,
            auto_increment: false,
            indexes: Vec::new(),
            error: None,
        }
    }

    /// The table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All columns in declaration order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Position of the column with the given name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Position of the primary-key column, if declared.
    pub fn primary_key(&self) -> Option<usize> {
        self.primary_key
    }

    /// Whether the primary key auto-increments on insert.
    pub fn is_auto_increment(&self) -> bool {
        self.auto_increment
    }

    /// Secondary-index column positions.
    pub fn indexes(&self) -> &[usize] {
        &self.indexes
    }

    /// Validates that `row` matches the schema arity, types, and
    /// nullability.
    pub fn check_row(&self, row: &[Value]) -> SqlResult<()> {
        if row.len() != self.columns.len() {
            return Err(SqlError::Constraint(format!(
                "table '{}' expects {} columns, got {}",
                self.name,
                self.columns.len(),
                row.len()
            )));
        }
        for (col, val) in self.columns.iter().zip(row) {
            if val.is_null() && !col.nullable {
                return Err(SqlError::Constraint(format!(
                    "column '{}.{}' is NOT NULL",
                    self.name, col.name
                )));
            }
            if !col.ty.admits(val) {
                return Err(SqlError::TypeMismatch {
                    expected: match col.ty {
                        ColumnType::Int => "integer",
                        ColumnType::Float => "number",
                        ColumnType::Str => "string",
                    },
                    found: format!("{} for column '{}'", val.type_name(), col.name),
                });
            }
        }
        Ok(())
    }
}

/// Incremental builder for [`TableSchema`].
#[derive(Debug)]
pub struct TableSchemaBuilder {
    name: String,
    columns: Vec<Column>,
    primary_key: Option<usize>,
    auto_increment: bool,
    indexes: Vec<usize>,
    error: Option<SqlError>,
}

impl TableSchemaBuilder {
    /// Adds a NOT NULL column.
    pub fn column(mut self, name: impl Into<String>, ty: ColumnType) -> Self {
        self.push_column(name.into(), ty, false);
        self
    }

    /// Adds a nullable column.
    pub fn nullable_column(mut self, name: impl Into<String>, ty: ColumnType) -> Self {
        self.push_column(name.into(), ty, true);
        self
    }

    fn push_column(&mut self, name: String, ty: ColumnType, nullable: bool) {
        if self.columns.iter().any(|c| c.name == name) {
            self.error.get_or_insert(SqlError::Constraint(format!("duplicate column '{name}'")));
            return;
        }
        self.columns.push(Column { name, ty, nullable });
    }

    /// Declares the primary key (a previously added column).
    pub fn primary_key(mut self, name: &str) -> Self {
        match self.columns.iter().position(|c| c.name == name) {
            Some(i) => self.primary_key = Some(i),
            None => {
                self.error.get_or_insert(SqlError::UnknownColumn(name.to_string()));
            }
        }
        self
    }

    /// Makes the primary key auto-increment (must be an Int column).
    pub fn auto_increment(mut self) -> Self {
        self.auto_increment = true;
        self
    }

    /// Adds a secondary index on a previously added column.
    pub fn index(mut self, name: &str) -> Self {
        match self.columns.iter().position(|c| c.name == name) {
            Some(i) => {
                if !self.indexes.contains(&i) && self.primary_key != Some(i) {
                    self.indexes.push(i);
                }
            }
            None => {
                self.error.get_or_insert(SqlError::UnknownColumn(name.to_string()));
            }
        }
        self
    }

    /// Finishes the schema.
    ///
    /// # Errors
    ///
    /// Returns the first structural error: duplicate or unknown columns, an
    /// empty column list, a non-Int auto-increment key, or auto-increment
    /// without a primary key.
    pub fn build(self) -> SqlResult<TableSchema> {
        if let Some(e) = self.error {
            return Err(e);
        }
        if self.columns.is_empty() {
            return Err(SqlError::Constraint(format!("table '{}' has no columns", self.name)));
        }
        if self.auto_increment {
            match self.primary_key {
                None => {
                    return Err(SqlError::Constraint(
                        "auto_increment requires a primary key".into(),
                    ))
                }
                Some(pk) if self.columns[pk].ty != ColumnType::Int => {
                    return Err(SqlError::Constraint(
                        "auto_increment key must be an integer".into(),
                    ))
                }
                _ => {}
            }
        }
        Ok(TableSchema {
            name: self.name,
            columns: self.columns,
            primary_key: self.primary_key,
            auto_increment: self.auto_increment,
            indexes: self.indexes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items() -> TableSchema {
        TableSchema::builder("items")
            .column("id", ColumnType::Int)
            .column("name", ColumnType::Str)
            .column("price", ColumnType::Float)
            .nullable_column("notes", ColumnType::Str)
            .primary_key("id")
            .auto_increment()
            .index("name")
            .build()
            .unwrap()
    }

    #[test]
    fn builder_wires_everything() {
        let s = items();
        assert_eq!(s.primary_key(), Some(0));
        assert!(s.is_auto_increment());
        assert_eq!(s.indexes(), &[1]);
        assert_eq!(s.column_index("price"), Some(2));
        assert_eq!(s.column_index("nope"), None);
        assert!(s.columns()[3].is_nullable());
        assert_eq!(s.columns()[1].column_type(), ColumnType::Str);
        assert_eq!(s.columns()[0].name(), "id");
    }

    #[test]
    fn row_validation() {
        let s = items();
        let good = vec![Value::Int(1), Value::str("book"), Value::Float(9.5), Value::Null];
        assert!(s.check_row(&good).is_ok());
        // Int admitted into Float column.
        let promo = vec![Value::Int(1), Value::str("book"), Value::Int(9), Value::Null];
        assert!(s.check_row(&promo).is_ok());
        // Wrong arity.
        assert!(s.check_row(&good[..3]).is_err());
        // NULL into NOT NULL.
        let null_name = vec![Value::Int(1), Value::Null, Value::Float(1.0), Value::Null];
        assert!(matches!(s.check_row(&null_name), Err(SqlError::Constraint(_))));
        // Type mismatch.
        let bad_ty = vec![Value::str("x"), Value::str("book"), Value::Float(1.0), Value::Null];
        assert!(matches!(s.check_row(&bad_ty), Err(SqlError::TypeMismatch { .. })));
    }

    #[test]
    fn builder_errors() {
        assert!(TableSchema::builder("t").build().is_err());
        assert!(TableSchema::builder("t")
            .column("a", ColumnType::Int)
            .column("a", ColumnType::Int)
            .build()
            .is_err());
        assert!(TableSchema::builder("t")
            .column("a", ColumnType::Int)
            .primary_key("b")
            .build()
            .is_err());
        assert!(TableSchema::builder("t")
            .column("a", ColumnType::Str)
            .primary_key("a")
            .auto_increment()
            .build()
            .is_err());
        assert!(TableSchema::builder("t")
            .column("a", ColumnType::Int)
            .auto_increment()
            .build()
            .is_err());
        assert!(TableSchema::builder("t")
            .column("a", ColumnType::Int)
            .index("zz")
            .build()
            .is_err());
    }

    #[test]
    fn pk_index_not_duplicated_as_secondary() {
        let s = TableSchema::builder("t")
            .column("id", ColumnType::Int)
            .primary_key("id")
            .index("id")
            .build()
            .unwrap();
        assert!(s.indexes().is_empty());
    }
}
