//! Access-path selection.
//!
//! The planner mimics what MySQL 3.23 would do for the benchmark queries:
//! use an index for an equality or range predicate on an indexed column,
//! otherwise fall back to a full scan. It runs at execution time (parameters
//! are already bound), so "planning" resolves predicate constants to
//! concrete [`Value`]s.

use crate::ast::{BinOp, ColRef, Expr};
use crate::error::SqlResult;
use crate::table::Table;
use crate::value::Value;
use std::ops::Bound;

/// How the executor will locate candidate rows in one table.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessPath {
    /// Visit every live row.
    FullScan,
    /// Probe an index with an equality key.
    IndexEq {
        /// Column position.
        col: usize,
        /// Bound key value.
        key: Value,
    },
    /// Walk an index over a key range.
    IndexRange {
        /// Column position.
        col: usize,
        /// Lower bound.
        lo: OwnedBound,
        /// Upper bound.
        hi: OwnedBound,
    },
}

/// An owned interval endpoint (mirrors [`std::ops::Bound`]).
#[derive(Debug, Clone, PartialEq)]
pub enum OwnedBound {
    /// Endpoint included.
    Included(Value),
    /// Endpoint excluded.
    Excluded(Value),
    /// No bound on this side.
    Unbounded,
}

impl OwnedBound {
    /// View as a [`std::ops::Bound`] for B-tree range queries.
    pub fn as_bound(&self) -> Bound<&Value> {
        match self {
            OwnedBound::Included(v) => Bound::Included(v),
            OwnedBound::Excluded(v) => Bound::Excluded(v),
            OwnedBound::Unbounded => Bound::Unbounded,
        }
    }
}

/// Splits an expression tree into its top-level AND conjuncts.
pub fn conjuncts(expr: &Expr) -> Vec<&Expr> {
    let mut out = Vec::new();
    fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
        match e {
            Expr::Binary { op: BinOp::And, lhs, rhs } => {
                walk(lhs, out);
                walk(rhs, out);
            }
            other => out.push(other),
        }
    }
    walk(expr, &mut out);
    out
}

/// `true` when the expression can be evaluated without a row (only
/// literals, parameters, and arithmetic over them).
pub(crate) fn is_const(expr: &Expr) -> bool {
    match expr {
        Expr::Lit(_) | Expr::Param(_) => true,
        Expr::Neg(e) => is_const(e),
        Expr::Binary { op, lhs, rhs } => {
            matches!(op, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div)
                && is_const(lhs)
                && is_const(rhs)
        }
        _ => false,
    }
}

/// Evaluates a row-independent expression.
fn eval_const(expr: &Expr, params: &[Value]) -> SqlResult<Value> {
    crate::exec::eval_row_free(expr, params)
}

/// `true` when `col` refers to `alias` (or is unqualified) and names an
/// existing column of `table`; returns the column position.
pub(crate) fn col_on_table(col: &ColRef, alias: &str, table: &Table) -> Option<usize> {
    if let Some(t) = &col.table {
        if t != alias {
            return None;
        }
    }
    table.schema().column_index(&col.column)
}

/// Chooses the access path for `table` (referred to as `alias`) given the
/// WHERE conjuncts. Preference: primary-key equality, secondary-index
/// equality, indexed range / BETWEEN, full scan.
///
/// # Errors
///
/// Propagates parameter-binding errors from constant evaluation.
pub fn choose_path(
    table: &Table,
    alias: &str,
    conj: &[&Expr],
    params: &[Value],
) -> SqlResult<AccessPath> {
    let pk = table.schema().primary_key();
    let mut best_eq: Option<(usize, Value)> = None;
    let mut best_range: Option<(usize, OwnedBound, OwnedBound)> = None;

    for e in conj {
        match e {
            Expr::Binary { op, lhs, rhs } if op.is_comparison() => {
                // Normalize to (col, op, const).
                let (col, op, konst) = match (&**lhs, &**rhs) {
                    (Expr::Col(c), k) if is_const(k) => (c, *op, k),
                    (k, Expr::Col(c)) if is_const(k) => (c, flip(*op), k),
                    _ => continue,
                };
                let Some(pos) = col_on_table(col, alias, table) else {
                    continue;
                };
                if !table.has_index_on(pos) {
                    continue;
                }
                let key = eval_const(konst, params)?;
                match op {
                    BinOp::Eq => {
                        let better = match &best_eq {
                            None => true,
                            // Prefer the primary key.
                            Some((cur, _)) => pk == Some(pos) && pk != Some(*cur),
                        };
                        if better {
                            best_eq = Some((pos, key));
                        }
                    }
                    BinOp::Lt => {
                        merge_range(
                            &mut best_range,
                            pos,
                            OwnedBound::Unbounded,
                            OwnedBound::Excluded(key),
                        );
                    }
                    BinOp::Le => {
                        merge_range(
                            &mut best_range,
                            pos,
                            OwnedBound::Unbounded,
                            OwnedBound::Included(key),
                        );
                    }
                    BinOp::Gt => {
                        merge_range(
                            &mut best_range,
                            pos,
                            OwnedBound::Excluded(key),
                            OwnedBound::Unbounded,
                        );
                    }
                    BinOp::Ge => {
                        merge_range(
                            &mut best_range,
                            pos,
                            OwnedBound::Included(key),
                            OwnedBound::Unbounded,
                        );
                    }
                    _ => {}
                }
            }
            Expr::Between { expr, lo, hi } => {
                let Expr::Col(col) = &**expr else { continue };
                if !is_const(lo) || !is_const(hi) {
                    continue;
                }
                let Some(pos) = col_on_table(col, alias, table) else {
                    continue;
                };
                if !table.has_index_on(pos) {
                    continue;
                }
                let lov = eval_const(lo, params)?;
                let hiv = eval_const(hi, params)?;
                merge_range(
                    &mut best_range,
                    pos,
                    OwnedBound::Included(lov),
                    OwnedBound::Included(hiv),
                );
            }
            _ => {}
        }
    }

    if let Some((col, key)) = best_eq {
        return Ok(AccessPath::IndexEq { col, key });
    }
    if let Some((col, lo, hi)) = best_range {
        return Ok(AccessPath::IndexRange { col, lo, hi });
    }
    Ok(AccessPath::FullScan)
}

/// Combines range conjuncts on the same column (e.g. `a > 1 AND a <= 9`).
fn merge_range(
    best: &mut Option<(usize, OwnedBound, OwnedBound)>,
    col: usize,
    lo: OwnedBound,
    hi: OwnedBound,
) {
    match best {
        Some((cur, cur_lo, cur_hi)) if *cur == col => {
            if !matches!(lo, OwnedBound::Unbounded) {
                *cur_lo = lo;
            }
            if !matches!(hi, OwnedBound::Unbounded) {
                *cur_hi = hi;
            }
        }
        Some(_) => {} // keep the first ranged column
        None => *best = Some((col, lo, hi)),
    }
}

pub(crate) fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Stmt;
    use crate::parser::parse;
    use crate::schema::{ColumnType, TableSchema};

    fn table() -> Table {
        let schema = TableSchema::builder("items")
            .column("id", ColumnType::Int)
            .column("category", ColumnType::Int)
            .column("name", ColumnType::Str)
            .column("price", ColumnType::Float)
            .primary_key("id")
            .index("category")
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for i in 0..10 {
            t.insert(vec![
                Value::Int(i),
                Value::Int(i % 3),
                Value::str(format!("item{i}")),
                Value::Float(i as f64),
            ])
            .unwrap();
        }
        t
    }

    fn where_of(sql: &str) -> Expr {
        match parse(sql).unwrap() {
            Stmt::Select(s) => s.where_clause.unwrap(),
            _ => panic!(),
        }
    }

    fn path(sql: &str, params: &[Value]) -> AccessPath {
        let w = where_of(sql);
        let c = conjuncts(&w);
        choose_path(&table(), "items", &c, params).unwrap()
    }

    #[test]
    fn pk_equality_wins() {
        let p = path("SELECT * FROM items WHERE category = 1 AND id = ?", &[Value::Int(5)]);
        assert_eq!(p, AccessPath::IndexEq { col: 0, key: Value::Int(5) });
    }

    #[test]
    fn secondary_equality_used() {
        let p = path("SELECT * FROM items WHERE category = 2", &[]);
        assert_eq!(p, AccessPath::IndexEq { col: 1, key: Value::Int(2) });
    }

    #[test]
    fn reversed_operands_normalized() {
        let p = path("SELECT * FROM items WHERE 5 = id", &[]);
        assert_eq!(p, AccessPath::IndexEq { col: 0, key: Value::Int(5) });
    }

    #[test]
    fn range_predicates_merge() {
        let p = path("SELECT * FROM items WHERE id > 2 AND id <= 7", &[]);
        assert_eq!(
            p,
            AccessPath::IndexRange {
                col: 0,
                lo: OwnedBound::Excluded(Value::Int(2)),
                hi: OwnedBound::Included(Value::Int(7)),
            }
        );
    }

    #[test]
    fn between_becomes_range() {
        let p =
            path("SELECT * FROM items WHERE id BETWEEN ? AND ?", &[Value::Int(1), Value::Int(3)]);
        assert_eq!(
            p,
            AccessPath::IndexRange {
                col: 0,
                lo: OwnedBound::Included(Value::Int(1)),
                hi: OwnedBound::Included(Value::Int(3)),
            }
        );
    }

    #[test]
    fn unindexed_column_scans() {
        let p = path("SELECT * FROM items WHERE name = 'item3'", &[]);
        assert_eq!(p, AccessPath::FullScan);
        let p = path("SELECT * FROM items WHERE price < 3.0", &[]);
        assert_eq!(p, AccessPath::FullScan);
    }

    #[test]
    fn eq_beats_range() {
        let p = path("SELECT * FROM items WHERE id > 2 AND category = 1", &[]);
        assert_eq!(p, AccessPath::IndexEq { col: 1, key: Value::Int(1) });
    }

    #[test]
    fn qualified_alias_respected() {
        let w = where_of("SELECT * FROM items i WHERE i.id = 4");
        let c = conjuncts(&w);
        let p = choose_path(&table(), "i", &c, &[]).unwrap();
        assert_eq!(p, AccessPath::IndexEq { col: 0, key: Value::Int(4) });
        // Wrong alias: predicate is about another table.
        let p = choose_path(&table(), "other", &c, &[]).unwrap();
        assert_eq!(p, AccessPath::FullScan);
    }

    #[test]
    fn or_disables_indexing() {
        let p = path("SELECT * FROM items WHERE id = 1 OR category = 2", &[]);
        assert_eq!(p, AccessPath::FullScan);
    }

    #[test]
    fn conjunct_split() {
        let w = where_of("SELECT * FROM items WHERE id = 1 AND category = 2 AND name LIKE 'a%'");
        assert_eq!(conjuncts(&w).len(), 3);
        let w = where_of("SELECT * FROM items WHERE id = 1 OR category = 2");
        assert_eq!(conjuncts(&w).len(), 1);
    }
}
