//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! the subset of criterion's API the `dynamid-bench` targets use:
//! [`Criterion::benchmark_group`], `sample_size` / `measurement_time` /
//! `warm_up_time`, [`BenchmarkGroup::bench_function`], [`Bencher::iter`] and
//! [`Bencher::iter_batched`], plus the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Methodology: each `bench_function` runs a short warm-up, auto-scales the
//! per-sample iteration count to the configured measurement budget, takes
//! `sample_size` samples, and prints minimum / median / mean nanoseconds per
//! iteration. No plots, no statistical regression testing — just honest
//! wall-clock numbers suitable for before/after comparisons in one
//! environment.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation
/// (re-export of [`std::hint::black_box`]).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How batched inputs are grouped; accepted for API compatibility (the
/// shim times each batch element individually either way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

/// A group of benchmarks sharing measurement settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark and prints its timing summary.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            mode: Mode::WarmUp,
            budget: self.warm_up_time,
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_target: self.sample_size,
            warm_est: 1.0,
        };
        f(&mut b);
        // Scale iterations so one sample is ~ budget / sample_size.
        let per_iter = b.warm_est.max(1.0);
        let per_sample_ns = self.measurement_time.as_nanos() as f64 / self.sample_size as f64;
        b.iters_per_sample = ((per_sample_ns / per_iter) as u64).clamp(1, 1_000_000_000);
        b.mode = Mode::Measure;
        b.budget = self.measurement_time;
        b.samples.clear();
        f(&mut b);
        report(&self.name, &id, &b.samples, b.iters_per_sample);
        self
    }

    /// Ends the group (printing is immediate; provided for API parity).
    pub fn finish(&mut self) {}
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    WarmUp,
    Measure,
}

/// Runs the benchmarked closure and records timings.
#[derive(Debug)]
pub struct Bencher {
    mode: Mode,
    budget: Duration,
    samples: Vec<f64>, // ns per iteration, one entry per sample
    iters_per_sample: u64,
    sample_target: usize,
    warm_est: f64, // estimated ns/iter from the warm-up pass
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            Mode::WarmUp => {
                let start = Instant::now();
                let mut n = 0u64;
                while start.elapsed() < self.budget || n == 0 {
                    std_black_box(routine());
                    n += 1;
                    if n >= 1_000_000 {
                        break;
                    }
                }
                self.warm_est = start.elapsed().as_nanos() as f64 / n as f64;
            }
            Mode::Measure => {
                for _ in 0..self.sample_target {
                    let start = Instant::now();
                    for _ in 0..self.iters_per_sample {
                        std_black_box(routine());
                    }
                    self.samples
                        .push(start.elapsed().as_nanos() as f64 / self.iters_per_sample as f64);
                }
            }
        }
    }

    /// Times `routine` over inputs produced by `setup`; only the routine is
    /// measured.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        match self.mode {
            Mode::WarmUp => {
                let mut spent = Duration::ZERO;
                let mut n = 0u64;
                while spent < self.budget || n == 0 {
                    let input = setup();
                    let start = Instant::now();
                    std_black_box(routine(input));
                    spent += start.elapsed();
                    n += 1;
                    if n >= 1_000_000 {
                        break;
                    }
                }
                self.warm_est = spent.as_nanos() as f64 / n as f64;
            }
            Mode::Measure => {
                for _ in 0..self.sample_target {
                    let mut spent = Duration::ZERO;
                    for _ in 0..self.iters_per_sample {
                        let input = setup();
                        let start = Instant::now();
                        std_black_box(routine(input));
                        spent += start.elapsed();
                    }
                    self.samples.push(spent.as_nanos() as f64 / self.iters_per_sample as f64);
                }
            }
        }
    }
}

fn report(group: &str, id: &str, samples: &[f64], iters: u64) {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let median = sorted[sorted.len() / 2];
    let min = sorted.first().copied().unwrap_or(0.0);
    let mean = sorted.iter().sum::<f64>() / sorted.len().max(1) as f64;
    println!(
        "{group}/{id}: min {} median {} mean {}  ({} samples x {} iters)",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean),
        sorted.len(),
        iters,
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1_000_000_000.0 {
        format!("{:.3} s", ns / 1_000_000_000.0)
    } else if ns >= 1_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else if ns >= 1_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a group of benchmark functions (API parity with criterion).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
