//! # dynamid-bench — benchmark helpers
//!
//! Shared configuration for the Criterion benches: miniature but
//! structurally complete experiment setups, so `cargo bench` exercises the
//! same code paths as the full `repro` harness in seconds rather than
//! minutes. The figure benches regenerate each paper figure at reduced
//! population/window scale; the micro benches cover the substrates (SQL
//! engine, simulator kernel, lock manager).

#![warn(missing_docs)]

use dynamid_core::StandardConfig;
use dynamid_harness::HarnessConfig;
use dynamid_sim::SimDuration;

/// A miniature harness configuration for benchmarking: tiny population,
/// short phases, two representative client counts, all six configurations.
pub fn bench_harness_config() -> HarnessConfig {
    HarnessConfig {
        scale: 0.002,
        clients: vec![10, 40],
        configs: StandardConfig::ALL.to_vec(),
        think_time: SimDuration::from_millis(500),
        session_time: SimDuration::from_secs(60),
        ramp_up: SimDuration::from_secs(2),
        measure: SimDuration::from_secs(6),
        ramp_down: SimDuration::from_secs(1),
        policy: dynamid_sim::GrantPolicy::default(),
        seed: 42,
        verbose: false,
        jobs: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_config_is_small() {
        let c = bench_harness_config();
        assert!(c.scale < 0.01);
        assert_eq!(c.configs.len(), 6);
    }
}
