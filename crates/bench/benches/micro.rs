//! Microbenchmarks for the substrates: SQL parsing and execution, the
//! processor-sharing kernel, the lock manager, and the per-character IPC
//! cost the paper profiles in §6.1 (experiment E11 in DESIGN.md).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dynamid_harness::{find_figure, run_figure, HarnessConfig};
use dynamid_http::Connector;
use dynamid_sim::engine::NullDriver;
use dynamid_sim::{
    GrantPolicy, LockManager, LockMode, Op, PsResource, SimDuration, SimTime, Simulation, Trace,
};
use dynamid_sqldb::{parse, ColumnType, Database, Table, TableSchema, Value};
use std::collections::HashMap;
use std::hint::black_box;
use std::time::Duration;

fn small_db(rows: i64) -> Database {
    let mut db = Database::new();
    db.create_table(
        TableSchema::builder("items")
            .column("id", ColumnType::Int)
            .column("category", ColumnType::Int)
            .column("name", ColumnType::Str)
            .column("price", ColumnType::Float)
            .primary_key("id")
            .auto_increment()
            .index("category")
            .build()
            .unwrap(),
    )
    .unwrap();
    for i in 0..rows {
        db.execute(
            "INSERT INTO items (id, category, name, price) VALUES (NULL, ?, ?, ?)",
            &[Value::Int(i % 40), Value::str(format!("item {i}")), Value::Float(i as f64)],
        )
        .unwrap();
    }
    db
}

fn bench_sql(c: &mut Criterion) {
    let mut g = c.benchmark_group("sqldb");
    g.measurement_time(Duration::from_secs(2)).sample_size(30);

    g.bench_function("parse_select_join", |b| {
        b.iter(|| {
            parse(black_box(
                "SELECT i.id, i.name, SUM(ol.qty) AS total FROM items i \
                 JOIN order_line ol ON ol.item_id = i.id \
                 WHERE ol.order_id > ? AND i.subject = ? \
                 GROUP BY i.id ORDER BY total DESC LIMIT 50",
            ))
            .unwrap()
        })
    });

    let mut db = small_db(2_000);
    g.bench_function("point_select_by_pk", |b| {
        b.iter(|| {
            db.execute(black_box("SELECT name, price FROM items WHERE id = ?"), &[Value::Int(997)])
                .unwrap()
        })
    });

    g.bench_function("indexed_range_with_sort", |b| {
        b.iter(|| {
            db.execute(
                "SELECT id, name FROM items WHERE category = ? ORDER BY price DESC LIMIT 25",
                &[Value::Int(7)],
            )
            .unwrap()
        })
    });

    g.bench_function("like_scan", |b| {
        b.iter(|| {
            db.execute(
                "SELECT id FROM items WHERE name LIKE ? LIMIT 10",
                &[Value::str("%item 199%")],
            )
            .unwrap()
        })
    });

    g.bench_function("update_by_pk", |b| {
        b.iter(|| {
            db.execute("UPDATE items SET price = price + 1.0 WHERE id = ?", &[Value::Int(512)])
                .unwrap()
        })
    });
    g.finish();
}

/// A two-table catalog for join/aggregate benchmarks: `lines` points at
/// `items` through an indexed `item_id` column.
fn join_db(items: i64, lines: i64) -> Database {
    let mut db = small_db(items);
    db.create_table(
        TableSchema::builder("lines")
            .column("id", ColumnType::Int)
            .column("item_id", ColumnType::Int)
            .column("qty", ColumnType::Int)
            .primary_key("id")
            .auto_increment()
            .index("item_id")
            .build()
            .unwrap(),
    )
    .unwrap();
    for i in 0..lines {
        db.execute(
            "INSERT INTO lines (id, item_id, qty) VALUES (NULL, ?, ?)",
            &[Value::Int(i % items + 1), Value::Int(i % 7 + 1)],
        )
        .unwrap();
    }
    db
}

/// The late-materialization executor's new physical operators: hash joins
/// over wide probes vs B-tree probes for point outers, bounded top-K vs a
/// full sort, single-pass hash aggregation, and copy-on-write snapshot
/// forks vs deep clones. Modeled counters are identical across paths; these
/// measure the host-cost side only.
fn bench_exec(c: &mut Criterion) {
    let mut g = c.benchmark_group("exec");
    g.measurement_time(Duration::from_secs(2)).sample_size(30);

    // Wide probe: every line row probes items — the executor builds a hash
    // table from the items index instead of 4k B-tree descents.
    let mut db = join_db(500, 4_000);
    g.bench_function("join_wide_probe_hash", |b| {
        b.iter(|| {
            db.execute(
                black_box(
                    "SELECT i.name, l.qty FROM lines l JOIN items i ON l.item_id = i.id \
                     WHERE l.qty > 5 LIMIT 50",
                ),
                &[],
            )
            .unwrap()
        })
    });

    // Point outer: one row probes the index directly; building a hash
    // table would be pure overhead, so the executor stays on the B-tree.
    g.bench_function("join_point_outer_btree", |b| {
        b.iter(|| {
            db.execute(
                "SELECT i.name, l.qty FROM lines l JOIN items i ON l.item_id = i.id \
                 WHERE l.id = ?",
                &[Value::Int(1_234)],
            )
            .unwrap()
        })
    });

    // ORDER BY + LIMIT keeps a 10-row bounded heap instead of sorting all
    // 4k rows; ORDER BY alone still pays the full sort.
    g.bench_function("order_by_topk_limit10", |b| {
        b.iter(|| db.execute("SELECT id FROM lines ORDER BY qty DESC, id LIMIT 10", &[]).unwrap())
    });
    g.bench_function("order_by_full_sort", |b| {
        b.iter(|| db.execute("SELECT id FROM lines ORDER BY qty DESC, id", &[]).unwrap())
    });

    g.bench_function("group_by_hash_agg", |b| {
        b.iter(|| {
            db.execute(
                "SELECT item_id, COUNT(*) AS n, SUM(qty) AS total FROM lines \
                 GROUP BY item_id ORDER BY total DESC LIMIT 20",
                &[],
            )
            .unwrap()
        })
    });

    // Sweep-point setup: forking the base database is O(tables) under
    // copy-on-write; the deep clone is what every point used to pay.
    let base = join_db(500, 4_000);
    g.bench_function("snapshot_fork_cow", |b| b.iter(|| black_box(base.clone())));
    g.bench_function("snapshot_deep_clone", |b| b.iter(|| black_box(base.deep_clone())));
    g.finish();
}

/// The sim-core overhaul's two row-level host-cost wins, each measured
/// against the path it replaced. Join probes keyed on string values hit
/// the FNV hash cached in [`Value::str`] at construction — one `u64`
/// through the hasher — where the old path re-scanned every byte of the
/// key on every probe. Projections read rows as slices borrowed straight
/// from the table's cell arena and clone only the projected cells, where
/// the old executor materialized a full `Vec<Value>` per row first.
fn bench_hot_row_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("hot_row_paths");
    g.measurement_time(Duration::from_secs(2)).sample_size(30);

    // Keys shaped like the TPC-W join columns that dominate the book
    // searches: longish titles, unique tails.
    let keys: Vec<String> =
        (0..512).map(|i| format!("the remarkably verbose catalog title of item {i:08}")).collect();

    let build: HashMap<Value, usize> =
        keys.iter().enumerate().map(|(i, k)| (Value::str(k), i)).collect();
    let probes: Vec<Value> = keys.iter().map(Value::str).collect();
    g.bench_function("join_probe_interned_hash", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for p in &probes {
                hits += build.get(black_box(p)).copied().unwrap_or(0);
            }
            black_box(hits)
        })
    });

    // The pre-overhaul probe: the hasher walks the full key bytes on
    // every lookup (a `String`-keyed map makes std do exactly that).
    let build_raw: HashMap<String, usize> =
        keys.iter().enumerate().map(|(i, k)| (k.clone(), i)).collect();
    g.bench_function("join_probe_string_rehash", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for p in &keys {
                hits += build_raw.get(black_box(p.as_str())).copied().unwrap_or(0);
            }
            black_box(hits)
        })
    });

    // A 6-column table, project 2 columns from every live row.
    let mut t = Table::new(
        TableSchema::builder("wide")
            .column("id", ColumnType::Int)
            .column("a", ColumnType::Int)
            .column("b", ColumnType::Float)
            .column("title", ColumnType::Str)
            .column("c", ColumnType::Int)
            .column("d", ColumnType::Float)
            .primary_key("id")
            .build()
            .unwrap(),
    );
    for i in 0..2_000i64 {
        t.insert(vec![
            Value::Int(i),
            Value::Int(i % 97),
            Value::Float(i as f64 * 0.5),
            Value::str(format!("row title {i}")),
            Value::Int(i % 7),
            Value::Float(i as f64),
        ])
        .unwrap();
    }
    g.bench_function("projection_arena_slice", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(2_000);
            for (_, row) in t.scan() {
                out.push((row[0].clone(), row[3].clone()));
            }
            black_box(out)
        })
    });
    g.bench_function("projection_row_clone", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(2_000);
            for (_, row) in t.scan() {
                let owned: Vec<Value> = row.to_vec();
                out.push((owned[0].clone(), owned[3].clone()));
            }
            black_box(out)
        })
    });
    g.finish();
}

/// What compile-once buys on the hot path: the same indexed point SELECT
/// served from a cached plan vs recompiled from scratch (parse + name
/// resolution + access-path selection) on every call. The warm path is the
/// one the benchmark applications live on.
fn bench_plan_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("plan_cache");
    g.measurement_time(Duration::from_secs(2)).sample_size(30);

    let sql = "SELECT name, price FROM items WHERE id = ?";
    let mut db = small_db(2_000);
    g.bench_function("point_select_warm_plan", |b| {
        b.iter(|| db.execute(black_box(sql), &[Value::Int(997)]).unwrap())
    });

    let mut db = small_db(2_000);
    g.bench_function("point_select_cold_compile", |b| {
        b.iter(|| {
            db.clear_caches();
            db.execute(black_box(sql), &[Value::Int(997)]).unwrap()
        })
    });
    g.finish();
}

/// Sweep-level scaling: the same smoke-sized figure executed by one worker
/// and by four. The outputs are bit-identical; only wall-clock differs.
fn bench_figure_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("harness");
    g.measurement_time(Duration::from_secs(8)).sample_size(10);
    let pair = find_figure("fig11").unwrap();
    for jobs in [1usize, 4] {
        let mut cfg = HarnessConfig::smoke();
        cfg.jobs = jobs;
        g.bench_function(format!("run_figure_smoke_jobs{jobs}"), |b| {
            b.iter(|| black_box(run_figure(pair, &cfg)))
        });
    }
    g.finish();
}

fn bench_sim_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim");
    g.measurement_time(Duration::from_secs(2)).sample_size(30);

    g.bench_function("ps_resource_churn_1k", |b| {
        b.iter_batched(
            || PsResource::new("cpu", 1.0),
            |mut r| {
                let mut now = SimTime::ZERO;
                for i in 0..1_000u64 {
                    r.enqueue(now, dynamid_sim::JobId(i), 100.0);
                    if i % 4 == 3 {
                        now = r.next_completion(now).unwrap();
                        black_box(r.pop_completed(now));
                    }
                }
                while let Some(t) = r.next_completion(now) {
                    now = t;
                    if r.pop_completed(now).is_empty() {
                        break;
                    }
                }
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("lock_manager_contended_1k", |b| {
        b.iter_batched(
            || {
                let mut lm = LockManager::new(GrantPolicy::WriterPriority);
                let l = lm.register_lock("t");
                (lm, l)
            },
            |(mut lm, l)| {
                let mut held: Vec<dynamid_sim::JobId> = Vec::new();
                for i in 0..1_000u64 {
                    let job = dynamid_sim::JobId(i);
                    let mode = if i % 5 == 0 { LockMode::Exclusive } else { LockMode::Shared };
                    if lm.acquire(SimTime::from_micros(i), l, mode, job) {
                        held.push(job);
                    }
                    if held.len() > 8 {
                        let j = held.remove(0);
                        black_box(lm.release(SimTime::from_micros(i), l, j));
                    }
                }
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("engine_10k_cpu_jobs", |b| {
        b.iter_batched(
            || {
                let mut sim = Simulation::new(SimDuration::from_micros(100));
                let m = sim.add_machine("m", 1.0, 100.0);
                for i in 0..10_000 {
                    let t: Trace =
                        [Op::Cpu { machine: m, micros: 50 + (i % 17) }].into_iter().collect();
                    sim.submit(t, i);
                }
                sim
            },
            |mut sim| {
                sim.run(SimTime::from_micros(u64::MAX / 2), &mut NullDriver).unwrap();
                black_box(sim.stats().completed)
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// E11: the §6.1 profiling claim — per-byte cost of moving dynamic content
/// across the web-server/servlet boundary vs the in-process PHP module.
fn bench_ipc_cost(c: &mut Criterion) {
    let mut g = c.benchmark_group("ipc_cost");
    g.measurement_time(Duration::from_secs(1)).sample_size(20);
    let ajp = Connector::ajp12();
    let php = Connector::mod_php();
    for bytes in [1_000u64, 10_000, 100_000] {
        g.bench_function(format!("ajp_{bytes}B"), |b| {
            b.iter(|| black_box(ajp.send_micros(black_box(bytes)) + ajp.recv_micros(bytes)))
        });
        g.bench_function(format!("php_{bytes}B"), |b| {
            b.iter(|| black_box(php.send_micros(black_box(bytes)) + php.recv_micros(bytes)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_sql,
    bench_exec,
    bench_hot_row_paths,
    bench_plan_cache,
    bench_figure_sweep,
    bench_sim_kernel,
    bench_ipc_cost
);
criterion_main!(benches);
