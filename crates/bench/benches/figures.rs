//! One bench per paper figure pair: regenerates Figures 5/6, 7/8, 9/10,
//! 11/12, and 13/14 at miniature scale (tiny population, short windows),
//! exercising the exact code path of the full `repro` harness. Each
//! iteration runs the complete sweep — all six deployment configurations ×
//! two client counts — and asserts the defining qualitative property of
//! that figure, so the bench doubles as a regression gate on the
//! reproduction's shape.

use criterion::{criterion_group, criterion_main, Criterion};
use dynamid_bench::bench_harness_config;
use dynamid_core::StandardConfig;
use dynamid_harness::{find_figure, run_figure, FigureData};
use std::hint::black_box;
use std::time::Duration;

fn peak(data: &FigureData, config: StandardConfig) -> f64 {
    data.curve(config).expect("curve").peak().ipm
}

fn bench_pair(c: &mut Criterion, key: &str, check: fn(&FigureData)) {
    let pair = find_figure(key).expect("known figure");
    let cfg = bench_harness_config();
    let mut g = c.benchmark_group("figures");
    // One sweep per sample; keep the sample count minimal — each sample is
    // a full multi-configuration experiment.
    g.sample_size(10)
        .measurement_time(Duration::from_secs(8))
        .warm_up_time(Duration::from_millis(500));
    g.bench_function(format!("{}_{}", pair.throughput_id, pair.cpu_id), |b| {
        b.iter(|| {
            let data = run_figure(pair, &cfg);
            check(&data);
            black_box(data.curves.len())
        })
    });
    g.finish();
}

fn fig05_06(c: &mut Criterion) {
    bench_pair(c, "fig05", |d| {
        // At bench scale the population is too small for the database to
        // dominate (that property is asserted at realistic scale in
        // tests/paper_shapes.rs); here every configuration must complete
        // work and report the database machine.
        for curve in &d.curves {
            assert!(curve.peak().ipm > 0.0, "{}", curve.config);
            assert!(curve.peak().cpu_of("db").unwrap() > 0.0);
        }
    });
}

fn fig07_08(c: &mut Criterion) {
    bench_pair(c, "fig07", |d| {
        for curve in &d.curves {
            assert!(curve.peak().ipm > 0.0, "{}", curve.config);
        }
    });
}

fn fig09_10(c: &mut Criterion) {
    bench_pair(c, "fig09", |d| {
        for curve in &d.curves {
            assert!(curve.peak().ipm > 0.0, "{}", curve.config);
        }
    });
}

fn fig11_12(c: &mut Criterion) {
    bench_pair(c, "fig11", |d| {
        // Defining property: the front end, not the database, binds the
        // PHP configuration.
        let p = d.curve(StandardConfig::PhpColocated).unwrap().peak();
        assert!(p.cpu_of("web").unwrap() >= p.cpu_of("db").unwrap());
    });
}

fn fig13_14(c: &mut Criterion) {
    bench_pair(c, "fig13", |d| {
        // Read-only mix: the sync and plain servlet curves coincide.
        let plain = peak(d, StandardConfig::ServletColocated);
        let sync = peak(d, StandardConfig::ServletColocatedSync);
        let rel = (plain - sync).abs() / plain.max(1.0);
        assert!(rel < 0.05, "sync {sync} vs plain {plain}");
    });
}

criterion_group!(benches, fig05_06, fig07_08, fig09_10, fig11_12, fig13_14);
criterion_main!(benches);
