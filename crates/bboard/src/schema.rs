//! The bulletin board's schema: users, live and archived stories, and
//! threaded comments (RUBBoS keeps old stories separate for the same
//! working-set reason the auction site splits `items`/`old_items`).

use dynamid_sqldb::{ColumnType, Database, SqlResult, TableSchema};

/// Story categories (RUBBoS ships Slashdot-style sections).
pub const CATEGORY_COUNT: usize = 12;

fn story_table(name: &str) -> SqlResult<TableSchema> {
    TableSchema::builder(name)
        .column("id", ColumnType::Int)
        .column("title", ColumnType::Str)
        .column("body", ColumnType::Str)
        .column("author", ColumnType::Int)
        .column("category", ColumnType::Int)
        .column("date", ColumnType::Int)
        .column("nb_comments", ColumnType::Int)
        .column("rating", ColumnType::Int)
        .primary_key("id")
        .auto_increment()
        .index("category")
        .index("author")
        .build()
}

/// Creates all five tables in an empty database.
///
/// # Errors
///
/// Fails if any table already exists.
pub fn create_schema(db: &mut Database) -> SqlResult<()> {
    db.create_table(
        TableSchema::builder("users")
            .column("id", ColumnType::Int)
            .column("nickname", ColumnType::Str)
            .column("password", ColumnType::Str)
            .column("karma", ColumnType::Int)
            .column("creation_date", ColumnType::Int)
            .primary_key("id")
            .auto_increment()
            .index("nickname")
            .build()?,
    )?;
    db.create_table(story_table("stories")?)?;
    db.create_table(story_table("old_stories")?)?;
    db.create_table(
        TableSchema::builder("comments")
            .column("id", ColumnType::Int)
            .column("story_id", ColumnType::Int)
            .column("parent_id", ColumnType::Int)
            .column("author", ColumnType::Int)
            .column("date", ColumnType::Int)
            .column("subject", ColumnType::Str)
            .column("body", ColumnType::Str)
            .column("rating", ColumnType::Int)
            .primary_key("id")
            .auto_increment()
            .index("story_id")
            .index("author")
            .build()?,
    )?;
    db.create_table(
        TableSchema::builder("categories")
            .column("id", ColumnType::Int)
            .column("name", ColumnType::Str)
            .primary_key("id")
            .build()?,
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_tables() {
        let mut db = Database::new();
        create_schema(&mut db).unwrap();
        assert_eq!(db.table_names().len(), 5);
        for t in ["users", "stories", "old_stories", "comments", "categories"] {
            assert!(db.table(t).is_ok(), "missing {t}");
        }
    }
}
