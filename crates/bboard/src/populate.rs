//! Synthetic population for the bulletin board (RUBBoS-scale defaults:
//! half a million users, ~200 live stories with deep comment threads, a
//! large archive).

use crate::schema::{create_schema, CATEGORY_COUNT};
use dynamid_sim::SimRng;
use dynamid_sqldb::{Database, SqlResult, Value};

/// Reference epoch for synthetic dates (2001-09-09, epoch seconds).
pub const BASE_DATE: i64 = 1_000_000_000;
/// One day in epoch seconds.
pub const DAY: i64 = 86_400;

/// Population cardinalities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BboardScale {
    /// Registered users.
    pub users: usize,
    /// Stories on the front sections.
    pub stories: usize,
    /// Archived stories.
    pub old_stories: usize,
    /// Average comments per live story.
    pub comments_per_story: usize,
}

impl BboardScale {
    /// RUBBoS-style sizing.
    pub fn paper() -> Self {
        BboardScale { users: 500_000, stories: 200, old_stories: 60_000, comments_per_story: 100 }
    }

    /// A small configuration for tests.
    pub fn small() -> Self {
        BboardScale { users: 1_000, stories: 40, old_stories: 300, comments_per_story: 12 }
    }

    /// Paper sizing scaled by `factor`.
    pub fn scaled(factor: f64) -> Self {
        let p = Self::paper();
        let s = |n: usize| ((n as f64 * factor).round() as usize).max(10);
        BboardScale {
            users: s(p.users),
            stories: s(p.stories),
            old_stories: s(p.old_stories),
            comments_per_story: p.comments_per_story.min(s(p.comments_per_story)),
        }
    }
}

/// Builds and populates a bulletin-board database.
///
/// # Errors
///
/// Propagates schema or insertion failures.
pub fn build_db(scale: &BboardScale, seed: u64) -> SqlResult<Database> {
    let mut db = Database::new();
    create_schema(&mut db)?;
    let mut rng = SimRng::new(seed);
    {
        let t = db.table_mut("categories")?;
        for i in 0..CATEGORY_COUNT {
            t.insert(vec![Value::Int(i as i64 + 1), Value::str(format!("SECTION{i:02}"))])?;
        }
    }
    {
        let mut urng = rng.fork(1);
        let t = db.table_mut("users")?;
        for i in 0..scale.users {
            t.insert(vec![
                Value::Null,
                Value::str(format!("B{i}")),
                Value::str("pw"),
                Value::Int(urng.uniform_i64(-10, 100)),
                Value::Int(BASE_DATE - urng.uniform_i64(0, 500) * DAY),
            ])?;
        }
    }
    let users = scale.users as i64;
    let story = |rng: &mut SimRng, live: bool| -> Vec<Value> {
        let age = if live { rng.uniform_i64(0, 6) } else { rng.uniform_i64(7, 400) };
        vec![
            Value::Null,
            Value::str(format!("STORY {}", rng.ascii_string(16))),
            Value::str(rng.ascii_string(200)),
            Value::Int(rng.uniform_i64(1, users)),
            Value::Int(rng.uniform_i64(1, CATEGORY_COUNT as i64)),
            Value::Int(BASE_DATE - age * DAY),
            Value::Int(0),
            Value::Int(rng.uniform_i64(-1, 5)),
        ]
    };
    {
        let mut srng = rng.fork(2);
        for _ in 0..scale.stories {
            let row = story(&mut srng, true);
            db.table_mut("stories")?.insert(row)?;
        }
        for _ in 0..scale.old_stories {
            let row = story(&mut srng, false);
            db.table_mut("old_stories")?.insert(row)?;
        }
    }
    {
        let mut crng = rng.fork(3);
        let total = scale.stories * scale.comments_per_story;
        for _ in 0..total {
            let story_id = crng.zipf(scale.stories, 0.7) as i64 + 1;
            let t = db.table_mut("comments")?;
            t.insert(vec![
                Value::Null,
                Value::Int(story_id),
                Value::Int(0),
                Value::Int(crng.uniform_i64(1, users)),
                Value::Int(BASE_DATE - crng.uniform_i64(0, 6) * DAY),
                Value::str(format!("RE {}", crng.ascii_string(10))),
                Value::str(crng.ascii_string(80)),
                Value::Int(crng.uniform_i64(-1, 5)),
            ])?;
        }
        // Refresh the denormalized per-story comment counts.
        let counts =
            db.execute("SELECT story_id, COUNT(*) AS n FROM comments GROUP BY story_id", &[])?;
        for row in counts.rows {
            db.execute(
                "UPDATE stories SET nb_comments = ? WHERE id = ?",
                &[row[1].clone(), row[0].clone()],
            )?;
        }
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_population() {
        let scale = BboardScale::small();
        let mut db = build_db(&scale, 1).unwrap();
        assert_eq!(db.table("users").unwrap().row_count(), scale.users);
        assert_eq!(db.table("stories").unwrap().row_count(), scale.stories);
        assert_eq!(db.table("old_stories").unwrap().row_count(), scale.old_stories);
        assert_eq!(
            db.table("comments").unwrap().row_count(),
            scale.stories * scale.comments_per_story
        );
        // Denormalized counts match.
        let r = db.execute("SELECT SUM(nb_comments) FROM stories", &[]).unwrap();
        assert_eq!(
            r.scalar().unwrap().as_int().unwrap(),
            (scale.stories * scale.comments_per_story) as i64
        );
    }

    #[test]
    fn scaled_clamps() {
        let s = BboardScale::scaled(0.001);
        assert!(s.users >= 10);
        assert!(s.stories >= 10);
    }
}
