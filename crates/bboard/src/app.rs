//! The bulletin-board [`Application`]: interaction catalog and dispatch.

use crate::populate::BboardScale;
use crate::schema::CATEGORY_COUNT;
use dynamid_core::{AppLockSpec, AppResult, Application, InteractionSpec, RequestCtx, SessionData};
use dynamid_sim::SimRng;

/// Interaction ids, in catalog order (a representative RUBBoS subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Interaction {
    StoriesOfTheDay = 0,
    BrowseCategories = 1,
    BrowseStoriesByCategory = 2,
    OlderStories = 3,
    ViewStory = 4,
    AuthorInfo = 5,
    Search = 6,
    SubmitStoryForm = 7,
    StoreStory = 8,
    PostCommentForm = 9,
    StoreComment = 10,
    ModerateComment = 11,
    ViewUserComments = 12,
}

/// The thirteen bulletin-board interactions; three write.
pub const INTERACTIONS: [InteractionSpec; 13] = [
    InteractionSpec { name: "StoriesOfTheDay", read_only: true, secure: false },
    InteractionSpec { name: "BrowseCategories", read_only: true, secure: false },
    InteractionSpec { name: "BrowseStoriesByCategory", read_only: true, secure: false },
    InteractionSpec { name: "OlderStories", read_only: true, secure: false },
    InteractionSpec { name: "ViewStory", read_only: true, secure: false },
    InteractionSpec { name: "AuthorInfo", read_only: true, secure: false },
    InteractionSpec { name: "Search", read_only: true, secure: false },
    InteractionSpec { name: "SubmitStoryForm", read_only: true, secure: false },
    InteractionSpec { name: "StoreStory", read_only: false, secure: false },
    InteractionSpec { name: "PostCommentForm", read_only: true, secure: false },
    InteractionSpec { name: "StoreComment", read_only: false, secure: false },
    InteractionSpec { name: "ModerateComment", read_only: false, secure: false },
    InteractionSpec { name: "ViewUserComments", read_only: true, secure: false },
];

/// The bulletin-board benchmark application.
#[derive(Debug, Clone)]
pub struct BulletinBoard {
    scale: BboardScale,
}

impl BulletinBoard {
    /// Creates the application for a database populated at `scale`.
    pub fn new(scale: BboardScale) -> Self {
        BulletinBoard { scale }
    }

    /// The population scale handlers draw random entities from.
    pub fn scale(&self) -> &BboardScale {
        &self.scale
    }

    /// A random live-story id (Zipf-skewed: front-page stories get most
    /// traffic).
    pub fn random_story(&self, rng: &mut SimRng) -> i64 {
        rng.zipf(self.scale.stories, 0.7) as i64 + 1
    }

    /// A random user's nickname.
    pub fn random_nickname(&self, rng: &mut SimRng) -> String {
        format!("B{}", rng.index(self.scale.users))
    }

    /// A random user id.
    pub fn random_user(&self, rng: &mut SimRng) -> i64 {
        rng.uniform_i64(1, self.scale.users as i64)
    }

    /// A random category id.
    pub fn random_category(&self, rng: &mut SimRng) -> i64 {
        rng.uniform_i64(1, CATEGORY_COUNT as i64)
    }
}

impl Application for BulletinBoard {
    fn name(&self) -> &str {
        "bboard"
    }

    fn interactions(&self) -> &[InteractionSpec] {
        &INTERACTIONS
    }

    fn app_locks(&self) -> Vec<AppLockSpec> {
        vec![AppLockSpec::new("story", 64), AppLockSpec::new("user", 64)]
    }

    fn handle(
        &self,
        id: usize,
        ctx: &mut RequestCtx<'_>,
        session: &mut SessionData,
        rng: &mut SimRng,
    ) -> AppResult<()> {
        crate::logic::handle(self, id, ctx, session, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_shape() {
        assert_eq!(INTERACTIONS.len(), 13);
        let writes = INTERACTIONS.iter().filter(|s| !s.read_only).count();
        assert_eq!(writes, 3);
    }

    #[test]
    fn pickers_in_range() {
        let app = BulletinBoard::new(BboardScale::small());
        let mut rng = SimRng::new(1);
        for _ in 0..100 {
            assert!((1..=app.scale().stories as i64).contains(&app.random_story(&mut rng)));
            assert!((1..=app.scale().users as i64).contains(&app.random_user(&mut rng)));
        }
    }
}
