//! The bulletin-board workload mixes: a read-only browse mix and a
//! submission mix (~10% read-write), mirroring RUBBoS's defaults.

use dynamid_workload::{Mix, TransitionMatrix};

/// Submission-mix shares (10% read-write), in catalog order.
pub const SUBMISSION_SHARES: [f64; 13] = [
    14.0, // StoriesOfTheDay
    5.0,  // BrowseCategories
    12.0, // BrowseStoriesByCategory
    6.0,  // OlderStories
    24.0, // ViewStory
    6.0,  // AuthorInfo
    6.0,  // Search
    4.0,  // SubmitStoryForm
    2.0,  // StoreStory (write)
    7.0,  // PostCommentForm
    5.0,  // StoreComment (write)
    3.0,  // ModerateComment (write)
    6.0,  // ViewUserComments
];

/// Browse-mix shares (read-only).
pub const BROWSE_SHARES: [f64; 13] =
    [18.0, 7.0, 15.0, 9.0, 28.0, 7.0, 6.0, 0.0, 0.0, 0.0, 0.0, 0.0, 10.0];

fn mix_from_shares(name: &str, shares: &[f64; 13]) -> Mix {
    let rows = vec![shares.to_vec(); 13];
    let matrix = TransitionMatrix::from_rows(rows).expect("static mix is valid");
    let mut entry = vec![0.0; 13];
    entry[0] = 1.0;
    Mix::new(name, matrix, entry).expect("static mix is valid")
}

/// The submission mix (~10% read-write).
pub fn submission() -> Mix {
    mix_from_shares("submission", &SUBMISSION_SHARES)
}

/// The browse mix (read-only).
pub fn browse() -> Mix {
    mix_from_shares("browse", &BROWSE_SHARES)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::INTERACTIONS;

    #[test]
    fn shares_sum_to_100() {
        assert!((SUBMISSION_SHARES.iter().sum::<f64>() - 100.0).abs() < 1e-9);
        assert!((BROWSE_SHARES.iter().sum::<f64>() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn submission_write_share_is_10_percent() {
        let writes: f64 = INTERACTIONS
            .iter()
            .zip(&SUBMISSION_SHARES)
            .filter(|(s, _)| !s.read_only)
            .map(|(_, w)| w)
            .sum();
        assert!((writes - 10.0).abs() < 1e-9);
    }

    #[test]
    fn browse_mix_is_read_only() {
        for (spec, share) in INTERACTIONS.iter().zip(&BROWSE_SHARES) {
            if !spec.read_only {
                assert_eq!(*share, 0.0, "{}", spec.name);
            }
        }
        assert_eq!(browse().interaction_count(), 13);
        assert_eq!(submission().interaction_count(), 13);
    }
}
