//! # dynamid-bboard — the bulletin-board benchmark (extension)
//!
//! The paper's related-work section (§7) mentions a third benchmark from
//! the authors' earlier workload-characterization study — a Slashdot-style
//! **bulletin board** (later distributed as RUBBoS) — and explains why it
//! was left out: *"the Web server CPU is the bottleneck for the bulletin
//! board. Therefore, we expect the results for the bulletin board to be
//! similar to the auction site results."*
//!
//! This crate implements that benchmark so the prediction can be tested:
//! a story/comment site with five tables and twelve interactions (a
//! representative subset of RUBBoS's catalog), implemented — like the
//! other two applications — in both the explicit-SQL and the entity-bean
//! styles, with a read-heavy browse mix. The integration tests in
//! `tests/` confirm the paper's expectation: the dynamic-content
//! generator, not the database, is the bottleneck, and the configuration
//! ordering matches the auction site's.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod app;
pub mod logic;
pub mod mixes;
pub mod populate;
pub mod schema;

pub use app::{BulletinBoard, Interaction, INTERACTIONS};
pub use populate::{build_db, BboardScale};
