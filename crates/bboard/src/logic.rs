//! The thirteen bulletin-board interactions, in both implementation
//! styles. Explicit-SQL and entity-bean variants live side by side in each
//! handler (the application is small enough that splitting modules, as the
//! bookstore and auction crates do, would only add indirection).

use crate::app::{BulletinBoard, Interaction};
use crate::populate::BASE_DATE;
use dynamid_core::{AppError, AppResult, LogicStyle, RequestCtx, SessionData};
use dynamid_http::StaticAsset;
use dynamid_sim::SimRng;
use dynamid_sqldb::Value;

/// Dispatches one interaction.
pub fn handle(
    app: &BulletinBoard,
    id: usize,
    ctx: &mut RequestCtx<'_>,
    session: &mut SessionData,
    rng: &mut SimRng,
) -> AppResult<()> {
    use Interaction as I;
    match id {
        x if x == I::StoriesOfTheDay as usize => stories_of_the_day(ctx),
        x if x == I::BrowseCategories as usize => browse_categories(ctx),
        x if x == I::BrowseStoriesByCategory as usize => by_category(app, ctx, session, rng),
        x if x == I::OlderStories as usize => older_stories(ctx, rng),
        x if x == I::ViewStory as usize => view_story(app, ctx, session, rng),
        x if x == I::AuthorInfo as usize => author_info(app, ctx, rng),
        x if x == I::Search as usize => search(ctx, rng),
        x if x == I::SubmitStoryForm as usize => submit_form(app, ctx, session, rng),
        x if x == I::StoreStory as usize => store_story(app, ctx, session, rng),
        x if x == I::PostCommentForm as usize => comment_form(app, ctx, session, rng),
        x if x == I::StoreComment as usize => store_comment(app, ctx, session, rng),
        x if x == I::ModerateComment as usize => moderate(app, ctx, session, rng),
        x if x == I::ViewUserComments as usize => user_comments(app, ctx, rng),
        other => Err(AppError::Logic(format!("unknown interaction {other}"))),
    }
}

fn header(ctx: &mut RequestCtx<'_>, title: &str) {
    ctx.emit(&format!("<html><head><title>{title}</title></head><body>"));
    ctx.emit_bytes(1_500);
    ctx.embed_asset(StaticAsset::button());
    ctx.embed_asset(StaticAsset::button());
}

fn footer(ctx: &mut RequestCtx<'_>) {
    ctx.emit_bytes(500);
    ctx.emit("</body></html>");
}

fn login(
    app: &BulletinBoard,
    ctx: &mut RequestCtx<'_>,
    session: &mut SessionData,
    rng: &mut SimRng,
) -> AppResult<i64> {
    if let Some(id) = session.int("user_id") {
        return Ok(id);
    }
    let nick = app.random_nickname(rng);
    let id = match ctx.style() {
        LogicStyle::ExplicitSql { .. } => ctx
            .query("SELECT id, password FROM users WHERE nickname = ?", &[Value::str(&nick)])?
            .rows
            .first()
            .and_then(|r| r[0].as_int()),
        LogicStyle::EntityBean => ctx.facade("UserSession.login", |em| {
            let pks = em.find_pks_where("users", "nickname", Value::str(&nick))?;
            Ok(pks.into_iter().next().and_then(|pk| pk.as_int()))
        })?,
    }
    .ok_or_else(|| AppError::Logic(format!("no user '{nick}'")))?;
    session.set_int("user_id", id);
    Ok(id)
}

/// Emits a story listing and remembers the first story as the session
/// focus.
fn emit_story_rows(
    ctx: &mut RequestCtx<'_>,
    session: &mut SessionData,
    rows: &[(Value, Value, Value)],
) {
    if let Some((id, ..)) = rows.first() {
        if let Some(id) = id.as_int() {
            session.set_int("story_id", id);
        }
    }
    for (id, title, n) in rows {
        ctx.emit_bytes(160);
        ctx.emit(&format!(
            "<tr><td><a href=\"story?id={id}\">{title}</a> ({n} comments)</td></tr>"
        ));
    }
}

fn list_stories_sql(
    ctx: &mut RequestCtx<'_>,
    where_clause: &str,
    params: &[Value],
) -> AppResult<Vec<(Value, Value, Value)>> {
    let r = ctx.query(
        &format!(
            "SELECT id, title, nb_comments FROM stories {where_clause} \
             ORDER BY date DESC LIMIT 10"
        ),
        params,
    )?;
    Ok(r.rows.into_iter().map(|row| (row[0].clone(), row[1].clone(), row[2].clone())).collect())
}

fn list_stories_ejb(
    ctx: &mut RequestCtx<'_>,
    tail: &str,
    params: &[Value],
) -> AppResult<Vec<(Value, Value, Value)>> {
    let params = params.to_vec();
    let tail = format!("{tail} ORDER BY date DESC LIMIT 10");
    ctx.facade("StorySession.list", move |em| {
        let pks = em.find_pks_query_tail("stories", &tail, &params)?;
        let mut out = Vec::new();
        for pk in pks {
            if let Some(h) = em.find("stories", pk.clone())? {
                out.push((pk, em.get(h, "title")?, em.get(h, "nb_comments")?));
            }
        }
        Ok(out)
    })
}

fn stories_of_the_day(ctx: &mut RequestCtx<'_>) -> AppResult<()> {
    header(ctx, "Stories of the Day");
    let mut scratch = SessionData::new(u64::MAX);
    let rows = match ctx.style() {
        LogicStyle::ExplicitSql { .. } => list_stories_sql(ctx, "", &[])?,
        LogicStyle::EntityBean => list_stories_ejb(ctx, "", &[])?,
    };
    emit_story_rows(ctx, &mut scratch, &rows);
    footer(ctx);
    Ok(())
}

fn browse_categories(ctx: &mut RequestCtx<'_>) -> AppResult<()> {
    header(ctx, "Sections");
    match ctx.style() {
        LogicStyle::ExplicitSql { .. } => {
            let r = ctx.query("SELECT id, name FROM categories ORDER BY id", &[])?;
            for row in &r.rows {
                ctx.emit(&format!("<a>{}</a><br>", row[1]));
            }
        }
        LogicStyle::EntityBean => {
            let names = ctx.facade("CategorySession.list", |em| {
                let pks = em.find_pks_query_tail("categories", "ORDER BY id", &[])?;
                let mut names = Vec::new();
                for pk in pks {
                    if let Some(h) = em.find("categories", pk)? {
                        names.push(em.get(h, "name")?);
                    }
                }
                Ok(names)
            })?;
            for n in names {
                ctx.emit(&format!("<a>{n}</a><br>"));
            }
        }
    }
    footer(ctx);
    Ok(())
}

fn by_category(
    app: &BulletinBoard,
    ctx: &mut RequestCtx<'_>,
    session: &mut SessionData,
    rng: &mut SimRng,
) -> AppResult<()> {
    header(ctx, "Stories in Section");
    let cat = app.random_category(rng);
    let rows = match ctx.style() {
        LogicStyle::ExplicitSql { .. } => {
            list_stories_sql(ctx, "WHERE category = ?", &[Value::Int(cat)])?
        }
        LogicStyle::EntityBean => list_stories_ejb(ctx, "WHERE category = ?", &[Value::Int(cat)])?,
    };
    emit_story_rows(ctx, session, &rows);
    footer(ctx);
    Ok(())
}

fn older_stories(ctx: &mut RequestCtx<'_>, rng: &mut SimRng) -> AppResult<()> {
    header(ctx, "Older Stories");
    let day = BASE_DATE - rng.uniform_i64(7, 60) * crate::populate::DAY;
    match ctx.style() {
        LogicStyle::ExplicitSql { .. } => {
            let r = ctx.query(
                "SELECT id, title FROM old_stories WHERE date > ? ORDER BY date DESC LIMIT 10",
                &[Value::Int(day)],
            )?;
            for row in &r.rows {
                ctx.emit_bytes(140);
                ctx.emit(&format!("<tr><td>{}</td></tr>", row[1]));
            }
        }
        LogicStyle::EntityBean => {
            let titles = ctx.facade("StorySession.older", |em| {
                let pks = em.find_pks_query_tail(
                    "old_stories",
                    "WHERE date > ? ORDER BY date DESC LIMIT 10",
                    &[Value::Int(day)],
                )?;
                let mut titles = Vec::new();
                for pk in pks {
                    if let Some(h) = em.find("old_stories", pk)? {
                        titles.push(em.get(h, "title")?);
                    }
                }
                Ok(titles)
            })?;
            for t in titles {
                ctx.emit_bytes(140);
                ctx.emit(&format!("<tr><td>{t}</td></tr>"));
            }
        }
    }
    footer(ctx);
    Ok(())
}

fn view_story(
    app: &BulletinBoard,
    ctx: &mut RequestCtx<'_>,
    session: &mut SessionData,
    rng: &mut SimRng,
) -> AppResult<()> {
    header(ctx, "Story");
    let story = session.int("story_id").unwrap_or_else(|| app.random_story(rng));
    session.set_int("story_id", story);
    match ctx.style() {
        LogicStyle::ExplicitSql { .. } => {
            let s = ctx.query(
                "SELECT s.title, s.body, s.date, u.nickname FROM stories s \
                 JOIN users u ON s.author = u.id WHERE s.id = ?",
                &[Value::Int(story)],
            )?;
            if let Some(row) = s.rows.first() {
                ctx.emit(&format!("<h2>{}</h2><p>by {}</p><p>{}</p>", row[0], row[3], row[1]));
            }
            let c = ctx.query(
                "SELECT c.subject, c.body, c.rating, u.nickname FROM comments c \
                 JOIN users u ON c.author = u.id \
                 WHERE c.story_id = ? ORDER BY c.date DESC LIMIT 25",
                &[Value::Int(story)],
            )?;
            for row in &c.rows {
                ctx.emit_bytes(170);
                ctx.emit(&format!("<p>{} — {}</p>", row[3], row[0]));
            }
        }
        LogicStyle::EntityBean => {
            let (head, comments) = ctx.facade("StorySession.view", |em| {
                let head = match em.find("stories", Value::Int(story))? {
                    Some(h) => {
                        let author_pk = em.get(h, "author")?;
                        let by = match em.find("users", author_pk)? {
                            Some(u) => em.get(u, "nickname")?.to_string(),
                            None => "?".into(),
                        };
                        Some((em.get(h, "title")?, em.get(h, "body")?, by))
                    }
                    None => None,
                };
                let pks = em.find_pks_ordered(
                    "comments",
                    "story_id",
                    Value::Int(story),
                    "date",
                    true,
                    25,
                )?;
                let mut comments = Vec::new();
                for pk in pks {
                    if let Some(c) = em.find("comments", pk)? {
                        let author_pk = em.get(c, "author")?;
                        let by = match em.find("users", author_pk)? {
                            Some(u) => em.get(u, "nickname")?.to_string(),
                            None => "?".into(),
                        };
                        comments.push((by, em.get(c, "subject")?));
                    }
                }
                Ok((head, comments))
            })?;
            if let Some((title, body, by)) = head {
                ctx.emit(&format!("<h2>{title}</h2><p>by {by}</p><p>{body}</p>"));
            }
            for (by, subject) in comments {
                ctx.emit_bytes(170);
                ctx.emit(&format!("<p>{by} — {subject}</p>"));
            }
        }
    }
    footer(ctx);
    Ok(())
}

fn author_info(app: &BulletinBoard, ctx: &mut RequestCtx<'_>, rng: &mut SimRng) -> AppResult<()> {
    header(ctx, "Author");
    let user = app.random_user(rng);
    match ctx.style() {
        LogicStyle::ExplicitSql { .. } => {
            let r = ctx.query(
                "SELECT nickname, karma, creation_date FROM users WHERE id = ?",
                &[Value::Int(user)],
            )?;
            if let Some(row) = r.rows.first() {
                ctx.emit(&format!("<h2>{} (karma {})</h2>", row[0], row[1]));
            }
        }
        LogicStyle::EntityBean => {
            let head =
                ctx.facade("UserSession.info", |em| match em.find("users", Value::Int(user))? {
                    Some(h) => Ok(Some(format!(
                        "{} (karma {})",
                        em.get(h, "nickname")?,
                        em.get(h, "karma")?
                    ))),
                    None => Ok(None),
                })?;
            if let Some(h) = head {
                ctx.emit(&format!("<h2>{h}</h2>"));
            }
        }
    }
    footer(ctx);
    Ok(())
}

fn search(ctx: &mut RequestCtx<'_>, rng: &mut SimRng) -> AppResult<()> {
    header(ctx, "Search");
    let token = format!("%{}%", rng.ascii_string(2));
    match ctx.style() {
        LogicStyle::ExplicitSql { .. } => {
            let r = ctx.query(
                "SELECT id, title FROM stories WHERE title LIKE ? LIMIT 10",
                &[Value::str(&token)],
            )?;
            for row in &r.rows {
                ctx.emit_bytes(140);
                ctx.emit(&format!("<tr><td>{}</td></tr>", row[1]));
            }
        }
        LogicStyle::EntityBean => {
            let titles = ctx.facade("StorySession.search", |em| {
                let pks = em.find_pks_query_tail(
                    "stories",
                    "WHERE title LIKE ? LIMIT 10",
                    &[Value::str(&token)],
                )?;
                let mut out = Vec::new();
                for pk in pks {
                    if let Some(h) = em.find("stories", pk)? {
                        out.push(em.get(h, "title")?);
                    }
                }
                Ok(out)
            })?;
            for t in titles {
                ctx.emit_bytes(140);
                ctx.emit(&format!("<tr><td>{t}</td></tr>"));
            }
        }
    }
    footer(ctx);
    Ok(())
}

fn submit_form(
    app: &BulletinBoard,
    ctx: &mut RequestCtx<'_>,
    session: &mut SessionData,
    rng: &mut SimRng,
) -> AppResult<()> {
    header(ctx, "Submit Story");
    let uid = login(app, ctx, session, rng)?;
    reverify(ctx, uid)?;
    ctx.emit("<form><input name=\"title\"><textarea name=\"body\"></textarea></form>");
    footer(ctx);
    Ok(())
}

/// HTTP is stateless: form pages re-verify the credentials on every
/// request, as the real implementations do.
fn reverify(ctx: &mut RequestCtx<'_>, uid: i64) -> AppResult<()> {
    match ctx.style() {
        LogicStyle::ExplicitSql { .. } => {
            ctx.query("SELECT password FROM users WHERE id = ?", &[Value::Int(uid)])?;
        }
        LogicStyle::EntityBean => {
            ctx.facade("UserSession.verify", |em| {
                if let Some(h) = em.find("users", Value::Int(uid))? {
                    em.get(h, "password")?;
                }
                Ok(())
            })?;
        }
    }
    Ok(())
}

fn store_story(
    app: &BulletinBoard,
    ctx: &mut RequestCtx<'_>,
    session: &mut SessionData,
    rng: &mut SimRng,
) -> AppResult<()> {
    header(ctx, "Store Story");
    let uid = login(app, ctx, session, rng)?;
    let cat = app.random_category(rng);
    let title = format!("STORY {}", rng.ascii_string(16));
    let body = rng.ascii_string(200);
    match ctx.style() {
        LogicStyle::ExplicitSql { .. } => {
            let r = ctx.query(
                "INSERT INTO stories (id, title, body, author, category, date, \
                 nb_comments, rating) VALUES (NULL, ?, ?, ?, ?, ?, 0, 0)",
                &[
                    Value::str(&title),
                    Value::str(&body),
                    Value::Int(uid),
                    Value::Int(cat),
                    Value::Int(BASE_DATE),
                ],
            )?;
            if let Some(id) = r.last_insert_id {
                session.set_int("story_id", id);
            }
        }
        LogicStyle::EntityBean => {
            let pk = ctx.facade("StorySession.submit", |em| {
                em.create(
                    "stories",
                    &[
                        ("id", Value::Null),
                        ("title", Value::str(&title)),
                        ("body", Value::str(&body)),
                        ("author", Value::Int(uid)),
                        ("category", Value::Int(cat)),
                        ("date", Value::Int(BASE_DATE)),
                        ("nb_comments", Value::Int(0)),
                        ("rating", Value::Int(0)),
                    ],
                )
            })?;
            if let Some(id) = pk.as_int() {
                session.set_int("story_id", id);
            }
        }
    }
    ctx.emit("<p>Story submitted.</p>");
    footer(ctx);
    Ok(())
}

fn comment_form(
    app: &BulletinBoard,
    ctx: &mut RequestCtx<'_>,
    session: &mut SessionData,
    rng: &mut SimRng,
) -> AppResult<()> {
    header(ctx, "Post Comment");
    let uid = login(app, ctx, session, rng)?;
    reverify(ctx, uid)?;
    let story = session.int("story_id").unwrap_or_else(|| app.random_story(rng));
    session.set_int("story_id", story);
    ctx.emit(&format!("<form><input type=\"hidden\" name=\"story\" value=\"{story}\"></form>"));
    footer(ctx);
    Ok(())
}

fn store_comment(
    app: &BulletinBoard,
    ctx: &mut RequestCtx<'_>,
    session: &mut SessionData,
    rng: &mut SimRng,
) -> AppResult<()> {
    header(ctx, "Store Comment");
    let uid = login(app, ctx, session, rng)?;
    let story = session.int("story_id").unwrap_or_else(|| app.random_story(rng));
    let subject = format!("RE {}", rng.ascii_string(10));
    let body = rng.ascii_string(80);
    match ctx.style() {
        LogicStyle::ExplicitSql { sync } => {
            if sync {
                ctx.app_lock("story", story as u64);
            }
            ctx.query(
                "INSERT INTO comments (id, story_id, parent_id, author, date, subject, \
                 body, rating) VALUES (NULL, ?, 0, ?, ?, ?, ?, 0)",
                &[
                    Value::Int(story),
                    Value::Int(uid),
                    Value::Int(BASE_DATE),
                    Value::str(&subject),
                    Value::str(&body),
                ],
            )?;
            ctx.query(
                "UPDATE stories SET nb_comments = nb_comments + 1 WHERE id = ?",
                &[Value::Int(story)],
            )?;
            if sync {
                ctx.app_unlock("story", story as u64);
            }
        }
        LogicStyle::EntityBean => {
            ctx.app_lock("story", story as u64);
            let result = ctx.facade("CommentSession.store", |em| {
                em.create(
                    "comments",
                    &[
                        ("id", Value::Null),
                        ("story_id", Value::Int(story)),
                        ("parent_id", Value::Int(0)),
                        ("author", Value::Int(uid)),
                        ("date", Value::Int(BASE_DATE)),
                        ("subject", Value::str(&subject)),
                        ("body", Value::str(&body)),
                        ("rating", Value::Int(0)),
                    ],
                )?;
                if let Some(h) = em.find("stories", Value::Int(story))? {
                    let n = em.get(h, "nb_comments")?.as_int().unwrap_or(0);
                    em.set(h, "nb_comments", Value::Int(n + 1))?;
                }
                Ok(())
            });
            ctx.app_unlock("story", story as u64);
            result?;
        }
    }
    ctx.emit("<p>Comment posted.</p>");
    footer(ctx);
    Ok(())
}

fn moderate(
    app: &BulletinBoard,
    ctx: &mut RequestCtx<'_>,
    session: &mut SessionData,
    rng: &mut SimRng,
) -> AppResult<()> {
    header(ctx, "Moderate");
    login(app, ctx, session, rng)?;
    let story = session.int("story_id").unwrap_or_else(|| app.random_story(rng));
    let delta = if rng.chance(0.7) { 1 } else { -1 };
    match ctx.style() {
        LogicStyle::ExplicitSql { sync } => {
            // Pick the latest comment of the focused story.
            let c = ctx.query(
                "SELECT id, author FROM comments WHERE story_id = ? ORDER BY date DESC LIMIT 1",
                &[Value::Int(story)],
            )?;
            if let Some(row) = c.rows.first() {
                let (cid, author) = (row[0].clone(), row[1].clone());
                if sync {
                    ctx.app_lock("user", author.as_int().unwrap_or(0) as u64);
                }
                ctx.query(
                    "UPDATE comments SET rating = rating + ? WHERE id = ?",
                    &[Value::Int(delta), cid],
                )?;
                ctx.query(
                    "UPDATE users SET karma = karma + ? WHERE id = ?",
                    &[Value::Int(delta), author.clone()],
                )?;
                if sync {
                    ctx.app_unlock("user", author.as_int().unwrap_or(0) as u64);
                }
            }
        }
        LogicStyle::EntityBean => {
            ctx.facade("ModerationSession.rate", |em| {
                let pks = em.find_pks_ordered(
                    "comments",
                    "story_id",
                    Value::Int(story),
                    "date",
                    true,
                    1,
                )?;
                if let Some(pk) = pks.into_iter().next() {
                    if let Some(c) = em.find("comments", pk)? {
                        let r = em.get(c, "rating")?.as_int().unwrap_or(0);
                        em.set(c, "rating", Value::Int(r + delta))?;
                        let author_pk = em.get(c, "author")?;
                        if let Some(u) = em.find("users", author_pk)? {
                            let k = em.get(u, "karma")?.as_int().unwrap_or(0);
                            em.set(u, "karma", Value::Int(k + delta))?;
                        }
                    }
                }
                Ok(())
            })?;
        }
    }
    ctx.emit("<p>Moderated.</p>");
    footer(ctx);
    Ok(())
}

fn user_comments(app: &BulletinBoard, ctx: &mut RequestCtx<'_>, rng: &mut SimRng) -> AppResult<()> {
    header(ctx, "User Comments");
    let user = app.random_user(rng);
    match ctx.style() {
        LogicStyle::ExplicitSql { .. } => {
            let r = ctx.query(
                "SELECT subject, rating, date FROM comments WHERE author = ? \
                 ORDER BY date DESC LIMIT 20",
                &[Value::Int(user)],
            )?;
            for row in &r.rows {
                ctx.emit_bytes(120);
                ctx.emit(&format!("<tr><td>{} ({})</td></tr>", row[0], row[1]));
            }
        }
        LogicStyle::EntityBean => {
            let rows = ctx.facade("CommentSession.byUser", |em| {
                let pks =
                    em.find_pks_ordered("comments", "author", Value::Int(user), "date", true, 20)?;
                let mut out = Vec::new();
                for pk in pks {
                    if let Some(c) = em.find("comments", pk)? {
                        out.push((em.get(c, "subject")?, em.get(c, "rating")?));
                    }
                }
                Ok(out)
            })?;
            for (subject, rating) in rows {
                ctx.emit_bytes(120);
                ctx.emit(&format!("<tr><td>{subject} ({rating})</td></tr>"));
            }
        }
    }
    footer(ctx);
    Ok(())
}
