//! Extension experiment E13: test the paper's §7 prediction that the
//! bulletin board behaves like the auction site — the dynamic-content
//! generator is the bottleneck, so the configuration ordering matches
//! Figure 11's.

use dynamid_bboard::{build_db, BboardScale, BulletinBoard, INTERACTIONS};
use dynamid_core::{CostModel, Middleware, SessionData, StandardConfig};
use dynamid_sim::engine::NullDriver;
use dynamid_sim::{SimDuration, SimRng, SimTime, Simulation};
use dynamid_workload::{ExperimentSpec, WorkloadConfig};

#[test]
fn every_interaction_in_every_config() {
    let scale = BboardScale::small();
    let app = BulletinBoard::new(scale);
    for config in StandardConfig::ALL {
        let mut db = build_db(&scale, 4).unwrap();
        let mut sim = Simulation::new(SimDuration::from_micros(100));
        let mw = Middleware::install(&mut sim, config, &db, &app, CostModel::default());
        let mut session = SessionData::new(0);
        let mut rng = SimRng::new(8);
        for (id, spec) in INTERACTIONS.iter().enumerate() {
            for _ in 0..2 {
                let prep = mw.run_interaction(&mut db, &app, id, &mut session, &mut rng, false);
                assert!(prep.is_ok(), "{config} {}: {:?}", spec.name, prep.error);
                assert!(prep.trace.check_balanced().is_ok(), "{config} {}", spec.name);
                assert!(prep.stats.queries > 0, "{config} {}", spec.name);
                sim.submit(prep.trace, id as u64);
            }
        }
        sim.run(SimTime::from_micros(600_000_000), &mut NullDriver).unwrap();
        assert_eq!(sim.stats().completed, INTERACTIONS.len() as u64 * 2, "{config}");
    }
}

#[test]
fn writes_change_the_database() {
    let scale = BboardScale::small();
    let app = BulletinBoard::new(scale);
    let mut db = build_db(&scale, 4).unwrap();
    let mut sim = Simulation::new(SimDuration::from_micros(100));
    let mw =
        Middleware::install(&mut sim, StandardConfig::EjbFourTier, &db, &app, CostModel::default());
    let stories0 = db.table("stories").unwrap().row_count();
    let comments0 = db.table("comments").unwrap().row_count();
    let mut session = SessionData::new(0);
    let mut rng = SimRng::new(6);
    // StoreStory, then StoreComment on that story, then moderate it.
    for id in [8usize, 10, 11] {
        let prep = mw.run_interaction(&mut db, &app, id, &mut session, &mut rng, false);
        assert!(prep.is_ok(), "{:?}", prep.error);
    }
    assert_eq!(db.table("stories").unwrap().row_count(), stories0 + 1);
    assert_eq!(db.table("comments").unwrap().row_count(), comments0 + 1);
    let sid = session.int("story_id").unwrap();
    let n = db
        .execute("SELECT nb_comments FROM stories WHERE id = ?", &[dynamid_sqldb::Value::Int(sid)])
        .unwrap();
    assert_eq!(n.rows[0][0], dynamid_sqldb::Value::Int(1));
}

/// The paper's prediction: front-end-bound, auction-like ordering.
#[test]
fn bulletin_board_behaves_like_the_auction_site() {
    let scale = BboardScale::scaled(0.01);
    let app = BulletinBoard::new(scale);
    let mix = dynamid_bboard::mixes::submission();
    let load = WorkloadConfig {
        clients: 220,
        think_time: SimDuration::from_millis(400),
        session_time: SimDuration::from_secs(60),
        ramp_up: SimDuration::from_secs(4),
        measure: SimDuration::from_secs(15),
        ramp_down: SimDuration::from_secs(1),
        seed: 3,
        resilience: Default::default(),
    };
    let run = |config: StandardConfig| {
        let mut db = build_db(&scale, 2).unwrap();
        ExperimentSpec::for_config(config).mix(&mix).workload(load.clone()).run(&mut db, &app)
    };
    let php = run(StandardConfig::PhpColocated);
    let colocated = run(StandardConfig::ServletColocated);
    let dedicated = run(StandardConfig::ServletDedicated);
    let ejb = run(StandardConfig::EjbFourTier);

    // Front end saturated, database idle-ish — as for the auction site.
    assert!(php.cpu_of("web").unwrap() > 0.9, "{:?}", php.resources);
    assert!(php.cpu_of("db").unwrap() < 0.7, "{:?}", php.resources);
    // Auction-like ordering: PHP > co-located, dedicated > co-located,
    // EJB last.
    assert!(php.throughput_ipm > colocated.throughput_ipm * 1.05);
    assert!(dedicated.throughput_ipm > colocated.throughput_ipm * 1.1);
    assert!(ejb.throughput_ipm < colocated.throughput_ipm);
    // EJB saturates its own machine.
    assert!(ejb.cpu_of("ejb").unwrap() > 0.9);
}
