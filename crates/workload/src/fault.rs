//! Client-side resilience policy and role-based fault specification.
//!
//! The simulation kernel consumes a fully materialized
//! [`FaultPlan`](dynamid_sim::FaultPlan) — explicit crash windows against
//! concrete machine ids. Experiments want to talk about faults one level
//! up: "this much fault intensity against whatever machines the deployment
//! has". [`FaultSpec`] is that description; [`FaultSpec::compile`] lowers
//! it into a plan deterministically from its seed, so the same spec against
//! the same deployment always yields the same schedule.
//!
//! [`ResilienceConfig`] is the client half of the story: request deadlines,
//! capped exponential backoff with deterministic jitter, and a retry
//! budget. Both default to fully disabled, leaving the healthy-path
//! experiments bit-identical to the paper reproduction.

use dynamid_core::AdmissionControl;
use dynamid_sim::{CrashWindow, Degradation, FaultPlan, MachineId, SimDuration, SimRng, SimTime};

/// Client-side timeout and retry policy. The default disables everything:
/// no deadlines, no retries — the paper's patient client.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResilienceConfig {
    /// Per-request deadline; the client abandons (and possibly retries) an
    /// interaction that has not completed within this budget. `None`
    /// disables timeouts.
    pub request_timeout: Option<SimDuration>,
    /// How many times a failed interaction is re-sent before the client
    /// gives up and moves on. `0` disables retries.
    pub max_retries: u32,
    /// First-retry backoff; doubles on every subsequent attempt.
    pub backoff_base: SimDuration,
    /// Upper bound on the exponential backoff.
    pub backoff_cap: SimDuration,
}

impl ResilienceConfig {
    /// Everything disabled (the paper's client behaviour).
    pub fn disabled() -> Self {
        ResilienceConfig {
            request_timeout: None,
            max_retries: 0,
            backoff_base: SimDuration::from_millis(250),
            backoff_cap: SimDuration::from_secs(5),
        }
    }

    /// `true` when neither timeouts nor retries are enabled.
    pub fn is_disabled(&self) -> bool {
        self.request_timeout.is_none() && self.max_retries == 0
    }

    /// The backoff delay before retry attempt `attempt` (1-based), before
    /// jitter: `min(cap, base * 2^(attempt-1))`.
    pub fn backoff_for(&self, attempt: u32) -> SimDuration {
        let shift = attempt.saturating_sub(1).min(20);
        let exp = self.backoff_base.as_micros().saturating_mul(1u64 << shift);
        SimDuration::from_micros(exp.min(self.backoff_cap.as_micros()))
    }
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// A role-agnostic description of how hard to shake a deployment,
/// compilable into a concrete [`FaultPlan`] once the deployment's machines
/// are known.
///
/// Crash arrivals are per-machine Poisson processes, so deployments with
/// more tiers expose proportionally more failure surface — the effect the
/// availability sweep measures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Seed for the compiled schedule and the engine's transient draws.
    pub seed: u64,
    /// Probability that any single CPU or network stage trips a transient
    /// fault (aborting the request).
    pub transient_fail_prob: f64,
    /// Mean crash arrivals per server machine per simulated minute.
    pub crashes_per_machine_min: f64,
    /// Mean outage length once a machine crashes (exponential).
    pub outage: SimDuration,
    /// CPU demand multiplier while degraded (1.0 = no degradation).
    pub cpu_degrade: f64,
    /// NIC demand multiplier while degraded (1.0 = no degradation).
    pub nic_degrade: f64,
}

impl FaultSpec {
    /// A spec that injects nothing.
    pub fn none(seed: u64) -> Self {
        FaultSpec {
            seed,
            transient_fail_prob: 0.0,
            crashes_per_machine_min: 0.0,
            outage: SimDuration::from_secs(2),
            cpu_degrade: 1.0,
            nic_degrade: 1.0,
        }
    }

    /// `true` when compilation would produce a trivial plan.
    pub fn is_trivial(&self) -> bool {
        self.transient_fail_prob <= 0.0
            && self.crashes_per_machine_min <= 0.0
            && self.cpu_degrade <= 1.0
            && self.nic_degrade <= 1.0
    }

    /// The reference fault ladder used by the availability sweep:
    /// `intensity` in `[0, 1]` scales every knob linearly from nothing to a
    /// hostile environment (transient faults on ~0.2% of stages, one crash
    /// per machine per two minutes with ~2 s outages, 40% CPU and 25% NIC
    /// slowdown).
    pub fn at_intensity(seed: u64, intensity: f64) -> Self {
        let i = intensity.clamp(0.0, 1.0);
        FaultSpec {
            seed,
            transient_fail_prob: 0.002 * i,
            crashes_per_machine_min: 0.5 * i,
            outage: SimDuration::from_secs_f64(2.0),
            cpu_degrade: 1.0 + 0.4 * i,
            nic_degrade: 1.0 + 0.25 * i,
        }
    }

    /// Lowers the spec into a concrete [`FaultPlan`] for the given server
    /// machines over `[0, horizon)`. Deterministic: each machine's crash
    /// schedule comes from its own forked stream, so adding a machine never
    /// perturbs another machine's schedule.
    pub fn compile(&self, server_machines: &[MachineId], horizon: SimDuration) -> FaultPlan {
        let end = SimTime::ZERO + horizon;
        let mut plan = FaultPlan {
            seed: self.seed,
            transient_fail_prob: self.transient_fail_prob.clamp(0.0, 1.0),
            crashes: Vec::new(),
            degradations: Vec::new(),
        };
        let mut root = SimRng::new(self.seed ^ 0x00C0_FFEE);
        for &m in server_machines {
            let mut rng = root.fork(u64::from(m.0));
            if self.crashes_per_machine_min > 0.0 {
                let mean_gap = SimDuration::from_secs_f64(60.0 / self.crashes_per_machine_min);
                let mut at = SimTime::ZERO + rng.exponential(mean_gap);
                while at < end {
                    let outage = SimDuration::from_micros(
                        rng.exponential(self.outage).as_micros().max(1_000),
                    );
                    plan.crashes.push(CrashWindow { machine: m, at, restart: at + outage });
                    at = at + outage + rng.exponential(mean_gap);
                }
            }
            if self.cpu_degrade > 1.0 || self.nic_degrade > 1.0 {
                plan.degradations.push(Degradation {
                    machine: m,
                    from: SimTime::ZERO,
                    until: end,
                    cpu_factor: self.cpu_degrade.max(1.0),
                    nic_factor: self.nic_degrade.max(1.0),
                });
            }
        }
        plan
    }
}

/// Everything an experiment needs to run under faults: the fault spec and
/// the server-side admission limits. (Client-side resilience lives on
/// [`WorkloadConfig`](crate::WorkloadConfig).) The default injects nothing
/// and limits nothing.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ChaosOptions {
    /// Faults to compile and install, when any.
    pub faults: Option<FaultSpec>,
    /// Server-side admission limits.
    pub admission: AdmissionControl,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_resilience_is_default() {
        let r = ResilienceConfig::default();
        assert!(r.is_disabled());
        assert_eq!(r, ResilienceConfig::disabled());
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let r = ResilienceConfig {
            request_timeout: Some(SimDuration::from_secs(1)),
            max_retries: 8,
            backoff_base: SimDuration::from_millis(100),
            backoff_cap: SimDuration::from_millis(900),
        };
        assert_eq!(r.backoff_for(1), SimDuration::from_millis(100));
        assert_eq!(r.backoff_for(2), SimDuration::from_millis(200));
        assert_eq!(r.backoff_for(3), SimDuration::from_millis(400));
        assert_eq!(r.backoff_for(4), SimDuration::from_millis(800));
        assert_eq!(r.backoff_for(5), SimDuration::from_millis(900));
        assert_eq!(r.backoff_for(30), SimDuration::from_millis(900));
    }

    #[test]
    fn zero_intensity_is_trivial() {
        let spec = FaultSpec::at_intensity(7, 0.0);
        assert!(spec.is_trivial());
        let plan = spec.compile(&[MachineId(1), MachineId(2)], SimDuration::from_secs(60));
        assert!(plan.is_trivial());
    }

    #[test]
    fn compile_is_deterministic_and_bounded() {
        let spec = FaultSpec::at_intensity(11, 0.8);
        let machines = [MachineId(1), MachineId(2), MachineId(3)];
        let horizon = SimDuration::from_secs(300);
        let a = spec.compile(&machines, horizon);
        let b = spec.compile(&machines, horizon);
        assert_eq!(a, b);
        assert!(!a.crashes.is_empty(), "0.8 intensity over 5 min should crash something");
        let end = SimTime::ZERO + horizon;
        for w in &a.crashes {
            assert!(w.at < end);
            assert!(w.restart > w.at);
        }
        assert_eq!(a.degradations.len(), machines.len());
        a.validate().unwrap();
    }

    #[test]
    fn per_machine_schedules_are_independent() {
        let spec = FaultSpec::at_intensity(11, 0.8);
        let horizon = SimDuration::from_secs(300);
        let narrow = spec.compile(&[MachineId(1)], horizon);
        let wide = spec.compile(&[MachineId(1), MachineId(9)], horizon);
        let of = |p: &FaultPlan, m: MachineId| -> Vec<CrashWindow> {
            p.crashes.iter().filter(|w| w.machine == m).cloned().collect()
        };
        assert_eq!(of(&narrow, MachineId(1)), of(&wide, MachineId(1)));
    }

    #[test]
    fn more_tiers_more_failure_surface() {
        let spec = FaultSpec::at_intensity(3, 1.0);
        let horizon = SimDuration::from_secs(600);
        let two = spec.compile(&[MachineId(1), MachineId(2)], horizon);
        let four = spec.compile(&[MachineId(1), MachineId(2), MachineId(3), MachineId(4)], horizon);
        assert!(four.crashes.len() > two.crashes.len());
    }
}
