//! One-call experiment execution: install a deployment, run the client
//! population through its phases, and report the paper's metrics.

use crate::driver::{
    CommitLedger, ResourceWindow, WorkloadConfig, WorkloadDriver, WorkloadMetrics,
};
use crate::fault::{ChaosOptions, FaultSpec, ResilienceConfig};
use crate::mix::Mix;
use dynamid_core::{
    AdmissionControl, Application, CachePolicy, CacheScope, CostModel, InstallOptions,
    MethodCacheConfig, MethodCacheStats, Middleware, StandardConfig,
};
use dynamid_sim::{
    EngineStats, ErrorCounters, GrantPolicy, LockStats, SimDuration, SimTime, Simulation,
};
use dynamid_sqldb::{Database, ResultCacheConfig};
use dynamid_trace::TraceCapture;

/// One-way LAN latency between the paper's machines (switched 100 Mb/s
/// Ethernet).
pub const LAN_LATENCY: SimDuration = SimDuration::from_micros(100);

/// Caching-tier counters for one run, present in the result only when the
/// spec enabled caching via [`ExperimentSpec::caching`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Result-cache hits inside the database tier.
    pub query_hits: u64,
    /// Result-cache misses (cacheable statements that executed).
    pub query_misses: u64,
    /// Result-cache entries dropped by commit-driven invalidation.
    pub query_invalidations: u64,
    /// Result-cache lookups bypassed because the open transaction had
    /// written one of the statement's read tables.
    pub query_bypasses: u64,
    /// Middleware session-façade method-cache counters (all zero outside
    /// EJB configurations).
    pub method: MethodCacheStats,
}

impl CacheStats {
    /// Hit rate of the query result cache (0 when it never looked up).
    pub fn query_hit_rate(&self) -> f64 {
        let total = self.query_hits + self.query_misses;
        if total == 0 {
            0.0
        } else {
            self.query_hits as f64 / total as f64
        }
    }

    /// Hit rate of the method cache (0 when it never looked up).
    pub fn method_hit_rate(&self) -> f64 {
        let total = self.method.hits + self.method.misses;
        if total == 0 {
            0.0
        } else {
            self.method.hits as f64 / total as f64
        }
    }
}

/// Everything measured by one experiment run (one configuration at one
/// client count).
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// The deployment configuration measured.
    pub config: StandardConfig,
    /// Offered client population.
    pub clients: usize,
    /// Throughput in interactions per minute over the measurement window.
    pub throughput_ipm: f64,
    /// Workload counters.
    pub metrics: WorkloadMetrics,
    /// Per-machine CPU and NIC usage over the window.
    pub resources: ResourceWindow,
    /// Aggregate lock statistics over the whole run (contention
    /// diagnostics).
    pub lock_stats: LockStats,
    /// Simulator event count (run cost diagnostics).
    pub events: u64,
    /// Engine-level job accounting over the whole run (submitted ==
    /// completed + aborted + rejected once drained).
    pub engine: EngineStats,
    /// Window failure taxonomy (all zero on a healthy run).
    pub errors: ErrorCounters,
    /// Offered load in attempts per minute over the window.
    pub offered_ipm: f64,
    /// Goodput in good responses per minute over the window.
    pub goodput_ipm: f64,
    /// 99th-percentile latency of window completions.
    pub latency_p99: SimDuration,
    /// Committed-transaction receipts over the whole run; transactions
    /// still in flight at the horizon were rolled back before this was
    /// taken, so the final database equals "initial + committed".
    pub ledger: CommitLedger,
    /// Span trace of the run, present only when the spec enabled tracing.
    pub trace: Option<TraceCapture>,
    /// Caching-tier counters, present only when the spec enabled caching.
    pub cache_stats: Option<CacheStats>,
}

impl ExperimentResult {
    /// CPU utilization (0..1) of the machine with the given name, if it
    /// exists in this deployment.
    pub fn cpu_of(&self, machine: &str) -> Option<f64> {
        self.resources.cpu_util.iter().find(|(n, _)| n == machine).map(|(_, u)| *u)
    }

    /// NIC throughput in Mb/s of the machine with the given name.
    pub fn nic_of(&self, machine: &str) -> Option<f64> {
        self.resources.nic_mbps.iter().find(|(n, _)| n == machine).map(|(_, u)| *u)
    }
}

/// Builder for one experiment run — the single entry point for every
/// combination of configuration, cost model, lock policy, chaos options,
/// and tracing.
///
/// Defaults reproduce the paper's setup: default cost model, default lock
/// grant policy, no faults, no admission control, patient clients, and no
/// tracing. Every knob is an orthogonal builder method:
///
/// ```ignore
/// let result = ExperimentSpec::for_config(StandardConfig::EjbFourTier)
///     .mix(&mix)
///     .workload(WorkloadConfig::new(100))
///     .tracing(true)
///     .run(&mut db, &app);
/// ```
#[derive(Debug, Clone)]
pub struct ExperimentSpec<'a> {
    config: StandardConfig,
    costs: CostModel,
    mix: Option<&'a Mix>,
    workload: WorkloadConfig,
    policy: GrantPolicy,
    chaos: ChaosOptions,
    tracing: bool,
    defer_unwind: bool,
    caching: Option<CachePolicy>,
}

impl<'a> ExperimentSpec<'a> {
    /// Starts a spec for one deployment configuration with paper defaults
    /// (10 clients until [`workload`](Self::workload) overrides it).
    pub fn for_config(config: StandardConfig) -> Self {
        ExperimentSpec {
            config,
            costs: CostModel::default(),
            mix: None,
            workload: WorkloadConfig::new(10),
            policy: GrantPolicy::default(),
            chaos: ChaosOptions::default(),
            tracing: false,
            defer_unwind: false,
            caching: None,
        }
    }

    /// The interaction mix clients draw from (required before `run`).
    pub fn mix(mut self, mix: &'a Mix) -> Self {
        self.mix = Some(mix);
        self
    }

    /// Overrides the cost model.
    pub fn costs(mut self, costs: CostModel) -> Self {
        self.costs = costs;
        self
    }

    /// Client population and phase structure.
    pub fn workload(mut self, workload: WorkloadConfig) -> Self {
        self.workload = workload;
        self
    }

    /// Lock grant policy for the simulation.
    pub fn policy(mut self, policy: GrantPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Client-side timeout/retry policy (overrides the workload's).
    pub fn resilience(mut self, resilience: ResilienceConfig) -> Self {
        self.workload.resilience = resilience;
        self
    }

    /// Fault injection compiled against the deployment's server machines.
    pub fn faults(mut self, faults: FaultSpec) -> Self {
        self.chaos.faults = Some(faults);
        self
    }

    /// Admission-control limits (bounded accept queue, DB connection pool).
    pub fn admission(mut self, admission: AdmissionControl) -> Self {
        self.chaos.admission = admission;
        self
    }

    /// Both chaos knobs at once (faults + admission).
    pub fn chaos(mut self, chaos: ChaosOptions) -> Self {
        self.chaos = chaos;
        self
    }

    /// Record span traces: the result's [`trace`](ExperimentResult::trace)
    /// is populated with every completed request's span tree and the
    /// engine's timed op intervals. Recording is purely observational — the
    /// event stream, metrics, and figures are bit-identical either way.
    pub fn tracing(mut self, on: bool) -> Self {
        self.tracing = on;
        self
    }

    /// Enables the transactional caching tier: the database-tier read-query
    /// result cache and/or the middleware session-façade method cache,
    /// per the policy's [`scope`](CachePolicy::scope). Off by default (the
    /// paper's setup); the result's
    /// [`cache_stats`](ExperimentResult::cache_stats) is populated when on.
    /// The result cache is enabled on the database for the duration of the
    /// run and disabled again before returning, so the caller's database is
    /// left in its baseline mode.
    pub fn caching(mut self, policy: CachePolicy) -> Self {
        self.caching = Some(policy);
        self
    }

    /// Skip the end-of-run database unwind of in-flight transactions,
    /// leaving their writes in place (ledger accounting is unchanged: they
    /// still count as rolled back). Only correct when the caller restores
    /// the database wholesale after the run — the sweep harness rewinds to
    /// the pristine base between points, which makes the per-transaction
    /// unwind redundant work. Every reported metric is bit-identical either
    /// way; only the post-run table state differs.
    pub fn defer_unwind(mut self, on: bool) -> Self {
        self.defer_unwind = on;
        self
    }

    /// Runs the experiment: installs the deployment, runs the client
    /// population through its phases, unwinds in-flight transactions, and
    /// reports the paper's metrics (plus the trace, when enabled).
    ///
    /// # Panics
    ///
    /// Panics when no mix was set or the simulation fails.
    pub fn run(&self, db: &mut Database, app: &dyn Application) -> ExperimentResult {
        let mix = self.mix.expect("ExperimentSpec::mix must be set before run()");
        let config = self.config;
        let workload = self.workload.clone();
        let mut sim = Simulation::with_policy(LAN_LATENCY, self.policy);
        if self.tracing {
            sim.enable_tracing();
        }
        let query_cache = self
            .caching
            .is_some_and(|p| matches!(p.scope, CacheScope::QueryResults | CacheScope::Both));
        if let Some(p) = self.caching {
            if query_cache {
                db.enable_result_cache(ResultCacheConfig {
                    capacity: p.capacity,
                    invalidation: p.invalidation,
                });
            }
        }
        let db_stats_before = db.stats();
        let middleware = Middleware::install_opts(
            &mut sim,
            config,
            db,
            app,
            self.costs.clone(),
            InstallOptions {
                admission: self.chaos.admission,
                tracing: self.tracing,
                method_cache: self.caching.and_then(|p| {
                    matches!(p.scope, CacheScope::Methods | CacheScope::Both).then_some(
                        MethodCacheConfig { capacity: p.capacity, invalidation: p.invalidation },
                    )
                }),
            },
        );
        let total = workload.total();
        if let Some(spec) = self.chaos.faults {
            if !spec.is_trivial() {
                let m = *middleware.deployment().machines();
                let mut servers = vec![m.web];
                if let Some(s) = m.servlet {
                    if s != m.web {
                        servers.push(s);
                    }
                }
                if let Some(e) = m.ejb {
                    servers.push(e);
                }
                servers.push(m.db);
                sim.install_faults(spec.compile(&servers, total));
            }
        }
        let measure = workload.measure;
        let clients = workload.clients;
        let mut driver = WorkloadDriver::start(&mut sim, app, mix, &middleware, db, workload);
        sim.run(SimTime::ZERO + total, &mut driver).unwrap_or_else(|e| {
            panic!("simulation failed ({config}, {clients} clients): {e}");
        });

        // Crash-consistent unwind: jobs still in flight at the horizon never
        // completed, so their transactions roll back (newest-first) — unless
        // the caller rewinds the whole database afterwards anyway.
        if self.defer_unwind {
            driver.discard_in_flight();
        } else {
            driver.rollback_in_flight();
        }
        let trace = driver.take_trace(&mut sim);
        let ledger = driver.ledger().clone();
        let metrics = driver.metrics().clone();
        let resources = driver.resources().clone();
        let throughput_ipm = metrics.throughput_ipm(measure);
        let offered_ipm = metrics.offered_ipm(measure);
        let goodput_ipm = metrics.goodput_ipm(measure);
        let latency_p99 = metrics.latency.quantile(0.99);
        let errors = metrics.errors_detail;
        let cache_stats = self.caching.map(|_| {
            let s1 = db.stats();
            let s0 = db_stats_before;
            CacheStats {
                query_hits: s1.result_cache_hits.saturating_sub(s0.result_cache_hits),
                query_misses: s1.result_cache_misses.saturating_sub(s0.result_cache_misses),
                query_invalidations: s1
                    .result_cache_invalidations
                    .saturating_sub(s0.result_cache_invalidations),
                query_bypasses: s1.result_cache_bypasses.saturating_sub(s0.result_cache_bypasses),
                method: middleware.method_cache_stats().unwrap_or_default(),
            }
        });
        if query_cache {
            db.disable_result_cache();
        }
        ExperimentResult {
            config,
            clients,
            throughput_ipm,
            metrics,
            resources,
            lock_stats: sim.total_lock_stats(),
            events: sim.stats().events,
            engine: sim.stats(),
            errors,
            offered_ipm,
            goodput_ipm,
            latency_p99,
            ledger,
            trace,
            cache_stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mix::TransitionMatrix;
    use dynamid_core::{
        AppLockSpec, AppResult, Application, InteractionSpec, LogicStyle, RequestCtx, SessionData,
    };
    use dynamid_sim::SimRng;
    use dynamid_sqldb::{ColumnType, TableSchema, Value};

    /// A two-interaction mini-application with a contended write.
    struct MiniApp;

    impl Application for MiniApp {
        fn name(&self) -> &str {
            "mini"
        }
        fn interactions(&self) -> &[InteractionSpec] {
            &[
                InteractionSpec { name: "Read", read_only: true, secure: false },
                InteractionSpec { name: "Write", read_only: false, secure: false },
            ]
        }
        fn app_locks(&self) -> Vec<AppLockSpec> {
            vec![AppLockSpec::new("counter", 16)]
        }
        fn handle(
            &self,
            id: usize,
            ctx: &mut RequestCtx<'_>,
            _session: &mut SessionData,
            rng: &mut SimRng,
        ) -> AppResult<()> {
            let key = rng.uniform_i64(1, 50);
            match id {
                0 => {
                    let v = if matches!(ctx.style(), LogicStyle::EntityBean) {
                        // Read-only façade, eligible for the method cache
                        // (identical to a plain façade when none is
                        // installed).
                        ctx.facade_cached("Counter.read", &[Value::Int(key)], |em| {
                            match em.find("counters", Value::Int(key))? {
                                Some(h) => em.get(h, "v"),
                                None => Ok(Value::Int(0)),
                            }
                        })?
                        .as_int()
                        .unwrap_or(0)
                    } else {
                        let r =
                            ctx.query("SELECT v FROM counters WHERE id = ?", &[Value::Int(key)])?;
                        r.rows.first().and_then(|r| r[0].as_int()).unwrap_or(0)
                    };
                    ctx.emit(&format!("<html>{v}</html>"));
                }
                _ => {
                    match ctx.style() {
                        LogicStyle::ExplicitSql { sync: false } => {
                            ctx.query("LOCK TABLES counters WRITE", &[])?;
                            ctx.query(
                                "UPDATE counters SET v = v + 1 WHERE id = ?",
                                &[Value::Int(key)],
                            )?;
                            ctx.query("UNLOCK TABLES", &[])?;
                        }
                        LogicStyle::ExplicitSql { sync: true } => {
                            ctx.app_lock("counter", key as u64);
                            ctx.query(
                                "UPDATE counters SET v = v + 1 WHERE id = ?",
                                &[Value::Int(key)],
                            )?;
                            ctx.app_unlock("counter", key as u64);
                        }
                        LogicStyle::EntityBean => {
                            ctx.facade("Counter.incr", |em| {
                                if let Some(h) = em.find("counters", Value::Int(key))? {
                                    let v = em.get(h, "v")?.as_int().unwrap();
                                    em.set(h, "v", Value::Int(v + 1))?;
                                }
                                Ok(())
                            })?;
                        }
                    }
                    ctx.emit("<html>ok</html>");
                }
            }
            Ok(())
        }
    }

    fn mini_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("counters")
                .column("id", ColumnType::Int)
                .column("v", ColumnType::Int)
                .primary_key("id")
                .build()
                .unwrap(),
        )
        .unwrap();
        for i in 1..=50 {
            db.execute("INSERT INTO counters (id, v) VALUES (?, 0)", &[Value::Int(i)]).unwrap();
        }
        db
    }

    fn mini_mix() -> Mix {
        // 70% reads, 30% writes.
        let m = TransitionMatrix::from_rows(vec![vec![0.7, 0.3], vec![0.7, 0.3]]).unwrap();
        Mix::new("mini", m, vec![1.0, 0.0]).unwrap()
    }

    fn quick(clients: usize) -> WorkloadConfig {
        WorkloadConfig {
            clients,
            think_time: SimDuration::from_millis(500),
            session_time: SimDuration::from_secs(60),
            ramp_up: SimDuration::from_secs(2),
            measure: SimDuration::from_secs(10),
            ramp_down: SimDuration::from_secs(1),
            seed: 7,
            resilience: crate::fault::ResilienceConfig::disabled(),
        }
    }

    #[test]
    fn experiment_produces_throughput_and_utilization() {
        let mix = mini_mix();
        let mut db = mini_db();
        let r = ExperimentSpec::for_config(StandardConfig::PhpColocated)
            .mix(&mix)
            .workload(quick(20))
            .run(&mut db, &MiniApp);
        assert!(r.throughput_ipm > 0.0, "no throughput: {r:?}");
        assert!(r.metrics.completed > 0);
        assert_eq!(r.metrics.error_rate(), 0.0);
        let web = r.cpu_of("web").expect("web machine reported");
        let db = r.cpu_of("db").expect("db machine reported");
        assert!(web > 0.0 && web <= 1.0);
        assert!(db > 0.0 && db <= 1.0);
        assert!(r.nic_of("web").unwrap() > 0.0);
        assert!(r.events > 0);
    }

    #[test]
    fn all_configs_run_the_mini_app() {
        let mix = mini_mix();
        for config in StandardConfig::ALL {
            let mut db = mini_db();
            let r = ExperimentSpec::for_config(config)
                .mix(&mix)
                .workload(quick(10))
                .run(&mut db, &MiniApp);
            assert!(r.throughput_ipm > 0.0, "{config} produced nothing");
            assert_eq!(r.metrics.error_rate(), 0.0, "{config} errored");
        }
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let mix = mini_mix();
        let run = || {
            let mut db = mini_db();
            ExperimentSpec::for_config(StandardConfig::ServletColocated)
                .mix(&mix)
                .workload(quick(10))
                .run(&mut db, &MiniApp)
        };
        let a = run();
        let b = run();
        assert_eq!(a.metrics.completed, b.metrics.completed);
        assert_eq!(a.events, b.events);
        assert_eq!(a.throughput_ipm, b.throughput_ipm);
    }

    #[test]
    fn more_clients_more_throughput_until_saturation() {
        let mix = mini_mix();
        let at = |clients: usize| {
            let mut db = mini_db();
            ExperimentSpec::for_config(StandardConfig::PhpColocated)
                .mix(&mix)
                .workload(quick(clients))
                .run(&mut db, &MiniApp)
        };
        let few = at(5);
        let many = at(50);
        assert!(
            many.throughput_ipm > few.throughput_ipm * 2.0,
            "few={} many={}",
            few.throughput_ipm,
            many.throughput_ipm
        );
    }

    #[test]
    fn database_state_reflects_the_run() {
        let mix = mini_mix();
        let mut db = mini_db();
        let _ = ExperimentSpec::for_config(StandardConfig::PhpColocated)
            .mix(&mix)
            .workload(quick(10))
            .run(&mut db, &MiniApp);
        let total = db.execute("SELECT SUM(v) FROM counters", &[]).unwrap();
        // Some writes happened.
        assert!(total.rows[0][0].as_int().unwrap() > 0);
    }

    #[test]
    fn chaos_run_is_deterministic_and_balanced() {
        use crate::fault::FaultSpec;
        use dynamid_core::AdmissionControl;

        let mix = mini_mix();
        let run = || {
            let mut db = mini_db();
            ExperimentSpec::for_config(StandardConfig::ServletDedicated)
                .mix(&mix)
                .workload(quick(25))
                .resilience(ResilienceConfig {
                    request_timeout: Some(SimDuration::from_secs(2)),
                    max_retries: 2,
                    backoff_base: SimDuration::from_millis(100),
                    backoff_cap: SimDuration::from_secs(1),
                })
                .faults(FaultSpec::at_intensity(13, 0.8))
                .admission(AdmissionControl {
                    web_accept_queue: Some(8),
                    db_connections: Some(4),
                    db_accept_queue: Some(2),
                })
                .run(&mut db, &MiniApp)
        };
        let a = run();
        // Conservation: every submission is accounted once. Jobs still in
        // flight at the horizon are the remainder.
        let e = a.engine;
        assert!(e.completed + e.aborted + e.rejected <= e.submitted);
        assert_eq!(e.submitted, a.metrics.submitted_total);
        // The environment was hostile enough to actually exercise the
        // resilience machinery.
        assert!(
            a.errors.failed_attempts() > 0,
            "0.8 intensity produced no failures: {:?}",
            a.errors
        );
        assert!(a.metrics.offered > 0);
        assert!(a.goodput_ipm <= a.throughput_ipm + 1e-9);
        // Determinism: the identical spec replays bit-identically.
        let b = run();
        assert_eq!(a.engine, b.engine);
        assert_eq!(a.errors, b.errors);
        assert_eq!(a.metrics.completed, b.metrics.completed);
        assert_eq!(a.metrics.latency, b.metrics.latency);
        assert_eq!(a.throughput_ipm, b.throughput_ipm);
        assert_eq!(a.latency_p99, b.latency_p99);
    }

    #[test]
    fn aborted_transactions_leave_db_equal_to_committed_ledger_replay() {
        use crate::fault::FaultSpec;
        use dynamid_core::AdmissionControl;

        // A hostile run: crashes, transient faults, deadlines, and a tight
        // DB admission queue guarantee plenty of mid-transaction aborts.
        let mix = mini_mix();
        let mut db = mini_db();
        let r = ExperimentSpec::for_config(StandardConfig::ServletDedicated)
            .mix(&mix)
            .workload(quick(25))
            .resilience(ResilienceConfig {
                request_timeout: Some(SimDuration::from_secs(2)),
                max_retries: 2,
                backoff_base: SimDuration::from_millis(100),
                backoff_cap: SimDuration::from_secs(1),
            })
            .faults(FaultSpec::at_intensity(13, 0.8))
            .admission(AdmissionControl {
                web_accept_queue: Some(8),
                db_connections: Some(4),
                db_accept_queue: Some(2),
            })
            .run(&mut db, &MiniApp);
        assert!(r.engine.aborted > 0, "no aborts — the property would be vacuous");
        assert!(r.ledger.rolled_back > 0, "aborted jobs must roll back");
        assert!(r.ledger.committed > 0, "some jobs must still commit");
        // Every transaction is accounted exactly once over the whole run.
        assert_eq!(
            r.ledger.committed + r.ledger.rolled_back,
            r.metrics.submitted_total,
            "ledger does not cover every submitted attempt"
        );
        // The crash-consistency oracle: each committed Write interaction
        // incremented exactly one counter by one; every aborted or in-flight
        // one was rolled back. The surviving database must equal a replay of
        // only the committed ledger.
        let committed_writes = r.ledger.per_interaction.get(1).copied().unwrap_or(0);
        let total = db.execute("SELECT SUM(v) FROM counters", &[]).unwrap();
        assert_eq!(
            total.rows[0][0].as_int().unwrap_or(0),
            committed_writes as i64,
            "SUM(v) diverged from the committed-interaction ledger"
        );
        // Updates are row-count neutral and no rows were created/destroyed.
        let count = db.execute("SELECT COUNT(*) FROM counters", &[]).unwrap();
        assert_eq!(count.rows[0][0].as_int().unwrap(), 50);
        assert!(r.ledger.row_deltas.values().all(|d| *d == 0));
        // Invalidation-key extraction: each committed Write updated exactly
        // one primary-keyed row, so the ledger's key stream is one row key
        // per committed write, no wildcards — and the rolled-back
        // transactions (including deadline and fault aborts) contributed
        // nothing, despite having executed their writes eagerly.
        let counters_id = db.table_index("counters").unwrap();
        assert_eq!(
            r.ledger.invalidation_keys.get(&counters_id).copied().unwrap_or_default(),
            (committed_writes, 0)
        );
        assert_eq!(r.ledger.row_keys(), committed_writes);
        assert_eq!(r.ledger.wildcards(), 0);
    }

    #[test]
    fn query_cache_serves_hits_and_keeps_the_commit_oracle() {
        use dynamid_core::{CacheInvalidation, CachePolicy, CacheScope};

        let mix = mini_mix();
        let mut db = mini_db();
        let r = ExperimentSpec::for_config(StandardConfig::PhpColocated)
            .mix(&mix)
            .workload(quick(20))
            .caching(CachePolicy {
                capacity: 256,
                scope: CacheScope::QueryResults,
                invalidation: CacheInvalidation::Transactional,
            })
            .run(&mut db, &MiniApp);
        let cs = r.cache_stats.expect("cache stats populated");
        assert!(cs.query_hits > 0, "no result-cache hits: {cs:?}");
        assert!(cs.query_misses > 0);
        assert!(cs.query_invalidations > 0, "committed writes must invalidate");
        // Caching is a read-path shortcut: every write still executed, so
        // the committed-ledger oracle must hold exactly.
        let committed_writes = r.ledger.per_interaction.get(1).copied().unwrap_or(0);
        let total = db.execute("SELECT SUM(v) FROM counters", &[]).unwrap();
        assert_eq!(total.rows[0][0].as_int().unwrap_or(0), committed_writes as i64);
        // The run leaves the database back in baseline (cache-off) mode.
        assert!(!db.result_cache_enabled());
    }

    #[test]
    fn method_cache_lifts_ejb_throughput() {
        use dynamid_core::{CacheInvalidation, CachePolicy, CacheScope};

        let mix = mini_mix();
        let mut db1 = mini_db();
        let plain = ExperimentSpec::for_config(StandardConfig::EjbFourTier)
            .mix(&mix)
            .workload(quick(30))
            .run(&mut db1, &MiniApp);
        let mut db2 = mini_db();
        let cached = ExperimentSpec::for_config(StandardConfig::EjbFourTier)
            .mix(&mix)
            .workload(quick(30))
            .caching(CachePolicy {
                capacity: 256,
                scope: CacheScope::Both,
                invalidation: CacheInvalidation::Transactional,
            })
            .run(&mut db2, &MiniApp);
        assert!(plain.cache_stats.is_none());
        let cs = cached.cache_stats.expect("cache stats populated");
        assert!(cs.method.hits > 0, "no method-cache hits: {cs:?}");
        assert!(
            cached.throughput_ipm >= plain.throughput_ipm,
            "caching must not lose throughput: {} vs {}",
            cached.throughput_ipm,
            plain.throughput_ipm
        );
        // Correctness under caching: the commit oracle holds.
        let committed_writes = cached.ledger.per_interaction.get(1).copied().unwrap_or(0);
        let total = db2.execute("SELECT SUM(v) FROM counters", &[]).unwrap();
        assert_eq!(total.rows[0][0].as_int().unwrap_or(0), committed_writes as i64);
    }

    #[test]
    fn ttl_caching_still_satisfies_the_commit_oracle() {
        use dynamid_core::{CacheInvalidation, CachePolicy, CacheScope};

        // Stale reads are the TTL ablation's point — but the write path
        // never goes through the cache, so database state and ledger stay
        // exact even with a very long TTL.
        let mix = mini_mix();
        let mut db = mini_db();
        let r = ExperimentSpec::for_config(StandardConfig::PhpColocated)
            .mix(&mix)
            .workload(quick(20))
            .caching(CachePolicy {
                capacity: 256,
                scope: CacheScope::QueryResults,
                invalidation: CacheInvalidation::Ttl(10_000_000),
            })
            .run(&mut db, &MiniApp);
        let cs = r.cache_stats.expect("cache stats populated");
        assert!(cs.query_hits > 0);
        // TTL mode never invalidates at commit.
        assert_eq!(cs.query_invalidations, 0);
        let committed_writes = r.ledger.per_interaction.get(1).copied().unwrap_or(0);
        let total = db.execute("SELECT SUM(v) FROM counters", &[]).unwrap();
        assert_eq!(total.rows[0][0].as_int().unwrap_or(0), committed_writes as i64);
    }

    #[test]
    fn cached_runs_replay_bit_identically() {
        use dynamid_core::{CacheInvalidation, CachePolicy, CacheScope};

        let mix = mini_mix();
        let run = || {
            let mut db = mini_db();
            ExperimentSpec::for_config(StandardConfig::EjbFourTier)
                .mix(&mix)
                .workload(quick(15))
                .caching(CachePolicy {
                    capacity: 128,
                    scope: CacheScope::Both,
                    invalidation: CacheInvalidation::Transactional,
                })
                .run(&mut db, &MiniApp)
        };
        let a = run();
        let b = run();
        assert_eq!(a.events, b.events);
        assert_eq!(a.metrics.completed, b.metrics.completed);
        assert_eq!(a.throughput_ipm, b.throughput_ipm);
        assert_eq!(a.cache_stats, b.cache_stats);
    }

    #[test]
    fn healthy_chaos_options_match_plain_run() {
        let mix = mini_mix();
        let mut db1 = mini_db();
        let plain = ExperimentSpec::for_config(StandardConfig::PhpColocated)
            .mix(&mix)
            .workload(quick(10))
            .run(&mut db1, &MiniApp);
        let mut db2 = mini_db();
        let chaos = ExperimentSpec::for_config(StandardConfig::PhpColocated)
            .mix(&mix)
            .workload(quick(10))
            .chaos(crate::fault::ChaosOptions::default())
            .run(&mut db2, &MiniApp);
        assert_eq!(plain.events, chaos.events, "trivial chaos must not perturb the event stream");
        assert_eq!(plain.metrics.completed, chaos.metrics.completed);
        assert_eq!(plain.throughput_ipm, chaos.throughput_ipm);
        assert_eq!(chaos.errors, dynamid_sim::ErrorCounters::default());
        assert_eq!(chaos.engine.rejected, 0);
        assert_eq!(chaos.engine.aborted, 0);
    }

    #[test]
    fn tracing_captures_spans_without_perturbing_the_run() {
        let mix = mini_mix();
        let mut db1 = mini_db();
        let plain = ExperimentSpec::for_config(StandardConfig::ServletDedicated)
            .mix(&mix)
            .workload(quick(10))
            .run(&mut db1, &MiniApp);
        let mut db2 = mini_db();
        let traced = ExperimentSpec::for_config(StandardConfig::ServletDedicated)
            .mix(&mix)
            .workload(quick(10))
            .tracing(true)
            .run(&mut db2, &MiniApp);
        // Observational: the event stream and metrics are bit-identical.
        assert_eq!(plain.events, traced.events);
        assert_eq!(plain.metrics.completed, traced.metrics.completed);
        assert_eq!(plain.metrics.latency, traced.metrics.latency);
        assert_eq!(plain.throughput_ipm, traced.throughput_ipm);
        assert!(plain.trace.is_none());
        let cap = traced.trace.expect("trace captured");
        assert_eq!(cap.jobs.len() as u64, traced.engine.completed);
        assert!(!cap.intervals.is_empty());
        dynamid_trace::verify_capture(&cap).expect("well-formed capture");
    }

    #[test]
    fn rejected_attempt_is_counted_once_not_as_timeout() {
        use dynamid_core::AdmissionControl;

        // A single DB connection with a zero-length wait queue under many
        // clients forces admission rejects; every client also carries a
        // deadline, so a double-counting bug would tally the same attempt
        // under both `rejects` and `timeouts`.
        let mix = mini_mix();
        let mut db = mini_db();
        let r = ExperimentSpec::for_config(StandardConfig::PhpColocated)
            .mix(&mix)
            .workload(quick(40))
            .resilience(ResilienceConfig {
                request_timeout: Some(SimDuration::from_secs(5)),
                max_retries: 0,
                backoff_base: SimDuration::from_millis(100),
                backoff_cap: SimDuration::from_secs(1),
            })
            .admission(AdmissionControl {
                web_accept_queue: None,
                db_connections: Some(1),
                db_accept_queue: Some(0),
            })
            .run(&mut db, &MiniApp);
        assert!(r.errors.rejects > 0, "overload never tripped admission control: {:?}", r.errors);
        // Every attempt resolves exactly once: good completion or exactly
        // one failure class. Attempts in flight across the window edges can
        // shift counts by at most the client population (40); a
        // double-counting bug (reject also tallied as timeout when the
        // stale deadline fires) would blow past the upper bound.
        let resolved = r.metrics.completed + r.errors.failed_attempts();
        assert!(
            resolved <= r.metrics.offered + 40 && resolved + 40 >= r.metrics.offered,
            "attempts not counted exactly once: completed={} failed={:?} offered={}",
            r.metrics.completed,
            r.errors,
            r.metrics.offered
        );
        // The engine agrees with the window taxonomy direction: rejects in
        // the window cannot exceed engine-level rejects.
        assert!(r.errors.rejects <= r.engine.rejected);
        assert!(r.errors.timeouts <= r.engine.aborted);
    }

    #[test]
    fn window_metrics_exclude_rampdown_only_runs() {
        // With a measurement window of zero length nothing is counted.
        let mix = mini_mix();
        let mut cfg = quick(5);
        cfg.measure = SimDuration::ZERO;
        let mut db = mini_db();
        let r = ExperimentSpec::for_config(StandardConfig::PhpColocated)
            .mix(&mix)
            .workload(cfg)
            .run(&mut db, &MiniApp);
        assert_eq!(r.metrics.completed, 0);
        assert_eq!(r.throughput_ipm, 0.0);
        assert!(r.metrics.submitted_total > 0);
    }
}
