//! Workload mixes: Markov transition matrices over interactions.
//!
//! As in TPC-W (and the paper's client emulator, §4.1), the next
//! interaction of a session is drawn from a state-transition matrix; a
//! fresh session starts from an entry distribution. Mixes differ in their
//! read-write ratio: TPC-W's browsing (95/5), shopping (80/20) and
//! ordering (50/50) mixes, and the auction site's browsing (read-only) and
//! bidding (15% read-write) mixes.

use dynamid_sim::SimRng;

/// A right-stochastic transition matrix over `n` interaction states.
#[derive(Debug, Clone, PartialEq)]
pub struct TransitionMatrix {
    n: usize,
    rows: Vec<Vec<f64>>,
}

impl TransitionMatrix {
    /// Builds a matrix from explicit rows.
    ///
    /// # Errors
    ///
    /// Returns a description when the matrix is not square, contains a
    /// negative weight, or has a row that sums to zero.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Result<Self, String> {
        let n = rows.len();
        if n == 0 {
            return Err("empty matrix".into());
        }
        for (i, row) in rows.iter().enumerate() {
            if row.len() != n {
                return Err(format!("row {i} has {} entries, want {n}", row.len()));
            }
            let mut sum = 0.0;
            for w in row {
                if *w < 0.0 || !w.is_finite() {
                    return Err(format!("row {i} has an invalid weight {w}"));
                }
                sum += w;
            }
            if sum <= 0.0 {
                return Err(format!("row {i} sums to zero"));
            }
        }
        Ok(TransitionMatrix { n, rows })
    }

    /// The uniform matrix over `n` states (useful for tests).
    pub fn uniform(n: usize) -> Self {
        TransitionMatrix { n, rows: vec![vec![1.0; n]; n] }
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the matrix has no states (never constructible).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Draws the next state from `from`'s row.
    pub fn next(&self, from: usize, rng: &mut SimRng) -> usize {
        rng.weighted(&self.rows[from])
    }

    /// The stationary-ish visit share of each state, estimated by a long
    /// deterministic walk (diagnostics and tests).
    pub fn estimate_visit_share(&self, steps: usize, seed: u64) -> Vec<f64> {
        let mut rng = SimRng::new(seed);
        let mut counts = vec![0usize; self.n];
        let mut state = 0;
        for _ in 0..steps {
            state = self.next(state, &mut rng);
            counts[state] += 1;
        }
        counts.into_iter().map(|c| c as f64 / steps as f64).collect()
    }
}

/// A named workload mix: transition matrix plus the entry distribution of
/// a fresh session.
#[derive(Debug, Clone, PartialEq)]
pub struct Mix {
    name: String,
    matrix: TransitionMatrix,
    entry: Vec<f64>,
}

impl Mix {
    /// Creates a mix.
    ///
    /// # Errors
    ///
    /// Propagates matrix validation errors; also rejects an entry
    /// distribution of the wrong length or zero mass.
    pub fn new(
        name: impl Into<String>,
        matrix: TransitionMatrix,
        entry: Vec<f64>,
    ) -> Result<Self, String> {
        if entry.len() != matrix.len() {
            return Err(format!(
                "entry distribution has {} entries, want {}",
                entry.len(),
                matrix.len()
            ));
        }
        if entry.iter().any(|w| *w < 0.0) || entry.iter().sum::<f64>() <= 0.0 {
            return Err("invalid entry distribution".into());
        }
        Ok(Mix { name: name.into(), matrix, entry })
    }

    /// The mix's display name ("shopping", "bidding"...).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of interaction states.
    pub fn interaction_count(&self) -> usize {
        self.matrix.len()
    }

    /// Draws the first interaction of a session.
    pub fn entry(&self, rng: &mut SimRng) -> usize {
        rng.weighted(&self.entry)
    }

    /// Draws the interaction following `from`.
    pub fn next(&self, from: usize, rng: &mut SimRng) -> usize {
        self.matrix.next(from, rng)
    }

    /// Long-run visit share per interaction (diagnostics).
    pub fn estimate_visit_share(&self, steps: usize, seed: u64) -> Vec<f64> {
        self.matrix.estimate_visit_share(steps, seed)
    }

    /// The long-run fraction of visits landing on states marked `true` in
    /// `marker` (e.g., read-write interactions) — used to validate a mix
    /// against its specified read-write ratio.
    pub fn estimate_marked_share(&self, marker: &[bool], steps: usize, seed: u64) -> f64 {
        let shares = self.estimate_visit_share(steps, seed);
        shares.iter().zip(marker).filter(|(_, m)| **m).map(|(s, _)| s).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_errors() {
        assert!(TransitionMatrix::from_rows(vec![]).is_err());
        assert!(TransitionMatrix::from_rows(vec![vec![1.0, 0.0]]).is_err()); // not square
        assert!(TransitionMatrix::from_rows(vec![vec![-1.0]]).is_err());
        assert!(TransitionMatrix::from_rows(vec![vec![0.0]]).is_err());
        assert!(TransitionMatrix::from_rows(vec![vec![1.0]]).is_ok());
    }

    #[test]
    fn next_respects_weights() {
        let m = TransitionMatrix::from_rows(vec![
            vec![0.0, 1.0], // state 0 always goes to 1
            vec![1.0, 0.0], // state 1 always goes to 0
        ])
        .unwrap();
        let mut rng = SimRng::new(1);
        assert_eq!(m.next(0, &mut rng), 1);
        assert_eq!(m.next(1, &mut rng), 0);
    }

    #[test]
    fn visit_share_matches_structure() {
        // A chain that spends 80% of transitions into state 0.
        let m = TransitionMatrix::from_rows(vec![vec![0.8, 0.2], vec![0.8, 0.2]]).unwrap();
        let share = m.estimate_visit_share(50_000, 7);
        assert!((share[0] - 0.8).abs() < 0.02, "{share:?}");
    }

    #[test]
    fn mix_entry_and_next() {
        let m = TransitionMatrix::uniform(3);
        let mix = Mix::new("test", m, vec![1.0, 0.0, 0.0]).unwrap();
        let mut rng = SimRng::new(3);
        // Entry always state 0.
        for _ in 0..10 {
            assert_eq!(mix.entry(&mut rng), 0);
        }
        assert_eq!(mix.interaction_count(), 3);
        assert_eq!(mix.name(), "test");
    }

    #[test]
    fn mix_validation() {
        let m = TransitionMatrix::uniform(2);
        assert!(Mix::new("bad", m.clone(), vec![1.0]).is_err());
        assert!(Mix::new("bad", m.clone(), vec![0.0, 0.0]).is_err());
        assert!(Mix::new("ok", m, vec![0.5, 0.5]).is_ok());
    }

    #[test]
    fn marked_share_estimates_rw_ratio() {
        // Two states; the second is "read-write" and gets 20% of mass.
        let m = TransitionMatrix::from_rows(vec![vec![0.8, 0.2], vec![0.8, 0.2]]).unwrap();
        let mix = Mix::new("shoppingish", m, vec![1.0, 0.0]).unwrap();
        let rw = mix.estimate_marked_share(&[false, true], 50_000, 5);
        assert!((rw - 0.2).abs() < 0.02, "rw={rw}");
    }
}
