//! # dynamid-workload — client emulation and experiment execution
//!
//! Implements the paper's measurement methodology (§4.1, §4.5): a
//! population of emulated browsers, each running sessions of interactions
//! drawn from a per-mix Markov transition matrix, with exponential think
//! times (mean 7 s) and session lengths (mean 15 min); a ramp-up /
//! measurement / ramp-down phase structure; and throughput reported in
//! interactions per minute with per-machine CPU utilization over the
//! measurement window.
//!
//! [`ExperimentSpec`] is the one-call entry point the figure harness and
//! the examples build on: a builder covering configuration, cost model,
//! workload phases, lock policy, fault injection, admission control, and
//! span tracing.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod driver;
pub mod experiment;
pub mod fault;
pub mod mix;

pub use driver::{CommitLedger, ResourceWindow, WorkloadConfig, WorkloadDriver, WorkloadMetrics};
pub use experiment::{CacheStats, ExperimentResult, ExperimentSpec, LAN_LATENCY};
pub use fault::{ChaosOptions, FaultSpec, ResilienceConfig};
pub use mix::{Mix, TransitionMatrix};
