//! The client-browser emulator: sessions, think times, and measurement.
//!
//! Implements §4.1 and §4.5 of the paper: each emulated client holds a
//! persistent connection, waits an exponentially distributed think time
//! (mean 7 s) between interactions, and abandons its session after an
//! exponentially distributed session length (mean 15 min), immediately
//! starting a fresh one so the offered client population stays constant.
//! Measurements are taken only inside the measurement window, bracketed by
//! ramp-up and ramp-down phases.

use crate::fault::ResilienceConfig;
use crate::mix::Mix;
use dynamid_core::{Application, Middleware, SessionData};
use dynamid_sim::{
    AbortReason, Activity, Driver, ErrorCounters, JobAborted, JobDone, JobId, LatencyHistogram,
    SimDuration, SimRng, SimTime, Simulation, WindowSnapshot,
};
use dynamid_sqldb::{Database, TxnLog};
use dynamid_trace::{IntervalKind, IntervalTable, JobRecord, SpanDef, TraceCapture};
use std::collections::{BTreeMap, HashMap};

/// Timer token marking the start of the measurement window.
const TOKEN_WINDOW_START: u64 = u64::MAX;
/// Timer token marking the end of the measurement window.
const TOKEN_WINDOW_END: u64 = u64::MAX - 1;

/// Emulator parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// Number of concurrent emulated clients.
    pub clients: usize,
    /// Mean think time between interactions (exponential).
    pub think_time: SimDuration,
    /// Mean session length (exponential).
    pub session_time: SimDuration,
    /// Ramp-up phase length.
    pub ramp_up: SimDuration,
    /// Measurement phase length.
    pub measure: SimDuration,
    /// Ramp-down phase length.
    pub ramp_down: SimDuration,
    /// Master seed; every client derives an independent stream.
    pub seed: u64,
    /// Client-side timeout/retry policy (disabled by default, matching the
    /// paper's patient clients).
    pub resilience: ResilienceConfig,
}

impl WorkloadConfig {
    /// The paper's client model with shortened phases suitable for
    /// simulation (the full paper-length phases are available through
    /// [`paper_phases`](Self::paper_phases)).
    pub fn new(clients: usize) -> Self {
        WorkloadConfig {
            clients,
            think_time: SimDuration::from_secs(7),
            session_time: SimDuration::from_mins(15),
            ramp_up: SimDuration::from_secs(30),
            measure: SimDuration::from_secs(120),
            ramp_down: SimDuration::from_secs(10),
            seed: 42,
            resilience: ResilienceConfig::disabled(),
        }
    }

    /// Phase lengths as the paper used for the given benchmark
    /// (`bookstore`: 1/20/1 min; `auction`: 5/30/5 min).
    pub fn paper_phases(mut self, benchmark: &str) -> Self {
        let (up, measure, down) = match benchmark {
            "bookstore" => (1, 20, 1),
            _ => (5, 30, 5),
        };
        self.ramp_up = SimDuration::from_mins(up);
        self.measure = SimDuration::from_mins(measure);
        self.ramp_down = SimDuration::from_mins(down);
        self
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Total run length.
    pub fn total(&self) -> SimDuration {
        self.ramp_up + self.measure + self.ramp_down
    }

    /// The measurement window `[start, end)`.
    pub fn window(&self) -> (SimTime, SimTime) {
        (SimTime::ZERO + self.ramp_up, SimTime::ZERO + self.ramp_up + self.measure)
    }
}

/// Counters and distributions collected during the measurement window.
#[derive(Debug, Clone)]
pub struct WorkloadMetrics {
    /// Interactions completed inside the window.
    pub completed: u64,
    /// Interactions completed inside the window that ended in an
    /// application error.
    pub errors: u64,
    /// Per-interaction completion counts (index = interaction id).
    pub per_interaction: Vec<u64>,
    /// Latency distribution of window completions.
    pub latency: LatencyHistogram,
    /// All interactions submitted over the whole run (any phase).
    pub submitted_total: u64,
    /// Sessions started over the whole run.
    pub sessions: u64,
    /// Attempts submitted inside the window (offered load, including
    /// retries).
    pub offered: u64,
    /// Failure taxonomy over the window: timeouts, admission rejects,
    /// fault aborts, retries, abandons — each attempt counted exactly once.
    pub errors_detail: ErrorCounters,
}

impl WorkloadMetrics {
    fn new(interactions: usize) -> Self {
        WorkloadMetrics {
            completed: 0,
            errors: 0,
            per_interaction: vec![0; interactions],
            latency: LatencyHistogram::new(),
            submitted_total: 0,
            sessions: 0,
            offered: 0,
            errors_detail: ErrorCounters::default(),
        }
    }

    /// Throughput in interactions per minute over a window of `measure`.
    pub fn throughput_ipm(&self, measure: SimDuration) -> f64 {
        if measure.is_zero() {
            return 0.0;
        }
        self.completed as f64 * 60.0 / measure.as_secs_f64()
    }

    /// Fraction of window completions that errored.
    pub fn error_rate(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.errors as f64 / self.completed as f64
        }
    }

    /// Goodput in interactions per minute: window completions that neither
    /// errored at the application level nor failed in transit.
    pub fn goodput_ipm(&self, measure: SimDuration) -> f64 {
        if measure.is_zero() {
            return 0.0;
        }
        self.completed.saturating_sub(self.errors) as f64 * 60.0 / measure.as_secs_f64()
    }

    /// Offered load in attempts per minute over the window.
    pub fn offered_ipm(&self, measure: SimDuration) -> f64 {
        if measure.is_zero() {
            return 0.0;
        }
        self.offered as f64 * 60.0 / measure.as_secs_f64()
    }
}

/// The committed-transaction ledger: one entry of bookkeeping per
/// interaction whose simulated job ran to completion (= commit). Aborted
/// jobs roll their transaction back instead and count under
/// [`rolled_back`](Self::rolled_back), so at end of run the database equals
/// "initial state + exactly the committed transactions" — the invariant the
/// harness's consistency auditor replays this ledger to check.
#[derive(Debug, Clone, Default)]
pub struct CommitLedger {
    /// Transactions committed (simulated job completed).
    pub committed: u64,
    /// Transactions rolled back (aborted in flight, or still in flight when
    /// the run ended).
    pub rolled_back: u64,
    /// Committed transactions per interaction id.
    pub per_interaction: Vec<u64>,
    /// Net committed live-row delta per table catalog id.
    pub row_deltas: BTreeMap<usize, i64>,
    /// Per-table invalidation-key accounting extracted from committed
    /// receipts: `(row-keyed invalidation keys, wildcard invalidations)`
    /// per table catalog id. This is exactly the key stream the caching
    /// tier consumes at commit time (a primary-key-attributable write
    /// yields one key per written row; a write the extractor cannot pin to
    /// rows yields one wildcard), recorded whether or not a cache was
    /// enabled — rolled-back receipts contribute nothing, which is the
    /// invariant the cache tests lean on.
    pub invalidation_keys: BTreeMap<usize, (u64, u64)>,
}

impl CommitLedger {
    fn record_commit(&mut self, interaction: Option<usize>, log: &TxnLog, db: &Database) {
        self.committed += 1;
        if let Some(id) = interaction {
            if id >= self.per_interaction.len() {
                self.per_interaction.resize(id + 1, 0);
            }
            self.per_interaction[id] += 1;
        }
        for (table, delta) in log.row_deltas() {
            *self.row_deltas.entry(table).or_default() += delta;
        }
        for w in db.write_set(log) {
            let entry = self.invalidation_keys.entry(w.table).or_default();
            match &w.rows {
                Some(rows) => entry.0 += rows.len() as u64,
                None => entry.1 += 1,
            }
        }
    }

    /// Total row-keyed invalidation keys across all tables.
    pub fn row_keys(&self) -> u64 {
        self.invalidation_keys.values().map(|(rows, _)| rows).sum()
    }

    /// Total wildcard (whole-table) invalidations across all tables.
    pub fn wildcards(&self) -> u64 {
        self.invalidation_keys.values().map(|(_, wild)| wild).sum()
    }

    /// Net committed row delta for table catalog id `table`.
    pub fn delta(&self, table: usize) -> i64 {
        self.row_deltas.get(&table).copied().unwrap_or(0)
    }
}

/// Per-machine resource usage over the measurement window.
#[derive(Debug, Clone, Default)]
pub struct ResourceWindow {
    /// `(machine name, cpu utilization 0..1)` per distinct machine.
    pub cpu_util: Vec<(String, f64)>,
    /// `(machine name, NIC throughput in Mb/s)` per distinct machine.
    pub nic_mbps: Vec<(String, f64)>,
}

struct ClientState {
    session: SessionData,
    rng: SimRng,
    /// Last completed interaction (None right after a session reset).
    current: Option<usize>,
    session_end: SimTime,
    /// Outcome of the interaction currently in flight.
    pending_error: bool,
    /// Which attempt the in-flight interaction is on (0 = first send).
    attempt: u32,
    /// Set while a backoff timer is pending; the next wake re-sends the
    /// current interaction instead of advancing the session.
    retry_pending: bool,
    /// Undo log of the in-flight interaction's transaction, tagged with a
    /// global begin-sequence number. Completion commits (drops) it; an
    /// abort applies it back; end-of-run unwinds survivors newest-first.
    pending_txn: Option<(u64, TxnLog)>,
}

/// Span bookkeeping for traced runs: the span trees of jobs still in
/// flight, and the completed-job records in completion order (which is
/// engine event order, hence deterministic).
#[derive(Debug, Default)]
struct TraceState {
    pending: HashMap<JobId, PendingSpans>,
    jobs: Vec<JobRecord>,
}

#[derive(Debug)]
struct PendingSpans {
    client: u64,
    interaction: usize,
    spans: Vec<SpanDef>,
}

/// The [`Driver`] implementation that emulates the client population.
pub struct WorkloadDriver<'a> {
    app: &'a dyn Application,
    mix: &'a Mix,
    middleware: &'a Middleware,
    db: &'a mut Database,
    cfg: WorkloadConfig,
    clients: Vec<ClientState>,
    metrics: WorkloadMetrics,
    window: (SimTime, SimTime),
    cpu_snaps: Vec<(u32, WindowSnapshot, WindowSnapshot)>,
    nic_snaps: Vec<(u32, WindowSnapshot, WindowSnapshot)>,
    resources: ResourceWindow,
    /// Global transaction begin-sequence counter (orders end-of-run unwind).
    txn_seq: u64,
    ledger: CommitLedger,
    /// Present only when the middleware was installed with tracing on.
    trace: Option<TraceState>,
}

impl std::fmt::Debug for WorkloadDriver<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkloadDriver")
            .field("clients", &self.clients.len())
            .field("completed", &self.metrics.completed)
            .finish()
    }
}

impl<'a> WorkloadDriver<'a> {
    /// Creates the driver and schedules every client's first arrival
    /// (staggered across the ramp-up phase) plus the window-boundary
    /// timers.
    pub fn start(
        sim: &mut Simulation,
        app: &'a dyn Application,
        mix: &'a Mix,
        middleware: &'a Middleware,
        db: &'a mut Database,
        cfg: WorkloadConfig,
    ) -> WorkloadDriver<'a> {
        assert_eq!(
            mix.interaction_count(),
            app.interactions().len(),
            "mix does not match the application's interaction catalog"
        );
        assert!(cfg.clients > 0, "at least one client required");
        let mut root = SimRng::new(cfg.seed);
        let mut clients = Vec::with_capacity(cfg.clients);
        for i in 0..cfg.clients {
            clients.push(ClientState {
                session: SessionData::new(i as u64),
                rng: root.fork(i as u64),
                current: None,
                session_end: SimTime::ZERO, // set at first wake
                pending_error: false,
                attempt: 0,
                retry_pending: false,
                pending_txn: None,
            });
        }
        // Stagger client starts uniformly over the ramp-up phase.
        let ramp = cfg.ramp_up.as_micros().max(1);
        for i in 0..cfg.clients {
            let offset = ramp * i as u64 / cfg.clients as u64;
            sim.set_timer(SimTime::from_micros(offset), i as u64);
        }
        let (w0, w1) = cfg.window();
        sim.set_timer(w0, TOKEN_WINDOW_START);
        sim.set_timer(w1, TOKEN_WINDOW_END);
        let metrics = WorkloadMetrics::new(mix.interaction_count());
        WorkloadDriver {
            app,
            mix,
            middleware,
            db,
            cfg,
            clients,
            metrics,
            window: (w0, w1),
            cpu_snaps: Vec::new(),
            nic_snaps: Vec::new(),
            resources: ResourceWindow::default(),
            txn_seq: 0,
            ledger: CommitLedger::default(),
            trace: middleware.tracing().then(TraceState::default),
        }
    }

    /// Collected workload metrics.
    pub fn metrics(&self) -> &WorkloadMetrics {
        &self.metrics
    }

    /// Per-machine resource usage over the window (valid after the run
    /// passed the window end).
    pub fn resources(&self) -> &ResourceWindow {
        &self.resources
    }

    /// The measurement window.
    pub fn window(&self) -> (SimTime, SimTime) {
        self.window
    }

    /// The committed-transaction ledger (valid after the run; in-flight
    /// transactions should be unwound first via
    /// [`rollback_in_flight`](Self::rollback_in_flight)).
    pub fn ledger(&self) -> &CommitLedger {
        &self.ledger
    }

    /// Assembles the run's [`TraceCapture`] (traced runs only, else
    /// `None`): drains the engine's op intervals, resolves machine and
    /// lock/semaphore names so the capture is self-contained, and pairs the
    /// intervals with the completed requests' span trees.
    pub fn take_trace(&mut self, sim: &mut Simulation) -> Option<TraceCapture> {
        let ts = self.trace.take()?;
        let machines: Vec<String> = (0..sim.machine_count() as u32)
            .map(|i| sim.machine_name(dynamid_sim::MachineId(i)).to_string())
            .collect();
        let interactions: Vec<String> =
            self.app.interactions().iter().map(|s| s.name.to_string()).collect();
        let cols = sim.take_op_intervals();
        let mut intervals = IntervalTable::default();
        intervals.reserve(cols.len());
        for iv in cols.iter() {
            let kind = match iv.activity {
                Activity::Cpu { machine, demand_micros } => {
                    IntervalKind::Cpu { machine: machine.0, demand_micros }
                }
                Activity::Net { from, to, bytes } => {
                    IntervalKind::Net { from: from.0, to: to.0, bytes }
                }
                Activity::Delay => IntervalKind::Delay,
                // Names are interned: one stored string per lock/semaphore
                // for the whole capture, not one per wait interval.
                Activity::LockWait { lock } => {
                    IntervalKind::LockWait { name: intervals.intern(sim.lock_name(lock)) }
                }
                Activity::SemWait { sem } => {
                    IntervalKind::SemWait { name: intervals.intern(sim.semaphore_name(sem)) }
                }
            };
            intervals.push(iv.job.0, iv.op_index, kind, iv.start.as_micros(), iv.end.as_micros());
        }
        let (w0, w1) = self.window;
        Some(TraceCapture {
            machines,
            interactions,
            window_start_us: w0.as_micros(),
            window_end_us: w1.as_micros(),
            jobs: ts.jobs,
            intervals,
        })
    }

    /// Rolls back every transaction still in flight when the simulation
    /// stopped (crash-consistent unwind), newest-first so interleaved
    /// writes peel off in reverse begin order. Returns how many were
    /// unwound.
    pub fn rollback_in_flight(&mut self) -> u64 {
        let mut pending: Vec<(u64, TxnLog)> =
            self.clients.iter_mut().filter_map(|c| c.pending_txn.take()).collect();
        pending.sort_by_key(|(seq, _)| std::cmp::Reverse(*seq));
        let n = pending.len() as u64;
        for (_, log) in pending {
            // Flush dependent method-cache entries (uncounted) before the
            // rows revert; the result cache purges itself inside
            // `apply_rollback`.
            self.middleware.purge_method_tables(&log.touched_tables());
            self.db.apply_rollback(log);
            self.ledger.rolled_back += 1;
        }
        n
    }

    /// Like [`rollback_in_flight`](Self::rollback_in_flight) for ledger
    /// accounting — every surviving in-flight transaction counts as rolled
    /// back — but the undo logs are dropped without touching the database.
    /// Only valid when the caller restores the database wholesale afterwards
    /// (the sweep harness rewinds to the pristine base between points, which
    /// erases in-flight writes along with everything else).
    pub fn discard_in_flight(&mut self) -> u64 {
        let mut n = 0;
        for c in &mut self.clients {
            if c.pending_txn.take().is_some() {
                self.ledger.rolled_back += 1;
                n += 1;
            }
        }
        n
    }

    fn begin_interaction(&mut self, sim: &mut Simulation, client_id: usize) {
        let now = sim.now();
        let client = &mut self.clients[client_id];
        // Session bookkeeping.
        if client.current.is_none() || now >= client.session_end {
            client.session.reset();
            client.current = None;
            client.session_end = now + client.rng.exponential(self.cfg.session_time);
            self.metrics.sessions += 1;
        }
        let client = &mut self.clients[client_id];
        let next = match client.current {
            None => self.mix.entry(&mut client.rng),
            Some(cur) => self.mix.next(cur, &mut client.rng),
        };
        client.current = Some(next);
        client.attempt = 0;
        self.submit_attempt(sim, client_id, next);
    }

    /// Compiles and submits one attempt of interaction `id` for the client,
    /// with a deadline when the resilience policy sets one.
    fn submit_attempt(&mut self, sim: &mut Simulation, client_id: usize, id: usize) {
        let now = sim.now();
        // Advance both cache clocks to simulated time before the eager
        // host-side execution, so TTL freshness is judged at submit time
        // (no-ops when no cache is enabled, and under transactional
        // invalidation the clock is never consulted).
        self.db.set_cache_clock(now.as_micros());
        self.middleware.set_cache_clock(now.as_micros());
        let seq = self.txn_seq;
        self.txn_seq += 1;
        let client = &mut self.clients[client_id];
        let prep = self.middleware.run_interaction(
            self.db,
            self.app,
            id,
            &mut client.session,
            &mut client.rng,
            false,
        );
        client.pending_error = !prep.is_ok();
        client.retry_pending = false;
        client.pending_txn = Some((seq, prep.txn));
        self.metrics.submitted_total += 1;
        let (w0, w1) = self.window;
        if now >= w0 && now < w1 {
            self.metrics.offered += 1;
        }
        let job = match self.cfg.resilience.request_timeout {
            Some(deadline) => sim.submit_with_deadline(prep.trace, client_id as u64, deadline),
            None => sim.submit(prep.trace, client_id as u64),
        };
        if let Some(ts) = &mut self.trace {
            ts.pending.insert(
                job,
                PendingSpans { client: client_id as u64, interaction: id, spans: prep.spans },
            );
        }
    }

    fn snapshot(&mut self, sim: &mut Simulation, end: bool) {
        let n = sim.machine_count() as u32;
        if !end {
            self.cpu_snaps.clear();
            self.nic_snaps.clear();
            for i in 0..n {
                let m = dynamid_sim::MachineId(i);
                let at = sim.now();
                let cpu = WindowSnapshot::capture(at, sim.cpu_stats(m));
                let nic = WindowSnapshot::capture(at, sim.nic_stats(m));
                self.cpu_snaps.push((i, cpu, WindowSnapshot::default()));
                self.nic_snaps.push((i, nic, WindowSnapshot::default()));
            }
            return;
        }
        for idx in 0..self.cpu_snaps.len() {
            let m = dynamid_sim::MachineId(self.cpu_snaps[idx].0);
            let at = sim.now();
            self.cpu_snaps[idx].2 = WindowSnapshot::capture(at, sim.cpu_stats(m));
            self.nic_snaps[idx].2 = WindowSnapshot::capture(at, sim.nic_stats(m));
        }
        self.resources = ResourceWindow {
            cpu_util: self
                .cpu_snaps
                .iter()
                .map(|(i, s0, s1)| {
                    (
                        sim.machine_name(dynamid_sim::MachineId(*i)).to_string(),
                        s0.utilization_until(s1),
                    )
                })
                .collect(),
            nic_mbps: self
                .nic_snaps
                .iter()
                .map(|(i, s0, s1)| {
                    let bytes_per_sec = s0.throughput_until(s1);
                    (
                        sim.machine_name(dynamid_sim::MachineId(*i)).to_string(),
                        bytes_per_sec * 8.0 / 1e6,
                    )
                })
                .collect(),
        };
    }
}

impl Driver for WorkloadDriver<'_> {
    fn on_job_complete(&mut self, sim: &mut Simulation, done: JobDone) {
        let client_id = done.tag as usize;
        // Job completion is the commit point: record the receipt in the
        // ledger and drop the undo log.
        if let Some((_, log)) = self.clients[client_id].pending_txn.take() {
            self.ledger.record_commit(self.clients[client_id].current, &log, self.db);
        }
        if let Some(ts) = &mut self.trace {
            if let Some(p) = ts.pending.remove(&done.id) {
                ts.jobs.push(JobRecord {
                    job: done.id.0,
                    client: p.client,
                    interaction: p.interaction,
                    submitted_us: done.submitted.as_micros(),
                    completed_us: done.completed.as_micros(),
                    spans: p.spans,
                });
            }
        }
        let (w0, w1) = self.window;
        if done.completed >= w0 && done.completed < w1 {
            self.metrics.completed += 1;
            if self.clients[client_id].pending_error {
                self.metrics.errors += 1;
            }
            if let Some(cur) = self.clients[client_id].current {
                self.metrics.per_interaction[cur] += 1;
            }
            self.metrics.latency.record(done.latency());
        }
        // Think, then next interaction.
        let think = {
            let client = &mut self.clients[client_id];
            client.attempt = 0;
            client.retry_pending = false;
            client.rng.exponential(self.cfg.think_time)
        };
        sim.set_timer_after(think, client_id as u64);
    }

    fn on_timer(&mut self, sim: &mut Simulation, token: u64) {
        match token {
            TOKEN_WINDOW_START => self.snapshot(sim, false),
            TOKEN_WINDOW_END => self.snapshot(sim, true),
            client_id => {
                let client_id = client_id as usize;
                let retry = self.clients[client_id].retry_pending;
                match (retry, self.clients[client_id].current) {
                    (true, Some(id)) => self.submit_attempt(sim, client_id, id),
                    _ => self.begin_interaction(sim, client_id),
                }
            }
        }
    }

    fn on_job_aborted(&mut self, sim: &mut Simulation, info: JobAborted) {
        let client_id = info.tag as usize;
        // An aborted job never completed, so its eagerly-executed writes
        // must not survive: roll the transaction back before anything else
        // (in particular before a retry re-executes the interaction).
        if let Some((_, log)) = self.clients[client_id].pending_txn.take() {
            // Aborted writes never published: flush dependent method-cache
            // entries (uncounted — this is coherence, not invalidation)
            // before the rows revert, then unwind the transaction.
            self.middleware.purge_method_tables(&log.touched_tables());
            self.db.apply_rollback(log);
            self.ledger.rolled_back += 1;
        }
        // An aborted request never completed: its span tree is dropped (the
        // engine likewise discards its half-open interval), though its
        // finished intervals still count toward machine load.
        if let Some(ts) = &mut self.trace {
            ts.pending.remove(&info.id);
        }
        let (w0, w1) = self.window;
        let in_window = info.aborted >= w0 && info.aborted < w1;
        if in_window {
            match info.reason {
                AbortReason::DeadlineExpired => self.metrics.errors_detail.timeouts += 1,
                AbortReason::Rejected => self.metrics.errors_detail.rejects += 1,
                AbortReason::Deadlock => self.metrics.errors_detail.deadlocks += 1,
                AbortReason::MachineCrash
                | AbortReason::TransientFault
                | AbortReason::Cancelled => self.metrics.errors_detail.aborts += 1,
            }
        }
        let resilience = self.cfg.resilience;
        let client = &mut self.clients[client_id];
        if client.attempt < resilience.max_retries {
            client.attempt += 1;
            client.retry_pending = true;
            if in_window {
                self.metrics.errors_detail.retries += 1;
            }
            // Capped exponential backoff with deterministic jitter in
            // [0.5, 1.0) of the nominal delay, drawn from the client's own
            // stream so runs replay bit-identically.
            let nominal = resilience.backoff_for(client.attempt).as_micros();
            let jittered = (nominal as f64 * (0.5 + 0.5 * client.rng.unit())).round() as u64;
            sim.set_timer_after(SimDuration::from_micros(jittered.max(1)), client_id as u64);
        } else {
            // Retry budget exhausted (or retries disabled): give up on this
            // interaction, think, move on with the session.
            client.attempt = 0;
            client.retry_pending = false;
            if in_window {
                self.metrics.errors_detail.abandoned += 1;
            }
            let think = client.rng.exponential(self.cfg.think_time);
            sim.set_timer_after(think, client_id as u64);
        }
    }
}
