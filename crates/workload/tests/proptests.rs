//! Property-based tests for the workload layer: mix sampling fidelity,
//! phase accounting, and experiment-level invariants under arbitrary
//! mixes.

use dynamid_core::{
    AppResult, Application, InteractionSpec, RequestCtx, SessionData, StandardConfig,
};
use dynamid_sim::{SimDuration, SimRng};
use dynamid_sqldb::{ColumnType, Database, TableSchema, Value};
use dynamid_workload::{ExperimentSpec, Mix, TransitionMatrix, WorkloadConfig};
use proptest::prelude::*;

/// A two-interaction application with a cheap read and a cheap write.
struct TinyApp;

impl Application for TinyApp {
    fn name(&self) -> &str {
        "tiny"
    }
    fn interactions(&self) -> &[InteractionSpec] {
        &[
            InteractionSpec { name: "R", read_only: true, secure: false },
            InteractionSpec { name: "W", read_only: false, secure: false },
        ]
    }
    fn handle(
        &self,
        id: usize,
        ctx: &mut RequestCtx<'_>,
        _s: &mut SessionData,
        rng: &mut SimRng,
    ) -> AppResult<()> {
        let key = rng.uniform_i64(1, 20);
        if id == 0 {
            ctx.query("SELECT v FROM kv WHERE id = ?", &[Value::Int(key)])?;
        } else {
            ctx.query("UPDATE kv SET v = v + 1 WHERE id = ?", &[Value::Int(key)])?;
        }
        ctx.emit("<html>ok</html>");
        Ok(())
    }
}

fn tiny_db() -> Database {
    let mut db = Database::new();
    db.create_table(
        TableSchema::builder("kv")
            .column("id", ColumnType::Int)
            .column("v", ColumnType::Int)
            .primary_key("id")
            .build()
            .unwrap(),
    )
    .unwrap();
    for i in 1..=20 {
        db.execute("INSERT INTO kv (id, v) VALUES (?, 0)", &[Value::Int(i)]).unwrap();
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sampling from an i.i.d.-rows matrix reproduces the row weights.
    #[test]
    fn visit_shares_match_weights(w0 in 1u32..100, w1 in 1u32..100) {
        let rows = vec![
            vec![w0 as f64, w1 as f64],
            vec![w0 as f64, w1 as f64],
        ];
        let m = TransitionMatrix::from_rows(rows).unwrap();
        let share = m.estimate_visit_share(40_000, 7);
        let expect = w0 as f64 / (w0 + w1) as f64;
        prop_assert!((share[0] - expect).abs() < 0.03, "share {share:?} expect {expect}");
    }

    /// Experiments never report more window completions than submissions,
    /// utilizations stay in [0, 1], and throughput is consistent with the
    /// completion count.
    #[test]
    fn experiment_invariants_hold(
        read_w in 1u32..20,
        write_w in 1u32..20,
        clients in 1usize..40,
        seed in 0u64..1000,
    ) {
        let rows = vec![
            vec![read_w as f64, write_w as f64],
            vec![read_w as f64, write_w as f64],
        ];
        let mix = Mix::new(
            "p",
            TransitionMatrix::from_rows(rows).unwrap(),
            vec![1.0, 0.0],
        )
        .unwrap();
        let workload = WorkloadConfig {
            clients,
            think_time: SimDuration::from_millis(200),
            session_time: SimDuration::from_secs(30),
            ramp_up: SimDuration::from_secs(1),
            measure: SimDuration::from_secs(5),
            ramp_down: SimDuration::from_secs(1),
            seed,
            resilience: Default::default(),
        };
        let r = ExperimentSpec::for_config(StandardConfig::ServletColocated)
            .mix(&mix)
            .workload(workload)
            .run(&mut tiny_db(), &TinyApp);
        prop_assert!(r.metrics.completed <= r.metrics.submitted_total);
        prop_assert_eq!(r.metrics.error_rate(), 0.0);
        for (name, u) in &r.resources.cpu_util {
            prop_assert!((0.0..=1.0).contains(u), "{name} util {u}");
        }
        let implied = r.metrics.completed as f64 * 60.0 / 5.0;
        prop_assert!((r.throughput_ipm - implied).abs() < 1e-6);
        // Per-interaction counts sum to the window completions.
        let sum: u64 = r.metrics.per_interaction.iter().sum();
        prop_assert_eq!(sum, r.metrics.completed);
    }

    /// The phase windows partition the run.
    #[test]
    fn window_partitions_run(up in 0u64..100, measure in 0u64..100, down in 0u64..100) {
        let cfg = WorkloadConfig {
            clients: 1,
            think_time: SimDuration::from_secs(1),
            session_time: SimDuration::from_secs(1),
            ramp_up: SimDuration::from_secs(up),
            measure: SimDuration::from_secs(measure),
            ramp_down: SimDuration::from_secs(down),
            seed: 0,
            resilience: Default::default(),
        };
        let (w0, w1) = cfg.window();
        prop_assert_eq!(w0.as_micros(), up * 1_000_000);
        prop_assert_eq!(w1.duration_since(w0).as_micros(), measure * 1_000_000);
        prop_assert_eq!(cfg.total().as_micros(), (up + measure + down) * 1_000_000);
    }
}
