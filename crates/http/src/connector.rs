//! Connectors between the web server and a dynamic-content generator.
//!
//! The paper's three architectures differ precisely here:
//!
//! * PHP runs as a module **inside** the Apache process — no IPC at all;
//! * the Tomcat servlet engine is a separate JVM process reached over the
//!   **AJP12** protocol — per-request and per-byte marshalling cost on both
//!   sides, plus network transfer when the engine runs on its own machine;
//! * the JOnAS EJB server is reached from the servlets over **RMI** — a
//!   much heavier per-call serialization cost.
//!
//! §6.1 of the paper measures the AJP12 path at ~191 µs per character of
//! dynamic content crossing the Web-server/servlet-engine boundary on their
//! profiling run; our default per-byte constants are calibrated so the
//! *relative* overhead of servlets vs PHP lands where the paper's
//! throughput ratios put it (PHP ≈ +33% over co-located servlets on the
//! auction bidding mix).

/// CPU cost of crossing a connector, charged on each side.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConnectorCosts {
    /// Per crossing (request or reply), each side.
    pub per_message: f64,
    /// Per payload byte, each side.
    pub per_byte: f64,
}

/// How the web server reaches the dynamic-content generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Connector {
    /// Same process, same address space (mod_php): only the interpreter
    /// invocation cost.
    InProcess {
        /// Interpreter entry cost per request.
        invoke: f64,
    },
    /// Apache JServ Protocol to a separate servlet-engine process.
    Ajp(ConnectorCosts),
    /// Java RMI between the servlet engine and the EJB server.
    Rmi(ConnectorCosts),
}

impl Connector {
    /// The paper's mod_php configuration.
    pub fn mod_php() -> Self {
        Connector::InProcess { invoke: 150.0 }
    }

    /// AJP12 with defaults calibrated so the PHP-vs-co-located-servlet
    /// throughput ratio lands where the paper's figures put it (see module
    /// docs).
    pub fn ajp12() -> Self {
        Connector::Ajp(ConnectorCosts { per_message: 120.0, per_byte: 0.025 })
    }

    /// RMI with defaults reflecting Java serialization circa JDK 1.3.
    pub fn rmi() -> Self {
        Connector::Rmi(ConnectorCosts { per_message: 360.0, per_byte: 0.20 })
    }

    /// CPU microseconds charged on the *sending* side for a crossing with
    /// `bytes` of payload.
    pub fn send_micros(&self, bytes: u64) -> u64 {
        match self {
            Connector::InProcess { invoke } => invoke.round() as u64,
            Connector::Ajp(c) | Connector::Rmi(c) => {
                (c.per_message + c.per_byte * bytes as f64).round() as u64
            }
        }
    }

    /// CPU microseconds charged on the *receiving* side.
    pub fn recv_micros(&self, bytes: u64) -> u64 {
        match self {
            // In-process: no second side.
            Connector::InProcess { .. } => 0,
            Connector::Ajp(c) | Connector::Rmi(c) => {
                (c.per_message + c.per_byte * bytes as f64).round() as u64
            }
        }
    }

    /// `true` when crossing this connector involves a separate process
    /// (and therefore may involve a separate machine).
    pub fn is_out_of_process(&self) -> bool {
        !matches!(self, Connector::InProcess { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_process_has_no_receive_cost() {
        let c = Connector::mod_php();
        assert!(c.send_micros(10_000) > 0);
        assert_eq!(c.recv_micros(10_000), 0);
        assert!(!c.is_out_of_process());
    }

    #[test]
    fn ajp_scales_with_bytes_both_sides() {
        let c = Connector::ajp12();
        assert!(c.is_out_of_process());
        let small = c.send_micros(100);
        let big = c.send_micros(50_000);
        assert!(big > small * 5);
        assert_eq!(c.send_micros(1_000), c.recv_micros(1_000));
    }

    #[test]
    fn rmi_is_heavier_than_ajp() {
        let ajp = Connector::ajp12();
        let rmi = Connector::rmi();
        assert!(rmi.send_micros(1_000) > ajp.send_micros(1_000));
    }

    #[test]
    fn php_cheaper_than_ajp_for_any_payload() {
        let php = Connector::mod_php();
        let ajp = Connector::ajp12();
        for bytes in [0u64, 100, 1_000, 100_000] {
            let php_total = php.send_micros(bytes) + php.recv_micros(bytes);
            let ajp_total = ajp.send_micros(bytes) + ajp.recv_micros(bytes);
            assert!(php_total < ajp_total, "bytes={bytes}");
        }
    }
}
