//! The Apache-like web server model: process pool, per-request and
//! per-byte CPU costs, static content service.

/// Per-operation CPU charges for the web server, in microseconds.
///
/// Calibrated to an Apache 1.3 on a 1.33 GHz Athlon (the paper's front-end
/// machine): parsing and dispatching a dynamic request costs a few hundred
/// microseconds; shipping response bytes costs per-kilobyte copy time;
/// `mod_ssl` adds per-request overhead on secure interactions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HttpCosts {
    /// Accept + parse + route one request.
    pub per_request: f64,
    /// Copy/checksum cost per response byte.
    pub per_response_byte: f64,
    /// Serving a static file: fixed part (open/stat/sendfile setup).
    pub static_per_request: f64,
    /// Serving a static file: per byte.
    pub static_per_byte: f64,
    /// Extra CPU for an SSL request (symmetric crypto on a resumed
    /// session; full handshakes are amortized across a persistent
    /// connection).
    pub ssl_per_request: f64,
}

impl Default for HttpCosts {
    fn default() -> Self {
        HttpCosts {
            per_request: 150.0,
            per_response_byte: 0.035,
            static_per_request: 60.0,
            static_per_byte: 0.035,
            ssl_per_request: 900.0,
        }
    }
}

/// A static asset fetched as part of an interaction (item thumbnails,
/// navigation buttons, logos).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticAsset {
    /// Payload size in bytes.
    pub bytes: u64,
}

impl StaticAsset {
    /// A small navigation button / logo (~2 KB).
    pub fn button() -> Self {
        StaticAsset { bytes: 2_048 }
    }

    /// An item thumbnail (~5 KB, per TPC-W's image population).
    pub fn thumbnail() -> Self {
        StaticAsset { bytes: 5_120 }
    }

    /// A full item image (~25 KB).
    pub fn full_image() -> Self {
        StaticAsset { bytes: 25_600 }
    }
}

/// Configuration of one web-server instance.
///
/// ```
/// use dynamid_http::WebServerSpec;
/// let spec = WebServerSpec::apache_like();
/// assert_eq!(spec.max_processes, 512);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WebServerSpec {
    /// Process-pool size (`MaxClients`); one request occupies one process
    /// for its full duration. The paper raised this to 512 so the pool is
    /// never the bottleneck.
    pub max_processes: u32,
    /// CPU cost parameters.
    pub costs: HttpCosts,
}

impl WebServerSpec {
    /// The paper's configuration: Apache 1.3.22, `MaxClients 512`.
    pub fn apache_like() -> Self {
        WebServerSpec { max_processes: 512, costs: HttpCosts::default() }
    }

    /// A deliberately small pool, for experiments on process-limit
    /// bottlenecks (an ablation the paper rules out by configuration).
    pub fn with_processes(mut self, max_processes: u32) -> Self {
        self.max_processes = max_processes;
        self
    }

    /// CPU microseconds to serve one static asset (excluding network).
    pub fn static_service_micros(&self, asset: StaticAsset) -> u64 {
        (self.costs.static_per_request + self.costs.static_per_byte * asset.bytes as f64).round()
            as u64
    }

    /// CPU microseconds of front-end work for a dynamic request that ships
    /// `response_bytes`, before the content generator runs.
    pub fn dynamic_service_micros(&self, response_bytes: u64, secure: bool) -> u64 {
        let ssl = if secure { self.costs.ssl_per_request } else { 0.0 };
        (self.costs.per_request + ssl + self.costs.per_response_byte * response_bytes as f64)
            .round() as u64
    }
}

impl Default for WebServerSpec {
    fn default() -> Self {
        Self::apache_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apache_defaults() {
        let s = WebServerSpec::apache_like();
        assert_eq!(s.max_processes, 512);
        assert_eq!(s, WebServerSpec::default());
    }

    #[test]
    fn pool_override() {
        let s = WebServerSpec::apache_like().with_processes(16);
        assert_eq!(s.max_processes, 16);
    }

    #[test]
    fn static_costs_scale_with_size() {
        let s = WebServerSpec::apache_like();
        let small = s.static_service_micros(StaticAsset::button());
        let big = s.static_service_micros(StaticAsset::full_image());
        assert!(big > small);
        assert_eq!(StaticAsset::thumbnail().bytes, 5_120);
    }

    #[test]
    fn ssl_adds_cost() {
        let s = WebServerSpec::apache_like();
        let plain = s.dynamic_service_micros(10_000, false);
        let tls = s.dynamic_service_micros(10_000, true);
        assert_eq!(tls - plain, 900);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    #[test]
    fn zero_byte_dynamic_response_still_costs_dispatch() {
        let s = WebServerSpec::apache_like();
        assert!(s.dynamic_service_micros(0, false) > 0);
    }

    #[test]
    fn static_fixed_cost_dominates_tiny_assets() {
        let s = WebServerSpec::apache_like();
        let tiny = StaticAsset { bytes: 1 };
        let cost = s.static_service_micros(tiny);
        assert!(cost as f64 >= s.costs.static_per_request);
    }

    #[test]
    fn asset_sizes_are_ordered() {
        assert!(StaticAsset::button().bytes < StaticAsset::thumbnail().bytes);
        assert!(StaticAsset::thumbnail().bytes < StaticAsset::full_image().bytes);
    }
}
