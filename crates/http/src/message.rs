//! HTTP request and response messages.
//!
//! The client emulator builds [`Request`]s; the middleware tiers produce
//! [`Response`]s whose body size drives NIC and per-byte CPU charges.

use std::fmt;

/// Approximate bytes of HTTP request-line + headers on the wire.
pub const REQUEST_OVERHEAD_BYTES: u64 = 350;
/// Approximate bytes of HTTP status-line + headers on the wire.
pub const RESPONSE_OVERHEAD_BYTES: u64 = 250;

/// HTTP request method (the benchmarks use GET for reads and POST for
/// form submissions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Method {
    /// Idempotent page fetch.
    #[default]
    Get,
    /// Form submission.
    Post,
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Method::Get => write!(f, "GET"),
            Method::Post => write!(f, "POST"),
        }
    }
}

/// HTTP response status (only what the benchmarks produce).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Status {
    /// 200.
    #[default]
    Ok,
    /// 4xx — e.g. failed authentication in the auction site.
    ClientError,
    /// 5xx — an application or database error.
    ServerError,
}

impl Status {
    /// Numeric code.
    pub fn code(self) -> u16 {
        match self {
            Status::Ok => 200,
            Status::ClientError => 400,
            Status::ServerError => 500,
        }
    }
}

/// An HTTP request from an emulated client.
///
/// ```
/// use dynamid_http::{Request, Method};
/// let req = Request::new(Method::Get, "/item")
///     .with_param("id", "42")
///     .secure(true);
/// assert_eq!(req.path(), "/item");
/// assert_eq!(req.param("id"), Some("42"));
/// assert!(req.is_secure());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Request {
    method: Method,
    path: String,
    params: Vec<(String, String)>,
    secure: bool,
}

impl Request {
    /// Creates a request for `path`.
    pub fn new(method: Method, path: impl Into<String>) -> Self {
        Request { method, path: path.into(), params: Vec::new(), secure: false }
    }

    /// Adds a query/form parameter.
    pub fn with_param(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.params.push((key.into(), value.into()));
        self
    }

    /// Marks the request as HTTPS (TPC-W buy/admin interactions use SSL).
    pub fn secure(mut self, secure: bool) -> Self {
        self.secure = secure;
        self
    }

    /// The method.
    pub fn method(&self) -> Method {
        self.method
    }

    /// The URL path.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Looks up a parameter value.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.params.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// All parameters in insertion order.
    pub fn params(&self) -> &[(String, String)] {
        &self.params
    }

    /// Whether the request travels over SSL.
    pub fn is_secure(&self) -> bool {
        self.secure
    }

    /// Approximate size on the wire (path + encoded params + headers).
    pub fn wire_bytes(&self) -> u64 {
        let params: usize = self.params.iter().map(|(k, v)| k.len() + v.len() + 2).sum();
        REQUEST_OVERHEAD_BYTES + self.path.len() as u64 + params as u64
    }
}

/// An HTTP response produced by a middleware tier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    status: Status,
    body_bytes: u64,
}

impl Response {
    /// Creates a response carrying `body_bytes` of generated content.
    pub fn new(status: Status, body_bytes: u64) -> Self {
        Response { status, body_bytes }
    }

    /// An empty 200.
    pub fn ok() -> Self {
        Response::new(Status::Ok, 0)
    }

    /// The status.
    pub fn status(&self) -> Status {
        self.status
    }

    /// Generated body size in bytes.
    pub fn body_bytes(&self) -> u64 {
        self.body_bytes
    }

    /// Approximate size on the wire (body + headers).
    pub fn wire_bytes(&self) -> u64 {
        RESPONSE_OVERHEAD_BYTES + self.body_bytes
    }
}

impl Default for Response {
    fn default() -> Self {
        Response::ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_builder_and_accessors() {
        let r = Request::new(Method::Post, "/bid")
            .with_param("item", "7")
            .with_param("amount", "12.50");
        assert_eq!(r.method(), Method::Post);
        assert_eq!(r.param("amount"), Some("12.50"));
        assert_eq!(r.param("nope"), None);
        assert_eq!(r.params().len(), 2);
        assert!(!r.is_secure());
    }

    #[test]
    fn wire_bytes_grow_with_content() {
        let small = Request::new(Method::Get, "/");
        let big = Request::new(Method::Get, "/search").with_param("q", "dynamic content");
        assert!(big.wire_bytes() > small.wire_bytes());
        let resp_small = Response::new(Status::Ok, 100);
        let resp_big = Response::new(Status::Ok, 50_000);
        assert_eq!(resp_big.wire_bytes() - resp_small.wire_bytes(), 49_900);
    }

    #[test]
    fn status_codes() {
        assert_eq!(Status::Ok.code(), 200);
        assert_eq!(Status::ClientError.code(), 400);
        assert_eq!(Status::ServerError.code(), 500);
    }

    #[test]
    fn method_display() {
        assert_eq!(Method::Get.to_string(), "GET");
        assert_eq!(Method::Post.to_string(), "POST");
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    #[test]
    fn default_request_is_plain_get() {
        let r = Request::default();
        assert_eq!(r.method(), Method::Get);
        assert_eq!(r.path(), "");
        assert!(!r.is_secure());
        assert!(r.params().is_empty());
    }

    #[test]
    fn duplicate_params_keep_first_on_lookup() {
        let r = Request::new(Method::Get, "/x").with_param("k", "1").with_param("k", "2");
        assert_eq!(r.param("k"), Some("1"));
        assert_eq!(r.params().len(), 2);
    }

    #[test]
    fn response_default_is_empty_ok() {
        let r = Response::default();
        assert_eq!(r.status(), Status::Ok);
        assert_eq!(r.body_bytes(), 0);
        assert_eq!(r.wire_bytes(), RESPONSE_OVERHEAD_BYTES);
    }

    #[test]
    fn secure_flag_roundtrip() {
        let r = Request::new(Method::Post, "/buy").secure(true).secure(false);
        assert!(!r.is_secure());
    }
}
