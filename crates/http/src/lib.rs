//! # dynamid-http — HTTP and web-server front-end model
//!
//! Models the pieces of the paper's front end that sit in front of the
//! dynamic-content generator: HTTP requests/responses, the Apache 1.3
//! process-pool web server (`MaxClients 512` in the paper's configuration),
//! static-content service, and the connectors joining the web server to a
//! content generator (in-process module for PHP, AJP12 for Tomcat, RMI for
//! the EJB server).
//!
//! The types here are *specifications*: `dynamid-core` compiles them into
//! CPU/NIC/semaphore operations on the simulated machines.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod connector;
pub mod message;
pub mod server;

pub use connector::{Connector, ConnectorCosts};
pub use message::{Method, Request, Response, Status};
pub use server::{HttpCosts, StaticAsset, WebServerSpec};
