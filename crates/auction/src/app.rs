//! The auction-site [`Application`]: interaction catalog and dispatch.

use crate::populate::AuctionScale;
use crate::schema::{CATEGORY_COUNT, REGION_COUNT};
use crate::{ejb_logic, sql_logic};
use dynamid_core::{
    AppLockSpec, AppResult, Application, InteractionSpec, LogicStyle, RequestCtx, SessionData,
};
use dynamid_sim::SimRng;

/// Interaction ids, in catalog order (the 26 interactions of §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Interaction {
    Home = 0,
    Register = 1,
    RegisterUser = 2,
    Browse = 3,
    BrowseCategories = 4,
    SearchItemsInCategory = 5,
    BrowseRegions = 6,
    BrowseCategoriesInRegion = 7,
    SearchItemsInRegion = 8,
    ViewItem = 9,
    ViewUserInfo = 10,
    ViewBidHistory = 11,
    BuyNowAuth = 12,
    BuyNow = 13,
    StoreBuyNow = 14,
    PutBidAuth = 15,
    PutBid = 16,
    StoreBid = 17,
    PutCommentAuth = 18,
    PutComment = 19,
    StoreComment = 20,
    Sell = 21,
    SelectCategoryToSellItem = 22,
    SellItemForm = 23,
    RegisterItem = 24,
    AboutMe = 25,
}

/// The 26 auction-site interactions. Five modify the database
/// (RegisterUser, StoreBuyNow, StoreBid, StoreComment, RegisterItem).
pub const INTERACTIONS: [InteractionSpec; 26] = [
    InteractionSpec { name: "Home", read_only: true, secure: false },
    InteractionSpec { name: "Register", read_only: true, secure: false },
    InteractionSpec { name: "RegisterUser", read_only: false, secure: false },
    InteractionSpec { name: "Browse", read_only: true, secure: false },
    InteractionSpec { name: "BrowseCategories", read_only: true, secure: false },
    InteractionSpec { name: "SearchItemsInCategory", read_only: true, secure: false },
    InteractionSpec { name: "BrowseRegions", read_only: true, secure: false },
    InteractionSpec { name: "BrowseCategoriesInRegion", read_only: true, secure: false },
    InteractionSpec { name: "SearchItemsInRegion", read_only: true, secure: false },
    InteractionSpec { name: "ViewItem", read_only: true, secure: false },
    InteractionSpec { name: "ViewUserInfo", read_only: true, secure: false },
    InteractionSpec { name: "ViewBidHistory", read_only: true, secure: false },
    InteractionSpec { name: "BuyNowAuth", read_only: true, secure: false },
    InteractionSpec { name: "BuyNow", read_only: true, secure: false },
    InteractionSpec { name: "StoreBuyNow", read_only: false, secure: false },
    InteractionSpec { name: "PutBidAuth", read_only: true, secure: false },
    InteractionSpec { name: "PutBid", read_only: true, secure: false },
    InteractionSpec { name: "StoreBid", read_only: false, secure: false },
    InteractionSpec { name: "PutCommentAuth", read_only: true, secure: false },
    InteractionSpec { name: "PutComment", read_only: true, secure: false },
    InteractionSpec { name: "StoreComment", read_only: false, secure: false },
    InteractionSpec { name: "Sell", read_only: true, secure: false },
    InteractionSpec { name: "SelectCategoryToSellItem", read_only: true, secure: false },
    InteractionSpec { name: "SellItemForm", read_only: true, secure: false },
    InteractionSpec { name: "RegisterItem", read_only: false, secure: false },
    InteractionSpec { name: "AboutMe", read_only: true, secure: false },
];

/// The auction-site benchmark application (RUBiS-style).
#[derive(Debug, Clone)]
pub struct Auction {
    scale: AuctionScale,
}

impl Auction {
    /// Creates the application for a database populated at `scale`.
    pub fn new(scale: AuctionScale) -> Self {
        Auction { scale }
    }

    /// The population scale handlers draw random entities from.
    pub fn scale(&self) -> &AuctionScale {
        &self.scale
    }

    /// A random live-item id, Zipf-skewed toward popular (low-id) items.
    pub fn random_item(&self, rng: &mut SimRng) -> i64 {
        rng.zipf(self.scale.live_items, 0.4) as i64 + 1
    }

    /// A random registered user's nickname.
    pub fn random_nickname(&self, rng: &mut SimRng) -> String {
        format!("U{}", rng.index(self.scale.users))
    }

    /// A random user id.
    pub fn random_user(&self, rng: &mut SimRng) -> i64 {
        rng.uniform_i64(1, self.scale.users as i64)
    }

    /// A random category id.
    pub fn random_category(&self, rng: &mut SimRng) -> i64 {
        rng.uniform_i64(1, CATEGORY_COUNT as i64)
    }

    /// A random region id.
    pub fn random_region(&self, rng: &mut SimRng) -> i64 {
        rng.uniform_i64(1, REGION_COUNT as i64)
    }
}

impl Application for Auction {
    fn name(&self) -> &str {
        "auction"
    }

    fn interactions(&self) -> &[InteractionSpec] {
        &INTERACTIONS
    }

    fn app_locks(&self) -> Vec<AppLockSpec> {
        vec![
            // Per-item mutexes for bid/buy-now updates.
            AppLockSpec::new("item", 128),
            // Per-user mutexes for rating updates.
            AppLockSpec::new("user", 128),
            // The ids bookkeeping row.
            AppLockSpec::new("ids", 1),
        ]
    }

    fn handle(
        &self,
        id: usize,
        ctx: &mut RequestCtx<'_>,
        session: &mut SessionData,
        rng: &mut SimRng,
    ) -> AppResult<()> {
        match ctx.style() {
            LogicStyle::ExplicitSql { .. } => sql_logic::handle(self, id, ctx, session, rng),
            LogicStyle::EntityBean => ejb_logic::handle(self, id, ctx, session, rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_shape() {
        assert_eq!(INTERACTIONS.len(), 26);
        let writes: Vec<&str> =
            INTERACTIONS.iter().filter(|s| !s.read_only).map(|s| s.name).collect();
        assert_eq!(
            writes,
            vec!["RegisterUser", "StoreBuyNow", "StoreBid", "StoreComment", "RegisterItem"]
        );
        // No SSL on the auction site.
        assert!(INTERACTIONS.iter().all(|s| !s.secure));
    }

    #[test]
    fn pickers_stay_in_range() {
        let app = Auction::new(AuctionScale::small());
        let mut rng = SimRng::new(2);
        for _ in 0..200 {
            assert!((1..=app.scale().live_items as i64).contains(&app.random_item(&mut rng)));
            assert!((1..=app.scale().users as i64).contains(&app.random_user(&mut rng)));
            assert!((1..=40).contains(&app.random_category(&mut rng)));
            assert!((1..=62).contains(&app.random_region(&mut rng)));
        }
    }
}
