//! Synthetic data population for the auction site.
//!
//! Cardinalities follow §3.2 of the paper: ~33,000 live items across 40
//! categories and 62 regions, 500,000 finished auctions, ~10 bids per live
//! item, a small `buy_now` table (<10% of sales), 1,000,000 users, and
//! ~500,000 comments (feedback on 95% of transactions). Total ≈1.4 GB in
//! the paper; our in-memory rows are leaner but the cardinalities — which
//! set the scan/index cost ratios — are the same.

use crate::schema::{create_schema, CATEGORY_COUNT, REGION_COUNT};
use dynamid_sim::SimRng;
use dynamid_sqldb::{Database, SqlResult, Value};

/// Reference epoch for synthetic dates (2001-09-09, epoch seconds).
pub const BASE_DATE: i64 = 1_000_000_000;
/// One day in epoch seconds.
pub const DAY: i64 = 86_400;

/// Population cardinalities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuctionScale {
    /// Registered users.
    pub users: usize,
    /// Items currently on sale.
    pub live_items: usize,
    /// Finished auctions in `old_items`.
    pub old_items: usize,
    /// Average bids per live item.
    pub bids_per_item: usize,
    /// Comments on past transactions.
    pub comments: usize,
    /// Direct purchases recorded in `buy_now`.
    pub buy_nows: usize,
}

impl AuctionScale {
    /// The paper's sizing (§3.2).
    pub fn paper() -> Self {
        AuctionScale {
            users: 1_000_000,
            live_items: 33_000,
            old_items: 500_000,
            bids_per_item: 10,
            comments: 500_000,
            buy_nows: 3_000,
        }
    }

    /// A small configuration for tests and examples.
    pub fn small() -> Self {
        AuctionScale {
            users: 1_500,
            live_items: 600,
            old_items: 800,
            bids_per_item: 5,
            comments: 900,
            buy_nows: 60,
        }
    }

    /// The paper's configuration scaled by `factor`.
    pub fn scaled(factor: f64) -> Self {
        let p = Self::paper();
        let s = |n: usize| ((n as f64 * factor).round() as usize).max(20);
        AuctionScale {
            users: s(p.users),
            live_items: s(p.live_items),
            old_items: s(p.old_items),
            bids_per_item: p.bids_per_item,
            comments: s(p.comments),
            buy_nows: s(p.buy_nows),
        }
    }
}

/// Builds and populates an auction database.
///
/// # Errors
///
/// Propagates schema or insertion failures.
pub fn build_db(scale: &AuctionScale, seed: u64) -> SqlResult<Database> {
    let mut db = Database::new();
    create_schema(&mut db)?;
    populate(&mut db, scale, seed)?;
    Ok(db)
}

fn item_row(rng: &mut SimRng, users: i64, live: bool) -> Vec<Value> {
    let initial = rng.uniform_i64(100, 50_000) as f64 / 100.0;
    let nb_bids = rng.uniform_i64(0, 20);
    let max_bid =
        if nb_bids > 0 { initial + rng.uniform_i64(0, 10_000) as f64 / 100.0 } else { 0.0 };
    let (start, end) = if live {
        // Live auctions end within the next week.
        let start = BASE_DATE - rng.uniform_i64(0, 6) * DAY;
        (start, BASE_DATE + rng.uniform_i64(1, 7) * DAY)
    } else {
        let end = BASE_DATE - rng.uniform_i64(1, 300) * DAY;
        (end - 7 * DAY, end)
    };
    vec![
        Value::Null,
        Value::str(format!("ITEM {}", rng.ascii_string(14))),
        Value::str(rng.ascii_string(60)),
        Value::Float(initial),
        Value::Int(rng.uniform_i64(1, 10)),
        Value::Float(initial * 1.1),
        Value::Float(initial * 1.5),
        Value::Int(nb_bids),
        Value::Float(max_bid),
        Value::Int(start),
        Value::Int(end),
        Value::Int(rng.uniform_i64(1, users)),
        Value::Int(rng.uniform_i64(1, CATEGORY_COUNT as i64)),
    ]
}

/// Populates an empty auction schema (direct storage inserts).
///
/// # Errors
///
/// Propagates insertion failures.
pub fn populate(db: &mut Database, scale: &AuctionScale, seed: u64) -> SqlResult<()> {
    let mut rng = SimRng::new(seed);
    let users = scale.users as i64;

    {
        let t = db.table_mut("categories")?;
        for i in 0..CATEGORY_COUNT {
            t.insert(vec![Value::Null, Value::str(format!("CATEGORY{i:02}"))])?;
        }
    }
    {
        let t = db.table_mut("regions")?;
        for i in 0..REGION_COUNT {
            t.insert(vec![Value::Null, Value::str(format!("REGION{i:02}"))])?;
        }
    }
    {
        let mut urng = rng.fork(1);
        let t = db.table_mut("users")?;
        t.reserve(scale.users);
        for i in 0..scale.users {
            t.insert(vec![
                Value::Null,
                Value::str(format!("FN{}", urng.uniform_u64(0, 9_999))),
                Value::str(format!("LN{}", urng.uniform_u64(0, 9_999))),
                Value::str(format!("U{i}")),
                Value::str("pw"),
                Value::str(format!("u{i}@example.com")),
                Value::Int(urng.uniform_i64(-5, 100)),
                Value::Float(urng.uniform_i64(0, 100_000) as f64 / 100.0),
                Value::Int(BASE_DATE - urng.uniform_i64(0, 900) * DAY),
                Value::Int(urng.uniform_i64(1, REGION_COUNT as i64)),
            ])?;
        }
    }
    {
        let mut irng = rng.fork(2);
        let t = db.table_mut("items")?;
        t.reserve(scale.live_items);
        for _ in 0..scale.live_items {
            let row = item_row(&mut irng, users, true);
            t.insert(row)?;
        }
    }
    {
        let mut org = rng.fork(3);
        let t = db.table_mut("old_items")?;
        t.reserve(scale.old_items);
        for _ in 0..scale.old_items {
            let row = item_row(&mut org, users, false);
            t.insert(row)?;
        }
    }
    {
        let mut brng = rng.fork(4);
        let live = scale.live_items as i64;
        let total_bids = scale.live_items * scale.bids_per_item;
        let t = db.table_mut("bids")?;
        t.reserve(total_bids);
        for _ in 0..total_bids {
            // Zipf-skew bids toward popular items.
            let item = brng.zipf(live as usize, 0.6) as i64 + 1;
            let bid = brng.uniform_i64(100, 60_000) as f64 / 100.0;
            t.insert(vec![
                Value::Null,
                Value::Int(brng.uniform_i64(1, users)),
                Value::Int(item),
                Value::Int(brng.uniform_i64(1, 3)),
                Value::Float(bid),
                Value::Float(bid * 1.2),
                Value::Int(BASE_DATE - brng.uniform_i64(0, 6) * DAY),
            ])?;
        }
    }
    {
        let mut bnr = rng.fork(5);
        let t = db.table_mut("buy_now")?;
        t.reserve(scale.buy_nows);
        for _ in 0..scale.buy_nows {
            t.insert(vec![
                Value::Null,
                Value::Int(bnr.uniform_i64(1, users)),
                Value::Int(bnr.uniform_i64(1, scale.old_items.max(1) as i64)),
                Value::Int(bnr.uniform_i64(1, 3)),
                Value::Int(BASE_DATE - bnr.uniform_i64(0, 200) * DAY),
            ])?;
        }
    }
    {
        let mut crng = rng.fork(6);
        let t = db.table_mut("comments")?;
        t.reserve(scale.comments);
        for _ in 0..scale.comments {
            t.insert(vec![
                Value::Null,
                Value::Int(crng.uniform_i64(1, users)),
                Value::Int(crng.uniform_i64(1, users)),
                Value::Int(crng.uniform_i64(1, scale.old_items.max(1) as i64)),
                Value::Int(crng.uniform_i64(-5, 5)),
                Value::Int(BASE_DATE - crng.uniform_i64(0, 300) * DAY),
                Value::str(crng.ascii_string(40)),
            ])?;
        }
    }
    {
        let t = db.table_mut("ids")?;
        // Next-id bookkeeping rows, one per user-visible table (RUBiS keeps
        // this even with auto-increment keys).
        for (i, name) in ["users", "items", "bids", "buy_now", "comments"].iter().enumerate() {
            let value = match *name {
                "users" => scale.users,
                "items" => scale.live_items,
                "bids" => scale.live_items * scale.bids_per_item,
                "buy_now" => scale.buy_nows,
                _ => scale.comments,
            };
            t.insert(vec![Value::Int(i as i64 + 1), Value::str(*name), Value::Int(value as i64)])?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_population_cardinalities() {
        let scale = AuctionScale::small();
        let db = build_db(&scale, 1).unwrap();
        assert_eq!(db.table("users").unwrap().row_count(), scale.users);
        assert_eq!(db.table("items").unwrap().row_count(), scale.live_items);
        assert_eq!(db.table("old_items").unwrap().row_count(), scale.old_items);
        assert_eq!(db.table("bids").unwrap().row_count(), scale.live_items * scale.bids_per_item);
        assert_eq!(db.table("comments").unwrap().row_count(), scale.comments);
        assert_eq!(db.table("buy_now").unwrap().row_count(), scale.buy_nows);
        assert_eq!(db.table("categories").unwrap().row_count(), CATEGORY_COUNT);
        assert_eq!(db.table("regions").unwrap().row_count(), REGION_COUNT);
        assert_eq!(db.table("ids").unwrap().row_count(), 5);
    }

    #[test]
    fn live_items_end_in_the_future() {
        let mut db = build_db(&AuctionScale::small(), 2).unwrap();
        let r = db
            .execute("SELECT COUNT(*) FROM items WHERE end_date <= ?", &[Value::Int(BASE_DATE)])
            .unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(0)));
        let r = db
            .execute("SELECT COUNT(*) FROM old_items WHERE end_date > ?", &[Value::Int(BASE_DATE)])
            .unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(0)));
    }

    #[test]
    fn category_browse_is_indexed() {
        let mut db = build_db(&AuctionScale::small(), 3).unwrap();
        let r = db
            .execute("SELECT id FROM items WHERE category = ? LIMIT 25", &[Value::Int(1)])
            .unwrap();
        assert!(r.counters.index_lookups > 0);
        assert!(r.counters.rows_examined < 600, "category probe scanned all");
    }

    #[test]
    fn scaled_clamps() {
        let s = AuctionScale::scaled(0.01);
        assert_eq!(s.users, 10_000);
        assert_eq!(s.live_items, 330);
        let tiny = AuctionScale::scaled(1e-9);
        assert!(tiny.users >= 20);
    }
}
