//! # dynamid-auction — the eBay-style auction-site benchmark
//!
//! The paper's second benchmark (§3.2, the workload later distributed as
//! RUBiS): selling, browsing, and bidding with visitor / buyer / seller
//! sessions — nine tables and 26 interactions, in a browsing (read-only)
//! and a bidding (15% read-write) mix.
//!
//! The auction site's queries are short (point reads, 25-row listing
//! pages, single-row bid inserts), so the **dynamic-content generator** —
//! not the database — is the bottleneck; this is the benchmark where the
//! paper's front-end architecture differences (PHP vs co-located servlets
//! vs dedicated servlet machine vs EJB) separate.
//!
//! Like the bookstore, every interaction is implemented twice:
//! [`sql_logic`] (PHP/servlet architectures) and [`ejb_logic`] (session
//! façades + entity beans).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod app;
pub mod ejb_logic;
pub mod mixes;
pub mod populate;
pub mod schema;
pub mod sql_logic;

pub use app::{Auction, Interaction, INTERACTIONS};
pub use populate::{build_db, AuctionScale};
