//! Entity-bean implementations of the 26 auction interactions — the EJB
//! architecture. Presentation stays in the servlet tier (`ctx.emit`);
//! business logic runs in session façades over RMI; persistence is entity
//! beans with container-managed persistence, activating one bean per row
//! (the N+1 pattern). This is the implementation whose flood of short
//! queries and RMI crossings caps the paper's EJB configuration at ~40% of
//! PHP's throughput on the bidding mix.

use crate::app::{Auction, Interaction};
use crate::populate::{BASE_DATE, DAY};
use crate::sql_logic::{LIST_THUMBNAILS, PAGE_SIZE};
use dynamid_core::{AppError, AppResult, RequestCtx, SessionData};
use dynamid_http::StaticAsset;
use dynamid_sim::SimRng;
use dynamid_sqldb::Value;

/// Dispatches one interaction.
pub fn handle(
    app: &Auction,
    id: usize,
    ctx: &mut RequestCtx<'_>,
    session: &mut SessionData,
    rng: &mut SimRng,
) -> AppResult<()> {
    use Interaction as I;
    match id {
        x if x == I::Home as usize => home(ctx),
        x if x == I::Register as usize => register(ctx),
        x if x == I::RegisterUser as usize => register_user(app, ctx, session, rng),
        x if x == I::Browse as usize => browse(ctx),
        x if x == I::BrowseCategories as usize => browse_categories(ctx),
        x if x == I::SearchItemsInCategory as usize => {
            search_items_in_category(app, ctx, session, rng)
        }
        x if x == I::BrowseRegions as usize => browse_regions(ctx),
        x if x == I::BrowseCategoriesInRegion as usize => {
            browse_categories_in_region(app, ctx, session, rng)
        }
        x if x == I::SearchItemsInRegion as usize => search_items_in_region(app, ctx, session, rng),
        x if x == I::ViewItem as usize => view_item(app, ctx, session, rng),
        x if x == I::ViewUserInfo as usize => view_user_info(app, ctx, rng),
        x if x == I::ViewBidHistory as usize => view_bid_history(app, ctx, session, rng),
        x if x == I::BuyNowAuth as usize => auth_form(app, ctx, session, rng, "BuyNow"),
        x if x == I::BuyNow as usize => buy_now(app, ctx, session, rng),
        x if x == I::StoreBuyNow as usize => store_buy_now(app, ctx, session, rng),
        x if x == I::PutBidAuth as usize => auth_form(app, ctx, session, rng, "PutBid"),
        x if x == I::PutBid as usize => put_bid(app, ctx, session, rng),
        x if x == I::StoreBid as usize => store_bid(app, ctx, session, rng),
        x if x == I::PutCommentAuth as usize => auth_form(app, ctx, session, rng, "PutComment"),
        x if x == I::PutComment as usize => put_comment(app, ctx, session, rng),
        x if x == I::StoreComment as usize => store_comment(app, ctx, session, rng),
        x if x == I::Sell as usize => sell(ctx),
        x if x == I::SelectCategoryToSellItem as usize => select_category_to_sell(ctx),
        x if x == I::SellItemForm as usize => sell_item_form(app, ctx, session, rng),
        x if x == I::RegisterItem as usize => register_item(app, ctx, session, rng),
        x if x == I::AboutMe as usize => about_me(app, ctx, session, rng),
        other => Err(AppError::Logic(format!("unknown interaction {other}"))),
    }
}

fn page_header(ctx: &mut RequestCtx<'_>, title: &str) {
    ctx.emit(&format!("<html><head><title>{title}</title></head><body><h1>{title}</h1>"));
    ctx.emit_bytes(1_800);
    ctx.embed_asset(StaticAsset::button());
    ctx.embed_asset(StaticAsset::button());
    ctx.embed_asset(StaticAsset::button());
}

fn page_footer(ctx: &mut RequestCtx<'_>) {
    ctx.emit_bytes(600);
    ctx.emit("</body></html>");
}

fn focus_item(app: &Auction, session: &mut SessionData, rng: &mut SimRng) -> i64 {
    session.int("item_id").unwrap_or_else(|| app.random_item(rng))
}

fn login(
    app: &Auction,
    ctx: &mut RequestCtx<'_>,
    session: &mut SessionData,
    rng: &mut SimRng,
) -> AppResult<i64> {
    if let Some(id) = session.int("user_id") {
        return Ok(id);
    }
    let nick = app.random_nickname(rng);
    let id = ctx.facade("UserSession.authenticate", |em| {
        let pks = em.find_pks_where("users", "nickname", Value::str(&nick))?;
        let pk =
            pks.into_iter().next().ok_or_else(|| AppError::Logic(format!("no user '{nick}'")))?;
        let h =
            em.find("users", pk.clone())?.ok_or_else(|| AppError::Logic("user vanished".into()))?;
        em.get(h, "password")?;
        Ok(pk.as_int().unwrap_or(0))
    })?;
    session.set_int("user_id", id);
    Ok(id)
}

/// Lists every category bean (the container activates all 40 one by one).
fn emit_categories(ctx: &mut RequestCtx<'_>) -> AppResult<()> {
    let names = ctx.facade("CategorySession.list", |em| {
        let pks = em.find_pks_query_tail("categories", "ORDER BY id", &[])?;
        let mut names = Vec::new();
        for pk in pks {
            if let Some(h) = em.find("categories", pk)? {
                names.push(em.get(h, "name")?);
            }
        }
        Ok(names)
    })?;
    for n in names {
        ctx.emit(&format!("<a>{n}</a><br>"));
    }
    Ok(())
}

fn emit_regions(ctx: &mut RequestCtx<'_>) -> AppResult<()> {
    let names = ctx.facade("RegionSession.list", |em| {
        let pks = em.find_pks_query_tail("regions", "ORDER BY id", &[])?;
        let mut names = Vec::new();
        for pk in pks {
            if let Some(h) = em.find("regions", pk)? {
                names.push(em.get(h, "name")?);
            }
        }
        Ok(names)
    })?;
    for n in names {
        ctx.emit(&format!("<a>{n}</a><br>"));
    }
    Ok(())
}

/// Item-listing rows fetched through a finder + per-item activation.
type ItemRow = (Value, Value, Value, Value);

fn emit_item_list(ctx: &mut RequestCtx<'_>, rows: &[ItemRow]) {
    for (id, name, max_bid, nb) in rows {
        ctx.emit_bytes(220);
        ctx.emit(&format!(
            "<tr><td><a href=\"item?id={id}\">{name}</a></td><td>{max_bid}</td><td>{nb}</td></tr>"
        ));
    }
    for _ in 0..LIST_THUMBNAILS.min(rows.len()) {
        ctx.embed_asset(StaticAsset::thumbnail());
    }
}

fn home(ctx: &mut RequestCtx<'_>) -> AppResult<()> {
    page_header(ctx, "Auction Home");
    emit_categories(ctx)?;
    ctx.embed_asset(StaticAsset::full_image());
    page_footer(ctx);
    Ok(())
}

fn register(ctx: &mut RequestCtx<'_>) -> AppResult<()> {
    page_header(ctx, "Register");
    emit_regions(ctx)?;
    ctx.emit("<form action=\"register\"><input name=\"nickname\"></form>");
    page_footer(ctx);
    Ok(())
}

fn register_user(
    app: &Auction,
    ctx: &mut RequestCtx<'_>,
    session: &mut SessionData,
    rng: &mut SimRng,
) -> AppResult<()> {
    page_header(ctx, "Register User");
    let nick = format!("NU{}_{}", session.client(), rng.uniform_u64(0, u32::MAX as u64));
    let region = app.random_region(rng);
    let created = ctx.facade("UserSession.register", |em| {
        if !em.find_pks_where("users", "nickname", Value::str(&nick))?.is_empty() {
            return Ok(None);
        }
        let pk = em.create(
            "users",
            &[
                ("id", Value::Null),
                ("firstname", Value::str("NEW")),
                ("lastname", Value::str("USER")),
                ("nickname", Value::str(&nick)),
                ("password", Value::str("pw")),
                ("email", Value::str(format!("{nick}@example.com"))),
                ("rating", Value::Int(0)),
                ("balance", Value::Float(0.0)),
                ("creation_date", Value::Int(BASE_DATE)),
                ("region", Value::Int(region)),
            ],
        )?;
        // The ids bookkeeping entity.
        if let Some(h) = em.find("ids", Value::Int(1))? {
            let v = em.get(h, "value")?.as_int().unwrap_or(0);
            em.set(h, "value", Value::Int(v + 1))?;
        }
        Ok(Some(pk.as_int().unwrap_or(0)))
    })?;
    match created {
        Some(id) => {
            session.set_int("user_id", id);
            ctx.emit(&format!("<p>Welcome {nick} (#{id})</p>"));
        }
        None => ctx.emit("<p>Nickname taken.</p>"),
    }
    page_footer(ctx);
    Ok(())
}

fn browse(ctx: &mut RequestCtx<'_>) -> AppResult<()> {
    page_header(ctx, "Browse");
    emit_categories(ctx)?;
    emit_regions(ctx)?;
    page_footer(ctx);
    Ok(())
}

fn browse_categories(ctx: &mut RequestCtx<'_>) -> AppResult<()> {
    page_header(ctx, "Browse Categories");
    emit_categories(ctx)?;
    page_footer(ctx);
    Ok(())
}

fn search_items_in_category(
    app: &Auction,
    ctx: &mut RequestCtx<'_>,
    session: &mut SessionData,
    rng: &mut SimRng,
) -> AppResult<()> {
    page_header(ctx, "Items in Category");
    let category = app.random_category(rng);
    session.set_int("category_id", category);
    let rows = ctx.facade("QuerySession.itemsInCategory", |em| {
        let pks = em.find_pks_query_tail(
            "items",
            &format!(
                "WHERE category = ? AND end_date >= ? ORDER BY end_date ASC LIMIT {PAGE_SIZE}"
            ),
            &[Value::Int(category), Value::Int(BASE_DATE)],
        )?;
        let mut rows: Vec<ItemRow> = Vec::new();
        for pk in pks {
            if let Some(h) = em.find("items", pk.clone())? {
                rows.push((
                    pk,
                    em.get(h, "name")?,
                    em.get(h, "max_bid")?,
                    em.get(h, "nb_of_bids")?,
                ));
            }
        }
        Ok(rows)
    })?;
    if let Some((id, ..)) = rows.first() {
        if let Some(id) = id.as_int() {
            session.set_int("item_id", id);
        }
    }
    emit_item_list(ctx, &rows);
    page_footer(ctx);
    Ok(())
}

fn browse_regions(ctx: &mut RequestCtx<'_>) -> AppResult<()> {
    page_header(ctx, "Browse Regions");
    emit_regions(ctx)?;
    page_footer(ctx);
    Ok(())
}

fn browse_categories_in_region(
    app: &Auction,
    ctx: &mut RequestCtx<'_>,
    session: &mut SessionData,
    rng: &mut SimRng,
) -> AppResult<()> {
    page_header(ctx, "Categories in Region");
    let region = app.random_region(rng);
    session.set_int("region_id", region);
    ctx.facade("RegionSession.load", |em| {
        em.find("regions", Value::Int(region))?;
        Ok(())
    })?;
    emit_categories(ctx)?;
    page_footer(ctx);
    Ok(())
}

fn search_items_in_region(
    app: &Auction,
    ctx: &mut RequestCtx<'_>,
    session: &mut SessionData,
    rng: &mut SimRng,
) -> AppResult<()> {
    page_header(ctx, "Items in Region");
    let region = session.int("region_id").unwrap_or_else(|| app.random_region(rng));
    let category = app.random_category(rng);
    // CMP has no joins: the façade filters item beans by their seller
    // bean's region, activating sellers one at a time.
    let rows = ctx.facade("QuerySession.itemsInRegion", |em| {
        let pks = em.find_pks_query_tail(
            "items",
            &format!(
                "WHERE category = ? AND end_date >= ? ORDER BY end_date ASC LIMIT {}",
                PAGE_SIZE * 3
            ),
            &[Value::Int(category), Value::Int(BASE_DATE)],
        )?;
        let mut rows: Vec<ItemRow> = Vec::new();
        for pk in pks {
            if rows.len() as u64 >= PAGE_SIZE {
                break;
            }
            let Some(h) = em.find("items", pk.clone())? else { continue };
            let seller_pk = em.get(h, "seller")?;
            let Some(s) = em.find("users", seller_pk)? else { continue };
            if em.get(s, "region")?.as_int() == Some(region) {
                rows.push((
                    pk,
                    em.get(h, "name")?,
                    em.get(h, "max_bid")?,
                    em.get(h, "nb_of_bids")?,
                ));
            }
        }
        Ok(rows)
    })?;
    emit_item_list(ctx, &rows);
    page_footer(ctx);
    Ok(())
}

fn view_item(
    app: &Auction,
    ctx: &mut RequestCtx<'_>,
    session: &mut SessionData,
    rng: &mut SimRng,
) -> AppResult<()> {
    page_header(ctx, "View Item");
    let item = app.random_item(rng);
    session.set_int("item_id", item);
    let detail = ctx.facade("ItemSession.view", |em| {
        let Some(h) = em.find("items", Value::Int(item))? else {
            return Ok(None);
        };
        let seller_pk = em.get(h, "seller")?;
        let seller = match em.find("users", seller_pk)? {
            Some(s) => format!("{} (rating {})", em.get(s, "nickname")?, em.get(s, "rating")?),
            None => "unknown".into(),
        };
        Ok(Some((
            em.get(h, "name")?,
            em.get(h, "description")?,
            em.get(h, "max_bid")?,
            em.get(h, "nb_of_bids")?,
            em.get(h, "end_date")?,
            seller,
        )))
    })?;
    match detail {
        Some((name, descr, max_bid, nb, end, seller)) => {
            ctx.emit(&format!(
                "<h2>{name}</h2><p>{descr}</p><p>current bid {max_bid} ({nb} bids), ends {end}</p><p>Seller {seller}</p>"
            ));
            ctx.embed_asset(StaticAsset::full_image());
        }
        None => ctx.emit("<p>This item is no longer for sale.</p>"),
    }
    page_footer(ctx);
    Ok(())
}

fn view_user_info(app: &Auction, ctx: &mut RequestCtx<'_>, rng: &mut SimRng) -> AppResult<()> {
    page_header(ctx, "User Information");
    let user = app.random_user(rng);
    let info = ctx.facade("UserSession.info", |em| {
        let Some(h) = em.find("users", Value::Int(user))? else {
            return Ok(None);
        };
        let head = format!("{} (rating {})", em.get(h, "nickname")?, em.get(h, "rating")?);
        let pks =
            em.find_pks_ordered("comments", "to_user_id", Value::Int(user), "date", true, 25)?;
        let mut comments = Vec::new();
        for pk in pks {
            if let Some(c) = em.find("comments", pk)? {
                let from_pk = em.get(c, "from_user_id")?;
                let from = match em.find("users", from_pk)? {
                    Some(u) => em.get(u, "nickname")?.to_string(),
                    None => "?".into(),
                };
                comments.push((from, em.get(c, "comment")?));
            }
        }
        Ok(Some((head, comments)))
    })?;
    if let Some((head, comments)) = info {
        ctx.emit(&format!("<h2>{head}</h2>"));
        for (from, text) in comments {
            ctx.emit_bytes(120);
            ctx.emit(&format!("<tr><td>{from}: {text}</td></tr>"));
        }
    }
    page_footer(ctx);
    Ok(())
}

fn view_bid_history(
    app: &Auction,
    ctx: &mut RequestCtx<'_>,
    session: &mut SessionData,
    rng: &mut SimRng,
) -> AppResult<()> {
    page_header(ctx, "Bid History");
    let item = focus_item(app, session, rng);
    let history = ctx.facade("BidSession.history", |em| {
        let name = match em.find("items", Value::Int(item))? {
            Some(h) => em.get(h, "name")?.to_string(),
            None => String::from("(closed)"),
        };
        let pks = em.find_pks_ordered("bids", "item_id", Value::Int(item), "bid", true, 25)?;
        let mut rows = Vec::new();
        for pk in pks {
            if let Some(b) = em.find("bids", pk)? {
                let bidder_pk = em.get(b, "user_id")?;
                let bidder = match em.find("users", bidder_pk)? {
                    Some(u) => em.get(u, "nickname")?.to_string(),
                    None => "?".into(),
                };
                rows.push((bidder, em.get(b, "bid")?));
            }
        }
        Ok((name, rows))
    })?;
    ctx.emit(&format!("<h2>Bids on {}</h2>", history.0));
    for (bidder, bid) in history.1 {
        ctx.emit_bytes(90);
        ctx.emit(&format!("<tr><td>{bidder} bid {bid}</td></tr>"));
    }
    page_footer(ctx);
    Ok(())
}

fn auth_form(
    app: &Auction,
    ctx: &mut RequestCtx<'_>,
    session: &mut SessionData,
    rng: &mut SimRng,
    target: &str,
) -> AppResult<()> {
    page_header(ctx, &format!("{target} — authentication"));
    let uid = login(app, ctx, session, rng)?;
    // Stateless re-verification via the user bean, as in the SQL version.
    ctx.facade("UserSession.verify", |em| {
        if let Some(h) = em.find("users", Value::Int(uid))? {
            em.get(h, "password")?;
        }
        Ok(())
    })?;
    ctx.emit(&format!(
        "<form action=\"{target}\"><input type=\"hidden\" name=\"user\" value=\"{uid}\"></form>"
    ));
    page_footer(ctx);
    Ok(())
}

fn buy_now(
    app: &Auction,
    ctx: &mut RequestCtx<'_>,
    session: &mut SessionData,
    rng: &mut SimRng,
) -> AppResult<()> {
    page_header(ctx, "Buy Now");
    login(app, ctx, session, rng)?;
    let item = focus_item(app, session, rng);
    session.set_int("item_id", item);
    let detail = ctx.facade("ItemSession.buyNowPrice", |em| {
        let Some(h) = em.find("items", Value::Int(item))? else {
            return Ok(None);
        };
        let seller_pk = em.get(h, "seller")?;
        let seller = match em.find("users", seller_pk)? {
            Some(s) => em.get(s, "nickname")?.to_string(),
            None => "?".into(),
        };
        Ok(Some((em.get(h, "name")?, em.get(h, "buy_now")?, seller)))
    })?;
    if let Some((name, price, seller)) = detail {
        ctx.emit(&format!("<p>Buy {name} now for {price} from {seller}</p>"));
    }
    page_footer(ctx);
    Ok(())
}

fn store_buy_now(
    app: &Auction,
    ctx: &mut RequestCtx<'_>,
    session: &mut SessionData,
    rng: &mut SimRng,
) -> AppResult<()> {
    page_header(ctx, "Store Buy Now");
    let uid = login(app, ctx, session, rng)?;
    let item = focus_item(app, session, rng);
    let qty = rng.uniform_i64(1, 2);
    ctx.app_lock("item", item as u64);
    let result = ctx.facade("BuySession.buyNow", |em| {
        let Some(h) = em.find("items", Value::Int(item))? else {
            return Ok(false);
        };
        let have = em.get(h, "quantity")?.as_int().unwrap_or(0);
        let left = (have - qty).max(0);
        em.set(h, "quantity", Value::Int(left))?;
        if left == 0 {
            em.set(h, "end_date", Value::Int(BASE_DATE))?;
        }
        em.create(
            "buy_now",
            &[
                ("id", Value::Null),
                ("buyer_id", Value::Int(uid)),
                ("item_id", Value::Int(item)),
                ("qty", Value::Int(qty)),
                ("date", Value::Int(BASE_DATE)),
            ],
        )?;
        Ok(true)
    });
    ctx.app_unlock("item", item as u64);
    if result? {
        ctx.emit("<p>Purchase recorded.</p>");
    } else {
        ctx.emit("<p>This item is no longer for sale.</p>");
    }
    page_footer(ctx);
    Ok(())
}

fn put_bid(
    app: &Auction,
    ctx: &mut RequestCtx<'_>,
    session: &mut SessionData,
    rng: &mut SimRng,
) -> AppResult<()> {
    page_header(ctx, "Put Bid");
    login(app, ctx, session, rng)?;
    let item = focus_item(app, session, rng);
    session.set_int("item_id", item);
    let detail = ctx.facade("BidSession.prepare", |em| {
        let Some(h) = em.find("items", Value::Int(item))? else {
            return Ok(None);
        };
        // Recent bids activated for the history strip.
        let pks = em.find_pks_ordered("bids", "item_id", Value::Int(item), "bid", true, 5)?;
        let mut top = Vec::new();
        for pk in pks {
            if let Some(b) = em.find("bids", pk)? {
                top.push(em.get(b, "bid")?);
            }
        }
        Ok(Some((em.get(h, "name")?, em.get(h, "max_bid")?, top)))
    })?;
    if let Some((name, max_bid, top)) = detail {
        ctx.emit(&format!("<p>Bid on {name}: current {max_bid}</p>"));
        for b in top {
            ctx.emit(&format!("<i>{b}</i>"));
        }
    }
    page_footer(ctx);
    Ok(())
}

fn store_bid(
    app: &Auction,
    ctx: &mut RequestCtx<'_>,
    session: &mut SessionData,
    rng: &mut SimRng,
) -> AppResult<()> {
    page_header(ctx, "Store Bid");
    let uid = login(app, ctx, session, rng)?;
    let item = focus_item(app, session, rng);
    let bump = rng.uniform_i64(50, 500) as f64 / 100.0;
    ctx.app_lock("item", item as u64);
    let result = ctx.facade("BidSession.store", |em| {
        let Some(h) = em.find("items", Value::Int(item))? else {
            return Ok(false);
        };
        let current = em
            .get(h, "max_bid")?
            .as_float()
            .filter(|b| *b > 0.0)
            .or_else(|| em.get(h, "initial_price").ok().and_then(|v| v.as_float()))
            .unwrap_or(1.0);
        let bid = current + bump;
        em.create(
            "bids",
            &[
                ("id", Value::Null),
                ("user_id", Value::Int(uid)),
                ("item_id", Value::Int(item)),
                ("qty", Value::Int(1)),
                ("bid", Value::Float(bid)),
                ("max_bid", Value::Float(bid * 1.1)),
                ("date", Value::Int(BASE_DATE)),
            ],
        )?;
        let nb = em.get(h, "nb_of_bids")?.as_int().unwrap_or(0);
        em.set(h, "max_bid", Value::Float(bid))?;
        em.set(h, "nb_of_bids", Value::Int(nb + 1))?;
        Ok(true)
    });
    ctx.app_unlock("item", item as u64);
    if result? {
        ctx.emit("<p>Bid recorded.</p>");
    } else {
        ctx.emit("<p>This auction has ended.</p>");
    }
    page_footer(ctx);
    Ok(())
}

fn put_comment(
    app: &Auction,
    ctx: &mut RequestCtx<'_>,
    session: &mut SessionData,
    rng: &mut SimRng,
) -> AppResult<()> {
    page_header(ctx, "Put Comment");
    login(app, ctx, session, rng)?;
    let to = app.random_user(rng);
    session.set_int("comment_to", to);
    let item = focus_item(app, session, rng);
    let detail = ctx.facade("CommentSession.prepare", |em| {
        let user = match em.find("users", Value::Int(to))? {
            Some(u) => em.get(u, "nickname")?.to_string(),
            None => "?".into(),
        };
        let item_name = match em.find("items", Value::Int(item))? {
            Some(i) => em.get(i, "name")?.to_string(),
            None => "(closed)".into(),
        };
        Ok((user, item_name))
    })?;
    ctx.emit(&format!("<form><p>Comment on {} about {}</p></form>", detail.0, detail.1));
    page_footer(ctx);
    Ok(())
}

fn store_comment(
    app: &Auction,
    ctx: &mut RequestCtx<'_>,
    session: &mut SessionData,
    rng: &mut SimRng,
) -> AppResult<()> {
    page_header(ctx, "Store Comment");
    let uid = login(app, ctx, session, rng)?;
    let to = session.int("comment_to").unwrap_or_else(|| app.random_user(rng));
    let item = focus_item(app, session, rng);
    let rating = rng.uniform_i64(-1, 1);
    let text = rng.ascii_string(40);
    ctx.app_lock("user", to as u64);
    let result = ctx.facade("CommentSession.store", |em| {
        em.create(
            "comments",
            &[
                ("id", Value::Null),
                ("from_user_id", Value::Int(uid)),
                ("to_user_id", Value::Int(to)),
                ("item_id", Value::Int(item)),
                ("rating", Value::Int(rating)),
                ("date", Value::Int(BASE_DATE)),
                ("comment", Value::str(&text)),
            ],
        )?;
        if let Some(u) = em.find("users", Value::Int(to))? {
            let r = em.get(u, "rating")?.as_int().unwrap_or(0);
            em.set(u, "rating", Value::Int(r + rating))?;
        }
        Ok(())
    });
    ctx.app_unlock("user", to as u64);
    result?;
    ctx.emit("<p>Comment stored.</p>");
    page_footer(ctx);
    Ok(())
}

fn sell(ctx: &mut RequestCtx<'_>) -> AppResult<()> {
    page_header(ctx, "Sell");
    emit_categories(ctx)?;
    page_footer(ctx);
    Ok(())
}

fn select_category_to_sell(ctx: &mut RequestCtx<'_>) -> AppResult<()> {
    page_header(ctx, "Select Category");
    emit_categories(ctx)?;
    page_footer(ctx);
    Ok(())
}

fn sell_item_form(
    app: &Auction,
    ctx: &mut RequestCtx<'_>,
    session: &mut SessionData,
    rng: &mut SimRng,
) -> AppResult<()> {
    page_header(ctx, "Sell Item");
    login(app, ctx, session, rng)?;
    let category = app.random_category(rng);
    session.set_int("sell_category", category);
    let name = ctx.facade("CategorySession.load", |em| {
        match em.find("categories", Value::Int(category))? {
            Some(h) => Ok(em.get(h, "name")?.to_string()),
            None => Ok(String::new()),
        }
    })?;
    ctx.emit(&format!("<form><p>List an item in {name}</p><input name=\"name\"></form>"));
    page_footer(ctx);
    Ok(())
}

fn register_item(
    app: &Auction,
    ctx: &mut RequestCtx<'_>,
    session: &mut SessionData,
    rng: &mut SimRng,
) -> AppResult<()> {
    page_header(ctx, "Register Item");
    let uid = login(app, ctx, session, rng)?;
    let category = session.int("sell_category").unwrap_or_else(|| app.random_category(rng));
    let price = rng.uniform_i64(100, 50_000) as f64 / 100.0;
    let name = format!("ITEM {}", rng.ascii_string(14));
    let descr = rng.ascii_string(60);
    let end = BASE_DATE + rng.uniform_i64(1, 7) * DAY;
    let id = ctx.facade("SellSession.registerItem", |em| {
        let pk = em.create(
            "items",
            &[
                ("id", Value::Null),
                ("name", Value::str(&name)),
                ("description", Value::str(&descr)),
                ("initial_price", Value::Float(price)),
                ("quantity", Value::Int(rng_free_qty(price))),
                ("reserve_price", Value::Float(price * 1.1)),
                ("buy_now", Value::Float(price * 1.5)),
                ("nb_of_bids", Value::Int(0)),
                ("max_bid", Value::Float(0.0)),
                ("start_date", Value::Int(BASE_DATE)),
                ("end_date", Value::Int(end)),
                ("seller", Value::Int(uid)),
                ("category", Value::Int(category)),
            ],
        )?;
        if let Some(h) = em.find("ids", Value::Int(2))? {
            let v = em.get(h, "value")?.as_int().unwrap_or(0);
            em.set(h, "value", Value::Int(v + 1))?;
        }
        Ok(pk.as_int().unwrap_or(0))
    })?;
    session.set_int("item_id", id);
    ctx.emit(&format!("<p>Item #{id} listed (auction open for a week).</p>"));
    page_footer(ctx);
    Ok(())
}

/// Deterministic small quantity derived from the price (keeps the façade
/// closure free of `&mut rng` borrows).
fn rng_free_qty(price: f64) -> i64 {
    (price as i64 % 9) + 1
}

fn about_me(
    app: &Auction,
    ctx: &mut RequestCtx<'_>,
    session: &mut SessionData,
    rng: &mut SimRng,
) -> AppResult<()> {
    page_header(ctx, "About Me");
    let uid = login(app, ctx, session, rng)?;
    let report = ctx.facade("UserSession.aboutMe", |em| {
        let head = match em.find("users", Value::Int(uid))? {
            Some(h) => format!("{} (rating {})", em.get(h, "nickname")?, em.get(h, "rating")?),
            None => "?".into(),
        };
        // Bids with their item beans.
        let bid_pks = em.find_pks_ordered("bids", "user_id", Value::Int(uid), "date", true, 20)?;
        let mut bid_lines = Vec::new();
        for pk in bid_pks {
            if let Some(b) = em.find("bids", pk)? {
                let item_pk = em.get(b, "item_id")?;
                if let Some(i) = em.find("items", item_pk)? {
                    bid_lines.push((em.get(b, "bid")?, em.get(i, "name")?));
                }
            }
        }
        // Items being sold.
        let sell_pks = em.find_pks_where("items", "seller", Value::Int(uid))?;
        let mut selling = Vec::new();
        for pk in sell_pks.into_iter().take(20) {
            if let Some(i) = em.find("items", pk)? {
                selling.push((em.get(i, "name")?, em.get(i, "max_bid")?));
            }
        }
        // Purchases.
        let buy_pks = em.find_pks_where("buy_now", "buyer_id", Value::Int(uid))?;
        let mut bought = Vec::new();
        for pk in buy_pks.into_iter().take(20) {
            if let Some(b) = em.find("buy_now", pk)? {
                bought.push(em.get(b, "item_id")?);
            }
        }
        // Feedback.
        let c_pks =
            em.find_pks_ordered("comments", "to_user_id", Value::Int(uid), "date", true, 10)?;
        let mut feedback = Vec::new();
        for pk in c_pks {
            if let Some(c) = em.find("comments", pk)? {
                feedback.push(em.get(c, "comment")?);
            }
        }
        Ok((head, bid_lines, selling, bought, feedback))
    })?;
    let (head, bids, selling, bought, feedback) = report;
    ctx.emit(&format!("<h2>{head}</h2>"));
    for (bid, name) in bids {
        ctx.emit_bytes(130);
        ctx.emit(&format!("<tr><td>bid {bid} on {name}</td></tr>"));
    }
    for (name, max_bid) in selling {
        ctx.emit_bytes(130);
        ctx.emit(&format!("<tr><td>selling {name} at {max_bid}</td></tr>"));
    }
    for item in bought {
        ctx.emit_bytes(80);
        ctx.emit(&format!("<tr><td>bought item {item}</td></tr>"));
    }
    for text in feedback {
        ctx.emit_bytes(110);
        ctx.emit(&format!("<tr><td>{text}</td></tr>"));
    }
    page_footer(ctx);
    Ok(())
}
